"""Extensions beyond the paper's evaluated configuration.

* Multi-line prefetching (inequality 6, described in Section 3.1 but
  not evaluated there): degrees 1-4 swept — deeper degrees must not
  collapse performance, and no degree may beat the tuned machine by an
  implausible margin.
* ASD as the machine's only prefetcher (the paper's future work):
  compared head-to-head against the stock processor-side prefetcher.
* Epoch-length sweep: the SLH epoch is a free design parameter; the
  chosen default must sit in the flat region.
"""

from conftest import once

from repro.experiments.extensions import (
    asd_only,
    degree_sweep,
    render_asd_only,
    render_degree,
)
from repro.experiments.sensitivity import epoch_sweep, render


def test_ext_multi_line_degree(benchmark):
    sweep = once(benchmark, degree_sweep)
    print()
    print(render_degree(sweep))

    base = sweep.average(1)
    assert base > 1.0
    for degree in (2, 3, 4):
        avg = sweep.average(degree)
        # deeper prefetching stays in a sane band around degree 1
        assert 0.9 * base < avg < 1.25 * base


def test_ext_asd_as_only_prefetcher(benchmark):
    result = once(benchmark, asd_only)
    print()
    print(render_asd_only(result))

    # ASD alone is a competitive prefetcher on the focus set
    assert result.average("asd") > 5
    # and on the commercial (short-stream) members it beats the PS unit
    commercial = ("tpcc", "trade2", "sap", "notesbench")
    asd_c = sum(result.gains[b]["asd"] for b in commercial) / 4
    ps_c = sum(result.gains[b]["ps"] for b in commercial) / 4
    assert asd_c > ps_c

    # the future-work PS-side ASD engine is a viable prefetcher: it
    # lands in the same league as the stock Power5 unit on average
    assert result.average("ps_asd") > 0.5 * result.average("ps")


def test_ext_epoch_sweep(benchmark):
    sweep = once(
        benchmark,
        lambda: epoch_sweep(benchmarks=("GemsFDTD", "tpcc", "bwaves")),
    )
    print()
    print(render(sweep))

    values = {e: sweep.average(e) for e in sweep.values}
    assert all(v > 1.0 for v in values.values())
    # the default epoch (1000) is within 3% of the best swept value
    best = max(values.values())
    assert values[1000] > best - 0.03
