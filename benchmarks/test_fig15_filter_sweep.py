"""Figure 15: sensitivity of PMS to Stream Filter size.

Paper: sweeping 4 / 8 / 16 / 64 slots, performance improves with more
slots but with diminishing returns past the evaluated 8-entry filter.
"""

from conftest import once

from repro.experiments.sensitivity import fig15_filter_size, render


def test_fig15_filter_sweep(benchmark):
    fig = once(benchmark, fig15_filter_size)
    print()
    print(render(fig))

    avg = {size: fig.average(size) for size in fig.values}

    assert all(v > 1.0 for v in avg.values())

    # a 4-slot filter is visibly worse than 8 (too few streams tracked)
    assert avg[8] >= avg[4] - 0.005

    # growing past 8 keeps helping but saturates: the 16 -> 64 step is
    # no larger than the 4 -> 8 step plus tolerance
    assert avg[16] >= avg[8] - 0.01
    assert avg[64] >= avg[16] - 0.01
    assert (avg[64] - avg[16]) <= (avg[8] - avg[4]) + 0.03
