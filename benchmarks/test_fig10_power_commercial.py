"""Figure 10: commercial DRAM power/energy, PMS vs PS.

Paper: power +2.8% average, energy -8.2% average.
"""

from conftest import once

from repro.experiments.power import fig10_power_commercial, render


def test_fig10_power_commercial(benchmark):
    fig = once(benchmark, fig10_power_commercial)
    print()
    print(render(fig))

    assert 0 <= fig.avg_power_increase < 10
    assert fig.avg_energy_reduction > 0
    for row in fig.rows:
        assert row["energy_reduction_pct"] > -2
