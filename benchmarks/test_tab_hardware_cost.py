"""Section 5.1: hardware cost of the memory-side prefetcher.

Paper: the extensions add ~6.08% to the memory controller's area, i.e.
~0.098% of the chip, and ~0.06% of chip power; the locality-tracking
state (Stream Filter + LHTs) is small and replicates cheaply per
thread, unlike 64KB-table approaches.
"""

from conftest import once

from repro.experiments.hardware_cost import render, tab_hardware_cost


def test_tab_hardware_cost(benchmark):
    table = once(benchmark, tab_hardware_cost)
    print()
    print(render(table))

    anchor = table.anchor_bits
    one = table.costs[1]

    # reproduce the paper's accounting for the evaluated configuration
    assert abs(one.mc_area_increase(anchor) - 0.0608) < 1e-9
    assert abs(one.chip_area_increase(anchor) * 100 - 0.098) < 0.002
    assert one.chip_power_increase(anchor) < 0.001  # < 0.1% of chip power

    # the whole prefetcher state is a few KB — dominated by the 2 KB
    # Prefetch Buffer, exactly the "small tables" story
    assert one.total_state_bytes < 4096
    assert one.prefetch_buffer_bits / one.total_state_bits > 0.5

    # per-thread replication adds only the tracking state: going from
    # 1 to 4 threads far less than quadruples the total
    four = table.costs[4]
    assert four.total_state_bits < 2.5 * one.total_state_bits
