"""Section 5.2 SMT results: two threads, replicated tracking state.

Paper: SMT improvements are about the same as single-threaded — PMS vs
PS +10.7/9.2/7.5% and PMS vs NP +28.5/20.4/11.1% across the suites.
We run the focus benchmarks as homogeneous two-thread pairs and assert
the gains survive SMT.
"""

from conftest import once

from repro.experiments.smt import render, tab_smt


def test_tab_smt(benchmark):
    result = once(benchmark, tab_smt)
    print()
    print(render(result))

    # prefetching still pays under SMT
    assert result.average("pms_vs_np") > 5
    assert result.average("ms_vs_np") > 2
    assert result.average("pms_vs_ps") > 0

    # every focus benchmark individually gains from PMS
    for bench, row in result.rows.items():
        assert row["pms_vs_np"] > 0, bench
