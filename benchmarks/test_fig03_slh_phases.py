"""Figure 3: SLHs of GemsFDTD vary widely across epochs.

The paper shows three histograms (all epochs, and two arbitrary epochs)
that differ strongly — the motivation for recomputing the SLH every
epoch.  We assert genuine epoch-to-epoch variation: some pair of epochs
must disagree substantially in their bar vectors.
"""

from conftest import once

from repro.analysis.slh_accuracy import slh_rms_error
from repro.experiments.slh_figures import fig3_slh_phases


def test_fig3_slh_phases(benchmark):
    fig = once(benchmark, lambda: fig3_slh_phases("GemsFDTD", epoch_reads=2000))

    print()
    print(fig.table(epochs=list(range(min(4, len(fig.epoch_bars))))))

    assert len(fig.epoch_bars) >= 3, "need several epochs to compare"

    # every epoch's bars are a distribution
    for bars in fig.epoch_bars:
        assert abs(sum(bars[1:]) - 1.0) < 1e-9

    # the histograms genuinely move between epochs (phases)
    spread = max(
        slh_rms_error(a, b)
        for a in fig.epoch_bars
        for b in fig.epoch_bars
    )
    print(f"max epoch-to-epoch rms difference: {spread * 100:.1f} points")
    assert spread > 0.10, "SLH must vary widely across epochs (paper Fig 3)"

    # ... and the all-epoch aggregate hides that variation
    worst_vs_all = max(
        slh_rms_error(bars, fig.all_epoch_bars) for bars in fig.epoch_bars
    )
    assert worst_vs_all > 0.05
