"""Benchmark-suite configuration.

The benchmarks regenerate every table and figure of the paper.  Trace
length defaults to 12000 accesses per benchmark here (enough for the
qualitative shapes; ~20 min for the full suite on a laptop).  Export
``REPRO_TRACE_ACCESSES`` to override — e.g. 20000 reproduces the
numbers recorded in EXPERIMENTS.md.

Simulation runs are cached at two layers (see
repro.experiments.runner): an in-process dict, so benchmarks that
share runs — e.g. Figure 5 and Figure 8 — only pay for them once per
session, and the on-disk result store under ``.repro-results/``, so a
*re-run* of any suite pays for nothing at all.  The store is warmed
into the in-process cache once per session below; ``REPRO_STORE=0``
opts out.  Export ``REPRO_JOBS=N`` to shard the grid-shaped suites
across N worker processes.
"""

import os

os.environ.setdefault("REPRO_TRACE_ACCESSES", "12000")


def pytest_sessionstart(session):
    """Warm the in-process run cache from the on-disk result store."""
    from repro.experiments import runner, store

    if not store.store_enabled():
        return
    loaded = runner.preload_store()
    if loaded:
        print(
            f"repro result store: preloaded {loaded} runs "
            f"from {store.get_store().root}"
        )


def pytest_sessionfinish(session, exitstatus):
    """Report where this session's runs came from.

    On a re-run of any suite the summary must read ``0 simulated`` —
    every run served from the preloaded store (the acceptance check
    for the result store).
    """
    from repro.experiments import runner, store

    info = runner.cache_info()
    line = (
        f"repro result store: {info['simulated']} simulated, "
        f"{info['runs']} runs in cache"
    )
    if store.store_enabled():
        stats = store.get_store().stats
        line += f", store hits/puts {stats.hits}/{stats.puts}"
    print(f"\n{line}")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
