"""Benchmark-suite configuration.

The benchmarks regenerate every table and figure of the paper.  Trace
length defaults to 12000 accesses per benchmark here (enough for the
qualitative shapes; ~20 min for the full suite on a laptop).  Export
``REPRO_TRACE_ACCESSES`` to override — e.g. 20000 reproduces the
numbers recorded in EXPERIMENTS.md.

Simulation runs are cached per process (see repro.experiments.runner),
so benchmarks that share runs — e.g. Figure 5 and Figure 8 — only pay
for them once.
"""

import os

os.environ.setdefault("REPRO_TRACE_ACCESSES", "12000")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
