"""Figure 12: streams of length 1-5 dominate every focus benchmark.

Paper: lengths 1-5 constitute 78-96% of all streams; lengths 2-5 are
roughly 37% for tpc-c, 49% for trade2, 40% for sap, and 62% for
notesbench — the short-stream territory where only ASD can prefetch
without waste.
"""

from conftest import once

from repro.experiments.stream_lengths import fig12_stream_lengths, render


def test_fig12_stream_lengths(benchmark):
    fig = once(benchmark, fig12_stream_lengths)
    print()
    print(render(fig))

    for bench in fig.benchmarks:
        short = fig.short_fraction(bench)
        assert 70 <= short <= 100, f"{bench}: lengths 1-5 must dominate"

    # commercial workloads hold substantial 2-5 mass
    for bench in ("tpcc", "trade2", "sap", "notesbench"):
        assert fig.len2_5_fraction(bench) > 20

    # notesbench is the most stream-y commercial workload (paper: ~62%)
    assert fig.len2_5_fraction("notesbench") >= fig.len2_5_fraction("tpcc")
