"""Figure 5: SPEC2006fp performance under NP / PS / MS / PMS.

Paper averages: PMS vs NP +32.7%, MS vs NP +14.6%, PMS vs PS +10.2%,
with per-benchmark PMS-vs-NP between 0 and 68.6% and the four
non-memory-intensive benchmarks (gamess, namd, povray, calculix) near
zero.
"""

from conftest import once

from repro.experiments.performance import fig5_spec, render
from repro.workloads.profiles import get_profile


def test_fig5_spec_performance(benchmark):
    suite = once(benchmark, fig5_spec)
    print()
    print(render(suite))

    rows = {r.benchmark: r for r in suite.rows}

    # suite averages in the paper's regime
    assert 15 < suite.avg_pms_vs_np < 50
    assert 5 < suite.avg_ms_vs_np < 30
    assert 1 < suite.avg_pms_vs_ps < 15

    # per-benchmark range: 0 .. ~70%, nothing regresses meaningfully
    for row in suite.rows:
        assert -2 < row.pms_vs_np < 90

    # compute-bound benchmarks see (almost) nothing
    for name in ("gamess", "namd", "povray", "calculix"):
        assert not get_profile(name).memory_intensive
        assert rows[name].pms_vs_np < 4

    # the heavy streamers are the big winners
    for name in ("bwaves", "lbm", "leslie3d"):
        assert rows[name].pms_vs_np > 30

    # memory-side prefetching alone always helps the memory-bound set
    for name in ("bwaves", "milc", "GemsFDTD", "lbm"):
        assert rows[name].ms_vs_np > 5

    # PMS dominates both single-prefetcher configurations on average
    assert suite.avg_pms_vs_np > suite.avg_ms_vs_np
