"""Section 5.3: interaction with the memory scheduler.

Paper: replacing the AHB scheduler with a simple in-order scheduler
cuts the prefetcher's gain by ~5 percentage points; the (better)
memoryless scheduler cuts it by ~1 — prefetching benefits grow as
other memory-subsystem bottlenecks are removed.
"""

from conftest import once

from repro.experiments.scheduler_interaction import (
    render,
    tab_scheduler_interaction,
)


def test_tab_scheduler_interaction(benchmark):
    result = once(benchmark, tab_scheduler_interaction)
    print()
    print(render(result))

    # prefetching helps under every scheduler
    for scheduler in ("ahb", "memoryless", "in_order"):
        assert result.average(scheduler) > 0

    # the gain ordering follows scheduler quality
    assert result.average("ahb") >= result.average("memoryless") - 1.0
    assert result.average("memoryless") > result.average("in_order")

    # in-order costs visibly more of the prefetch gain than memoryless
    assert result.reduction_vs_ahb("in_order") > result.reduction_vs_ahb(
        "memoryless"
    )
