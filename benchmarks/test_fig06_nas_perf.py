"""Figure 6: NAS benchmark performance under NP / PS / MS / PMS.

Paper averages: PMS vs NP +24.2%, MS vs NP +11.7%, PMS vs PS +8.1%;
ep (embarrassingly parallel, compute bound) gains nothing.
"""

from conftest import once

from repro.experiments.performance import fig6_nas, render


def test_fig6_nas_performance(benchmark):
    suite = once(benchmark, fig6_nas)
    print()
    print(render(suite))

    rows = {r.benchmark: r for r in suite.rows}

    assert 12 < suite.avg_pms_vs_np < 45
    assert 4 < suite.avg_ms_vs_np < 28
    assert 1 < suite.avg_pms_vs_ps < 12

    # ep is compute bound
    assert rows["ep"].pms_vs_np < 3

    # the CFD/multigrid codes are the winners
    for name in ("ft", "mg", "sp"):
        assert rows[name].pms_vs_np > 18

    # scatter-dominated is gains least among the memory-bound set
    memory_bound = [r for n, r in rows.items() if n != "ep"]
    assert rows["is"].pms_vs_np <= sorted(
        r.pms_vs_np for r in memory_bound
    )[2]
