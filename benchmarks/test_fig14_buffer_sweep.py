"""Figure 14: sensitivity of PMS to Prefetch Buffer size.

Paper: sweeping 8 / 16 / 32 / 1024 blocks, performance grows with the
buffer but with diminishing returns — 16 blocks (the evaluated
configuration) already captures most of the benefit.
"""

from conftest import once

from repro.experiments.sensitivity import fig14_buffer_size, render


def test_fig14_buffer_sweep(benchmark):
    fig = once(benchmark, fig14_buffer_size)
    print()
    print(render(fig))

    avg = {size: fig.average(size) for size in fig.values}

    # every configuration beats no-prefetching
    assert all(v > 1.0 for v in avg.values())

    # monotone improvement with size (small tolerance for noise)
    assert avg[16] >= avg[8] - 0.01
    assert avg[32] >= avg[16] - 0.01
    assert avg[1024] >= avg[32] - 0.01

    # diminishing returns: 16 -> 1024 gains less than 8 -> 16 gave,
    # i.e. the evaluated 16-line buffer sits at the knee
    assert (avg[1024] - avg[16]) <= max(avg[16] - avg[8], 0.02) + 0.02
