"""Figure 13: effectiveness of the memory-side prefetcher under PMS.

Paper: useful prefetches 82-91%, coverage 19-34%, delayed regular
commands 1-3%.  Our reproduction lands lower on usefulness (the
synthetic phase transitions waste more prefetches than the authors'
traces) and spans a wider coverage range; delayed commands match.
"""

from conftest import once

from repro.experiments.efficiency import fig13_efficiency, render


def test_fig13_efficiency(benchmark):
    fig = once(benchmark, fig13_efficiency)
    print()
    print(render(fig))

    avg = fig.averages()

    # useful prefetches: well above coin-flip, below 100
    assert 35 < avg.useful_pct < 100
    # coverage in (or near) the paper's 19-34% band on average
    assert 8 < avg.coverage_pct < 50
    # delayed regular commands stay small — the point of the LPQ
    assert avg.delayed_pct < 5
    for row in fig.rows.values():
        assert row.delayed_pct < 8
        assert row.coverage_pct > 2
