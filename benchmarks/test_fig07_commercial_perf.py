"""Figure 7: commercial-benchmark performance under NP / PS / MS / PMS.

Paper averages: PMS vs NP +15.1%, MS vs NP +9.3%, PMS vs PS +8.4%.
The signature result: these low-spatial-locality workloads still gain
from stream prefetching, and the memory-side ASD prefetcher beats the
processor-side prefetcher on them (MS vs NP 9.3% against PS's implied
~6.2%), because only ASD exploits streams as short as two lines.
"""

from conftest import once

from repro.experiments.performance import fig7_commercial, render


def test_fig7_commercial_performance(benchmark):
    suite = once(benchmark, fig7_commercial)
    print()
    print(render(suite))

    assert 4 < suite.avg_pms_vs_np < 25
    assert 2 < suite.avg_ms_vs_np < 18
    assert 1.5 < suite.avg_pms_vs_ps < 14

    for row in suite.rows:
        # every commercial benchmark gains from PMS
        assert row.pms_vs_np > 3
        # and the memory-side prefetcher alone already helps
        assert row.ms_vs_np > 1

    # the signature: MS beats what PS adds on short-stream workloads
    avg_ps_vs_np = suite.avg_pms_vs_np - suite.avg_pms_vs_ps  # approx
    assert suite.avg_ms_vs_np > avg_ps_vs_np * 0.8
