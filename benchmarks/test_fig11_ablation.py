"""Figure 11: impact of Adaptive Stream Detection and Adaptive Scheduling.

Eight configurations per focus benchmark, normalised to adaptive PMS.
Paper findings (and what our reproduction shows):

* adaptive scheduling vs the five fixed policies: the paper reports a
  2.3-3.6% win over each; in our system the conservative policies are
  never starved (the serialized core drains queues), so adaptive
  *matches* the best fixed policy instead of beating it — asserted as
  a tie within tolerance, and the aggressive policies (3-5) are worse;
* ASD vs next-line: the paper reports ASD 8.4% faster; in our system
  the two tie on execution time, but ASD achieves it with far fewer
  prefetches (asserted below) — the efficiency claim survives even
  where the bandwidth-slack difference does not;
* P5-style in the MC is *worse* than plain next-line (the paper's
  surprising result) — reproduced.
"""

from conftest import once

from repro.experiments.ablation import fig11_ablation, render
from repro.experiments.runner import run
from repro.workloads.profiles import FOCUS_BENCHMARKS


def test_fig11_ablation(benchmark):
    fig = once(benchmark, fig11_ablation)
    print()
    print(render(fig))

    # adaptive scheduling ties the best fixed policy (within 1.5%) ...
    best_fixed = min(fig.average(f"PMS_POLICY{k}") for k in range(1, 6))
    assert best_fixed > 1.0 - 0.015

    # ... and clearly beats the most aggressive policies
    assert fig.average("PMS_POLICY5") > best_fixed
    assert fig.average("PMS_POLICY5") >= fig.average("PMS_POLICY1") - 0.005

    # P5-style in the controller loses to plain next-line (paper's
    # "somewhat surprisingly" finding): two-miss confirmation forfeits
    # every short stream
    assert fig.average("PMS_P5MC") > fig.average("PMS_NEXTLINE") + 0.005

    # ASD performs on par with next-line (within 3%) ...
    assert abs(fig.average("PMS_NEXTLINE") - 1.0) < 0.03

    # ... while issuing far fewer prefetches (the efficiency claim)
    asd_prefetches = sum(
        run(b, "PMS").stats.get("ms.issued", 0) for b in FOCUS_BENCHMARKS
    )
    nextline_prefetches = sum(
        run(b, "PMS_NEXTLINE").stats.get("ms.issued", 0)
        for b in FOCUS_BENCHMARKS
    )
    print(
        f"prefetches issued: ASD {asd_prefetches:.0f} vs "
        f"next-line {nextline_prefetches:.0f}"
    )
    assert asd_prefetches < 0.85 * nextline_prefetches
