"""Figure 8: SPEC2006fp DRAM power/energy, PMS vs PS.

Paper: power increases 2.7% on average, energy *decreases* 9.8%; for
the four non-memory-intensive benchmarks the power impact is
negligible (+0.12% average).
"""

from conftest import once

from repro.experiments.power import fig8_power_spec, render


def test_fig8_power_spec(benchmark):
    fig = once(benchmark, fig8_power_spec)
    print()
    print(render(fig))

    # power rises, but only modestly (prefetch traffic on top of a
    # background-dominated budget)
    assert 0 <= fig.avg_power_increase < 10

    # energy moves the other way: shorter runtime saves background
    # energy (our reduction is smaller than the paper's 9.8% because
    # our prefetch-traffic overhead is larger; the sign is the result)
    assert fig.avg_energy_reduction > 0

    # compute-bound benchmarks barely notice
    light = fig.non_memory_intensive_avg_power()
    assert light is not None
    assert abs(light) < 1.5
    assert light < fig.avg_power_increase
