"""Figure 9: NAS DRAM power/energy, PMS vs PS.

Paper: power +1.6% average, energy -7.9% average.
"""

from conftest import once

from repro.experiments.power import fig9_power_nas, render


def test_fig9_power_nas(benchmark):
    fig = once(benchmark, fig9_power_nas)
    print()
    print(render(fig))

    assert 0 <= fig.avg_power_increase < 10
    assert fig.avg_energy_reduction > 0
    # every benchmark individually: energy never regresses by much
    for row in fig.rows:
        assert row["energy_reduction_pct"] > -2
