"""Figure 2: Stream Length Histogram for an epoch of GemsFDTD.

Paper: 21.8% of reads in length-1 streams, 43.7% in length-2, the rest
spread over longer lengths — i.e. a short-stream-dominated histogram
whose largest bar sits at length 2 in stream-heavy epochs.
"""

from conftest import once

from repro.experiments.slh_figures import fig3_slh_phases


def test_fig2_slh_example(benchmark):
    fig = once(benchmark, lambda: fig3_slh_phases("GemsFDTD", epoch_reads=2000))

    # pick the epoch whose histogram is most length-2 dominated (the
    # paper's example epoch is from a field-sweep phase)
    bars = max(fig.epoch_bars, key=lambda b: b[2])
    print()
    print("Figure 2 — SLH for a GemsFDTD epoch (% of reads)")
    for i, bar in enumerate(bars[1:], start=1):
        print(f"  length {i:>2}: {bar * 100:5.1f} {'#' * int(bar * 80)}")

    assert abs(sum(bars[1:]) - 1.0) < 1e-9
    # short streams carry the mass; length 2 is the dominant bar
    assert bars[2] == max(bars[1:])
    assert bars[2] > 0.30
    assert bars[1] > 0.05
    # meaningful tail beyond length 2 exists (the paper's 34.5%)
    assert sum(bars[3:]) > 0.10
