"""Figure 16: the finite Stream Filter's SLH tracks the exact histogram.

Paper: for a sample GemsFDTD epoch, the 8-slot filter's approximation
closely matches the actual SLH.  We compare bar vectors for an epoch of
the synthetic GemsFDTD and assert a small RMS gap — and that a larger
filter tightens it.
"""

from dataclasses import replace

from conftest import once

from repro.common.config import StreamFilterConfig
from repro.experiments.slh_figures import fig16_slh_accuracy


def test_fig16_slh_accuracy(benchmark):
    acc = once(benchmark, fig16_slh_accuracy)
    print()
    print(acc.table())

    # approximation is a distribution
    assert abs(sum(acc.approximation[1:]) - 1.0) < 1e-6

    # close to the ground truth: RMS within a few points per bar
    assert acc.rms_error < 0.08
    assert max(
        abs(a - b) for a, b in zip(acc.actual[1:], acc.approximation[1:])
    ) < 0.18

    # the decision-critical short-stream bars agree closely: these are
    # what the inequality-(5) comparisons at k=1..3 actually consume
    for k in (2, 3):
        assert abs(acc.actual[k] - acc.approximation[k]) < 0.08, k

    # an unbounded-ish filter must approximate at least as well
    big = fig16_slh_accuracy(
        sf_config=StreamFilterConfig(slots=256, lifetime_init=64,
                                     lifetime_increment=64,
                                     lifetime_cap=512)
    )
    assert big.rms_error <= acc.rms_error + 0.01
