"""Cycle-accounting violations and accepted patterns for CYC001."""


class DriftingClock:
    def __init__(self, stats, controller):
        self.stats = stats
        self.controller = controller
        self.now = 0

    def skip_ahead(self, span):
        self.now += span  # CYC001: advances the clock, no integral, no tick call

    def fast_forward(self, span):
        self.now += span
        values = self.stats.raw()
        values["ticks"] += span
        values["occ_read_queue"] += span * 2  # accounted: integrals kept current

    def delegated_forward(self, span):
        controller_tick = self.controller.bulk_tick
        self.now += span
        controller_tick(span)  # accounted: delegates to a bulk accounting method

    def peek_ahead(self, span):  # lint: no-integral
        now = self.now + span
        return now
