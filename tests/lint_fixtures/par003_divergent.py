"""Fast-forward parity violations: PAR003 must fire here.

``SkippyController.bulk_tick`` is supposed to cover idle cycles
exactly, but it forgets the ``occ_read`` occupancy integral the
per-cycle path accumulates and never emits the ``IdleJump`` event.
The ``issued_reads`` work counter is deliberately tick-only on *both*
classes — work counters are not integrals, so PAR003 must not mention
it.  ``CoveringController`` keeps the integrals in sync and stays
clean.
"""


class IdleJump:
    def __init__(self, cycles):
        self.cycles = cycles


class SkippyController:
    def __init__(self, stats, tracer):
        self.stats = stats
        self.tracer = tracer

    def tick(self, now):
        self.stats.bump("ticks")
        self.stats.bump("occ_read")
        self.stats.bump("issued_reads")  # work counter: legitimately tick-only
        self.tracer.emit(IdleJump(1))

    def bulk_tick(self, start, cycles):
        self.stats.bump("ticks")  # forgets occ_read, never emits IdleJump


class CoveringController:
    def __init__(self, stats, tracer):
        self.stats = stats
        self.tracer = tracer

    def tick(self, now):
        self.stats.bump("ticks")
        self.stats.bump("occ_read")
        self.stats.bump("issued_reads")  # work counter: legitimately tick-only

    def bulk_tick(self, start, cycles):
        self.stats.bump("ticks")
        self.stats.bump("occ_read")
