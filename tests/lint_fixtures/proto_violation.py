"""Wire-parity violations: PROTO001 must fire on both asymmetries.

``status_reply`` is produced but nothing validates it; ``orphan_poke``
is validated but nothing produces it; ``status_ping`` is symmetric and
must stay clean.  The local ``envelope``/``check_envelope`` shims mirror
the real :mod:`repro.fabric.protocol` call shapes the scanner keys on.
"""


def envelope(kind, **fields):
    doc = {"protocol": 7, "kind": kind}
    doc.update(fields)
    return doc


def check_envelope(doc, kind):
    return doc


def request_status(job_id):
    return envelope("status_reply", job_id=job_id, state="done")  # never consumed


def handle_orphan(doc):
    return check_envelope(doc, "orphan_poke")  # never produced


def ping(job_id):
    return envelope("status_ping", job_id=job_id)


def handle_ping(doc):
    return check_envelope(doc, "status_ping")
