"""Fleet concurrency violations: CONC001/002/003 must fire here.

``Agent.start`` spawns a non-daemon thread it never joins and
``Agent.start_flaky`` joins it on only one branch; ``Poller.fetch``
leaks its socket on the early-return path; ``Coordinator`` sleeps —
directly and via a one-level ``self._poll_remote()`` helper — while
holding its lock.  Every class also carries the clean variant of the
same shape, so the tests pin both directions.
"""

import socket
import threading
import time


class Agent:
    def __init__(self):
        self._stop = threading.Event()

    def _loop(self):
        while not self._stop.is_set():
            self._stop.wait(0.1)

    def start(self):
        worker = threading.Thread(target=self._loop)  # CONC001: never joined
        worker.start()

    def start_flaky(self, fast):
        worker = threading.Thread(target=self._loop)  # CONC001: joined on one branch only
        worker.start()
        if fast:
            worker.join()

    def start_daemon(self):
        worker = threading.Thread(target=self._loop, daemon=True)
        worker.start()

    def start_daemon_attr(self):
        worker = threading.Thread(target=self._loop)
        worker.daemon = True
        worker.start()

    def start_handoff(self):
        worker = threading.Thread(target=self._loop)
        self._worker = worker  # ownership handed to the instance
        worker.start()

    def start_joined(self):
        worker = threading.Thread(target=self._loop)
        worker.start()
        worker.join()


class Poller:
    def fetch(self, host, ready):
        sock = socket.socket()  # CONC002: early return skips close
        if not ready:
            return None
        sock.connect((host, 80))
        data = sock.recv(1024)
        sock.close()
        return data

    def fetch_finally(self, host):
        sock = socket.socket()
        try:
            sock.connect((host, 80))
            return sock.recv(1024)
        finally:
            sock.close()

    def read_with(self, path):
        with open(path) as handle:
            return handle.read()

    def open_handoff(self):
        return socket.socket()  # caller owns the release


class Coordinator:
    def __init__(self):
        self._lock = threading.Lock()
        self.jobs = []

    def wait_done(self):
        with self._lock:
            time.sleep(0.1)  # CONC003: blocking while the lock is held

    def drain(self):
        with self._lock:
            self._poll_remote()  # CONC003: helper blocks one level down

    def _poll_remote(self):
        time.sleep(0.5)

    def snapshot(self):
        with self._lock:
            return list(self.jobs)
