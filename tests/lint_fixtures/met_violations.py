"""Metric-contract violations: MET002/MET003 must fire here.

Four bad registration sites (counter without ``_total``, an uppercase
name, a four-label cardinality blowout, an unwaived dynamic name), one
clean gauge, and a scrape helper referencing a metric nothing
registers.
"""


def register_all(registry, suffix):
    registry.counter("repro_jobs_done", "Jobs done.")  # MET002: no _total
    registry.gauge("repro_Queue_depth", "Depth.")  # MET002: uppercase
    registry.counter(
        "repro_retries_total",
        "Retries by origin.",
        ("host", "job", "bench", "seed"),  # MET002: 4 labels > cap
    )
    registry.counter(f"repro_dyn_{suffix}_total", "Dynamic.")  # MET002: unwaived
    registry.gauge("repro_queue_depth", "Depth.")


def scrape_check(text):
    return "repro_jobs_typo_total" in text  # MET003: nothing registers this
