"""Stats-registry fixtures for REG001/REG002/REG003."""


class KeyedBlock:
    # lint: stat-prefixes(shape_)
    def __init__(self, stats, shape):
        self.stats = stats
        self.shape = shape

    def record(self, hit, name):
        self.stats.bump("observations")
        self.stats.bump("hits" if hit else "misses")
        self.stats.bump(f"shape_{self.shape}")
        key = "dyn_" + name
        self.stats.bump(key)  # REG002: opaque dynamic key, no waiver

    def batched(self, name):
        values = self.stats.raw()
        values["dyn_" + name] += 1  # lint: stats-dynamic

    def summarize(self):
        seen = self.stats["observations"]
        oops = self.stats["observaitons"]  # REG003: typo'd read, never written
        return seen, oops
