"""Dual-path parity violations: PAR001 and PAR002 must fire here.

``SkewedController.tick`` and ``tick_reference`` are supposed to be the
same behaviour at two speeds, but the fast path bumps a counter the
reference never touches, and only the reference path emits the
``QueueDepthSample`` tracer event.
"""


class QueueDepthSample:
    def __init__(self, depth):
        self.depth = depth


class RetireEvent:
    def __init__(self, now):
        self.now = now


class SkewedController:
    def __init__(self, stats, tracer):
        self.stats = stats
        self.tracer = tracer
        self.depth = 0

    def tick(self, now):
        self.stats.bump("issued")
        self.stats.bump("fast_only_counter")  # reference path never bumps this
        self.tracer.emit(RetireEvent(now))

    def tick_reference(self, now):
        self.stats.bump("issued")
        self.tracer.emit(RetireEvent(now))
        self.tracer.emit(QueueDepthSample(self.depth))  # fast path never emits this
