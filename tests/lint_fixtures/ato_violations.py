"""Torn-write violations: ATO001 must fire on the bare write only.

``save_report`` overwrites the final path in place; the three other
writers use the sanctioned idioms (mkstemp+replace, suffix tmp+replace,
append stream) and must stay clean.
"""

import json
import os
import tempfile


def save_report(path, payload):
    with open(path, "w", encoding="utf-8") as handle:  # ATO001: torn write
        json.dump(payload, handle)


def save_report_mkstemp(path, payload):
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=os.path.dirname(path))
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def save_report_suffix(path, payload):
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def append_log(path, line):
    with open(path, "a", encoding="utf-8") as handle:  # append streams are exempt
        handle.write(line)
