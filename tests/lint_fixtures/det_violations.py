"""Determinism violations: every DET rule must fire on this module."""

import os
import random
import time


class LeakyBlock:
    def __init__(self):
        self.lines = {1, 2, 3}
        self.stamp = 0.0

    def tick(self, now):
        self.stamp = time.time()  # DET001
        jitter = time.perf_counter()  # DET001
        pick = random.random()  # DET002
        other = random.randint(0, 7)  # DET002
        token = os.urandom(4)  # DET003
        for line in self.lines:  # DET004 (attribute bound to a set literal)
            pick += line
        for line in set((1, 2)):  # DET004 (set constructor)
            other += line
        for line in sorted(self.lines):  # ok: sorted iteration
            jitter += line
        seeded = random.Random(42)  # ok: explicitly seeded instance
        waived = time.monotonic()  # lint: waive=DET001
        return pick, other, token, seeded.random(), waived


def walk_sets(pending):
    flat = [x for s in pending for x in {s}]  # DET004 (set comprehension iter)
    return flat
