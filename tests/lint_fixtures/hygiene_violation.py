"""Hot-path hygiene violations for HYG001/HYG002."""

import datetime
from dataclasses import dataclass


@dataclass
class LooseRecord:  # HYG001: hot-path dataclass without slots
    addr: int
    cycle: int


@dataclass(frozen=True, slots=True)
class TightRecord:  # ok: slots declared
    addr: int
    cycle: int


@dataclass
class WaivedRecord:  # lint: no-slots
    addr: int


class StampingBlock:
    def __init__(self):
        self.stamp = None

    def tick(self, now):
        self.stamp = datetime.datetime.now()  # HYG002: wall clock in per-tick code
