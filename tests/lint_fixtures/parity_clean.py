"""Dual-path pair that the parity rules must accept.

Exercises the equivalences the rules are expected to see through:

* ``bump`` on one path vs a batched ``raw()`` add on the other;
* an event emitted directly on one path but via a shared ``self._note``
  helper on the other (one-level self-call expansion).
"""


class RetireEvent:
    def __init__(self, now):
        self.now = now


class BalancedController:
    def __init__(self, stats, tracer):
        self.stats = stats
        self.tracer = tracer
        self._stat_values = self.stats.raw()

    def _note(self, now):
        self.tracer.emit(RetireEvent(now))
        self.stats.bump("noted")

    def tick(self, now):
        values = self._stat_values
        values["issued"] += 1
        self._note(now)

    def tick_reference(self, now):
        self.stats.bump("issued")
        self.stats.bump("noted")
        self.tracer.emit(RetireEvent(now))
