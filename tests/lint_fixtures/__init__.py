"""Seeded-violation fixture modules for the analysislint unit tests.

Each module here is *deliberately wrong* in exactly the ways one rule
family must catch.  Tests load them as text and mount them at virtual
``src/repro/...`` paths (see ``tests/unit/test_analysislint_*.py``), so
nothing in this package is ever imported by the simulator — but every
file stays syntactically valid Python so tooling can parse it.
"""
