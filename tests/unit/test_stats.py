"""Unit tests for repro.common.stats."""

from repro.common.stats import Stats


class TestStats:
    def test_missing_key_reads_zero(self):
        assert Stats()["nothing"] == 0

    def test_bump_default_one(self):
        s = Stats()
        s.bump("x")
        assert s["x"] == 1

    def test_bump_amount(self):
        s = Stats()
        s.bump("x", 2.5)
        s.bump("x", 0.5)
        assert s["x"] == 3.0

    def test_set_overwrites(self):
        s = Stats()
        s.bump("x", 10)
        s.set("x", 3)
        assert s["x"] == 3

    def test_contains(self):
        s = Stats()
        assert "x" not in s
        s.bump("x")
        assert "x" in s

    def test_iteration_sorted(self):
        s = Stats()
        s.bump("b")
        s.bump("a")
        assert [k for k, _ in s] == ["a", "b"]

    def test_len(self):
        s = Stats()
        s.bump("a")
        s.bump("b")
        assert len(s) == 2

    def test_as_dict_snapshot(self):
        s = Stats()
        s.bump("a")
        d = s.as_dict()
        d["a"] = 99
        assert s["a"] == 1

    def test_merge_with_prefix(self):
        a = Stats()
        a.bump("hits", 2)
        b = Stats()
        b.merge(a, "l1.")
        assert b["l1.hits"] == 2

    def test_merge_accumulates(self):
        a = Stats()
        a.bump("x", 1)
        b = Stats()
        b.bump("x", 2)
        b.merge(a)
        assert b["x"] == 3

    def test_merge_plain_mapping(self):
        s = Stats()
        s.merge({"y": 4})
        assert s["y"] == 4

    def test_ratio(self):
        s = Stats()
        s.bump("hits", 3)
        s.bump("total", 4)
        assert s.ratio("hits", "total") == 0.75

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("a", "b") == 0.0


class TestSnapshotDelta:
    def test_delta_against_earlier_snapshot(self):
        s = Stats()
        s.bump("x", 5)
        before = s.as_dict()
        s.bump("x", 3)
        s.bump("y", 2)
        delta = s.snapshot_delta(before)
        assert delta == {"x": 3, "y": 2}

    def test_missing_prev_key_treated_as_zero(self):
        s = Stats()
        s.bump("fresh", 4)
        assert s.snapshot_delta({}) == {"fresh": 4}

    def test_delta_of_identical_snapshots_is_zero(self):
        s = Stats()
        s.bump("x", 1)
        delta = s.snapshot_delta(s.as_dict())
        assert delta == {"x": 0}


class TestTotal:
    def test_total_sums_everything_without_prefix(self):
        s = Stats()
        s.bump("a", 1)
        s.bump("b", 2)
        assert s.total() == 3

    def test_total_sums_only_prefixed_keys(self):
        s = Stats()
        s.bump("lat_sum_demand", 10)
        s.bump("lat_sum_ps_prefetch", 5)
        s.bump("reads", 100)
        assert s.total("lat_sum_") == 15

    def test_total_empty_prefix_match(self):
        assert Stats().total("none_") == 0


class TestMembershipContract:
    """A key is ``in`` a Stats exactly when something wrote it.

    The old ``defaultdict(float)`` backing materialized keys on *reads*
    through ``raw()``, so ``in``/``len`` depended on who had looked.
    These tests pin the fixed contract.
    """

    def test_getitem_read_does_not_materialize(self):
        s = Stats()
        assert s["missing"] == 0
        assert "missing" not in s
        assert len(s) == 0

    def test_raw_read_does_not_materialize(self):
        s = Stats()
        values = s.raw()
        assert values["missing"] == 0.0
        assert "missing" not in s
        assert "missing" not in values
        assert len(s) == 0
        assert list(s) == []

    def test_raw_augmented_add_still_writes(self):
        s = Stats()
        values = s.raw()
        values["hits"] += 1  # read-0, add, store — same as bump
        values["hits"] += 2
        assert "hits" in s
        assert s["hits"] == 3
        assert len(s) == 1

    def test_mixed_probes_and_writes(self):
        s = Stats()
        values = s.raw()
        s.bump("written")
        assert values["probed"] == 0.0  # probe between writes
        s.bump("written")
        assert sorted(k for k, _ in s) == ["written"]
        assert s.as_dict() == {"written": 2}

    def test_ratio_of_unwritten_keys_does_not_materialize(self):
        s = Stats()
        assert s.ratio("a", "b") == 0.0
        assert len(s) == 0
