"""Unit tests for repro.common.stats."""

from repro.common.stats import Stats


class TestStats:
    def test_missing_key_reads_zero(self):
        assert Stats()["nothing"] == 0

    def test_bump_default_one(self):
        s = Stats()
        s.bump("x")
        assert s["x"] == 1

    def test_bump_amount(self):
        s = Stats()
        s.bump("x", 2.5)
        s.bump("x", 0.5)
        assert s["x"] == 3.0

    def test_set_overwrites(self):
        s = Stats()
        s.bump("x", 10)
        s.set("x", 3)
        assert s["x"] == 3

    def test_contains(self):
        s = Stats()
        assert "x" not in s
        s.bump("x")
        assert "x" in s

    def test_iteration_sorted(self):
        s = Stats()
        s.bump("b")
        s.bump("a")
        assert [k for k, _ in s] == ["a", "b"]

    def test_len(self):
        s = Stats()
        s.bump("a")
        s.bump("b")
        assert len(s) == 2

    def test_as_dict_snapshot(self):
        s = Stats()
        s.bump("a")
        d = s.as_dict()
        d["a"] = 99
        assert s["a"] == 1

    def test_merge_with_prefix(self):
        a = Stats()
        a.bump("hits", 2)
        b = Stats()
        b.merge(a, "l1.")
        assert b["l1.hits"] == 2

    def test_merge_accumulates(self):
        a = Stats()
        a.bump("x", 1)
        b = Stats()
        b.bump("x", 2)
        b.merge(a)
        assert b["x"] == 3

    def test_merge_plain_mapping(self):
        s = Stats()
        s.merge({"y": 4})
        assert s["y"] == 4

    def test_ratio(self):
        s = Stats()
        s.bump("hits", 3)
        s.bump("total", 4)
        assert s.ratio("hits", "total") == 0.75

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("a", "b") == 0.0
