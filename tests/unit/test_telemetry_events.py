"""Unit tests for repro.telemetry.events — the typed event catalogue."""

import pytest

from repro.telemetry.events import (
    EVENT_KINDS,
    DramCommand,
    EpochBoundary,
    PolicyChange,
    PrefetchDiscard,
    PrefetchHit,
    PrefetchIssued,
    QueueDepthSample,
    event_from_dict,
)

ALL_EVENTS = [
    EpochBoundary(t=100, epoch=3, reads=1000, policy=2),
    PrefetchIssued(t=101, line=42, thread=1),
    PrefetchHit(t=102, line=42, where="merge"),
    PrefetchDiscard(t=103, line=43, reason="lpq_full"),
    PolicyChange(t=104, old_policy=2, new_policy=3, conflicts=17),
    QueueDepthSample(t=105, read_queue=4, write_queue=2, caq=1, lpq=3,
                     core_outstanding=5),
    DramCommand(t=106, line=44, bank=2, row=9, is_write=False,
                provenance="ms_prefetch", row_hit=True, completion=140),
]


class TestRoundTrip:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.kind)
    def test_to_dict_from_dict_identity(self, event):
        assert event_from_dict(event.to_dict()) == event

    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.kind)
    def test_dict_carries_kind_and_time(self, event):
        d = event.to_dict()
        assert d["kind"] == event.kind
        assert d["t"] == event.t


class TestRegistry:
    def test_every_kind_registered(self):
        assert sorted(EVENT_KINDS) == [
            "dram_command",
            "epoch_boundary",
            "policy_change",
            "prefetch_discard",
            "prefetch_hit",
            "prefetch_issued",
            "queue_depth",
        ]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "martian", "t": 0})

    def test_missing_kind_raises(self):
        with pytest.raises(ValueError):
            event_from_dict({"t": 0})


class TestImmutability:
    def test_events_are_frozen(self):
        event = EpochBoundary(t=1, epoch=1)
        with pytest.raises(Exception):
            event.epoch = 2
