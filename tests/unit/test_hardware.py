"""Unit tests for the hardware-cost model."""

import pytest

from repro.analysis.hardware import (
    MC_FRACTION_OF_CHIP_AREA,
    PAPER_MC_AREA_INCREASE,
    HardwareCost,
    estimate_cost,
    paper_anchor_bits,
)
from repro.common.config import MemorySidePrefetcherConfig


class TestEstimate:
    def test_default_config_inventory(self):
        cost = estimate_cost(MemorySidePrefetcherConfig(enabled=True))
        assert cost.threads == 1
        # two table pairs (curr/next) x two directions x 16 entries
        assert cost.comparators == 2 * 15
        assert cost.total_state_bits > 0

    def test_prefetch_buffer_dominates_state(self):
        # 16 x 128 B of data dwarfs the tracking tables — the point of
        # the paper's "small hardware" claim
        cost = estimate_cost(MemorySidePrefetcherConfig(enabled=True))
        assert cost.prefetch_buffer_bits > cost.lht_bits
        assert cost.prefetch_buffer_bits > cost.stream_filter_bits

    def test_per_thread_state_scales(self):
        one = estimate_cost(MemorySidePrefetcherConfig(enabled=True), threads=1)
        two = estimate_cost(MemorySidePrefetcherConfig(enabled=True), threads=2)
        assert two.stream_filter_bits == 2 * one.stream_filter_bits
        assert two.lht_bits == 2 * one.lht_bits
        # the Prefetch Buffer is shared (paper keeps it at 16 lines)
        assert two.prefetch_buffer_bits == one.prefetch_buffer_bits

    def test_anchor_reproduces_paper_area(self):
        cost = estimate_cost(MemorySidePrefetcherConfig(enabled=True))
        anchor = paper_anchor_bits()
        assert cost.mc_area_increase(anchor) == pytest.approx(
            PAPER_MC_AREA_INCREASE
        )
        assert cost.chip_area_increase(anchor) == pytest.approx(
            PAPER_MC_AREA_INCREASE * MC_FRACTION_OF_CHIP_AREA
        )

    def test_chip_area_increase_below_tenth_percent(self):
        # headline claim: less than 0.1% of the chip
        cost = estimate_cost(MemorySidePrefetcherConfig(enabled=True))
        assert cost.chip_area_increase(paper_anchor_bits()) < 0.001

    def test_power_increase_scales_with_state(self):
        small = estimate_cost(MemorySidePrefetcherConfig(enabled=True), threads=1)
        big = estimate_cost(MemorySidePrefetcherConfig(enabled=True), threads=4)
        anchor = paper_anchor_bits()
        assert big.chip_power_increase(anchor) > small.chip_power_increase(anchor)

    def test_invalid_anchor(self):
        cost = estimate_cost(MemorySidePrefetcherConfig(enabled=True))
        with pytest.raises(ValueError):
            cost.mc_area_increase(0)

    def test_total_state_bytes(self):
        cost = HardwareCost(8, 8, 8, 8, 1, 1)
        assert cost.total_state_bytes == 4.0
