"""Unit tests for RunResult metrics."""

import pytest

from repro.dram.power import PowerReport
from repro.system.results import RunResult


def make_result(cycles=1000, stats=None, power=None, **kw):
    defaults = dict(
        config_name="PMS",
        benchmark="demo",
        cycles=cycles,
        instructions=8000,
        cpu_ratio=8,
        stats=stats or {},
        power=power,
    )
    defaults.update(kw)
    return RunResult(**defaults)


def make_power(energy, power_mw):
    return PowerReport(
        elapsed_ns=1.0,
        energy_uj=energy,
        avg_power_mw=power_mw,
        activate_energy_uj=0,
        burst_energy_uj=0,
        background_energy_uj=energy,
    )


class TestPerformance:
    def test_cpu_cycles(self):
        assert make_result(cycles=10).cpu_cycles == 80

    def test_ipc(self):
        r = make_result(cycles=1000)
        assert r.ipc == pytest.approx(1.0)

    def test_gain_vs(self):
        fast = make_result(cycles=800)
        slow = make_result(cycles=1000)
        assert fast.gain_vs(slow) == pytest.approx(25.0)
        assert slow.gain_vs(fast) == pytest.approx(-20.0)

    def test_normalized_time(self):
        a = make_result(cycles=1200)
        b = make_result(cycles=1000)
        assert a.normalized_time_vs(b) == pytest.approx(1.2)


class TestEfficiencyMetrics:
    def test_coverage(self):
        r = make_result(
            stats={
                "mc.pb_hits_pre_caq": 15,
                "mc.pb_hits_caq": 5,
                "mc.reads_arrived": 100,
            }
        )
        assert r.coverage == pytest.approx(0.20)

    def test_coverage_no_reads(self):
        assert make_result().coverage == 0.0

    def test_useful_fraction(self):
        r = make_result(stats={"pb.inserts": 10, "pb.read_hits": 9})
        assert r.useful_prefetch_fraction == pytest.approx(0.9)

    def test_delayed_fraction(self):
        r = make_result(
            stats={"mc.delayed_regular": 2, "mc.issued_regular": 100}
        )
        assert r.delayed_regular_fraction == pytest.approx(0.02)


class TestPowerMetrics:
    def test_power_increase(self):
        pms = make_result(power=make_power(90, 103))
        ps = make_result(power=make_power(100, 100))
        assert pms.power_increase_vs(ps) == pytest.approx(3.0)

    def test_energy_reduction(self):
        pms = make_result(power=make_power(90, 103))
        ps = make_result(power=make_power(100, 100))
        assert pms.energy_reduction_vs(ps) == pytest.approx(10.0)

    def test_missing_power_raises(self):
        with pytest.raises(ValueError):
            make_result().power_increase_vs(make_result())

    def test_summary_contains_benchmark(self):
        assert "demo" in make_result().summary()
