"""Unit tests for repro.obs.flightrec and repro.obs.paths.

Includes the pin that keeps ``paths.obs_root()`` and the result
store's ``store_root()`` resolving identically — the two-line rule is
duplicated (to keep obs import-light) and this is the contract that
keeps the copies honest.
"""

import logging
import os

from repro.experiments.store import store_root
from repro.obs import paths
from repro.obs.flightrec import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    read_postmortem,
)
from repro.obs.metrics import MetricsRegistry


class TestPaths:
    def test_obs_root_matches_store_root(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", "/tmp/somewhere")
        assert paths.obs_root() == store_root()
        monkeypatch.delenv("REPRO_STORE_DIR")
        assert paths.obs_root() == store_root()
        monkeypatch.setenv("REPRO_STORE_DIR", "")  # empty -> default
        assert paths.obs_root() == store_root()

    def test_subdirectories(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", "/data/run1")
        assert paths.metrics_dir() == os.path.join("/data/run1", "metrics")
        assert paths.postmortem_dir() == os.path.join("/data/run1", "postmortem")
        assert paths.metrics_dir("/other") == os.path.join("/other", "metrics")


class TestRing:
    def test_note_appends_in_order_with_seq(self):
        rec = FlightRecorder()
        rec.note("submit", job="a")
        rec.note("retry", job="a", attempt=1)
        records = rec.records()
        assert [r["kind"] for r in records] == ["submit", "retry"]
        assert [r["seq"] for r in records] == [1, 2]
        assert records[1]["attempt"] == 1
        assert all("t_unix" in r for r in records)

    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.note("n", i=i)
        records = rec.records()
        assert len(records) == 3
        assert [r["i"] for r in records] == [7, 8, 9]

    def test_default_capacity(self):
        rec = FlightRecorder()
        for i in range(DEFAULT_CAPACITY + 50):
            rec.note("n", i=i)
        assert len(rec.records()) == DEFAULT_CAPACITY


class TestLoggingCapture:
    def test_attach_captures_repro_loggers(self):
        rec = FlightRecorder()
        logger = logging.getLogger("repro.experiments.sweep")
        rec.attach("repro")
        try:
            logger.warning("job %s timed out", "abc")
        finally:
            rec.detach()
        logger.warning("after detach")  # must not be recorded
        records = [r for r in rec.records() if r["kind"] == "log"]
        assert len(records) == 1
        assert records[0]["level"] == "WARNING"
        assert records[0]["logger"] == "repro.experiments.sweep"
        assert records[0]["message"] == "job abc timed out"

    def test_detach_without_attach_is_noop(self):
        FlightRecorder().detach()


class TestPostmortem:
    def test_dump_and_read(self, tmp_path):
        rec = FlightRecorder(metrics=MetricsRegistry(enabled=False))
        rec.note("timeout", job="k1")
        path = rec.postmortem(
            "timeout", "k1", spec={"benchmark": "tonto"},
            extra={"timeout_s": 0.5}, directory=str(tmp_path),
        )
        assert path == str(tmp_path / "k1.json")
        doc = read_postmortem(path)
        assert doc["reason"] == "timeout"
        assert doc["job_key"] == "k1"
        assert doc["spec"] == {"benchmark": "tonto"}
        assert doc["extra"] == {"timeout_s": 0.5}
        assert doc["metrics"] is None  # disabled registry -> no snapshot
        assert [r["kind"] for r in doc["records"]] == ["timeout"]

    def test_dump_includes_metrics_when_enabled(self, tmp_path):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c_total").inc(4)
        rec = FlightRecorder(metrics=reg)
        doc = read_postmortem(
            rec.postmortem("worker_crash", "k2", directory=str(tmp_path))
        )
        names = {m["name"] for m in doc["metrics"]["metrics"]}
        assert "c_total" in names

    def test_default_directory_is_postmortem_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        rec = FlightRecorder(metrics=MetricsRegistry(enabled=False))
        path = rec.postmortem("timeout", "k3")
        assert path == str(tmp_path / "postmortem" / "k3.json")

    def test_unwritable_directory_returns_none(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        rec = FlightRecorder(metrics=MetricsRegistry(enabled=False))
        assert rec.postmortem("x", "k", directory=str(blocker)) is None


class TestPostmortemRotation:
    @staticmethod
    def recorder(metrics=None):
        return FlightRecorder(
            metrics=metrics if metrics is not None
            else MetricsRegistry(enabled=False)
        )

    @staticmethod
    def age(directory, order):
        """Force distinct mtimes so eviction order is deterministic."""
        for offset, name in enumerate(order):
            path = os.path.join(directory, f"{name}.json")
            os.utime(path, (1000.0 + offset, 1000.0 + offset))

    def test_oldest_evicted_beyond_cap(self, tmp_path):
        rec = self.recorder()
        for key in ("k1", "k2", "k3"):
            rec.postmortem("timeout", key, directory=str(tmp_path))
        self.age(str(tmp_path), ("k1", "k2", "k3"))
        rec.postmortem("timeout", "k4", directory=str(tmp_path),
                       max_files=2)
        left = sorted(p.name for p in tmp_path.glob("*.json"))
        assert left == ["k3.json", "k4.json"]

    def test_just_written_survives_even_with_coarse_mtime(self, tmp_path):
        rec = self.recorder()
        for key in ("k1", "k2"):
            rec.postmortem("timeout", key, directory=str(tmp_path))
        rec.postmortem("timeout", "k3", directory=str(tmp_path))
        # rank the fresh dump oldest: it must still not be the victim
        os.utime(tmp_path / "k3.json", (1.0, 1.0))
        self.age(str(tmp_path), ("k1", "k2"))
        rec._rotate(str(tmp_path), str(tmp_path / "k3.json"), 1,
                    MetricsRegistry(enabled=False))
        assert (tmp_path / "k3.json").exists()

    def test_eviction_counter_increments(self, tmp_path):
        reg = MetricsRegistry(enabled=True)
        rec = self.recorder(metrics=reg)
        for key in ("k1", "k2", "k3"):
            rec.postmortem("timeout", key, directory=str(tmp_path))
        self.age(str(tmp_path), ("k1", "k2", "k3"))
        rec.postmortem("timeout", "k4", directory=str(tmp_path),
                       max_files=2)
        counter = reg.counter("repro_postmortem_evictions_total")
        assert sum(value for _labels, value in counter.samples()) == 2

    def test_env_cap_and_disable(self, tmp_path, monkeypatch):
        from repro.obs import flightrec

        monkeypatch.setenv("REPRO_POSTMORTEM_CAP", "7")
        assert flightrec._postmortem_cap() == 7
        monkeypatch.setenv("REPRO_POSTMORTEM_CAP", "not-a-number")
        assert flightrec._postmortem_cap() == flightrec.DEFAULT_POSTMORTEM_CAP
        monkeypatch.delenv("REPRO_POSTMORTEM_CAP")
        assert flightrec._postmortem_cap() == flightrec.DEFAULT_POSTMORTEM_CAP
        # cap 0 disables rotation entirely
        rec = self.recorder()
        for key in ("k1", "k2", "k3"):
            rec.postmortem("timeout", key, directory=str(tmp_path),
                           max_files=0)
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_under_cap_touches_nothing(self, tmp_path):
        rec = self.recorder()
        rec.postmortem("timeout", "k1", directory=str(tmp_path),
                       max_files=10)
        assert (tmp_path / "k1.json").exists()
