"""Unit tests for hierarchy fill destinations and promotion paths."""


from repro.cache.hierarchy import CacheHierarchy, Level
from repro.common.config import CacheConfig, HierarchyConfig


def hierarchy():
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(256, 2, latency=1),
            l2=CacheConfig(1024, 2, latency=10),
            l3=CacheConfig(2048, 2, latency=50),
        )
    )


class TestFillDestinations:
    def test_l2_destined_fill_skips_l1(self):
        h = hierarchy()
        h.fill_from_memory(100, to_l1=False)
        assert not h.l1.contains(100)
        assert h.l2.contains(100)

    def test_l1_destined_fill_lands_in_both(self):
        h = hierarchy()
        h.fill_from_memory(100, to_l1=True)
        assert h.l1.contains(100)
        assert h.l2.contains(100)

    def test_l2_hit_promotes_to_l1(self):
        # the PS prefetcher's L2-edge line becomes an L1 line on use
        h = hierarchy()
        h.fill_from_memory(100, to_l1=False)
        result = h.access(100)
        assert result.level is Level.L2
        assert h.l1.contains(100)

    def test_second_access_is_l1_hit(self):
        h = hierarchy()
        h.fill_from_memory(100, to_l1=False)
        h.access(100)
        assert h.access(100).level is Level.L1


class TestDirtyPropagation:
    def test_dirty_bit_survives_l1_eviction(self):
        h = hierarchy()
        h.fill_from_memory(100)
        h.access(100, write=True)  # dirty in L1
        # evict 100 from its L1 set (2 ways): two conflicting fills
        h.fill_from_memory(102, to_l1=True)
        h.fill_from_memory(104, to_l1=True)
        assert not h.l1.contains(100)
        # the dirty copy must now be in L2 (write-back, not lost)
        assert h.l2.contains(100)

    def test_clean_lines_never_write_back(self):
        h = hierarchy()
        writebacks = []
        for i in range(64):  # stream far past total capacity
            result = h.access(1000 + i)
            writebacks += result.writebacks
            h.fill_from_memory(1000 + i)
        assert writebacks == []

    def test_dirty_lines_eventually_write_back(self):
        h = hierarchy()
        writebacks = []
        for i in range(64):
            result = h.access(1000 + i, write=True)
            writebacks += result.writebacks
        assert writebacks


class TestRefillSemantics:
    def test_refill_does_not_clear_dirty(self):
        h = hierarchy()
        h.access(100, write=True)  # write-validate: dirty in L1
        h.fill_from_memory(100)  # e.g. a racing prefetch fill
        # push it out and ensure the dirty bit survived
        h.fill_from_memory(102)
        h.fill_from_memory(104)
        assert h.l2.contains(100)
        # drive it all the way out of L2/L3 and count the write-back
        writebacks = []
        line = 106
        for _ in range(40):
            writebacks += h.fill_from_memory(line, to_l1=False)
            line += 2
        # either still resident somewhere or written back, never dropped
        resident = h.cached_anywhere(100)
        assert resident or 100 in writebacks
