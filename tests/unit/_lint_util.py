"""Shared plumbing for the analysislint test modules.

Fixture modules live in ``tests/lint_fixtures/`` as real files (so they
stay syntax-checked and readable), but the rules scope themselves to
``src/repro/<package>/`` paths — so tests *mount* fixture text at a
virtual relpath inside the simulated-machine packages.
"""

import functools
import os

from repro.analysislint.core import SourceFile, SourceTree, load_tree

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


def fixture_text(name):
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as handle:
        return handle.read()


def mount(*specs, root=None):
    """SourceTree from (fixture_filename, virtual_relpath) pairs."""
    tree = SourceTree(root=root or REPO_ROOT)
    for name, relpath in specs:
        tree.files.append(
            SourceFile(os.path.join(FIXTURES, name), relpath, fixture_text(name))
        )
    return tree


def mount_text(text, relpath, root=None):
    """SourceTree holding one in-line module at a virtual relpath."""
    tree = SourceTree(root=root or REPO_ROOT)
    tree.files.append(SourceFile(relpath, relpath, text))
    return tree


@functools.lru_cache(maxsize=1)
def real_tree():
    """The actual ``src/repro`` tree, parsed once per test session."""
    return load_tree(REPO_ROOT)
