"""DET rules: seeded-violation fixture flagged, real sim tree clean."""

import pytest

from repro.analysislint.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    UrandomRule,
    WallClockRule,
)
from tests.unit._lint_util import mount, mount_text, real_tree

FIXTURE = ("det_violations.py", "src/repro/controller/det_violations.py")


@pytest.fixture(scope="module")
def fixture_tree():
    return mount(FIXTURE)


class TestFixtureViolations:
    def test_wallclock_flagged(self, fixture_tree):
        findings = WallClockRule().check(fixture_tree)
        messages = [f.message for f in findings]
        assert len(findings) == 2  # time.time + perf_counter; monotonic waived
        assert any("time.time" in m for m in messages)
        assert any("time.perf_counter" in m for m in messages)
        assert all(f.symbol == "LeakyBlock.tick" for f in findings)

    def test_wallclock_waiver_respected(self, fixture_tree):
        findings = WallClockRule().check(fixture_tree)
        assert not any("time.monotonic" in f.message for f in findings)

    def test_unseeded_random_flagged_seeded_ok(self, fixture_tree):
        findings = UnseededRandomRule().check(fixture_tree)
        # exactly random.random() and random.randint(); the seeded
        # random.Random(42) instance on line 25 is not flagged
        assert sorted(f.line for f in findings) == [16, 17]

    def test_urandom_flagged(self, fixture_tree):
        findings = UrandomRule().check(fixture_tree)
        assert len(findings) == 1
        assert "os.urandom" in findings[0].message

    def test_set_iteration_flagged(self, fixture_tree):
        findings = SetIterationRule().check(fixture_tree)
        # attr bound to a set literal, set() constructor, {s} comprehension
        assert len(findings) == 3
        lines = {f.line for f in findings}
        text = fixture_tree.files[0].text.splitlines()
        for line in lines:  # every flagged line really iterates a set
            assert "DET004" in text[line - 1]


class TestScoping:
    def test_outside_sim_packages_ignored(self):
        tree = mount(("det_violations.py", "src/repro/analysis/figures.py"))
        assert WallClockRule().check(tree) == []
        assert SetIterationRule().check(tree) == []

    def test_telemetry_allowlisted_for_wallclock(self):
        # same wall-clock body mounted under the tracer is allowlisted
        tree = mount(("det_violations.py", "src/repro/telemetry/tracer.py"))
        assert WallClockRule().check(tree) == []

    def test_fabric_allowlisted_for_wallclock(self):
        # lease timers and heartbeats measure real elapsed time, so the
        # fabric package is wall-clock-allowlisted like telemetry/obs
        tree = mount(("det_violations.py", "src/repro/fabric/agent.py"))
        assert WallClockRule().check(tree) == []

    def test_sim_packages_still_fire_wallclock(self):
        # the fabric allowlist must not leak: the same body mounted
        # under a simulator package keeps firing DET001
        tree = mount(("det_violations.py", "src/repro/prefetch/agent.py"))
        findings = WallClockRule().check(tree)
        assert len(findings) == 2
        assert all(f.rule == "DET001" for f in findings)

    def test_from_import_random_detected(self):
        tree = mount_text(
            "from random import randint\n"
            "def pick(n):\n"
            "    return randint(0, n)\n",
            "src/repro/dram/pick.py",
        )
        findings = UnseededRandomRule().check(tree)
        assert len(findings) == 1
        assert findings[0].symbol == "pick"


class TestFastsimScope:
    """repro.fastsim is in the determinism scope (docs/fidelity.md):
    the analytic model feeds the same stores and plots as the
    simulator, so every DET rule must fire on a violating fastsim
    module exactly as it does under repro/controller/."""

    @pytest.fixture(scope="class")
    def fastsim_tree(self):
        return mount(("det_violations.py", "src/repro/fastsim/model_bad.py"))

    def test_det001_wallclock_fires(self, fastsim_tree):
        findings = WallClockRule().check(fastsim_tree)
        assert len(findings) == 2
        assert all(f.rule == "DET001" for f in findings)

    def test_det002_unseeded_random_fires(self, fastsim_tree):
        findings = UnseededRandomRule().check(fastsim_tree)
        assert sorted(f.line for f in findings) == [16, 17]
        assert all(f.rule == "DET002" for f in findings)

    def test_det003_urandom_fires(self, fastsim_tree):
        findings = UrandomRule().check(fastsim_tree)
        assert len(findings) == 1
        assert findings[0].rule == "DET003"

    def test_det004_set_iteration_fires(self, fastsim_tree):
        findings = SetIterationRule().check(fastsim_tree)
        assert len(findings) == 3
        assert all(f.rule == "DET004" for f in findings)


class TestRealTreeClean:
    @pytest.mark.parametrize(
        "rule_cls",
        [WallClockRule, UnseededRandomRule, UrandomRule, SetIterationRule],
    )
    def test_simulator_packages_pass(self, rule_cls):
        findings = rule_cls().check(real_tree())
        assert findings == [], [f.render() for f in findings]


class TestScenariosScope:
    """repro.scenarios is in the determinism scope: the fuzzer's
    contract is "same seed, same worst cases" and the trace loaders
    feed store-keyed benchmarks, so every DET rule must fire on a
    violating scenarios module exactly as under repro/controller/."""

    @pytest.fixture(scope="class")
    def scenarios_tree(self):
        return mount(("det_violations.py", "src/repro/scenarios/fuzzer_bad.py"))

    def test_det001_wallclock_fires(self, scenarios_tree):
        findings = WallClockRule().check(scenarios_tree)
        assert len(findings) == 2
        assert all(f.rule == "DET001" for f in findings)

    def test_det002_unseeded_random_fires(self, scenarios_tree):
        findings = UnseededRandomRule().check(scenarios_tree)
        assert sorted(f.line for f in findings) == [16, 17]
        assert all(f.rule == "DET002" for f in findings)

    def test_det003_urandom_fires(self, scenarios_tree):
        findings = UrandomRule().check(scenarios_tree)
        assert len(findings) == 1
        assert findings[0].rule == "DET003"

    def test_det004_set_iteration_fires(self, scenarios_tree):
        findings = SetIterationRule().check(scenarios_tree)
        assert len(findings) == 3
        assert all(f.rule == "DET004" for f in findings)
