"""Unit tests for the SLH figure utilities."""

import pytest

from repro.common.config import CacheConfig, HierarchyConfig, StreamFilterConfig, SystemConfig
from repro.experiments.slh_figures import filter_slh, mc_read_stream
from repro.workloads.trace import Trace


def tiny_config():
    return SystemConfig(
        hierarchy=HierarchyConfig(
            l1=CacheConfig(256, 2, latency=1),
            l2=CacheConfig(512, 2, latency=10),
            l3=CacheConfig(1024, 2, latency=50),
        )
    )


class TestMCReadStream:
    def test_cold_reads_pass_through(self):
        trace = Trace([(0, 100, False), (0, 200, False)])
        assert mc_read_stream(trace, tiny_config()) == [100, 200]

    def test_rereferenced_line_filtered(self):
        trace = Trace([(0, 100, False), (0, 100, False)])
        assert mc_read_stream(trace, tiny_config()) == [100]

    def test_stores_invisible(self):
        trace = Trace([(0, 100, True), (0, 200, False)])
        assert mc_read_stream(trace, tiny_config()) == [200]

    def test_order_preserved(self):
        lines = [10, 500, 20, 600, 30]
        trace = Trace([(0, line, False) for line in lines])
        assert mc_read_stream(trace, tiny_config()) == lines


class TestFilterSLH:
    def test_single_stream(self):
        bars = filter_slh([10, 11, 12, 13])
        assert bars[4] == pytest.approx(1.0)

    def test_isolated_reads(self):
        bars = filter_slh([10, 50, 90, 130])
        assert bars[1] == pytest.approx(1.0)

    def test_slot_pressure_splits_streams(self):
        # 1-slot filter with two interleaved streams: the second stream
        # can never allocate, so its reads record as length-1
        cfg = StreamFilterConfig(slots=1, lifetime_init=16,
                                 lifetime_increment=16, lifetime_cap=64)
        seq = [10, 500, 11, 501, 12, 502]
        bars = filter_slh(seq, cfg)
        assert bars[1] >= 0.5 - 1e-9

    def test_bars_normalised(self):
        bars = filter_slh([1, 2, 3, 100, 200, 201])
        assert abs(sum(bars[1:]) - 1.0) < 1e-9

    def test_empty_sequence(self):
        assert all(b == 0 for b in filter_slh([]))
