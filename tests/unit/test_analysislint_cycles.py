"""CYC001: clock writes must integrate, delegate, or carry a waiver."""

import pytest

from repro.analysislint.cycles import CycleAccountingRule
from tests.unit._lint_util import mount, mount_text, real_tree

FIXTURE = ("cycles_violation.py", "src/repro/system/cycles_violation.py")


@pytest.fixture(scope="module")
def findings():
    return CycleAccountingRule().check(mount(FIXTURE))


class TestFixture:
    def test_only_the_unaccounted_advance_is_flagged(self, findings):
        assert [f.symbol for f in findings] == ["DriftingClock.skip_ahead"]

    def test_message_names_the_variable_and_remedies(self, findings):
        message = findings[0].message
        assert "'now'" in message
        assert "ticks" in message
        assert "bulk_tick" in message

    def test_integral_writer_passes(self, findings):
        assert not any("fast_forward" in f.symbol for f in findings)

    def test_aliased_accounting_call_passes(self, findings):
        # controller_tick = self.controller.bulk_tick; controller_tick(span)
        assert not any("delegated_forward" in f.symbol for f in findings)

    def test_def_line_waiver_passes(self, findings):
        assert not any("peek_ahead" in f.symbol for f in findings)


class TestScoping:
    def test_init_clock_zeroing_exempt(self):
        tree = mount_text(
            "class Block:\n"
            "    def __init__(self):\n"
            "        self.now = 0\n",
            "src/repro/dram/block.py",
        )
        assert CycleAccountingRule().check(tree) == []

    def test_outside_sim_packages_ignored(self):
        tree = mount(("cycles_violation.py", "src/repro/analysis/clocks.py"))
        assert CycleAccountingRule().check(tree) == []

    def test_store_line_waiver(self):
        tree = mount_text(
            "class Block:\n"
            "    def jump(self, span):\n"
            "        self.now += span  # lint: no-integral\n",
            "src/repro/dram/block.py",
        )
        assert CycleAccountingRule().check(tree) == []


class TestRealTreeClean:
    def test_simulator_packages_pass(self):
        findings = CycleAccountingRule().check(real_tree())
        assert findings == [], [f.render() for f in findings]
