"""REG rules: key extraction, the committed registry, typo'd reads."""

import pytest

from repro.analysislint.registry import (
    DynamicKeyRule,
    RegistryRule,
    UnwrittenReadRule,
    build_registry,
    load_committed,
    render_registry,
)
from repro.analysislint.statsmodel import provenance_values
from tests.unit._lint_util import REPO_ROOT, mount, mount_text, real_tree

FIXTURE = ("registry_fixture.py", "src/repro/cache/registry_fixture.py")


@pytest.fixture(scope="module")
def fixture_tree():
    return mount(FIXTURE)


class TestExtraction:
    def test_literal_ifexp_and_pragma_keys(self, fixture_tree):
        model = build_registry(fixture_tree)
        assert {"observations", "hits", "misses"} <= model.keys
        assert "shape_" in model.prefixes  # f-string head + pragma

    def test_provenance_fstrings_expand_to_full_key_set(self):
        tree = mount_text(
            "class PB:\n"
            "    def hit(self, cmd):\n"
            "        self.stats.bump(f\"pb_hits_{cmd.provenance.value}\")\n",
            "src/repro/controller/pb.py",
        )
        model = build_registry(tree)
        assert model.keys == {f"pb_hits_{v}" for v in provenance_values()}

    def test_render_is_deterministic_and_parseable(self, fixture_tree):
        model = build_registry(fixture_tree)
        text = render_registry(model)
        assert text == render_registry(build_registry(fixture_tree))
        namespace = {}
        exec(compile(text, "stat_keys.py", "exec"), namespace)
        assert namespace["STAT_KEYS"] == frozenset(model.keys)
        assert set(namespace["STAT_KEY_PREFIXES"]) == model.prefixes
        assert namespace["is_known_stat_key"]("observations")
        assert namespace["is_known_stat_key"]("shape_square")
        assert not namespace["is_known_stat_key"]("observaitons")


class TestCommittedRegistry:
    def test_committed_file_matches_fresh_scan(self):
        """The acceptance-criteria diff check, as a test: regenerating
        ``repro/common/stat_keys.py`` must be a no-op."""
        findings = RegistryRule().check(real_tree())
        assert findings == [], [f.render() for f in findings]

    def test_committed_file_loads_and_covers_core_keys(self):
        keys, prefixes, merges = load_committed(REPO_ROOT)
        assert "ticks" in keys
        assert "occ_read_queue" in keys
        assert "lat_sum_" in prefixes
        assert "mc." in merges

    def test_missing_registry_is_one_clear_finding(self, tmp_path, fixture_tree):
        tree = mount(FIXTURE, root=str(tmp_path))
        findings = RegistryRule().check(tree)
        assert len(findings) == 1
        assert "--write-registry" in findings[0].message

    def test_stale_and_unregistered_keys_named(self, tmp_path):
        registry_dir = tmp_path / "src" / "repro" / "common"
        registry_dir.mkdir(parents=True)
        (registry_dir / "stat_keys.py").write_text(
            "STAT_KEYS = frozenset({'hits', 'ghost_key'})\n"
            "STAT_KEY_PREFIXES = ('shape_',)\n"
            "MERGE_PREFIXES = ()\n"
        )
        tree = mount(FIXTURE, root=str(tmp_path))
        messages = [f.message for f in RegistryRule().check(tree)]
        assert any("unregistered" in m and "observations" in m for m in messages)
        assert any("stale" in m and "ghost_key" in m for m in messages)


class TestDynamicKeys:
    def test_unwaived_dynamic_write_flagged(self, fixture_tree):
        findings = DynamicKeyRule().check(fixture_tree)
        assert [f.symbol for f in findings] == ["KeyedBlock.record"]
        assert "stats-dynamic" in findings[0].message

    def test_waived_dynamic_write_passes(self, fixture_tree):
        findings = DynamicKeyRule().check(fixture_tree)
        assert not any(f.symbol == "KeyedBlock.batched" for f in findings)

    def test_real_tree_clean(self):
        findings = DynamicKeyRule().check(real_tree())
        assert findings == [], [f.render() for f in findings]


class TestUnwrittenReads:
    def test_typo_read_flagged(self, fixture_tree):
        findings = UnwrittenReadRule().check(fixture_tree)
        assert len(findings) == 1
        assert "observaitons" in findings[0].message
        assert findings[0].symbol == "KeyedBlock.summarize"

    def test_merge_prefix_stripping(self):
        tree = mount_text(
            "class A:\n"
            "    def w(self):\n"
            "        self.stats.bump('issued')\n"
            "class B:\n"
            "    def fold(self, a):\n"
            "        self.stats.merge(a.stats, 'mc.')\n"
            "    def r(self):\n"
            "        return self.stats['mc.issued'], self.stats['mc.isued']\n",
            "src/repro/system/fold.py",
        )
        findings = UnwrittenReadRule().check(tree)
        assert len(findings) == 1
        assert "mc.isued" in findings[0].message

    def test_real_tree_clean(self):
        findings = UnwrittenReadRule().check(real_tree())
        assert findings == [], [f.render() for f in findings]
