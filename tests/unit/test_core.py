"""Unit tests for the trace-driven core model."""


from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DRAMConfig,
    HierarchyConfig,
    MemorySidePrefetcherConfig,
    ProcessorSidePrefetcherConfig,
)
from repro.controller.controller import MemoryController
from repro.cpu.core import Core
from repro.dram.device import DRAMDevice
from repro.prefetch.memory_side import MemorySidePrefetcher
from repro.prefetch.processor_side import ProcessorSidePrefetcher
from repro.workloads.trace import Trace


def build_core(records, ps_enabled=False, mlp=2, threads_records=None):
    hierarchy = CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(256, 2, latency=1),
            l2=CacheConfig(512, 2, latency=10),
            l3=CacheConfig(1024, 2, latency=50),
        )
    )
    ms = MemorySidePrefetcher(MemorySidePrefetcherConfig(enabled=False))
    controller = MemoryController(ControllerConfig(), DRAMDevice(DRAMConfig()), ms)
    ps = ProcessorSidePrefetcher(
        ProcessorSidePrefetcherConfig(enabled=ps_enabled, l1_lead=1, l2_lead=2, ramp=1)
    )
    traces = (
        [Trace(r) for r in threads_records]
        if threads_records
        else [Trace(records)]
    )
    core = Core(CoreConfig(mlp=mlp), hierarchy, ps, controller, traces)
    return core, controller


def drive(core, controller, limit=100_000):
    now = 0
    while not (core.done and controller.idle()):
        controller.tick(now)
        core.tick(now)
        now += 1
        if now > limit:
            raise AssertionError("core failed to finish")
    return now


class TestExecution:
    def test_empty_gap_trace_finishes(self):
        core, mc = build_core([(0, 100, False)])
        drive(core, mc)
        assert core.done

    def test_instruction_count(self):
        core, mc = build_core([(9, 100, False), (4, 200, False)])
        drive(core, mc)
        # gaps (9+4) plus one instruction per access
        assert core.retired_instructions == 15

    def test_pure_compute_time(self):
        # one access plus a long gap: time is dominated by the gap
        core, mc = build_core([(8000, 100, False)])
        cycles = drive(core, mc)
        assert cycles >= 8000 // CoreConfig().cpu_ratio

    def test_misses_issue_to_controller(self):
        core, mc = build_core([(0, 100, False), (0, 200, False)])
        drive(core, mc)
        assert mc.stats["reads_demand"] == 2

    def test_cache_hit_issues_nothing(self):
        core, mc = build_core([(0, 100, False), (0, 100, False)])
        drive(core, mc)
        assert mc.stats["reads_demand"] == 1

    def test_stores_do_not_read_memory(self):
        core, mc = build_core([(0, 100, True)])
        drive(core, mc)
        assert mc.stats["reads_demand"] == 0

    def test_mlp_blocks_at_limit(self):
        records = [(0, line * 10, False) for line in range(8)]
        core, mc = build_core(records, mlp=1)
        now = 0
        for now in range(3):
            mc.tick(now)
            core.tick(now)
        # with mlp=1 only one demand read can be outstanding
        assert mc.stats["reads_demand"] <= 1


class TestMerging:
    def test_duplicate_outstanding_line_not_reissued(self):
        core, mc = build_core([(0, 100, False), (0, 100, False)], mlp=4)
        drive(core, mc)
        assert mc.stats["reads_demand"] == 1
        assert core.stats["demand_merged"] >= 0  # second access hit after fill


class TestWritebackPath:
    def test_dirty_evictions_reach_controller(self):
        # write-validate many conflicting stores: dirty lines cascade out
        records = [(0, line * 2, True) for line in range(40)]
        core, mc = build_core(records)
        drive(core, mc)
        assert mc.stats["writes_arrived"] > 0


class TestPSIntegration:
    def test_ps_prefetches_reach_controller(self):
        records = [(0, 100 + i, False) for i in range(6)]
        core, mc = build_core(records, ps_enabled=True)
        drive(core, mc)
        assert mc.stats["reads_ps"] > 0

    def test_ps_fills_caches(self):
        records = [(20, 100 + i, False) for i in range(8)]
        core, mc = build_core(records, ps_enabled=True)
        drive(core, mc)
        assert core.stats["ps_fills"] > 0

    def test_ps_prefetch_reduces_demand_misses(self):
        records = [(30, 100 + i, False) for i in range(30)]
        base_core, base_mc = build_core(records, ps_enabled=False)
        drive(base_core, base_mc)
        ps_core, ps_mc = build_core(records, ps_enabled=True)
        drive(ps_core, ps_mc)
        assert ps_mc.stats["reads_demand"] < base_mc.stats["reads_demand"]


class TestSMT:
    def test_two_threads_finish(self):
        a = [(2, 100 + i, False) for i in range(5)]
        b = [(2, 9000 + 2 * i, False) for i in range(5)]
        core, mc = build_core(None, threads_records=[a, b])
        drive(core, mc)
        assert core.done
        assert mc.stats["reads_demand"] == 10

    def test_budget_split_between_threads(self):
        a = [(80, 100, False)]
        b = [(80, 9000, False)]
        core, mc = build_core(None, threads_records=[a, b])
        assert core.budget_per_thread == CoreConfig().cpu_ratio // 2


class TestFastForward:
    def test_pure_gap_state_is_skippable(self):
        core, mc = build_core([(10_000, 100, False)])
        core.tick(0)  # fetch the record, start consuming gap
        skip = core.skippable_ticks()
        assert skip > 1

    def test_not_skippable_when_blocked(self):
        core, mc = build_core([(0, 100, False), (0, 200, False)], mlp=1)
        for now in range(2):
            mc.tick(now)
            core.tick(now)
        assert core.skippable_ticks() == 0

    def test_consume_bulk_matches_manual_ticks(self):
        records = [(64_000, 100, False)]
        a, mc_a = build_core(list(records))
        a.tick(0)
        skip = a.skippable_ticks()
        a.consume_bulk(skip)
        b, mc_b = build_core(list(records))
        for now in range(skip + 1):
            b.tick(now)
        assert a.retired_instructions == b.retired_instructions
