"""PAR rules: divergent fixture flagged, real dual-path classes clean.

The satellite requirement this file pins: a fixture with a deliberately
divergent ``tick``/``tick_reference`` pair must be flagged, and the real
``MemoryController`` / ``MemorySidePrefetcher`` pairs must pass.
"""

import pytest

from repro.analysislint.parity import (
    BULK_PAIR,
    BulkTickParityRule,
    EventParityRule,
    StatsParityRule,
    _analyses,
    _class_pairs,
)
from tests.unit._lint_util import mount, mount_text, real_tree

DIVERGENT = ("parity_divergent.py", "src/repro/controller/parity_divergent.py")
CLEAN = ("parity_clean.py", "src/repro/controller/parity_clean.py")
BULK = ("par003_divergent.py", "src/repro/controller/par003_divergent.py")


class TestDivergentFixture:
    @pytest.fixture(scope="class")
    def tree(self):
        return mount(DIVERGENT)

    def test_stats_divergence_flagged(self, tree):
        findings = StatsParityRule().check(tree)
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "SkewedController"
        assert "only in tick: fast_only_counter" in f.message

    def test_event_divergence_flagged(self, tree):
        findings = EventParityRule().check(tree)
        assert len(findings) == 1
        assert "only in tick_reference: QueueDepthSample" in findings[0].message


class TestCleanFixture:
    @pytest.fixture(scope="class")
    def tree(self):
        return mount(CLEAN)

    def test_raw_alias_matches_bump(self, tree):
        """values["k"] += 1 on one path equals stats.bump("k") on the other."""
        assert StatsParityRule().check(tree) == []

    def test_helper_emit_matches_direct_emit(self, tree):
        """An emit inside a self._note() helper counts for its caller."""
        assert EventParityRule().check(tree) == []

    def test_pair_detection_sees_the_class(self, tree):
        pairs = _class_pairs(tree.files[0])
        assert [cls.name for cls, _ in pairs] == ["BalancedController"]


class TestBulkTickFixture:
    @pytest.fixture(scope="class")
    def tree(self):
        return mount(BULK)

    def test_integral_stats_divergence_flagged(self, tree):
        findings = BulkTickParityRule().check(tree)
        stats = [f for f in findings if "integral-stats" in f.message]
        assert len(stats) == 1
        assert stats[0].symbol == "SkippyController"
        assert "only in tick: occ_read" in stats[0].message
        # work counters are not integrals — they must not be reported
        assert "issued_reads" not in stats[0].message

    def test_event_divergence_flagged(self, tree):
        findings = BulkTickParityRule().check(tree)
        events = [f for f in findings if "tracer-event" in f.message]
        assert len(events) == 1
        assert "only in tick: IdleJump" in events[0].message

    def test_covering_controller_clean(self, tree):
        assert {f.symbol for f in BulkTickParityRule().check(tree)} == {
            "SkippyController"
        }

    def test_class_line_waiver_suppresses(self):
        tree = mount_text(
            "class SkewBulk:  # lint: waive=PAR003\n"
            "    def tick(self, now):\n"
            '        self.stats.bump("occ_read")\n'
            "\n"
            "    def bulk_tick(self, start, cycles):\n"
            "        pass\n",
            "src/repro/controller/waived_bulk.py",
        )
        assert BulkTickParityRule().check(tree) == []


class TestRealBulkTick:
    def test_real_fast_forward_pair_is_analyzed(self):
        names = {pa.cls.name for pa in _analyses(real_tree(), BULK_PAIR)}
        assert "MemoryController" in names

    def test_real_fast_forward_pair_passes(self):
        findings = BulkTickParityRule().check(real_tree())
        assert findings == [], [f.render() for f in findings]


class TestRealDualPathClasses:
    def test_known_pairs_are_analyzed(self):
        """The rule must actually be looking at the real dual-path classes —
        a clean pass over zero classes would prove nothing."""
        names = {pa.cls.name for pa in _analyses(real_tree())}
        assert "MemoryController" in names
        assert "MemorySidePrefetcher" in names

    def test_memory_controller_and_prefetcher_pass(self):
        for rule_cls in (StatsParityRule, EventParityRule):
            findings = rule_cls().check(real_tree())
            assert findings == [], [f.render() for f in findings]

    def test_real_paths_extract_nonempty_behaviour(self):
        """Guards against the scan silently extracting nothing and the
        parity check passing on empty-vs-empty sets."""
        by_name = {pa.cls.name: pa for pa in _analyses(real_tree())}
        mc = by_name["MemoryController"]
        assert mc.keys["tick"], "MemoryController.tick writes no visible keys?"
        assert mc.keys["tick"] == mc.keys["tick_reference"]
