"""PAR rules: divergent fixture flagged, real dual-path classes clean.

The satellite requirement this file pins: a fixture with a deliberately
divergent ``tick``/``tick_reference`` pair must be flagged, and the real
``MemoryController`` / ``MemorySidePrefetcher`` pairs must pass.
"""

import pytest

from repro.analysislint.parity import (
    EventParityRule,
    StatsParityRule,
    _analyses,
    _class_pairs,
)
from tests.unit._lint_util import mount, real_tree

DIVERGENT = ("parity_divergent.py", "src/repro/controller/parity_divergent.py")
CLEAN = ("parity_clean.py", "src/repro/controller/parity_clean.py")


class TestDivergentFixture:
    @pytest.fixture(scope="class")
    def tree(self):
        return mount(DIVERGENT)

    def test_stats_divergence_flagged(self, tree):
        findings = StatsParityRule().check(tree)
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "SkewedController"
        assert "only in tick: fast_only_counter" in f.message

    def test_event_divergence_flagged(self, tree):
        findings = EventParityRule().check(tree)
        assert len(findings) == 1
        assert "only in tick_reference: QueueDepthSample" in findings[0].message


class TestCleanFixture:
    @pytest.fixture(scope="class")
    def tree(self):
        return mount(CLEAN)

    def test_raw_alias_matches_bump(self, tree):
        """values["k"] += 1 on one path equals stats.bump("k") on the other."""
        assert StatsParityRule().check(tree) == []

    def test_helper_emit_matches_direct_emit(self, tree):
        """An emit inside a self._note() helper counts for its caller."""
        assert EventParityRule().check(tree) == []

    def test_pair_detection_sees_the_class(self, tree):
        pairs = _class_pairs(tree.files[0])
        assert [cls.name for cls, _ in pairs] == ["BalancedController"]


class TestRealDualPathClasses:
    def test_known_pairs_are_analyzed(self):
        """The rule must actually be looking at the real dual-path classes —
        a clean pass over zero classes would prove nothing."""
        names = {pa.cls.name for pa in _analyses(real_tree())}
        assert "MemoryController" in names
        assert "MemorySidePrefetcher" in names

    def test_memory_controller_and_prefetcher_pass(self):
        for rule_cls in (StatsParityRule, EventParityRule):
            findings = rule_cls().check(real_tree())
            assert findings == [], [f.render() for f in findings]

    def test_real_paths_extract_nonempty_behaviour(self):
        """Guards against the scan silently extracting nothing and the
        parity check passing on empty-vs-empty sets."""
        by_name = {pa.cls.name: pa for pa in _analyses(real_tree())}
        mc = by_name["MemoryController"]
        assert mc.keys["tick"], "MemoryController.tick writes no visible keys?"
        assert mc.keys["tick"] == mc.keys["tick_reference"]
