"""Lint infrastructure: config loading, severity levels, stale waivers,
baseline rename-stability, and fixture mounting.

These pin the ``[tool.repro.lint]`` plumbing (including the <=3.10
fallback TOML parser), the ``warn``/``off`` severity routing in the
runner, the stale-waiver reporting of full-catalogue runs, and the
path-free fingerprints that keep baselines stable across file renames.
"""

import dataclasses
import os

import pytest

from repro.analysislint.config import (
    DEFAULT_CONFIG,
    LintConfig,
    _parse_toml_subset,
    load_config,
)
from repro.analysislint.core import load_tree
from repro.analysislint.registry import write_registry
from repro.analysislint.runner import run_lint
from tests.unit._lint_util import FIXTURES, REPO_ROOT, mount, mount_text

#: a single seeded DET001 violation (wall-clock read in a sim package)
CLOCK_SRC = "import time\n\n\ndef now_cycles():\n    return time.time()\n"


def seed_repo(tmp_path, files):
    """A minimal repo root: the given files plus a committed stat-key
    registry (so the REG rule compares instead of reporting 'missing')."""
    root = str(tmp_path)
    for relpath, text in files.items():
        path = os.path.join(root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    os.makedirs(os.path.join(root, "src", "repro", "common"), exist_ok=True)
    write_registry(load_tree(root), root)
    return root


class TestConfigLoading:
    def test_repo_pyproject_matches_code_defaults(self):
        """The committed [tool.repro.lint] block mirrors DEFAULT_CONFIG —
        the contract that makes pyproject-less (fixture/narrowed) runs
        behave identically."""
        loaded = load_config(REPO_ROOT)
        assert loaded == DEFAULT_CONFIG

    def test_missing_root_or_file_falls_back(self, tmp_path):
        assert load_config(None) == DEFAULT_CONFIG
        assert load_config(str(tmp_path)) == DEFAULT_CONFIG

    def test_overlay_scope_severity_and_cap(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\n"
            "metric_label_cap = 5\n"
            "[tool.repro.lint.scope]\n"
            'fleet_packages = ["fabric"]\n'
            "[tool.repro.lint.severity]\n"
            'HYG001 = "warn"\n'
            'DET004 = "off"\n'
            'BAD001 = "loud"\n'  # invalid level: dropped
        )
        config = load_config(str(tmp_path))
        assert config.metric_label_cap == 5
        assert config.fleet_packages == ("fabric",)
        # untouched scopes keep their defaults
        assert config.sim_packages == DEFAULT_CONFIG.sim_packages
        assert config.rule_severity("HYG001") == "warn"
        assert config.rule_severity("DET004") == "off"
        assert config.rule_severity("BAD001") == "error"
        assert config.rule_severity("DET001") == "error"

    def test_malformed_pyproject_falls_back(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("this is not toml [at all\n")
        assert load_config(str(tmp_path)) == DEFAULT_CONFIG


class TestFallbackTomlParser:
    def test_parses_the_committed_pyproject(self):
        with open(os.path.join(REPO_ROOT, "pyproject.toml"), encoding="utf-8") as fh:
            doc = _parse_toml_subset(fh.read())
        lint = doc["tool"]["repro"]["lint"]
        assert lint["metric_label_cap"] == 3
        assert tuple(lint["scope"]["fleet_packages"]) == ("fabric", "obs")
        assert tuple(lint["allow"]["wallclock"]) == DEFAULT_CONFIG.wallclock_allowlist

    def test_agrees_with_tomllib_when_available(self):
        tomllib = pytest.importorskip("tomllib")
        with open(os.path.join(REPO_ROOT, "pyproject.toml"), encoding="utf-8") as fh:
            text = fh.read()
        subset = _parse_toml_subset(text)["tool"]["repro"]["lint"]
        full = tomllib.loads(text)["tool"]["repro"]["lint"]
        assert subset == full

    def test_junk_outside_lint_tables_is_skipped(self):
        doc = _parse_toml_subset(
            "[tool.ruff]\n"
            "select = [\n"
            '  "E4",\n'
            "]\n"
            "[tool.repro.lint]\n"
            "metric_label_cap = 2\n"
        )
        assert doc["tool"]["repro"]["lint"]["metric_label_cap"] == 2

    def test_multiline_array_inside_lint_table_raises(self):
        with pytest.raises(ValueError, match="single-line"):
            _parse_toml_subset(
                "[tool.repro.lint.scope]\n"
                "sim_packages = [\n"
                '  "cache",\n'
                "]\n"
            )


class TestSeverityRouting:
    def test_warn_reports_without_failing(self, tmp_path):
        root = seed_repo(tmp_path, {"src/repro/controller/clock.py": CLOCK_SRC})
        config = dataclasses.replace(DEFAULT_CONFIG, severity={"DET001": "warn"})
        result = run_lint(
            root=root, baseline_path=os.path.join(root, "bl.json"), config=config
        )
        assert result.ok
        assert [f.rule for f in result.warnings] == ["DET001"]
        assert "warning" in result.render()
        assert result.split.new == []

    def test_off_skips_the_rule_entirely(self, tmp_path):
        root = seed_repo(tmp_path, {"src/repro/controller/clock.py": CLOCK_SRC})
        config = dataclasses.replace(DEFAULT_CONFIG, severity={"DET001": "off"})
        result = run_lint(
            root=root, baseline_path=os.path.join(root, "bl.json"), config=config
        )
        assert result.ok
        assert result.warnings == []

    def test_default_severity_fails_check(self, tmp_path):
        root = seed_repo(tmp_path, {"src/repro/controller/clock.py": CLOCK_SRC})
        result = run_lint(root=root, baseline_path=os.path.join(root, "bl.json"))
        assert not result.ok
        assert [f.rule for f in result.split.new] == ["DET001"]


class TestStaleWaivers:
    def test_unused_waiver_reported(self, tmp_path):
        root = seed_repo(
            tmp_path,
            {"src/repro/controller/noop.py": "x = 1  # lint: resource-ok\n"},
        )
        result = run_lint(root=root, baseline_path=os.path.join(root, "bl.json"))
        assert result.stale_waivers == [
            ("src/repro/controller/noop.py", 1, "resource-ok")
        ]
        assert "stale waiver" in result.render()

    def test_used_waiver_not_reported(self, tmp_path):
        root = seed_repo(
            tmp_path,
            {
                "src/repro/controller/clock.py": CLOCK_SRC.replace(
                    "return time.time()",
                    "return time.time()  # lint: waive=DET001",
                )
            },
        )
        result = run_lint(root=root, baseline_path=os.path.join(root, "bl.json"))
        assert result.ok  # the waiver suppressed the finding...
        assert result.stale_waivers == []  # ...so it is not stale

    def test_narrowed_rule_runs_skip_collection(self, tmp_path):
        from repro.analysislint.determinism import WallClockRule

        root = seed_repo(
            tmp_path,
            {"src/repro/controller/noop.py": "x = 1  # lint: resource-ok\n"},
        )
        result = run_lint(
            root=root,
            rules=[WallClockRule()],
            baseline_path=os.path.join(root, "bl.json"),
        )
        assert result.stale_waivers == []

    def test_prose_mentioning_the_syntax_is_not_a_waiver(self):
        tree = mount_text(
            "#: docs may say ``# lint: resource-ok`` without waiving\n" "x = 1\n",
            "src/repro/fabric/docsy.py",
        )
        assert tree.files[0].waivers == {}


class TestBaselineRenameStability:
    def test_rename_keeps_findings_baselined(self, tmp_path):
        baseline = str(tmp_path / "bl.json")
        root = seed_repo(tmp_path, {"src/repro/controller/clock.py": CLOCK_SRC})
        run_lint(root=root, baseline_path=baseline, update_baseline=True)

        # move the offending file; the fingerprint must follow it
        old = os.path.join(root, "src", "repro", "controller", "clock.py")
        new = os.path.join(root, "src", "repro", "controller", "timebase.py")
        os.replace(old, new)
        result = run_lint(root=root, baseline_path=baseline)
        assert result.ok
        assert [f.rule for f in result.split.baselined] == ["DET001"]
        assert result.split.stale == []


class TestFixtureMounting:
    def test_every_fixture_parses_and_mounts(self):
        names = sorted(
            name
            for name in os.listdir(FIXTURES)
            if name.endswith(".py") and name != "__init__.py"
        )
        assert names, "lint_fixtures directory is empty?"
        for name in names:
            tree = mount((name, f"src/repro/controller/{name}"))
            assert tree.files[0].relpath == f"src/repro/controller/{name}"

    def test_mounted_relpath_drives_package_scoping(self):
        tree = mount(("det_violations.py", "src/repro/dram/det_violations.py"))
        assert tree.in_packages({"dram"}) == tree.files
        assert tree.in_packages({"fabric"}) == []

    def test_mount_text_root_override(self, tmp_path):
        tree = mount_text("x = 1\n", "src/repro/obs/t.py", root=str(tmp_path))
        assert tree.root == str(tmp_path)
        assert tree.get("src/repro/obs/t.py") is not None
