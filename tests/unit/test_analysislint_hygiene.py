"""HYG rules: slots on hot-path dataclasses, no datetime in sim code."""

import pytest

from repro.analysislint.hygiene import HotPathDatetimeRule, SlotsRule
from tests.unit._lint_util import mount, mount_text, real_tree

FIXTURE = ("hygiene_violation.py", "src/repro/prefetch/hygiene_violation.py")


@pytest.fixture(scope="module")
def fixture_tree():
    return mount(FIXTURE)


class TestSlots:
    def test_bare_dataclass_flagged(self, fixture_tree):
        findings = SlotsRule().check(fixture_tree)
        assert [f.symbol for f in findings] == ["LooseRecord"]
        assert "slots=True" in findings[0].message

    def test_slots_true_passes(self, fixture_tree):
        findings = SlotsRule().check(fixture_tree)
        assert not any(f.symbol == "TightRecord" for f in findings)

    def test_no_slots_waiver_passes(self, fixture_tree):
        findings = SlotsRule().check(fixture_tree)
        assert not any(f.symbol == "WaivedRecord" for f in findings)

    def test_slots_false_is_still_flagged(self):
        tree = mount_text(
            "from dataclasses import dataclass\n"
            "@dataclass(slots=False)\n"
            "class R:\n"
            "    x: int\n",
            "src/repro/controller/r.py",
        )
        assert [f.symbol for f in SlotsRule().check(tree)] == ["R"]

    def test_outside_hot_packages_ignored(self):
        # cpu is simulated but not hot-path: slots stays a suggestion there
        tree = mount(("hygiene_violation.py", "src/repro/cpu/records.py"))
        assert SlotsRule().check(tree) == []


class TestDatetime:
    def test_datetime_now_flagged(self, fixture_tree):
        findings = HotPathDatetimeRule().check(fixture_tree)
        assert len(findings) == 1
        assert findings[0].symbol == "StampingBlock.tick"
        assert "datetime" in findings[0].message

    def test_outside_sim_packages_ignored(self):
        tree = mount(("hygiene_violation.py", "src/repro/analysis/stamp.py"))
        assert HotPathDatetimeRule().check(tree) == []


class TestRealTreeClean:
    @pytest.mark.parametrize("rule_cls", [SlotsRule, HotPathDatetimeRule])
    def test_simulator_packages_pass(self, rule_cls):
        findings = rule_cls().check(real_tree())
        assert findings == [], [f.render() for f in findings]
