"""Unit tests for the trace format."""


import pytest

from repro.workloads.trace import Trace, TraceRecord


class TestTrace:
    def test_len_and_index(self):
        t = Trace([(1, 100, False), (2, 200, True)])
        assert len(t) == 2
        assert t[1] == TraceRecord(2, 200, True)

    def test_iteration_yields_records(self):
        t = Trace([(1, 100, False)])
        records = list(t)
        assert records == [TraceRecord(1, 100, False)]

    def test_instruction_count(self):
        t = Trace([(9, 100, False), (4, 200, False)])
        assert t.instructions == 15

    def test_unique_lines(self):
        t = Trace([(0, 1, False), (0, 1, True), (0, 2, False)])
        assert t.unique_lines == 2

    def test_write_fraction(self):
        t = Trace([(0, 1, False), (0, 2, True)])
        assert t.write_fraction == 0.5

    def test_write_fraction_empty(self):
        assert Trace([]).write_fraction == 0.0

    def test_save_load_roundtrip(self, tmp_path):
        t = Trace([(1, 100, False), (2, 200, True)], name="demo")
        path = tmp_path / "trace.txt"
        t.save(str(path))
        loaded = Trace.load(str(path), name="demo")
        assert loaded.records == t.records

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n3 42 1\n")
        loaded = Trace.load(str(path))
        assert loaded.records == [(3, 42, True)]


class TestLoadErrors:
    def test_malformed_record_names_file_line_and_text(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# header\n0 1 0\n7 8\n")
        with pytest.raises(ValueError) as err:
            Trace.load(str(path))
        message = str(err.value)
        assert str(path) in message
        assert ":3:" in message
        assert "'7 8'" in message

    def test_non_integer_field_names_offender(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("0 abc 1\n")
        with pytest.raises(ValueError, match="non-integer"):
            Trace.load(str(path))

    def test_negative_gap_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("0 1 0\n-3 2 0\n")
        with pytest.raises(ValueError) as err:
            Trace.load(str(path))
        message = str(err.value)
        assert "negative gap" in message
        assert ":2:" in message

    def test_load_limit_caps_records(self, tmp_path):
        path = tmp_path / "t.trace"
        Trace([(0, i, False) for i in range(10)]).save(str(path))
        assert len(Trace.load(str(path), limit=4)) == 4

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        original = Trace([(1, 100, False), (2, 200, True)], name="gz")
        original.save(str(path))
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        assert Trace.load(str(path)).records == original.records
