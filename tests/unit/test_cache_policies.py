"""Unit tests for the cache's replacement-policy selection."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import LRUPolicy, TreePLRUPolicy
from repro.common.config import CacheConfig, CacheConfig, HierarchyConfig


class TestPolicySelection:
    def test_default_is_lru(self):
        cache = Cache(CacheConfig(1024, 2, latency=1))
        assert isinstance(cache.policy, LRUPolicy)

    def test_tree_plru_selectable(self):
        cache = Cache(CacheConfig(1024, 2, latency=1, replacement="tree_plru"))
        assert isinstance(cache.policy, TreePLRUPolicy)

    def test_explicit_policy_wins(self):
        policy = TreePLRUPolicy(4, 2)
        cache = Cache(CacheConfig(1024, 2, latency=1), policy=policy)
        assert cache.policy is policy

    def test_invalid_replacement_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 2, latency=1, replacement="random").validate()


class TestPLRUBehaviour:
    def test_plru_cache_works_end_to_end(self):
        cache = Cache(CacheConfig(512, 4, latency=1, replacement="tree_plru"))
        for line in range(16):
            cache.fill(line)
        assert cache.occupancy <= 4

    def test_plru_hierarchy_simulates(self):
        from repro import Trace, make_config, simulate

        cfg = make_config("PMS")
        hier = HierarchyConfig(
            l1=CacheConfig(32 * 1024, 4, latency=1, replacement="tree_plru"),
            l2=CacheConfig(160 * 1024, 10, latency=13, replacement="tree_plru"),
            l3=CacheConfig(512 * 1024, 12, latency=90, replacement="tree_plru"),
        )
        cfg = cfg.derive(hierarchy=hier)
        trace = Trace([(0, (1 << 34) + i, False) for i in range(200)])
        result = simulate(cfg, trace)
        assert result.cycles > 0

    def test_plru_close_to_lru_on_streams(self):
        # on a pure streaming pattern both policies evict cold lines
        lru = Cache(CacheConfig(512, 4, latency=1))
        plru = Cache(CacheConfig(512, 4, latency=1, replacement="tree_plru"))
        for line in range(64):
            for cache in (lru, plru):
                if not cache.lookup(line):
                    cache.fill(line)
        assert lru.stats["hits"] == plru.stats["hits"] == 0
