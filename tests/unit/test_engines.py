"""Unit tests for the three memory-side prefetch engines."""

from dataclasses import replace


from repro.common.config import MemorySidePrefetcherConfig, SLHConfig
from repro.common.types import Direction
from repro.prefetch.engines import (
    ASDEngine,
    NextLineEngine,
    P5StyleEngine,
    build_engine,
)


def asd_config(**slh_kw):
    cfg = MemorySidePrefetcherConfig(enabled=True, engine="asd")
    if slh_kw:
        cfg = replace(cfg, slh=SLHConfig(**slh_kw))
    return cfg


class TestBuildEngine:
    def test_factory_dispatch(self):
        assert isinstance(build_engine(asd_config(), 1), ASDEngine)
        cfg = replace(asd_config(), engine="nextline")
        assert isinstance(build_engine(cfg, 1), NextLineEngine)
        cfg = replace(asd_config(), engine="p5")
        assert isinstance(build_engine(cfg, 1), P5StyleEngine)


class TestNextLine:
    def test_always_prefetches_next(self):
        engine = NextLineEngine(asd_config(), 1)
        assert engine.observe_read(100, 0, 0) == [101]
        assert engine.observe_read(500, 0, 1) == [501]

    def test_degree(self):
        cfg = replace(asd_config(), degree=3)
        engine = NextLineEngine(cfg, 1)
        assert engine.observe_read(100, 0, 0) == [101, 102, 103]


class TestP5Style:
    def test_needs_two_consecutive_reads(self):
        engine = P5StyleEngine(asd_config(), 1)
        assert engine.observe_read(100, 0, 0) == []
        assert engine.observe_read(101, 0, 1) == [102]

    def test_advance_continues(self):
        engine = P5StyleEngine(asd_config(), 1)
        engine.observe_read(100, 0, 0)
        engine.observe_read(101, 0, 1)
        assert engine.observe_read(102, 0, 2) == [103]

    def test_descending_confirmation(self):
        engine = P5StyleEngine(asd_config(), 1)
        engine.observe_read(100, 0, 0)
        assert engine.observe_read(99, 0, 1) == [98]

    def test_nonadjacent_reads_never_prefetch(self):
        engine = P5StyleEngine(asd_config(), 1)
        for i, line in enumerate((10, 50, 90, 130)):
            assert engine.observe_read(line, 0, i) == []

    def test_per_thread_isolation(self):
        engine = P5StyleEngine(asd_config(), 2)
        engine.observe_read(100, 0, 0)
        # thread 1 reading the adjacent line must not confirm thread 0's
        assert engine.observe_read(101, 1, 1) == []

    def test_stream_table_lru_eviction(self):
        engine = P5StyleEngine(asd_config(), 1)
        # confirm 9 streams; table holds 8
        for s in range(9):
            base = s * 1000
            engine.observe_read(base, 0, 0)
            engine.observe_read(base + 1, 0, 1)
        # the first stream was LRU-evicted: advancing it does nothing
        assert engine.observe_read(2, 0, 2) == []


class TestASD:
    def test_no_prefetch_in_first_epoch(self):
        # LHTcurr is empty until the first rollover
        engine = ASDEngine(asd_config(epoch_reads=1000), 1)
        out = []
        for line in range(100, 120):
            out += engine.observe_read(line, 0, line)
        assert out == []

    def test_prefetches_after_learning_streams(self):
        engine = ASDEngine(asd_config(epoch_reads=100), 1)
        # teach it long ascending streams
        line = 0
        for _ in range(30):
            for _ in range(8):
                engine.observe_read(line, 0, line)
                line += 1
            line += 100
        engine.epoch_flush()
        out = engine.observe_read(10_000, 0, 99_999)
        assert out == [10_001]

    def test_descending_direction_prefetch(self):
        engine = ASDEngine(asd_config(epoch_reads=100), 1)
        line = 100_000
        for _ in range(30):
            for _ in range(8):
                engine.observe_read(line, 0, 100_000 - line)
                line -= 1
            line -= 100
        engine.epoch_flush()
        # a new descending stream: observe two reads downward
        engine.observe_read(500, 0, 999_000)
        out = engine.observe_read(499, 0, 999_001)
        assert out == [498]

    def test_length_one_workload_suppresses(self):
        engine = ASDEngine(asd_config(epoch_reads=100), 1)
        for i in range(300):
            engine.observe_read(i * 1000, 0, i)
        engine.epoch_flush()
        out = []
        for i in range(300, 330):
            out += engine.observe_read(i * 1000, 0, i)
        assert out == []

    def test_epoch_flush_resets_filters(self):
        engine = ASDEngine(asd_config(epoch_reads=100), 1)
        engine.observe_read(100, 0, 0)
        engine.observe_read(101, 0, 1)
        engine.epoch_flush()
        assert engine.filters[0].occupancy == 0
        # the flushed streams were credited to the (now-current) tables
        assert engine.tables[0][Direction.ASCENDING].curr[1] == 2

    def test_per_thread_tables(self):
        engine = ASDEngine(asd_config(epoch_reads=100), 2)
        engine.observe_read(100, 0, 0)
        engine.observe_read(101, 0, 1)
        engine.epoch_flush()
        asc0 = engine.tables[0][Direction.ASCENDING].curr[1]
        asc1 = engine.tables[1][Direction.ASCENDING].curr[1]
        assert asc0 == 2
        assert asc1 == 0

    def test_multi_line_degree(self):
        cfg = replace(asd_config(epoch_reads=100), degree=2)
        engine = ASDEngine(cfg, 1)
        line = 0
        for _ in range(30):
            for _ in range(8):
                engine.observe_read(line, 0, line)
                line += 1
            line += 100
        engine.epoch_flush()
        out = engine.observe_read(50_000, 0, 99_999)
        assert out == [50_001, 50_002]
