"""Unit tests for analysis.metrics and analysis.report."""

import pytest

from repro.analysis.metrics import compare_runs, power_energy_rows
from repro.analysis.report import format_bar_chart, format_table
from repro.dram.power import PowerReport
from repro.system.results import RunResult


def result(cycles, power_mw=100.0, energy=100.0):
    return RunResult(
        config_name="x",
        benchmark="b",
        cycles=cycles,
        instructions=1000,
        cpu_ratio=8,
        power=PowerReport(1, energy, power_mw, 0, 0, energy),
    )


class TestCompareRuns:
    def runs(self):
        return {
            "b": {
                "NP": result(1000),
                "PS": result(800),
                "MS": result(900),
                "PMS": result(750),
            }
        }

    def test_gains(self):
        suite = compare_runs("demo", self.runs())
        row = suite.rows[0]
        assert row.pms_vs_np == pytest.approx(1000 / 750 * 100 - 100)
        assert row.ms_vs_np == pytest.approx(1000 / 900 * 100 - 100)
        assert row.pms_vs_ps == pytest.approx(800 / 750 * 100 - 100)

    def test_averages(self):
        suite = compare_runs("demo", self.runs())
        assert suite.avg_pms_vs_np == suite.rows[0].pms_vs_np

    def test_missing_config_raises(self):
        runs = self.runs()
        del runs["b"]["MS"]
        with pytest.raises(KeyError):
            compare_runs("demo", runs)


class TestPowerRows:
    def test_rows(self):
        runs = {
            "b": {"PS": result(1000, 100, 100), "PMS": result(900, 103, 92)}
        }
        rows = power_energy_rows(runs)
        assert rows[0]["power_increase_pct"] == pytest.approx(3.0)
        assert rows[0]["energy_reduction_pct"] == pytest.approx(8.0)


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["name", "v"], [["a", 1.234], ["bb", 20.0]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in out
        assert "20.0" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"


class TestBarChart:
    def test_bars_scale(self):
        out = format_bar_chart({"a": 10.0, "b": 20.0}, width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("#") == 10
        assert a_line.count("#") == 5

    def test_empty(self):
        assert format_bar_chart({}, title="t") == "t"

    def test_negative_values_render(self):
        out = format_bar_chart({"a": -5.0})
        assert "-5.0" in out
