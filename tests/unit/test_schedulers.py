"""Unit tests for the reorder-queue schedulers."""

import pytest

from repro.common.config import DRAMConfig
from repro.common.types import CommandKind, MemoryCommand
from repro.controller.schedulers import (
    AHBScheduler,
    InOrderScheduler,
    MemorylessScheduler,
    build_scheduler,
)
from repro.controller.schedulers.base import Scheduler
from repro.dram.device import DRAMDevice


def read(line, arrival=0):
    return MemoryCommand(CommandKind.READ, line, arrival=arrival)


def device(banks=4):
    return DRAMDevice(DRAMConfig(ranks=1, banks_per_rank=banks))


class TestFactory:
    def test_known_names(self):
        assert isinstance(build_scheduler("in_order"), InOrderScheduler)
        assert isinstance(build_scheduler("memoryless"), MemorylessScheduler)
        assert isinstance(build_scheduler("ahb"), AHBScheduler)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_scheduler("fancy")


class TestInOrder:
    def test_oldest_first_regardless_of_readiness(self):
        dev = device()
        dev.try_issue(read(0), 0)  # bank 0 busy
        old, new = read(0, arrival=1), read(1, arrival=2)
        picked = InOrderScheduler().select([new, old], dev, now=1)
        assert picked is old

    def test_empty(self):
        assert InOrderScheduler().select([], device(), 0) is None


class TestMemoryless:
    def test_prefers_ready_command(self):
        dev = device()
        dev.try_issue(read(0), 0)  # bank 0 busy
        blocked, ready = read(0, arrival=1), read(1, arrival=2)
        picked = MemorylessScheduler().select([blocked, ready], dev, now=1)
        assert picked is ready

    def test_prefers_row_hit_among_ready(self):
        cfg = DRAMConfig(ranks=1, banks_per_rank=2, row_lines=4)
        dev = DRAMDevice(cfg)
        r = dev.try_issue(read(0), 0)
        now = r.completion + 1
        row_hit = read(2, arrival=5)  # bank 0, same row
        row_empty = read(1, arrival=1)  # bank 1, must activate
        picked = MemorylessScheduler().select([row_empty, row_hit], dev, now)
        assert picked is row_hit

    def test_falls_back_to_oldest_when_none_ready(self):
        dev = device(banks=1)
        dev.try_issue(read(0), 0)
        a, b = read(0, arrival=3), read(0, arrival=1)
        picked = MemorylessScheduler().select([a, b], dev, now=1)
        assert picked is b


class TestAHB:
    def test_prefers_unvisited_bank(self):
        dev = device()
        sched = AHBScheduler()
        first = sched.select([read(0, 0), read(1, 0)], dev, 0)
        result = dev.try_issue(first, 0)
        sched.notify_issue(first, dev)
        now = result.completion + 1
        # row hit outweighs bank history; make both row-empty instead
        cands = [
            read(first.line + 400, arrival=0),  # same bank, new row
            read(first.line + 401, arrival=0),  # different bank, new row
        ]
        picked = sched.select(cands, dev, now)
        assert picked.line == first.line + 401

    def test_age_breaks_ties(self):
        dev = device()
        sched = AHBScheduler()
        a, b = read(0, arrival=1), read(4, arrival=2)  # same bank
        assert sched.select([b, a], dev, 0) is a

    def test_has_issuable_helper(self):
        dev = device(banks=1)
        assert Scheduler.has_issuable([read(0)], dev, 0)
        dev.try_issue(read(0), 0)
        assert not Scheduler.has_issuable([read(0)], dev, 1)
