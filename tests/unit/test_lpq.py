"""Unit tests for the Low Priority Queue."""

import pytest

from repro.common.types import CommandKind, MemoryCommand, Provenance
from repro.prefetch.lpq import LowPriorityQueue


def pf(line, arrival=0):
    return MemoryCommand(
        CommandKind.READ, line, provenance=Provenance.MS_PREFETCH, arrival=arrival
    )


class TestPushPop:
    def test_fifo_order(self):
        q = LowPriorityQueue(3)
        q.push(pf(1))
        q.push(pf(2))
        assert q.pop().line == 1
        assert q.pop().line == 2

    def test_head_peeks(self):
        q = LowPriorityQueue(3)
        q.push(pf(7))
        assert q.head().line == 7
        assert len(q) == 1

    def test_empty_head_is_none(self):
        assert LowPriorityQueue(3).head() is None

    def test_full_drops(self):
        q = LowPriorityQueue(2)
        assert q.push(pf(1))
        assert q.push(pf(2))
        assert not q.push(pf(3))
        assert q.stats["dropped_full"] == 1

    def test_duplicate_line_dropped(self):
        q = LowPriorityQueue(3)
        q.push(pf(1))
        assert not q.push(pf(1))
        assert q.stats["dropped_duplicate"] == 1

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            LowPriorityQueue(0)


class TestSquash:
    def test_drop_line_removes_pending(self):
        q = LowPriorityQueue(3)
        q.push(pf(1))
        q.push(pf(2))
        assert q.drop_line(1)
        assert q.head().line == 2
        assert not q.contains_line(1)

    def test_drop_absent_line(self):
        assert not LowPriorityQueue(3).drop_line(9)

    def test_line_reusable_after_pop(self):
        q = LowPriorityQueue(3)
        q.push(pf(1))
        q.pop()
        assert q.push(pf(1))

    def test_full_property(self):
        q = LowPriorityQueue(1)
        assert not q.full
        q.push(pf(1))
        assert q.full
