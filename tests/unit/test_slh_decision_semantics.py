"""Semantic tests: the LHT decision equals the probabilistic statement.

The paper derives inequality (5) from "P(stream has exactly length k)
< P(stream longer than k)".  These tests verify the implementation
against that probability statement computed independently from a
stream population.
"""

import random

import pytest

from repro.common.config import SLHConfig
from repro.prefetch.slh import LikelihoodTables


def tables_from_population(lengths, lm=16):
    t = LikelihoodTables(SLHConfig(table_len=lm, epoch_reads=10**6))
    for length in lengths:
        t.record_stream(length)
    t.rollover()
    return t


def read_mass_exactly(lengths, k, lm=16):
    """Reads belonging to streams of exactly length k (k=lm: >= lm)."""
    if k == lm:
        return sum(n for n in lengths if n >= lm)
    return sum(n for n in lengths if n == k)


def read_mass_longer(lengths, k):
    return sum(n for n in lengths if n > k)


class TestProbabilityEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_decision_matches_population_probability(self, seed):
        rng = random.Random(seed)
        lengths = [rng.randint(1, 14) for _ in range(200)]
        t = tables_from_population(lengths)
        for k in range(1, 15):
            exactly = read_mass_exactly(lengths, k)
            longer = read_mass_longer(lengths, k)
            assert t.should_prefetch(k) == (exactly < longer), (seed, k)

    def test_paper_fig2_decisions(self):
        # construct a population matching Figure 2's bar percentages
        # (x10 streams of each length so read mass matches the bars)
        lengths = (
            [1] * 218 + [2] * 218 + [3] * 20 + [4] * 12 + [5] * 8
            + [6] * 7 + [7] * 7 + [16] * 11
        )
        t = tables_from_population(lengths)
        # paper: prefetch at k=1, stop at k=2
        assert t.should_prefetch(1)
        assert not t.should_prefetch(2)

    def test_all_same_length_population(self):
        t = tables_from_population([5] * 50)
        # before the stream's end: always continue
        for k in range(1, 5):
            assert t.should_prefetch(k)
        # at the known end: stop
        assert not t.should_prefetch(5)

    def test_uniform_lengths_cutoff(self):
        # equal stream counts of lengths 1..8: read mass is triangular,
        # so prefetch while the remaining triangle outweighs level k
        lengths = list(range(1, 9)) * 30
        t = tables_from_population(lengths)
        expected = [
            read_mass_exactly(lengths, k) < read_mass_longer(lengths, k)
            for k in range(1, 9)
        ]
        actual = [t.should_prefetch(k) for k in range(1, 9)]
        assert actual == expected
