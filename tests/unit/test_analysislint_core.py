"""Walker core, waivers/pragmas, baseline, and reporters."""

import json
import textwrap

from repro.analysislint.baseline import (
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.analysislint.core import Finding, SourceFile
from repro.analysislint.report import render_json, render_text
from repro.analysislint.rules import all_rules, rule_titles
from tests.unit._lint_util import REPO_ROOT, real_tree


def _sf(text):
    return SourceFile("mod.py", "src/repro/controller/mod.py", textwrap.dedent(text))


class TestWaivers:
    def test_bare_shorthand_and_waive_form(self):
        sf = _sf(
            """\
            a = 1  # lint: no-integral
            b = 2  # lint: waive=CYC001
            c = 3  # unrelated comment
            """
        )
        assert sf.waived(1, "CYC001", "no-integral")
        assert sf.waived(2, "CYC001", "no-integral")
        assert not sf.waived(3, "CYC001", "no-integral")
        # shorthand never leaks across rules, waive= is rule-exact
        assert not sf.waived(2, "DET001")

    def test_multiline_node_span_is_checked(self):
        sf = _sf(
            """\
            x = compute(
                1,
            )  # lint: waive=DET001
            """
        )
        node = sf.tree.body[0]
        assert sf.waived(node, "DET001")

    def test_pragma_parsing(self):
        sf = _sf("# lint: stat-prefixes(lat_sum_, lat_cnt_)\n")
        assert len(sf.pragmas) == 1
        pragma = sf.pragmas[0]
        assert pragma.name == "stat-prefixes"
        assert pragma.args == ("lat_sum_", "lat_cnt_")
        assert not sf.waivers  # a pragma is not a waiver

    def test_qualname_nesting(self):
        sf = _sf(
            """\
            class Outer:
                def method(self):
                    return 1
            """
        )
        func = sf.tree.body[0].body[0]
        assert sf.qualname(func) == "Outer.method"


class TestFinding:
    def test_fingerprint_ignores_line_numbers(self):
        a = Finding("DET001", "src/repro/x.py", 10, "msg", "Cls.tick")
        b = Finding("DET001", "src/repro/x.py", 99, "msg", "Cls.tick")
        assert a.fingerprint() == b.fingerprint()
        assert a.as_dict()["fingerprint"] == a.fingerprint()

    def test_render_mentions_waiver(self):
        f = Finding("CYC001", "p.py", 3, "msg", "fn", waiver_hint="no-integral")
        assert "# lint: no-integral" in f.render()


class TestBaseline:
    def test_round_trip_and_split(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        old = Finding("DET001", "a.py", 1, "old finding", "f")
        gone = Finding("DET002", "b.py", 2, "since fixed", "g")
        save_baseline(path, [old, gone])
        assert set(load_baseline(path)) == {old.fingerprint(), gone.fingerprint()}

        new = Finding("DET003", "c.py", 3, "fresh", "h")
        split = split_against_baseline([old, new], load_baseline(path))
        assert split.new == [new]
        assert split.baselined == [old]
        assert split.stale == [gone.fingerprint()]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == []


class TestReporters:
    def _split(self):
        new = Finding("DET001", "a.py", 1, "new one", "f")
        old = Finding("DET002", "b.py", 2, "old one", "g")
        return split_against_baseline([new, old], {old.fingerprint(), "ghost"})

    def test_text_report_sections(self):
        text = render_text(self._split(), checked_files=5)
        assert "new one" in text
        assert "old one" in text
        assert "1 new finding" in text

    def test_json_report_parses(self):
        data = json.loads(render_json(self._split(), checked_files=5))
        assert data["files"] == 5
        assert len(data["new"]) == 1
        assert data["new"][0]["rule"] == "DET001"
        assert len(data["baselined"]) == 1
        assert data["stale_baseline"] == ["ghost"]


class TestCatalogue:
    def test_rule_ids_unique_and_titled(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert len(ids) == len(set(ids))
        titles = rule_titles()
        for rule in rules:
            assert rule.id and titles[rule.id] == rule.title

    def test_load_tree_is_deterministic_and_repo_relative(self):
        from repro.analysislint.core import load_tree

        tree = real_tree()
        relpaths = [sf.relpath for sf in tree]
        # a second scan visits the same files in the same order
        assert [sf.relpath for sf in load_tree(REPO_ROOT)] == relpaths
        assert all(not p.startswith("/") for p in relpaths)
        assert tree.root == REPO_ROOT
        assert tree.get("src/repro/common/stats.py") is not None
