"""Unit tests: per-thread isolation of the memory-side engines.

The paper's SMT argument rests on the locality-identification state
being replicated per hardware thread — one thread's streams must never
train or pollute another thread's tables.
"""



from repro.common.config import MemorySidePrefetcherConfig, SLHConfig
from repro.common.types import CommandKind, MemoryCommand
from repro.prefetch.engines import ASDEngine
from repro.prefetch.memory_side import MemorySidePrefetcher


def asd(threads, epoch=60):
    cfg = MemorySidePrefetcherConfig(
        enabled=True, engine="asd", slh=SLHConfig(epoch_reads=epoch)
    )
    return ASDEngine(cfg, threads)


def train(engine, thread, streams=30, length=8, base=0):
    line = base
    for _ in range(streams):
        for _ in range(length):
            engine.observe_read(line, thread, 0)
            line += 1
        line += 100
    engine.epoch_flush()
    return line


class TestThreadIsolation:
    def test_training_does_not_leak_across_threads(self):
        engine = asd(threads=2)
        train(engine, thread=0)
        # thread 1 saw nothing: its tables must suppress
        assert engine.observe_read(10_000_000, 1, 0) == []
        # thread 0 prefetches
        assert engine.observe_read(20_000_000, 0, 0) == [20_000_001]

    def test_filters_are_per_thread(self):
        engine = asd(threads=2)
        engine.observe_read(100, 0, 0)
        # the adjacent line on the other thread starts a fresh stream
        engine.observe_read(101, 1, 0)
        assert engine.filters[0].lengths() == [1]
        assert engine.filters[1].lengths() == [1]

    def test_read_clocks_independent(self):
        engine = asd(threads=2)
        # thread 1 ages only with its own reads
        engine.observe_read(100, 0, 0)
        for i in range(50):
            engine.observe_read(i * 1000, 1, 0)
        # thread 0's slot is still alive (its clock saw one read)
        engine.observe_read(101, 0, 0)
        assert 2 in engine.filters[0].lengths()


class TestMemorySideThreads:
    def test_commands_route_to_their_thread(self):
        ms = MemorySidePrefetcher(
            MemorySidePrefetcherConfig(enabled=True, engine="asd",
                                       slh=SLHConfig(epoch_reads=60)),
            threads=2,
        )
        line = 0
        for _ in range(30):
            for _ in range(8):
                ms.observe_read(
                    MemoryCommand(CommandKind.READ, line, thread=0), 0, 0
                )
                line += 1
            line += 100
        # the shared epoch counter flushed thread-0 training at 240 reads
        out_before = ms.stats["generated"]
        ms.observe_read(
            MemoryCommand(CommandKind.READ, 10_000_000, thread=1), 0, 0
        )
        assert ms.stats["generated"] == out_before  # thread 1 untrained
