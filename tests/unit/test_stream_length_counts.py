"""Unit tests for the Figure 12 stream counter."""


from repro.experiments.stream_lengths import stream_length_counts


class TestCounting:
    def test_single_stream(self):
        assert stream_length_counts([5, 6, 7]) == {3: 1}

    def test_isolated_lines(self):
        assert stream_length_counts([5, 50, 500]) == {1: 3}

    def test_mixture(self):
        counts = stream_length_counts([5, 6, 100, 200, 201, 202])
        assert counts == {2: 1, 1: 1, 3: 1}

    def test_descending(self):
        assert stream_length_counts([9, 8, 7, 6]) == {4: 1}

    def test_interleaved(self):
        counts = stream_length_counts([1, 100, 2, 101, 3, 102])
        assert counts == {3: 2}

    def test_window_splits(self):
        seq = [1] + [1000 + i * 5 for i in range(80)] + [2]
        counts = stream_length_counts(seq, window=8)
        # the distant continuation is a new stream
        assert counts.get(2, 0) == 0

    def test_empty(self):
        assert stream_length_counts([]) == {}

    def test_total_reads_conserved(self):
        seq = [1, 2, 3, 50, 51, 99, 200, 201, 202, 203]
        counts = stream_length_counts(seq)
        assert sum(length * n for length, n in counts.items()) == len(seq)

    def test_direction_flip_not_double_counted(self):
        # 10, 9 is one descending stream of length 2
        assert stream_length_counts([10, 9]) == {2: 1}
