"""API stability tests: the documented public surface exists and is
importable, and public items carry documentation."""

import importlib
import inspect
import pkgutil

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_names(self):
        # the names used in README/docstring examples
        for name in ("make_config", "generate_trace", "get_profile", "simulate"):
            assert name in repro.__all__

    def test_config_names_exported(self):
        from repro import SystemConfig

        cfg = SystemConfig()
        assert cfg.validate() is cfg


def _public_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        out.append(info.name)
    return out


class TestDocumentation:
    @pytest.mark.parametrize("module_name", _public_modules())
    def test_every_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", _public_modules())
    def test_public_classes_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != module_name:
                continue  # re-export
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    @pytest.mark.parametrize("module_name", _public_modules())
    def test_public_functions_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if obj.__module__ != module_name:
                continue
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
