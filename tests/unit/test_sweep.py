"""Unit tests for the parallel sweep engine's plumbing and robustness.

The crashing/hanging worker stubs below must be module-level functions
so they pickle across the process boundary.
"""

import os
import time

import pytest

from repro.experiments import runner, store, sweep

ACCESSES = 900


@pytest.fixture(autouse=True)
def clean():
    runner.clear_cache()
    yield
    runner.clear_cache()


def crashing_worker(payload, config):
    """Simulates a hard worker death (segfault/OOM-kill analogue)."""
    os._exit(13)


def hanging_worker(payload, config):
    """Never finishes within any reasonable per-job timeout."""
    time.sleep(60)


class TestJob:
    def test_resolve_fills_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_ACCESSES", "3333")
        monkeypatch.setenv("REPRO_SEED", "7")
        job = sweep.Job("tpcc", "NP").resolve()
        assert job.accesses == 3333
        assert job.seed == 7

    def test_resolve_keeps_explicit_values(self):
        job = sweep.Job("tpcc", "NP", accesses=500, seed=3).resolve()
        assert (job.accesses, job.seed) == (500, 3)

    def test_resolve_rejects_zero_accesses(self):
        with pytest.raises(ValueError, match="positive"):
            sweep.Job("tpcc", "NP", accesses=0).resolve()

    def test_resolve_rejects_mutate_key(self):
        # Workers cannot apply mutate callables; accepting the key would
        # cache an unmutated result under a mutated identity.
        with pytest.raises(ValueError, match="mutate_key"):
            sweep.Job("tpcc", "NP", mutate_key="pb_entries=32").resolve()

    def test_run_jobs_rejects_mutate_key(self):
        with pytest.raises(ValueError, match="mutate_key"):
            sweep.run_jobs(
                [sweep.Job("tonto", "NP", accesses=ACCESSES,
                           mutate_key="pb_entries=32")]
            )


class TestServing:
    def test_serial_executes_and_stores(self):
        out = sweep.run_jobs([sweep.Job("tonto", "NP", accesses=ACCESSES)])
        assert out.stats.executed_serial == 1
        assert out.results[0].benchmark == "tonto"
        assert len(store.get_store()) == 1

    def test_second_call_is_served_from_cache(self):
        spec = [sweep.Job("tonto", "NP", accesses=ACCESSES)]
        first = sweep.run_jobs(spec)
        second = sweep.run_jobs(spec)
        assert second.stats.from_cache == 1
        assert second.results[0] is first.results[0]

    def test_cold_process_is_served_from_store(self):
        spec = [sweep.Job("tonto", "NP", accesses=ACCESSES)]
        first = sweep.run_jobs(spec)
        runner.clear_cache()  # "new session"
        second = sweep.run_jobs(spec)
        assert second.stats.from_store == 1
        assert second.results[0] == first.results[0]
        assert runner.cache_info()["simulated"] == 0

    def test_no_store_option(self):
        sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)], use_store=False
        )
        assert len(store.get_store()) == 0

    def test_results_align_with_specs(self):
        specs = [
            sweep.Job("tonto", "NP", accesses=ACCESSES),
            sweep.Job("milc", "NP", accesses=ACCESSES),
            sweep.Job("tonto", "PS", accesses=ACCESSES),
        ]
        out = sweep.run_jobs(specs)
        assert [(r.benchmark, r.config_name) for r in out.results] == [
            ("tonto", "NP"), ("milc", "NP"), ("tonto", "PS")
        ]


class TestRobustness:
    def test_crashing_worker_falls_back_to_serial(self):
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2,
            retries=1,
            worker=crashing_worker,
        )
        assert out.results[0].benchmark == "tonto"
        assert out.stats.pool_failures >= 1
        assert out.stats.retries == 1
        assert out.stats.executed_serial == 1
        assert out.stats.executed_parallel == 0

    def test_crash_retry_budget_is_bounded(self):
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2,
            retries=3,
            worker=crashing_worker,
        )
        assert out.stats.retries == 3
        assert out.results[0] is not None

    def test_hanging_worker_times_out_to_serial(self):
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2,
            timeout=0.5,
            worker=hanging_worker,
        )
        assert out.stats.timeouts == 1
        assert out.stats.executed_serial == 1
        assert out.results[0].benchmark == "tonto"

    def test_unavailable_pool_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(sweep, "_make_executor", lambda workers: None)
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)], jobs=4
        )
        assert out.stats.executed_serial == 1
        assert out.results[0] is not None

    def test_fallback_results_still_reach_the_store(self):
        sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2,
            retries=0,
            worker=crashing_worker,
        )
        runner.clear_cache()
        out = sweep.run_jobs([sweep.Job("tonto", "NP", accesses=ACCESSES)])
        assert out.stats.from_store == 1
