"""Unit tests for the parallel sweep engine's plumbing and robustness.

The crashing/hanging worker stubs below must be module-level functions
so they pickle across the process boundary.
"""

import os
import time

import pytest

from repro.experiments import runner, store, sweep

ACCESSES = 900


@pytest.fixture(autouse=True)
def clean():
    runner.clear_cache()
    yield
    runner.clear_cache()


def crashing_worker(payload, config):
    """Simulates a hard worker death (segfault/OOM-kill analogue)."""
    os._exit(13)


def hanging_worker(payload, config):
    """Never finishes within any reasonable per-job timeout."""
    time.sleep(60)


class TestJob:
    def test_resolve_fills_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_ACCESSES", "3333")
        monkeypatch.setenv("REPRO_SEED", "7")
        job = sweep.Job("tpcc", "NP").resolve()
        assert job.accesses == 3333
        assert job.seed == 7

    def test_resolve_keeps_explicit_values(self):
        job = sweep.Job("tpcc", "NP", accesses=500, seed=3).resolve()
        assert (job.accesses, job.seed) == (500, 3)

    def test_resolve_rejects_zero_accesses(self):
        with pytest.raises(ValueError, match="positive"):
            sweep.Job("tpcc", "NP", accesses=0).resolve()

    def test_resolve_rejects_mutate_key(self):
        # Workers cannot apply mutate callables; accepting the key would
        # cache an unmutated result under a mutated identity.
        with pytest.raises(ValueError, match="mutate_key"):
            sweep.Job("tpcc", "NP", mutate_key="pb_entries=32").resolve()

    def test_run_jobs_rejects_mutate_key(self):
        with pytest.raises(ValueError, match="mutate_key"):
            sweep.run_jobs(
                [sweep.Job("tonto", "NP", accesses=ACCESSES,
                           mutate_key="pb_entries=32")]
            )


class TestServing:
    def test_serial_executes_and_stores(self):
        out = sweep.run_jobs([sweep.Job("tonto", "NP", accesses=ACCESSES)])
        assert out.stats.executed_serial == 1
        assert out.results[0].benchmark == "tonto"
        assert len(store.get_store()) == 1

    def test_second_call_is_served_from_cache(self):
        spec = [sweep.Job("tonto", "NP", accesses=ACCESSES)]
        first = sweep.run_jobs(spec)
        second = sweep.run_jobs(spec)
        assert second.stats.from_cache == 1
        assert second.results[0] is first.results[0]

    def test_cold_process_is_served_from_store(self):
        spec = [sweep.Job("tonto", "NP", accesses=ACCESSES)]
        first = sweep.run_jobs(spec)
        runner.clear_cache()  # "new session"
        second = sweep.run_jobs(spec)
        assert second.stats.from_store == 1
        assert second.results[0] == first.results[0]
        assert runner.cache_info()["simulated"] == 0

    def test_no_store_option(self):
        sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)], use_store=False
        )
        assert len(store.get_store()) == 0

    def test_results_align_with_specs(self):
        specs = [
            sweep.Job("tonto", "NP", accesses=ACCESSES),
            sweep.Job("milc", "NP", accesses=ACCESSES),
            sweep.Job("tonto", "PS", accesses=ACCESSES),
        ]
        out = sweep.run_jobs(specs)
        assert [(r.benchmark, r.config_name) for r in out.results] == [
            ("tonto", "NP"), ("milc", "NP"), ("tonto", "PS")
        ]


class TestSweepStatsSummary:
    def test_base_line_only(self):
        stats = sweep.SweepStats(total=4, from_cache=1, from_store=1,
                                 executed_parallel=1, executed_serial=1)
        assert stats.summary() == (
            "4 jobs: 1 cached, 1 from store, 1 simulated in workers, "
            "1 simulated serially"
        )

    def test_robustness_counters_appear_only_when_nonzero(self):
        stats = sweep.SweepStats(total=2, retries=3, timeouts=1,
                                 pool_failures=2, serial_fallbacks=1)
        line = stats.summary()
        assert "3 retried" in line
        assert "1 timed out" in line
        assert "2 pool failures" in line
        assert "1 serial fallbacks" in line

    def test_store_section_appears_with_store_activity(self):
        stats = sweep.SweepStats(total=3, store_hits=2, store_misses=1,
                                 store_puts=1)
        assert "store: 2 hits / 1 misses, 1 written" in stats.summary()
        assert "corrupt" not in stats.summary()

    def test_store_corruption_is_called_out(self):
        stats = sweep.SweepStats(total=1, store_misses=1, store_errors=1,
                                 store_puts=1)
        assert "1 corrupt" in stats.summary()

    def test_no_store_activity_no_store_section(self):
        assert "store:" not in sweep.SweepStats(total=2, from_cache=2).summary()

    def test_describe_is_an_alias(self):
        stats = sweep.SweepStats(total=1, from_cache=1)
        assert stats.describe() == stats.summary()

    def test_run_jobs_populates_store_delta(self):
        out = sweep.run_jobs([sweep.Job("tonto", "NP", accesses=ACCESSES)])
        assert out.stats.store_misses == 1
        assert out.stats.store_puts == 1
        runner.clear_cache()
        again = sweep.run_jobs([sweep.Job("tonto", "NP", accesses=ACCESSES)])
        assert again.stats.store_hits == 1
        assert again.stats.store_puts == 0


class TestRobustness:
    def test_crashing_worker_falls_back_to_serial(self):
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2,
            retries=1,
            worker=crashing_worker,
        )
        assert out.results[0].benchmark == "tonto"
        assert out.stats.pool_failures >= 1
        assert out.stats.retries == 1
        assert out.stats.executed_serial == 1
        assert out.stats.executed_parallel == 0

    def test_crash_retry_budget_is_bounded(self):
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2,
            retries=3,
            worker=crashing_worker,
        )
        assert out.stats.retries == 3
        assert out.results[0] is not None

    def test_hanging_worker_times_out_to_serial(self):
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2,
            timeout=0.5,
            worker=hanging_worker,
        )
        assert out.stats.timeouts == 1
        assert out.stats.executed_serial == 1
        assert out.results[0].benchmark == "tonto"

    def test_unavailable_pool_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(sweep, "_make_executor", lambda workers: None)
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)], jobs=4
        )
        assert out.stats.executed_serial == 1
        assert out.results[0] is not None

    def test_fallback_results_still_reach_the_store(self):
        sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2,
            retries=0,
            worker=crashing_worker,
        )
        runner.clear_cache()
        out = sweep.run_jobs([sweep.Job("tonto", "NP", accesses=ACCESSES)])
        assert out.stats.from_store == 1


class TestFidelityPlumbing:
    def test_job_rejects_unknown_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            sweep.Job("tonto", "NP", accesses=ACCESSES,
                      fidelity="approximate").resolve()

    def test_job_rejects_auto_pointing_at_orchestrator(self):
        # "auto" is a sweep policy, not a per-job tier
        with pytest.raises(ValueError, match="orchestrator"):
            sweep.Job("tonto", "NP", accesses=ACCESSES,
                      fidelity="auto").resolve()

    def test_fast_and_exact_jobs_have_distinct_identities(self):
        exact = sweep.prepare(sweep.Job("tonto", "NP", accesses=ACCESSES))
        fast = sweep.prepare(
            sweep.Job("tonto", "NP", accesses=ACCESSES, fidelity="fast")
        )
        assert exact[1] != fast[1]                        # cache key
        assert store.job_key(exact[2]) != store.job_key(fast[2])
        assert "fidelity" not in exact[2]                 # legacy shape
        assert fast[2]["fidelity"] == "fast"
        assert "fast_model" in fast[2]

    def test_compute_job_dispatches_on_tier(self):
        job, _key, _spec, config = sweep.prepare(
            sweep.Job("tonto", "NP", accesses=ACCESSES)
        )
        exact = sweep.compute_job(config, job.benchmark, job.accesses,
                                  job.seed, job.threads, "exact")
        fast = sweep.compute_job(config, job.benchmark, job.accesses,
                                 job.seed, job.threads, "fast")
        assert exact.fidelity is None
        assert fast.fidelity_tier == "fast"

    def test_run_jobs_counts_tiers(self):
        out = sweep.run_jobs([
            sweep.Job("tonto", "NP", accesses=ACCESSES),
            sweep.Job("tonto", "NP", accesses=ACCESSES, fidelity="fast"),
        ])
        assert out.stats.exact_jobs == 1
        assert out.stats.fast_jobs == 1
        assert out.results[0].fidelity is None
        assert out.results[1].fidelity_tier == "fast"

    def test_fast_tier_parallel_equals_serial(self):
        specs = [
            sweep.Job(b, c, accesses=ACCESSES, fidelity="fast")
            for b in ("tonto", "milc") for c in ("NP", "PMS")
        ]
        serial = sweep.run_jobs(specs, use_store=False)
        runner.clear_cache()
        parallel = sweep.run_jobs(specs, jobs=2, use_store=False)
        assert serial.results == parallel.results


class TestSweepStatsFidelity:
    def test_describe_reports_breakdown_when_fast_ran(self):
        stats = sweep.SweepStats(total=10, executed_serial=10,
                                 fast_jobs=8, exact_jobs=2, validated=2)
        assert stats.describe().endswith(
            "; fidelity: 8 fast / 2 exact, 2 validated"
        )

    def test_describe_unchanged_for_pure_exact_sweeps(self):
        stats = sweep.SweepStats(total=3, executed_serial=3, exact_jobs=3)
        assert "fidelity" not in stats.describe()
        assert stats.describe() == stats.summary()

    def test_merge_sums_counterwise(self):
        a = sweep.SweepStats(total=2, fast_jobs=2, store_puts=1)
        b = sweep.SweepStats(total=3, exact_jobs=3, validated=2, store_puts=2)
        a.merge(b)
        assert (a.total, a.fast_jobs, a.exact_jobs, a.validated,
                a.store_puts) == (5, 2, 3, 2, 3)
