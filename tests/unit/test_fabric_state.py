"""Unit tests for CoordinatorState with an injected fake clock."""

from repro.experiments import sweep
from repro.fabric.state import DONE, FAILED, LEASED, QUEUED, CoordinatorState


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def job(benchmark="milc", config="NP"):
    return sweep.Job(benchmark=benchmark, config_name=config,
                     accesses=1000, seed=1, threads=1, scheduler="ahb")


def entry(key, already_done=False, benchmark="milc", config="NP"):
    return (key, job(benchmark, config), {"benchmark": benchmark},
            already_done)


def make_state(**overrides):
    clock = FakeClock()
    kwargs = dict(clock=clock, lease_seconds=30.0, max_attempts=3)
    kwargs.update(overrides)
    return CoordinatorState(**kwargs), clock


class TestSubmit:
    def test_fresh_jobs_queue(self):
        state, _ = make_state()
        record = state.submit([entry("k1"), entry("k2", config="PS")])
        assert record.id == "sweep-1"
        assert record.deduped == 0
        assert state.counts() == {QUEUED: 2, LEASED: 0, DONE: 0, FAILED: 0}

    def test_store_satisfied_jobs_are_deduped(self):
        state, _ = make_state()
        record = state.submit([entry("k1", already_done=True), entry("k2")])
        assert record.deduped == 1
        assert state.jobs["k1"].status == DONE
        assert state.counts()[QUEUED] == 1

    def test_overlapping_submission_attaches_not_requeues(self):
        state, _ = make_state()
        state.submit([entry("k1")])
        record = state.submit([entry("k1"), entry("k2", config="PS")])
        assert record.id == "sweep-2"
        # k1 is shared between both sweeps, queued exactly once
        assert state.jobs["k1"].sweeps == ["sweep-1", "sweep-2"]
        assert state.counts()[QUEUED] == 2
        lease = state.lease("w1", 10)
        assert sorted(lease.keys) == ["k1", "k2"]

    def test_attaching_to_a_done_job_counts_as_deduped(self):
        state, _ = make_state()
        state.submit([entry("k1")])
        state.lease("w1", 1)
        state.complete("k1", "w1")
        record = state.submit([entry("k1")])
        assert record.deduped == 1
        assert state.sweep_status(record.id)["done"] is True


class TestLeasing:
    def test_capacity_bounds_the_grant(self):
        state, _ = make_state()
        state.submit([entry(f"k{i}") for i in range(5)])
        lease = state.lease("w1", 2)
        assert len(lease.keys) == 2
        assert all(state.jobs[k].status == LEASED for k in lease.keys)
        assert state.jobs[lease.keys[0]].attempts == 1

    def test_empty_queue_grants_nothing(self):
        state, _ = make_state()
        assert state.lease("w1", 4) is None
        assert "w1" in state.workers  # still registered as alive

    def test_priority_orders_grants(self):
        state, _ = make_state()
        state.submit([entry("low")], priority=0)
        state.submit([entry("high", config="PS")], priority=9)
        assert state.lease("w1", 1).keys == ["high"]
        assert state.lease("w1", 1).keys == ["low"]

    def test_fifo_within_a_priority_class(self):
        state, _ = make_state()
        state.submit([entry("a"), entry("b", config="PS")])
        assert state.lease("w1", 1).keys == ["a"]
        assert state.lease("w1", 1).keys == ["b"]


class TestLeaseExpiry:
    def test_expired_lease_requeues_its_jobs(self):
        state, clock = make_state(lease_seconds=30.0)
        state.submit([entry("k1")])
        lease = state.lease("w1", 1)
        clock.advance(31.0)
        assert state.expire_leases() == ["k1"]
        assert state.jobs["k1"].status == QUEUED
        assert lease.id not in state.leases
        # another worker picks the job right back up
        assert state.lease("w2", 1).keys == ["k1"]

    def test_renew_pushes_expiry_out(self):
        state, clock = make_state(lease_seconds=30.0)
        state.submit([entry("k1")])
        lease = state.lease("w1", 1)
        clock.advance(25.0)
        assert state.renew(lease.id, "w1") is True
        clock.advance(25.0)  # 50s total, but renewed at 25s
        assert state.expire_leases() == []
        assert state.jobs["k1"].status == LEASED

    def test_renew_rejects_wrong_worker_or_unknown_lease(self):
        state, _ = make_state()
        state.submit([entry("k1")])
        lease = state.lease("w1", 1)
        assert state.renew(lease.id, "w2") is False
        assert state.renew("lease-999", "w1") is False

    def test_max_attempts_turns_expiry_into_failure(self):
        state, clock = make_state(lease_seconds=30.0, max_attempts=2)
        state.submit([entry("k1")])
        for _ in range(2):  # two grants, two expiries
            state.lease("w1", 1)
            clock.advance(31.0)
            state.expire_leases()
        assert state.jobs["k1"].status == FAILED
        assert "presumed dead" in state.jobs["k1"].error
        assert state.lease("w1", 1) is None

    def test_late_result_after_expiry_is_accepted(self):
        # the simulator is deterministic, so a slow worker's answer is
        # still the right answer unless someone else finished first
        state, clock = make_state(lease_seconds=30.0)
        state.submit([entry("k1")])
        state.lease("w1", 1)
        clock.advance(31.0)
        state.expire_leases()
        assert state.complete("k1", "w1") == "first"
        assert state.jobs["k1"].status == DONE


class TestCompletion:
    def test_first_then_duplicate(self):
        state, _ = make_state()
        state.submit([entry("k1")])
        state.lease("w1", 1)
        assert state.complete("k1", "w1") == "first"
        assert state.complete("k1", "w2") == "duplicate"
        assert state.complete("k-unknown", "w1") == "unknown"
        assert state.workers["w1"].completed == 1

    def test_completion_shrinks_the_lease(self):
        state, _ = make_state()
        state.submit([entry("k1"), entry("k2", config="PS")])
        lease = state.lease("w1", 2)
        state.complete("k1", "w1")
        assert state.leases[lease.id].keys == ["k2"]
        state.complete("k2", "w1")
        assert lease.id not in state.leases

    def test_fail_requeues_until_attempts_exhausted(self):
        state, _ = make_state(max_attempts=2)
        state.submit([entry("k1")])
        state.lease("w1", 1)
        assert state.fail("k1", "w1", "boom") == "requeued"
        assert state.jobs["k1"].status == QUEUED
        state.lease("w1", 1)
        assert state.fail("k1", "w1", "boom again") == "failed"
        assert state.jobs["k1"].status == FAILED
        assert state.jobs["k1"].error == "boom again"


class TestViews:
    def test_sweep_status_tracks_its_own_keys(self):
        state, _ = make_state()
        first = state.submit([entry("k1"), entry("k2", config="PS")])
        second = state.submit([entry("k3", config="PMS")])
        state.lease("w1", 3)
        state.complete("k1", "w1")
        status = state.sweep_status(first.id)
        assert status["total"] == 2
        assert status["counts"][DONE] == 1
        assert status["counts"][LEASED] == 1
        assert status["done"] is False
        assert state.sweep_status(second.id)["counts"][LEASED] == 1
        assert state.sweep_status("sweep-404") is None

    def test_failed_jobs_surface_with_their_errors(self):
        state, _ = make_state(max_attempts=1)
        record = state.submit([entry("k1")])
        state.lease("w1", 1)
        state.fail("k1", "w1", "simulator exploded")
        status = state.sweep_status(record.id)
        assert status["failed"] == [
            {"key": "k1", "error": "simulator exploded"}
        ]

    def test_workers_view_reports_liveness(self):
        state, clock = make_state()
        state.submit([entry("k1")])
        state.lease("w1", 1)
        clock.advance(7.0)
        view = state.workers_view()
        assert view["w1"]["last_seen_seconds_ago"] == 7.0
        assert view["w1"]["leased"] == 1
