"""CONC rules: seeded fleet-concurrency violations flagged, real tree clean."""

import pytest

from repro.analysislint.concurrency import (
    LockBlockingRule,
    ResourceReleaseRule,
    ThreadLifecycleRule,
)
from tests.unit._lint_util import mount, mount_text, real_tree

FIXTURE = ("conc_violations.py", "src/repro/fabric/conc_violations.py")


@pytest.fixture(scope="module")
def tree():
    return mount(FIXTURE)


class TestThreadLifecycle:
    def test_leaked_and_half_joined_threads_flagged(self, tree):
        findings = ThreadLifecycleRule().check(tree)
        symbols = sorted(f.symbol for f in findings)
        assert symbols == ["Agent.start", "Agent.start_flaky"]
        for f in findings:
            assert "neither daemonized nor joined" in f.message

    def test_daemon_handoff_and_join_variants_clean(self, tree):
        flagged = {f.symbol for f in ThreadLifecycleRule().check(tree)}
        for clean in (
            "Agent.start_daemon",
            "Agent.start_daemon_attr",
            "Agent.start_handoff",
            "Agent.start_joined",
        ):
            assert clean not in flagged

    def test_unbound_thread_is_flagged(self):
        tree = mount_text(
            "import threading\n\n\n"
            "def fire(job):\n"
            "    threading.Thread(target=job).start()\n",
            "src/repro/fabric/unbound.py",
        )
        findings = ThreadLifecycleRule().check(tree)
        assert len(findings) == 1
        assert "never bound to a name" in findings[0].message

    def test_waiver_suppresses(self):
        tree = mount_text(
            "import threading\n\n\n"
            "def fire(job):\n"
            "    threading.Thread(target=job).start()  # lint: thread-ok\n",
            "src/repro/fabric/waived.py",
        )
        assert ThreadLifecycleRule().check(tree) == []

    def test_out_of_scope_package_ignored(self):
        tree = mount(("conc_violations.py", "src/repro/telemetry/conc.py"))
        assert ThreadLifecycleRule().check(tree) == []


class TestResourceRelease:
    def test_early_return_leak_flagged(self, tree):
        findings = ResourceReleaseRule().check(tree)
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "Poller.fetch"
        assert "not released" in f.message

    def test_finally_with_and_handoff_variants_clean(self, tree):
        flagged = {f.symbol for f in ResourceReleaseRule().check(tree)}
        for clean in ("Poller.fetch_finally", "Poller.read_with", "Poller.open_handoff"):
            assert clean not in flagged

    def test_attribute_store_is_a_handoff(self):
        # the ObsServer shape: the instance owns the release (close())
        tree = mount_text(
            "from http.server import ThreadingHTTPServer\n\n\n"
            "class Server:\n"
            "    def __init__(self, handler):\n"
            "        self._httpd = ThreadingHTTPServer(('', 0), handler)\n",
            "src/repro/obs/attr_store.py",
        )
        assert ResourceReleaseRule().check(tree) == []

    def test_sim_package_is_in_scope(self):
        tree = mount_text(
            "def peek(path, ready):\n"
            "    handle = open(path, 'r')\n"
            "    if not ready:\n"
            "        return None\n"
            "    data = handle.read()\n"
            "    handle.close()\n"
            "    return data\n",
            "src/repro/scenarios/leaky.py",
        )
        findings = ResourceReleaseRule().check(tree)
        assert len(findings) == 1
        assert findings[0].symbol == "peek"


class TestLockBlocking:
    def test_direct_sleep_under_lock_flagged(self, tree):
        findings = LockBlockingRule().check(tree)
        by_symbol = {f.symbol: f for f in findings}
        assert "Coordinator.wait_done" in by_symbol
        assert "time.sleep" in by_symbol["Coordinator.wait_done"].message
        assert "self._lock" in by_symbol["Coordinator.wait_done"].message

    def test_helper_expansion_one_level(self, tree):
        findings = LockBlockingRule().check(tree)
        by_symbol = {f.symbol: f for f in findings}
        assert "Coordinator.drain" in by_symbol
        assert "self._poll_remote() -> time.sleep" in by_symbol["Coordinator.drain"].message

    def test_pure_computation_under_lock_clean(self, tree):
        flagged = {f.symbol for f in LockBlockingRule().check(tree)}
        assert "Coordinator.snapshot" not in flagged

    def test_non_lock_context_managers_ignored(self):
        tree = mount_text(
            "import time\n\n\n"
            "def slow(path):\n"
            "    with open(path) as handle:\n"
            "        time.sleep(1)\n"
            "        return handle.read()\n",
            "src/repro/fabric/nolock.py",
        )
        assert LockBlockingRule().check(tree) == []


class TestRealTreeClean:
    @pytest.mark.parametrize(
        "rule_cls", [ThreadLifecycleRule, ResourceReleaseRule, LockBlockingRule]
    )
    def test_real_tree_has_no_findings(self, rule_cls):
        findings = rule_cls().check(real_tree())
        assert findings == [], [f.render() for f in findings]
