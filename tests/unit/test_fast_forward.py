"""Unit tests for the core's fast-forward contract.

``linear_horizon`` promises that the next N ticks are linear —
they only burn stall/gap budget — and ``consume_wait`` applies those
N ticks in one arithmetic step.  These tests pin the promise: ticking
per-cycle and consuming the wait in bulk must leave two identical
cores in identical states.
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DRAMConfig,
    HierarchyConfig,
    MemorySidePrefetcherConfig,
    ProcessorSidePrefetcherConfig,
)
from repro.controller.controller import MemoryController
from repro.cpu.core import Core
from repro.dram.device import DRAMDevice
from repro.prefetch.memory_side import MemorySidePrefetcher
from repro.prefetch.processor_side import ProcessorSidePrefetcher
from repro.workloads.trace import Trace


def build_core(records, mlp=2):
    hierarchy = CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(256, 2, latency=1),
            l2=CacheConfig(512, 2, latency=10),
            l3=CacheConfig(1024, 2, latency=50),
        )
    )
    ms = MemorySidePrefetcher(MemorySidePrefetcherConfig(enabled=False))
    controller = MemoryController(
        ControllerConfig(), DRAMDevice(DRAMConfig()), ms
    )
    ps = ProcessorSidePrefetcher(ProcessorSidePrefetcherConfig(enabled=False))
    core = Core(CoreConfig(mlp=mlp), hierarchy, ps, controller, [Trace(records)])
    return core, controller


def core_state(core):
    return (
        core.retired_instructions,
        dict(core.stats.raw()),
        [
            (ctx.stall_cpu, ctx.gap_cpu, ctx.blocked_mem, ctx.trace_done)
            for ctx in core.contexts
        ],
    )


class TestLinearHorizon:
    def test_long_gap_gives_positive_horizon(self):
        core, mc = build_core([(8000, 100, False)])
        mc.tick(0)
        core.tick(0)  # fetches the record, loads its gap budget
        horizon = core.linear_horizon()
        assert horizon is not None and horizon > 0

    def test_all_blocked_is_unbounded(self):
        # mlp=1: the second access blocks behind the first miss, so the
        # only wake-up is a read completion — an event, not a horizon
        core, mc = build_core([(0, 100, False), (0, 200, False)], mlp=1)
        for now in range(3):
            mc.tick(now)
            core.tick(now)
        assert any(ctx.blocked_mem for ctx in core.contexts)
        assert core.linear_horizon() is None

    def test_drained_core_is_unbounded(self):
        core, mc = build_core([(0, 100, False)])
        now = 0
        while not (core.done and mc.idle()):
            mc.tick(now)
            core.tick(now)
            now += 1
        assert core.linear_horizon() is None


class TestConsumeWait:
    def test_matches_per_cycle_ticks(self):
        # two identical cores, same fetch; one ticks per cycle, one
        # consumes the whole horizon at once — states must match
        records = [(4000, 100, False), (0, 200, False)]
        core_a, mc_a = build_core(records)
        core_b, mc_b = build_core(records)
        for core, mc in ((core_a, mc_a), (core_b, mc_b)):
            mc.tick(0)
            core.tick(0)
        horizon = core_a.linear_horizon()
        assert horizon == core_b.linear_horizon()
        assert horizon > 0
        for now in range(1, 1 + horizon):
            mc_a.tick(now)
            core_a.tick(now)
        core_b.consume_wait(horizon)
        assert core_state(core_a) == core_state(core_b)

    def test_blocked_thread_accrues_memory_stall(self):
        core, mc = build_core([(0, 100, False), (0, 200, False)], mlp=1)
        for now in range(3):
            mc.tick(now)
            core.tick(now)
        assert any(ctx.blocked_mem for ctx in core.contexts)
        before = core.stats["stall_cycles_mem"]
        core.consume_wait(5)
        expected = 5 * core.budget_per_thread
        assert core.stats["stall_cycles_mem"] == before + expected

    def test_drained_thread_burns_nothing(self):
        core, mc = build_core([(0, 100, False)])
        now = 0
        while not (core.done and mc.idle()):
            mc.tick(now)
            core.tick(now)
            now += 1
        before = core_state(core)
        core.consume_wait(7)
        assert core_state(core) == before
