"""Unit tests for repro.obs.exporters — exposition + snapshot codecs."""

import os

import pytest

from repro.obs import exporters
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    jobs = reg.counter("repro_sweep_jobs_total", "Jobs by outcome.",
                       ("outcome",))
    jobs.inc(3, outcome="serial")
    jobs.inc(outcome="cached")
    reg.gauge("repro_queue_depth", "Queue depth.").set(7)
    hist = reg.histogram("repro_job_seconds", "Job seconds.",
                         buckets=(0.1, 1.0, 10.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(99.0)
    return reg


class TestExposition:
    def test_help_and_type_lines(self):
        text = exporters.render_exposition(populated_registry())
        assert "# HELP repro_sweep_jobs_total Jobs by outcome." in text
        assert "# TYPE repro_sweep_jobs_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_job_seconds histogram" in text

    def test_sample_lines(self):
        text = exporters.render_exposition(populated_registry())
        assert 'repro_sweep_jobs_total{outcome="serial"} 3' in text
        assert 'repro_sweep_jobs_total{outcome="cached"} 1' in text
        assert "repro_queue_depth 7" in text

    def test_histogram_lines_are_cumulative(self):
        text = exporters.render_exposition(populated_registry())
        assert 'repro_job_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_job_seconds_bucket{le="1"} 2' in text
        assert 'repro_job_seconds_bucket{le="10"} 2' in text
        assert 'repro_job_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_job_seconds_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert exporters.render_exposition(MetricsRegistry()) == ""

    def test_unused_instruments_are_omitted(self):
        reg = MetricsRegistry()
        reg.counter("never_incremented_total", "x")
        assert exporters.render_exposition(reg) == ""

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", "", ("path",)).inc(path='a"b\\c\nd')
        text = exporters.render_exposition(reg)
        assert 'path="a\\"b\\\\c\\nd"' in text
        parsed = exporters.parse_exposition(text)
        assert parsed[("c", (("path", 'a"b\\c\nd'),))] == 1.0


class TestParse:
    def test_round_trip_equals_rendered(self):
        reg = populated_registry()
        parsed = exporters.parse_exposition(exporters.render_exposition(reg))
        assert parsed[("repro_sweep_jobs_total", (("outcome", "serial"),))] == 3.0
        assert parsed[("repro_queue_depth", ())] == 7.0
        assert parsed[
            ("repro_job_seconds_bucket", (("le", "+Inf"),))
        ] == 3.0

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            exporters.parse_exposition('metric{oops} 1')
        with pytest.raises(ValueError):
            exporters.parse_exposition("name_only_no_value")

    def test_comments_and_blanks_are_skipped(self):
        assert exporters.parse_exposition("# HELP x y\n\n# TYPE x counter\n") == {}

    def test_empty_registry_round_trips_to_empty_dict(self):
        # the CI smoke's degenerate case: nothing rendered, nothing parsed
        assert exporters.parse_exposition(
            exporters.render_exposition(MetricsRegistry())
        ) == {}

    def test_escaped_label_values_round_trip(self):
        # every escape the 0.0.4 format defines, in one label value,
        # plus a comma and an equals sign that must not split the pair
        hostile = 'a\\b"c\nd,e=f'
        reg = MetricsRegistry()
        reg.counter("c", "", ("path", "kind")).inc(
            2, path=hostile, kind="plain"
        )
        parsed = exporters.parse_exposition(exporters.render_exposition(reg))
        assert parsed[
            ("c", (("kind", "plain"), ("path", hostile)))
        ] == 2.0

    def test_trailing_backslash_label_value(self):
        reg = MetricsRegistry()
        reg.counter("c", "", ("p",)).inc(p="ends\\")
        parsed = exporters.parse_exposition(exporters.render_exposition(reg))
        assert parsed[("c", (("p", "ends\\"),))] == 1.0

    def test_histogram_inf_sum_count_round_trip(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", "", buckets=(0.5,),
                             labelnames=("stage",))
        hist.observe(0.1, stage="lease")
        hist.observe(9.0, stage="lease")
        parsed = exporters.parse_exposition(exporters.render_exposition(reg))
        stage = ("stage", "lease")
        assert parsed[("h_seconds_bucket", (("le", "0.5"), stage))] == 1.0
        assert parsed[("h_seconds_bucket", (("le", "+Inf"), stage))] == 2.0
        assert parsed[("h_seconds_sum", (stage,))] == pytest.approx(9.1)
        assert parsed[("h_seconds_count", (stage,))] == 2.0

    def test_inf_sample_value_parses(self):
        parsed = exporters.parse_exposition("g +Inf\nh -Inf\n")
        assert parsed[("g", ())] == float("inf")
        assert parsed[("h", ())] == float("-inf")


class TestSnapshot:
    def test_snapshot_round_trips_to_identical_exposition(self):
        reg = populated_registry()
        document = exporters.registry_snapshot(reg)
        assert document["version"] == exporters.SNAPSHOT_VERSION
        assert exporters.exposition_from_snapshot(document) == (
            exporters.render_exposition(reg)
        )

    def test_progress_section_is_embedded(self):
        document = exporters.registry_snapshot(
            MetricsRegistry(), progress={"done": 3, "total": 9}
        )
        assert document["progress"] == {"done": 3, "total": 9}

    def test_write_load_latest(self, tmp_path):
        directory = str(tmp_path / "metrics")
        path = exporters.write_snapshot(
            populated_registry(), directory=directory
        )
        assert os.path.basename(path) == "latest.json"
        loaded = exporters.load_snapshot(path)
        assert loaded["version"] == exporters.SNAPSHOT_VERSION
        found = exporters.latest_snapshot(directory)
        assert found is not None
        assert found[0] == path
        assert found[1] == loaded

    def test_write_snapshot_defaults_under_store_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        path = exporters.write_snapshot(MetricsRegistry())
        assert path == str(tmp_path / "metrics" / "latest.json")

    def test_latest_snapshot_missing_dir(self, tmp_path):
        assert exporters.latest_snapshot(str(tmp_path / "nope")) is None

    def test_latest_snapshot_skips_unreadable(self, tmp_path):
        directory = str(tmp_path)
        good = exporters.write_snapshot(
            populated_registry(), directory=directory, filename="good.json"
        )
        bad = tmp_path / "zz-newer.json"
        bad.write_text("{not json")
        os.utime(bad, (9999999999, 9999999999))
        found = exporters.latest_snapshot(directory)
        assert found is not None and found[0] == good
