"""Deeper unit tests for the AHB scheduler's history behaviour."""


from repro.common.config import DRAMConfig
from repro.common.types import CommandKind, MemoryCommand
from repro.controller.schedulers import AHBScheduler
from repro.dram.device import DRAMDevice


def read(line, arrival=0):
    return MemoryCommand(CommandKind.READ, line, arrival=arrival)


def write(line, arrival=0):
    return MemoryCommand(CommandKind.WRITE, line, arrival=arrival)


def quiet_device(banks=8):
    return DRAMDevice(DRAMConfig(ranks=1, banks_per_rank=banks))


class TestBurstGrouping:
    def test_prefers_same_kind_as_last_issue(self):
        dev = quiet_device()
        sched = AHBScheduler()
        first = read(0, arrival=0)
        dev.try_issue(first, 0)
        sched.notify_issue(first, dev)
        now = 60  # everything quiet again
        # same age, different kinds, different (fresh) banks
        r = read(101, arrival=5)
        w = write(102, arrival=5)
        assert sched.select([w, r], dev, now) is r

    def test_grouping_flips_after_a_write(self):
        dev = quiet_device()
        sched = AHBScheduler()
        first = write(0, arrival=0)
        dev.try_issue(first, 0)
        sched.notify_issue(first, dev)
        now = 60
        r = read(101, arrival=5)
        w = write(102, arrival=5)
        assert sched.select([r, w], dev, now) is w


class TestBankHistory:
    def test_recent_banks_deprioritised(self):
        dev = quiet_device()
        sched = AHBScheduler()
        for line in (0, 1, 2, 3):
            cmd = read(line)
            dev.try_issue(cmd, line)
            sched.notify_issue(cmd, dev)
        now = 100
        # bank 0 is in history; bank 5 is not; both would be activates
        recent = read(800, arrival=1)  # 800 % 8 == 0
        fresh = read(805, arrival=1)  # bank 5
        assert sched.select([recent, fresh], dev, now) is fresh

    def test_history_window_bounded(self):
        dev = quiet_device()
        sched = AHBScheduler()
        # issue 8 commands; only the last HISTORY banks stay penalised
        for line in range(8):
            cmd = read(line)
            dev.try_issue(cmd, line * 20)
            sched.notify_issue(cmd, dev)
        assert len(sched._recent_banks) == AHBScheduler.HISTORY


class TestReadiness:
    def test_ready_row_hit_dominates_everything(self):
        cfg = DRAMConfig(ranks=1, banks_per_rank=2, row_lines=8)
        dev = DRAMDevice(cfg)
        sched = AHBScheduler()
        first = read(0)
        r = dev.try_issue(first, 0)
        sched.notify_issue(first, dev)
        now = r.completion + 5
        row_hit = read(2, arrival=9)  # same bank+row as line 0
        fresh_bank = read(1, arrival=1)  # older, different bank, activate
        assert sched.select([fresh_bank, row_hit], dev, now) is row_hit
