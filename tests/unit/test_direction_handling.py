"""Unit tests: descending-stream handling end to end.

Descending streams exercise the second Likelihood Table pair and the
negative-step prefetch addresses — a classic source of sign bugs.
"""


from repro.common.config import MemorySidePrefetcherConfig, SLHConfig
from repro.common.types import Direction
from repro.prefetch.engines import ASDEngine


def engine(epoch=60):
    cfg = MemorySidePrefetcherConfig(
        enabled=True, engine="asd", slh=SLHConfig(epoch_reads=epoch)
    )
    return ASDEngine(cfg, 1)


def train_descending(e, streams=30, length=8, start=10_000_000):
    line = start
    for _ in range(streams):
        for _ in range(length):
            e.observe_read(line, 0, 0)
            line -= 1
        line -= 100
    e.epoch_flush()
    return line


class TestDescendingASD:
    def test_descending_mass_lands_in_descending_tables(self):
        e = engine()
        train_descending(e, streams=5, length=4, start=1000)
        desc = e.tables[0][Direction.DESCENDING]
        asc = e.tables[0][Direction.ASCENDING]
        # each descending stream contributes its first read as an
        # ascending length-1 allocation that flips on the second read,
        # so virtually all read mass is in the descending tables
        assert desc.curr[2] > 0
        assert asc.curr[2] == 0

    def test_descending_prefetch_addresses_decrease(self):
        e = engine()
        train_descending(e)
        e.observe_read(500_000, 0, 0)
        out = e.observe_read(499_999, 0, 0)
        assert out == [499_998]

    def test_ascending_training_does_not_fire_descending(self):
        e = engine()
        # train ascending only
        line = 0
        for _ in range(30):
            for _ in range(8):
                e.observe_read(line, 0, 0)
                line += 1
            line += 100
        e.epoch_flush()
        # a fresh descending pair must consult the (empty) DESC tables
        e.observe_read(900_000, 0, 0)
        out = e.observe_read(899_999, 0, 0)
        assert out == []


class TestDescendingSystem:
    def test_pure_descending_workload_gains(self):
        from repro import make_config, simulate
        from repro.workloads.synthetic import StreamWorkload, generate_trace

        wl = StreamWorkload(
            name="desc",
            length_dist={4: 1.0},
            gap_mean=20,
            hot_fraction=0.0,
            write_fraction=0.0,
            descending_fraction=1.0,
            interleave=2,
            burstiness=0.5,
        )
        trace = generate_trace(wl, 4000, seed=3)
        np_run = simulate(make_config("NP"), trace)
        ms = simulate(make_config("MS"), trace)
        assert ms.cycles < np_run.cycles
        assert ms.stats["pb.read_hits"] > 0
