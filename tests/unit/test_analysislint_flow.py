"""The CFG/dataflow engine the CONC/ATO rule families are built on.

These tests pin the graph shapes that matter to the obligation rules:
``finally`` blocks dominating early returns, exceptional edges into
handlers, branch paths that skip a release, and the conservative escape
analysis that discharges cleanup obligations.
"""

import ast
import textwrap

from repro.analysislint import flow


def func_of(src):
    return ast.parse(textwrap.dedent(src)).body[0]


def cfg_of(src):
    return flow.build_cfg(func_of(src))


def node_calling(cfg, method):
    """CFG node id of the first statement containing a ``.method()`` call."""
    for node in cfg.nodes:
        if node.stmt is None:
            continue
        for sub in ast.walk(node.stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == method
            ):
                return node.id
    raise AssertionError(f"no statement calls .{method}()")


def stops_on(method):
    def stop(node):
        if node.stmt is None:
            return False
        return any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == method
            for sub in ast.walk(node.stmt)
        )

    return stop


class TestCanReachExit:
    def test_straight_line_release_dominates(self):
        cfg = cfg_of(
            """
            def f(path):
                handle = acquire(path)
                handle.use()
                handle.close()
            """
        )
        start = node_calling(cfg, "use")
        assert not flow.can_reach_exit(cfg, start, stops_on("close"))

    def test_branch_that_skips_the_release_is_found(self):
        cfg = cfg_of(
            """
            def f(path, fast):
                handle = acquire(path)
                if fast:
                    handle.close()
                handle.use()
            """
        )
        # from the use statement (below the branch) nothing closes
        first = node_calling(cfg, "use")
        assert flow.can_reach_exit(cfg, first, stops_on("close"))

    def test_finally_release_dominates_early_return(self):
        cfg = cfg_of(
            """
            def f(path, fast):
                handle = acquire(path)
                try:
                    if fast:
                        return 1
                    handle.use()
                finally:
                    handle.close()
            """
        )
        start = node_calling(cfg, "use")
        assert not flow.can_reach_exit(cfg, start, stops_on("close"))
        # and the early return is also routed through the finally
        returns = [
            n.id
            for n in cfg.nodes
            if isinstance(n.stmt, ast.Return)
        ]
        assert returns
        assert not flow.can_reach_exit(cfg, returns[0], stops_on("close"))

    def test_handler_path_can_skip_body_tail(self):
        cfg = cfg_of(
            """
            def f(conn):
                try:
                    conn.send()
                    conn.close()
                except OSError:
                    conn.abort()
            """
        )
        start = node_calling(cfg, "send")
        # the exceptional edge into the handler bypasses close()
        assert flow.can_reach_exit(cfg, start, stops_on("close"))

    def test_loop_break_exits_past_the_release(self):
        cfg = cfg_of(
            """
            def f(items, handle):
                for item in items:
                    if item.bad():
                        break
                    handle.use()
                handle.close()
            """
        )
        start = node_calling(cfg, "use")
        assert not flow.can_reach_exit(cfg, start, stops_on("close"))


class TestAssignedNames:
    def test_simple_and_tuple_targets(self):
        stmt = ast.parse("a, (b, c) = x").body[0]
        assert flow.assigned_names(stmt) == {"a", "b", "c"}

    def test_with_as_and_for_targets(self):
        with_stmt = ast.parse("with open(p) as fh:\n    pass").body[0]
        assert flow.assigned_names(with_stmt) == {"fh"}
        for_stmt = ast.parse("for k, v in items:\n    pass").body[0]
        assert flow.assigned_names(for_stmt) == {"k", "v"}

    def test_compound_bodies_do_not_contribute(self):
        if_stmt = ast.parse("if c:\n    y = 1").body[0]
        assert flow.assigned_names(if_stmt) == set()


class TestReachingDefinitions:
    def test_params_defined_at_entry_and_rebinds_kill(self):
        cfg = cfg_of(
            """
            def f(x):
                x = transform(x)
                x.finish()
            """
        )
        rd = flow.reaching_definitions(cfg)
        finish = node_calling(cfg, "finish")
        reaching_x = {def_node for name, def_node in rd[finish] if name == "x"}
        # only the rebinding reaches the use; the entry (param) def is killed
        assert cfg.entry not in reaching_x
        assert len(reaching_x) == 1

    def test_branch_merge_keeps_both_defs(self):
        cfg = cfg_of(
            """
            def f(c):
                if c:
                    v = make_a()
                else:
                    v = make_b()
                v.finish()
            """
        )
        rd = flow.reaching_definitions(cfg)
        finish = node_calling(cfg, "finish")
        reaching_v = {def_node for name, def_node in rd[finish] if name == "v"}
        assert len(reaching_v) == 2


class TestEscapingNames:
    def test_returned_and_stored_names_escape(self):
        func = func_of(
            """
            def f(self):
                a = make()
                b = make()
                c = make()
                d = make()
                self.keep = b
                consume(c)
                d.close()
                return a
            """
        )
        escapes = flow.escaping_names(func)
        assert {"a", "b", "c"} <= escapes
        # receiver of a method call is NOT an escape
        assert "d" not in escapes

    def test_yield_and_subscript_store_escape(self):
        func = func_of(
            """
            def f(table, key):
                v = make()
                w = make()
                table[key] = w
                yield v
            """
        )
        escapes = flow.escaping_names(func)
        assert {"v", "w"} <= escapes


class TestCalledSelfMethods:
    def test_direct_and_aliased_calls(self):
        func = func_of(
            """
            def f(self):
                self._direct()
                fn = self._aliased
                fn()
                other()
            """
        )
        assert flow.called_self_methods(func) == {"_direct", "_aliased"}
