"""Unit tests for repro.common.config validation and derivation."""

from dataclasses import replace

import pytest

from repro.common.config import (
    AdaptiveSchedulingConfig,
    CacheConfig,
    ControllerConfig,
    DRAMConfig,
    DRAMPowerConfig,
    DRAMTimingConfig,
    MemorySidePrefetcherConfig,
    PrefetchBufferConfig,
    ProcessorSidePrefetcherConfig,
    SLHConfig,
    StreamFilterConfig,
    SystemConfig,
)


class TestDRAMTiming:
    def test_defaults_valid(self):
        DRAMTimingConfig().validate()

    def test_trc_must_cover_tras_trp(self):
        with pytest.raises(ValueError, match="t_rc"):
            DRAMTimingConfig(t_rc=10, t_ras=12, t_rp=4).validate()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            DRAMTimingConfig(t_rcd=0).validate()


class TestDRAMConfig:
    def test_total_banks(self):
        assert DRAMConfig(ranks=2, banks_per_rank=8).total_banks == 16

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            DRAMConfig(ranks=0).validate()

    def test_invalid_row_lines(self):
        with pytest.raises(ValueError):
            DRAMConfig(row_lines=0).validate()


class TestDRAMPowerConfig:
    def test_defaults_valid(self):
        DRAMPowerConfig().validate()

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            DRAMPowerConfig(e_read_nj=-1).validate()


class TestCacheConfig:
    def test_derived_geometry(self):
        cfg = CacheConfig(32 * 1024, 4, latency=1)
        assert cfg.num_lines == 256
        assert cfg.num_sets == 64

    def test_size_not_multiple_of_line(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 2, latency=1).validate()

    def test_smaller_than_one_set(self):
        with pytest.raises(ValueError):
            CacheConfig(128, 4, latency=1).validate()

    def test_non_power_of_two_sets_allowed(self):
        # the Power5+ L2 is 10-way; sets need not be a power of two
        CacheConfig(160 * 1024, 10, latency=13).validate()


class TestStreamFilterConfig:
    def test_defaults_valid(self):
        StreamFilterConfig().validate()

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            StreamFilterConfig(slots=0).validate()

    def test_bad_lifetime_unit(self):
        with pytest.raises(ValueError, match="lifetime_unit"):
            StreamFilterConfig(lifetime_unit="days").validate()

    def test_cpu_unit_accepted(self):
        StreamFilterConfig(lifetime_unit="cpu", lifetime_init=3000).validate()


class TestSLHConfig:
    def test_defaults_valid(self):
        SLHConfig().validate()

    def test_table_too_short(self):
        with pytest.raises(ValueError):
            SLHConfig(table_len=1).validate()

    def test_zero_epoch(self):
        with pytest.raises(ValueError):
            SLHConfig(epoch_reads=0).validate()


class TestPrefetchBufferConfig:
    def test_paper_size_is_two_kb(self):
        cfg = PrefetchBufferConfig()
        assert cfg.entries == 16  # 16 x 128 B = 2 KB

    def test_entries_multiple_of_assoc(self):
        with pytest.raises(ValueError):
            PrefetchBufferConfig(entries=10, assoc=4).validate()


class TestAdaptiveSchedulingConfig:
    def test_fixed_policy_range(self):
        with pytest.raises(ValueError):
            AdaptiveSchedulingConfig(fixed_policy=6).validate()

    def test_threshold_ordering(self):
        with pytest.raises(ValueError):
            AdaptiveSchedulingConfig(
                raise_threshold=5, lower_threshold=10
            ).validate()


class TestMemorySidePrefetcherConfig:
    def test_engines(self):
        for engine in ("asd", "nextline", "p5"):
            MemorySidePrefetcherConfig(engine=engine).validate()

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            MemorySidePrefetcherConfig(engine="oracle").validate()

    def test_degree_must_be_positive(self):
        with pytest.raises(ValueError):
            MemorySidePrefetcherConfig(degree=0).validate()


class TestProcessorSideConfig:
    def test_paper_table_sizes(self):
        cfg = ProcessorSidePrefetcherConfig()
        assert cfg.detect_entries == 12
        assert cfg.max_streams == 8

    def test_lead_ordering(self):
        with pytest.raises(ValueError):
            ProcessorSidePrefetcherConfig(l1_lead=3, l2_lead=2).validate()

    def test_ramp_bounds(self):
        with pytest.raises(ValueError):
            ProcessorSidePrefetcherConfig(ramp=9, l2_lead=4).validate()


class TestControllerConfig:
    def test_caq_depth_is_three(self):
        assert ControllerConfig().caq_depth == 3

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            ControllerConfig(scheduler="magic").validate()

    def test_drain_threshold_range(self):
        with pytest.raises(ValueError):
            ControllerConfig(
                write_drain_threshold=99, write_queue_depth=8
            ).validate()


class TestSystemConfig:
    def test_default_validates(self):
        SystemConfig().validate()

    def test_validate_returns_self(self):
        cfg = SystemConfig()
        assert cfg.validate() is cfg

    def test_derive_replaces_field(self):
        cfg = SystemConfig().derive(name="x")
        assert cfg.name == "x"

    def test_derive_does_not_mutate_original(self):
        cfg = SystemConfig(name="orig")
        cfg.derive(name="new")
        assert cfg.name == "orig"

    def test_threads_must_be_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(threads=0).validate()

    def test_invalid_nested_config_caught(self):
        bad = SystemConfig()
        bad = bad.derive(core=replace(bad.core, cpu_ratio=0))
        with pytest.raises(ValueError):
            bad.validate()
