"""Unit tests for the content-addressed on-disk result store."""

import json
import os

import pytest

from repro.dram.power import PowerReport
from repro.experiments import store
from repro.system.presets import make_config
from repro.system.results import RunResult


def sample_result(**overrides):
    fields = dict(
        config_name="PMS",
        benchmark="tpcc",
        cycles=12345,
        instructions=67890,
        cpu_ratio=8,
        stats={"mc.reads_arrived": 100, "pb.inserts": 7, "mc.lat_sum_demand": 3.5},
        power=PowerReport(
            elapsed_ns=1000.25,
            energy_uj=12.5,
            avg_power_mw=640.125,
            activate_energy_uj=1.0,
            burst_energy_uj=2.0,
            background_energy_uj=9.5,
        ),
    )
    fields.update(overrides)
    return RunResult(**fields)


def sample_spec(config=None, **overrides):
    config = config or make_config("PMS")
    spec = store.job_spec("tpcc", "PMS", 2000, 1, 1, "ahb", None, config)
    spec.update(overrides)
    return spec


class TestCodec:
    def test_round_trip_is_field_for_field_equal(self):
        result = sample_result()
        assert store.decode_result(store.encode_result(result)) == result

    def test_round_trip_through_json_text(self):
        result = sample_result()
        payload = json.loads(json.dumps(store.encode_result(result)))
        assert store.decode_result(payload) == result

    def test_round_trip_without_power(self):
        result = sample_result(power=None)
        assert store.decode_result(store.encode_result(result)) == result

    def test_traced_results_are_rejected(self):
        traced = sample_result(telemetry={"events": 5})
        with pytest.raises(ValueError, match="never stored"):
            store.encode_result(traced)


class TestKeys:
    def test_key_is_deterministic(self):
        assert store.job_key(sample_spec()) == store.job_key(sample_spec())

    def test_key_depends_on_every_spec_field(self):
        base = store.job_key(sample_spec())
        for field, other in [
            ("benchmark", "milc"),
            ("accesses", 4000),
            ("seed", 2),
            ("threads", 2),
            ("scheduler", "in_order"),
            ("mutate_key", "x"),
        ]:
            assert store.job_key(sample_spec(**{field: other})) != base, field

    def test_fingerprint_tracks_config_changes(self):
        config = make_config("PMS")
        base = store.config_fingerprint(config)
        config.ms_prefetcher.buffer.entries = 32
        assert store.config_fingerprint(config) != base

    def test_config_change_invalidates_the_entry(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        st.put(sample_spec(), sample_result())
        mutated = make_config("PMS")
        mutated.ms_prefetcher.slh.epoch_reads = 500
        assert st.get(sample_spec(config=mutated)) is None


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        spec, result = sample_spec(), sample_result()
        st.put(spec, result)
        assert st.get(spec) == result
        assert st.stats.as_dict() == {
            "hits": 1, "misses": 0, "puts": 1, "errors": 0
        }

    def test_miss_on_empty_store(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        assert st.get(sample_spec()) is None
        assert st.stats.misses == 1

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        spec = sample_spec()
        path = st.put(spec, sample_result())
        with open(path, "w") as handle:
            handle.write("{not json")
        assert st.get(spec) is None
        assert st.stats.errors == 1

    def test_spec_mismatch_inside_entry_is_a_miss(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        spec = sample_spec()
        path = st.put(spec, sample_result())
        document = json.load(open(path))
        document["spec"]["seed"] = 99  # hand-tampered entry
        json.dump(document, open(path, "w"))
        assert st.get(spec) is None
        assert st.stats.errors == 1

    def test_entries_len_and_clear(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        st.put(sample_spec(), sample_result())
        st.put(sample_spec(seed=2), sample_result())
        assert len(st) == 2
        listed = list(st.entries())
        assert len(listed) == 2
        assert all(isinstance(r, RunResult) for _, r in listed)
        assert st.clear() == 2
        assert len(st) == 0

    def test_writes_are_atomic_no_temp_residue(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        st.put(sample_spec(), sample_result())
        assert not [n for n in os.listdir(tmp_path) if n.startswith(".tmp-")]


class TestSweepOrphans:
    @staticmethod
    def plant_orphan(tmp_path, name, age_seconds):
        path = tmp_path / name
        path.write_text("{}")
        stamp = os.path.getmtime(path) - age_seconds
        os.utime(path, (stamp, stamp))
        return path

    def test_old_orphans_are_reaped(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        old = self.plant_orphan(
            tmp_path, ".tmp-dead.json", store.ORPHAN_MIN_AGE_SECONDS + 60
        )
        assert st.sweep_orphans() == 1
        assert not old.exists()

    def test_young_temp_files_survive(self, tmp_path):
        # a writer may be mid-put right now: the age guard keeps the
        # sweep from racing a live os.replace
        st = store.ResultStore(str(tmp_path))
        young = self.plant_orphan(tmp_path, ".tmp-live.json", 5)
        assert st.sweep_orphans() == 0
        assert young.exists()

    def test_results_are_never_touched(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        spec = sample_spec()
        st.put(spec, sample_result())
        self.plant_orphan(
            tmp_path, ".tmp-dead.json", store.ORPHAN_MIN_AGE_SECONDS + 60
        )
        assert st.sweep_orphans() == 1
        assert st.get(spec) == sample_result()

    def test_min_age_is_tunable(self, tmp_path):
        st = store.ResultStore(str(tmp_path))
        self.plant_orphan(tmp_path, ".tmp-x.json", 30)
        assert st.sweep_orphans(min_age_seconds=10) == 1

    def test_preload_store_sweeps(self, tmp_path, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        self.plant_orphan(
            tmp_path, ".tmp-dead.json", store.ORPHAN_MIN_AGE_SECONDS + 60
        )
        runner.preload_store()
        assert not (tmp_path / ".tmp-dead.json").exists()


class TestEnvironment:
    def test_store_dir_env_controls_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "here"))
        assert store.store_root() == str(tmp_path / "here")
        assert store.get_store().root == os.path.abspath(
            str(tmp_path / "here")
        )

    def test_store_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "0")
        assert not store.store_enabled()
        monkeypatch.setenv("REPRO_STORE", "1")
        assert store.store_enabled()

    def test_get_store_is_cached_per_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "a"))
        first = store.get_store()
        assert store.get_store() is first
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "b"))
        assert store.get_store() is not first

    def test_version_bump_invalidates_keys(self, monkeypatch):
        base = store.job_key(sample_spec())
        monkeypatch.setattr(store, "STORE_VERSION", store.STORE_VERSION + 1)
        assert store.job_key(sample_spec()) != base


class TestFidelityPayload:
    """The result codec and key discipline for the fast tier
    (docs/fidelity.md)."""

    def fidelity_record(self):
        return {
            "tier": "fast",
            "model_version": 1,
            "error_bars": {"cycles": 0.051, "coverage": 0.031},
            "calibration": {
                "samples": 3,
                "fraction": 0.2,
                "model_version": 1,
                "errors": {"cycles": {"max": 0.04, "mean": 0.02,
                                      "bound": 0.051}},
            },
        }

    def test_codec_round_trips_the_fidelity_field(self):
        result = sample_result(fidelity=self.fidelity_record())
        decoded = store.decode_result(store.encode_result(result))
        assert decoded == result
        assert decoded.fidelity["error_bars"]["cycles"] == 0.051

    def test_round_trip_through_json_text(self):
        result = sample_result(fidelity=self.fidelity_record())
        payload = json.loads(json.dumps(store.encode_result(result)))
        assert store.decode_result(payload) == result

    def test_exact_payloads_omit_the_key(self):
        assert "fidelity" not in store.encode_result(sample_result())

    def test_store_round_trip_preserves_error_bars(self, tmp_path):
        active = store.ResultStore(str(tmp_path))
        spec = store.job_spec("tpcc", "PMS", 2000, 1, 1, "ahb", None,
                              make_config("PMS"), fidelity="fast")
        result = sample_result(fidelity=self.fidelity_record())
        active.put(spec, result)
        fetched = active.get(spec)
        assert fetched == result
        assert fetched.error_bar("cycles") == 0.051
        assert fetched.fidelity_tier == "fast"

    def test_exact_spec_shape_is_unchanged(self):
        # pre-existing store entries must stay addressable
        spec = sample_spec()
        assert "fidelity" not in spec and "fast_model" not in spec

    def test_fast_spec_keys_cover_the_model_version(self, monkeypatch):
        from repro.fastsim import version as fv
        config = make_config("PMS")
        spec_v1 = store.job_spec("tpcc", "PMS", 2000, 1, 1, "ahb", None,
                                 config, fidelity="fast")
        monkeypatch.setattr(fv, "FAST_MODEL_VERSION",
                            fv.FAST_MODEL_VERSION + 1)
        spec_v2 = store.job_spec("tpcc", "PMS", 2000, 1, 1, "ahb", None,
                                 config, fidelity="fast")
        assert store.job_key(spec_v1) != store.job_key(spec_v2)

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            store.job_spec("tpcc", "PMS", 2000, 1, 1, "ahb", None,
                           make_config("PMS"), fidelity="approximate")
