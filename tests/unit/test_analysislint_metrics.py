"""MET rules: metric-name registry, naming contract, stray-read checks."""

import os

import pytest

from repro.analysislint.obsmetrics import (
    METRIC_REGISTRY_RELPATH,
    MetricNameRule,
    MetricRegistryRule,
    UnknownMetricReadRule,
    load_committed,
    scan_metrics,
    write_metric_registry,
)
from tests.unit._lint_util import mount, mount_text, real_tree

FIXTURE = ("met_violations.py", "src/repro/obs/met_violations.py")

CLEAN_SRC = """\
def register(registry):
    registry.counter("repro_jobs_total", "Jobs.", ("outcome",))
    registry.histogram("repro_lat_seconds", "Latency.")
"""


def met_tree(tmp_path, text=CLEAN_SRC):
    return mount_text(text, "src/repro/obs/mets.py", root=str(tmp_path))


def commit_registry(tree, root):
    os.makedirs(os.path.join(root, "src", "repro", "obs"), exist_ok=True)
    return write_metric_registry(tree, root)


class TestNameContract:
    @pytest.fixture(scope="class")
    def tree(self):
        return mount(FIXTURE)

    def test_all_four_contract_breaches_flagged(self, tree):
        findings = MetricNameRule().check(tree)
        messages = sorted(f.message for f in findings)
        assert len(findings) == 4
        assert any("counter names must end in _total" in m for m in messages)
        assert any("repro_[a-z0-9_]*" in m for m in messages)
        assert any("exceed the cardinality cap" in m for m in messages)
        assert any("not statically extractable" in m for m in messages)

    def test_clean_gauge_not_flagged(self, tree):
        assert not any(
            "repro_queue_depth" in f.message
            for f in MetricNameRule().check(tree)
        )

    def test_waived_dynamic_with_pragma_is_clean(self):
        tree = mount_text(
            "# lint: metric-names(repro_thing_total)\n"
            "def reg(registry, s):\n"
            "    registry.counter(  # lint: metric-dynamic\n"
            '        f"repro_{s}_total", "Dynamic.")\n',
            "src/repro/obs/dyn.py",
        )
        assert MetricNameRule().check(tree) == []
        assert "repro_thing_total" in scan_metrics(tree).names

    def test_waived_dynamic_without_pragma_still_flagged(self):
        tree = mount_text(
            "def reg(registry, s):\n"
            "    registry.counter(  # lint: metric-dynamic\n"
            '        f"repro_{s}_total", "Dynamic.")\n',
            "src/repro/obs/dyn.py",
        )
        findings = MetricNameRule().check(tree)
        assert len(findings) == 1
        assert "declares no" in findings[0].message

    def test_non_registry_receiver_ignored(self):
        # a .counter() on some unrelated object is not a registration site
        tree = mount_text(
            "def f(tally, s):\n"
            '    tally.counter(f"repro_{s}_total")\n',
            "src/repro/obs/other.py",
        )
        assert scan_metrics(tree).sites == []


class TestUnknownReads:
    def test_typo_read_flagged(self):
        tree = mount(FIXTURE)
        findings = UnknownMetricReadRule().check(tree)
        assert len(findings) == 1
        assert "repro_jobs_typo_total" in findings[0].message
        assert findings[0].symbol == "scrape_check"

    def test_exposition_suffixes_resolve(self, tmp_path):
        tree = met_tree(
            tmp_path,
            CLEAN_SRC
            + "\n\ndef check(text):\n"
            '    return "repro_lat_seconds_bucket" in text\n',
        )
        assert UnknownMetricReadRule().check(tree) == []

    def test_waiver_suppresses(self, tmp_path):
        tree = met_tree(
            tmp_path,
            CLEAN_SRC
            + "\n\ndef check(text):\n"
            '    return "repro_not_here_total" in text  # lint: metric-read-ok\n',
        )
        assert UnknownMetricReadRule().check(tree) == []


class TestRegistryParity:
    def test_fresh_registry_is_clean(self, tmp_path):
        tree = met_tree(tmp_path)
        commit_registry(tree, str(tmp_path))
        assert MetricRegistryRule().check(tree) == []

    def test_missing_registry_demands_write_registry(self, tmp_path):
        findings = MetricRegistryRule().check(met_tree(tmp_path))
        assert len(findings) == 1
        assert "metric registry missing" in findings[0].message

    def test_new_metric_reported_as_unregistered(self, tmp_path):
        commit_registry(met_tree(tmp_path), str(tmp_path))
        grown = met_tree(
            tmp_path,
            CLEAN_SRC + '    registry.gauge("repro_new_depth", "New.")\n',
        )
        findings = MetricRegistryRule().check(grown)
        assert len(findings) == 1
        assert "unregistered metrics" in findings[0].message
        assert "repro_new_depth" in findings[0].message

    def test_dropped_metric_reported_as_stale(self, tmp_path):
        commit_registry(met_tree(tmp_path), str(tmp_path))
        shrunk = met_tree(
            tmp_path,
            'def register(registry):\n'
            '    registry.counter("repro_jobs_total", "Jobs.", ("outcome",))\n',
        )
        findings = MetricRegistryRule().check(shrunk)
        assert len(findings) == 1
        assert "stale registry metrics" in findings[0].message
        assert "repro_lat_seconds" in findings[0].message

    def test_label_change_reported(self, tmp_path):
        commit_registry(met_tree(tmp_path), str(tmp_path))
        relabeled = met_tree(
            tmp_path,
            CLEAN_SRC.replace('("outcome",)', '("outcome", "host")'),
        )
        findings = MetricRegistryRule().check(relabeled)
        assert len(findings) == 1
        assert "out of date" in findings[0].message
        assert "repro_jobs_total" in findings[0].message

    def test_committed_registry_round_trips(self, tmp_path):
        tree = met_tree(tmp_path)
        commit_registry(tree, str(tmp_path))
        committed = load_committed(str(tmp_path))
        assert committed == {
            "repro_jobs_total": ("counter", ("outcome",)),
            "repro_lat_seconds": ("histogram", ()),
        }


class TestRealTree:
    @pytest.mark.parametrize(
        "rule_cls", [MetricRegistryRule, MetricNameRule, UnknownMetricReadRule]
    )
    def test_real_tree_has_no_findings(self, rule_cls):
        findings = rule_cls().check(real_tree())
        assert findings == [], [f.render() for f in findings]

    def test_committed_registry_covers_the_fleet(self):
        from repro.obs.metric_names import METRIC_NAMES, is_known_metric

        assert "repro_runs_completed_total" in METRIC_NAMES
        # pragma-declared dynamic family from repro.obs.bridge
        assert "repro_run_prefetches_total" in METRIC_NAMES
        assert is_known_metric("repro_sweep_job_seconds_bucket")
        assert not is_known_metric("repro_nope_total")
