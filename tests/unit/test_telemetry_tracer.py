"""Unit tests for repro.telemetry.tracer — the event bus contract."""

from repro.telemetry.events import EpochBoundary, PrefetchIssued
from repro.telemetry.tracer import NULL_TRACER, Tracer


class TestDisabled:
    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_disabled_emit_reaches_no_sink(self):
        tracer = Tracer(enabled=False)
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(PrefetchIssued(t=1, line=2))
        assert seen == []

    def test_disabled_emit_counts_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(PrefetchIssued(t=1, line=2))
        assert tracer.total_events == 0

    def test_disabled_emit_accrues_no_overhead(self):
        tracer = Tracer(enabled=False)
        for _ in range(100):
            tracer.emit(PrefetchIssued(t=1, line=2))
        assert tracer.overhead_seconds() == 0.0


class TestDispatch:
    def test_global_sink_sees_everything(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(PrefetchIssued(t=1, line=2))
        tracer.emit(EpochBoundary(t=5, epoch=1))
        assert [e.kind for e in seen] == ["prefetch_issued", "epoch_boundary"]

    def test_kind_filtered_sink_sees_only_its_kinds(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append, kinds=("epoch_boundary",))
        tracer.emit(PrefetchIssued(t=1, line=2))
        tracer.emit(EpochBoundary(t=5, epoch=1))
        assert [e.kind for e in seen] == ["epoch_boundary"]

    def test_unsubscribe_stops_delivery(self):
        tracer = Tracer()
        seen = []
        sink = tracer.subscribe(seen.append)
        tracer.unsubscribe(sink)
        tracer.emit(PrefetchIssued(t=1, line=2))
        assert seen == []

    def test_unsubscribe_kind_filtered(self):
        tracer = Tracer()
        seen = []
        sink = tracer.subscribe(seen.append, kinds=("epoch_boundary",))
        tracer.unsubscribe(sink)
        tracer.emit(EpochBoundary(t=5, epoch=1))
        assert seen == []

    def test_counts_per_kind(self):
        tracer = Tracer()
        tracer.emit(PrefetchIssued(t=1, line=2))
        tracer.emit(PrefetchIssued(t=2, line=3))
        tracer.emit(EpochBoundary(t=5, epoch=1))
        assert tracer.counts["prefetch_issued"] == 2
        assert tracer.counts["epoch_boundary"] == 1
        assert tracer.total_events == 3

    def test_enabled_emit_measures_overhead(self):
        tracer = Tracer()
        tracer.subscribe(lambda e: None)
        for _ in range(50):
            tracer.emit(PrefetchIssued(t=1, line=2))
        assert tracer.overhead_seconds() > 0.0


class TestSummary:
    def test_summary_shape(self):
        tracer = Tracer()
        tracer.emit(EpochBoundary(t=5, epoch=1))
        s = tracer.summary()
        assert s["enabled"] is True
        assert s["events"] == {"epoch_boundary": 1}
        assert s["total_events"] == 1
        assert s["overhead_seconds"] >= 0.0
