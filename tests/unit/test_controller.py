"""Unit tests for the memory controller."""


from repro.common.config import (
    ControllerConfig,
    DRAMConfig,
    MemorySidePrefetcherConfig,
)
from repro.common.types import CommandKind, MemoryCommand, Provenance
from repro.controller.controller import MemoryController
from repro.dram.device import DRAMDevice
from repro.prefetch.memory_side import MemorySidePrefetcher


def build(ms_enabled=False, engine="nextline", **ctrl_kw):
    dram = DRAMDevice(DRAMConfig())
    ms = MemorySidePrefetcher(
        MemorySidePrefetcherConfig(enabled=ms_enabled, engine=engine), threads=1
    )
    completed = []
    mc = MemoryController(
        ControllerConfig(**ctrl_kw),
        dram,
        ms,
        on_read_complete=lambda cmd, now: completed.append((cmd, now)),
    )
    return mc, completed


def read(line):
    return MemoryCommand(CommandKind.READ, line)


def write(line):
    return MemoryCommand(CommandKind.WRITE, line)


def run_until_drained(mc, start=0, limit=10_000):
    now = start
    while not mc.idle():
        mc.tick(now)
        now += 1
        if now - start > limit:
            raise AssertionError("controller failed to drain")
    return now


class TestBasicFlow:
    def test_read_round_trip(self):
        mc, completed = build()
        cmd = read(5)
        assert mc.enqueue(cmd, 0)
        run_until_drained(mc)
        assert [c for c, _ in completed] == [cmd]

    def test_write_completes_silently(self):
        mc, completed = build()
        mc.enqueue(write(5), 0)
        run_until_drained(mc)
        assert completed == []
        assert mc.stats["writes_arrived"] == 1

    def test_full_read_queue_rejects(self):
        mc, _ = build(read_queue_depth=1)
        assert mc.enqueue(read(1), 0)
        assert not mc.enqueue(read(2), 0)
        assert mc.stats["read_rejects"] == 1

    def test_reads_arrive_stat_by_provenance(self):
        mc, _ = build()
        mc.enqueue(read(1), 0)
        ps = MemoryCommand(
            CommandKind.READ, 2, provenance=Provenance.PS_PREFETCH
        )
        mc.enqueue(ps, 0)
        assert mc.stats["reads_demand"] == 1
        assert mc.stats["reads_ps"] == 1

    def test_arrival_stamped(self):
        mc, _ = build()
        cmd = read(1)
        mc.enqueue(cmd, 7)
        assert cmd.arrival == 7

    def test_completion_order_has_overhead(self):
        mc, completed = build()
        mc.enqueue(read(5), 0)
        run_until_drained(mc)
        _, when = completed[0]
        # must include DRAM access plus controller overhead
        assert when >= ControllerConfig().overhead_mc_cycles + 8


class TestPrefetchFlow:
    def test_prefetch_generated_and_buffered(self):
        mc, _ = build(ms_enabled=True)
        mc.enqueue(read(100), 0)
        run_until_drained(mc)
        # next-line engine prefetched 101 into the buffer
        assert mc.ms.buffer.contains(101)

    def test_pb_hit_squashes_read(self):
        mc, completed = build(ms_enabled=True)
        mc.enqueue(read(100), 0)
        now = run_until_drained(mc)
        mc.enqueue(read(101), now)
        run_until_drained(mc, start=now)
        assert mc.pb_hits == 1
        assert len(completed) == 2

    def test_pb_hit_faster_than_dram(self):
        mc, completed = build(ms_enabled=True)
        mc.enqueue(read(100), 0)
        now = run_until_drained(mc)
        mc.enqueue(read(101), now)
        run_until_drained(mc, start=now)
        dram_latency = completed[0][1]
        pb_latency = completed[1][1] - now
        assert pb_latency < dram_latency

    def test_merge_with_in_flight_prefetch(self):
        mc, completed = build(ms_enabled=True)
        mc.enqueue(read(100), 0)
        # tick just enough for the prefetch to issue but not complete,
        # then demand the prefetched line
        for now in range(3):
            mc.tick(now)
        mc.enqueue(read(101), 3)
        run_until_drained(mc, start=3)
        lines = [c.line for c, _ in completed]
        assert lines.count(101) == 1
        # the line was fetched once: one prefetch issue, no demand issue
        assert mc.stats["issued_regular"] <= 2

    def test_disabled_prefetcher_never_issues(self):
        mc, _ = build(ms_enabled=False)
        mc.enqueue(read(100), 0)
        run_until_drained(mc)
        assert mc.stats["issued_prefetch"] == 0


class TestIdle:
    def test_fresh_controller_idle(self):
        mc, _ = build()
        assert mc.idle()

    def test_not_idle_with_queued_work(self):
        mc, _ = build()
        mc.enqueue(read(1), 0)
        assert not mc.idle()

    def test_not_idle_with_pending_lpq(self):
        mc, _ = build(ms_enabled=True)
        mc.enqueue(read(100), 0)
        mc.tick(0)
        # even if reorder queues drain, a pending prefetch keeps it busy
        assert not mc.idle() or mc.ms.lpq.head() is None


class TestWriteDrain:
    def test_writes_eventually_issue(self):
        mc, _ = build()
        for i in range(4):
            mc.enqueue(write(i), 0)
        run_until_drained(mc)
        assert mc.stats["issued_regular"] == 4

    def test_reads_priority_over_writes(self):
        mc, completed = build()
        mc.enqueue(write(0), 0)
        mc.enqueue(write(1), 0)
        mc.enqueue(read(2), 0)
        run_until_drained(mc)
        assert len(completed) == 1
