"""Unit tests for tools/check_docs.py (snippet extraction + link check).

Snippets are only *extracted and compiled* here, never executed —
executing every doc example is the CI docs job's task and too slow
for tier-1.
"""

import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestExtractSnippets:
    def test_finds_python_fence(self):
        snippets = check_docs.extract_snippets("x\n```python\nprint(1)\n```\ny\n")
        assert snippets == [(3, "print(1)")]

    def test_ignores_other_languages(self):
        text = "```bash\nls\n```\n\n```\nplain\n```\n"
        assert check_docs.extract_snippets(text) == []

    def test_skip_marker_suppresses_next_fence(self):
        text = (
            "<!-- docs-check: skip -->\n"
            "```python\nthis is not python\n```\n"
            "```python\nok = 1\n```\n"
        )
        assert check_docs.extract_snippets(text) == [(6, "ok = 1")]

    def test_skip_marker_only_reaches_three_lines(self):
        text = (
            "<!-- docs-check: skip -->\n"
            "a\nb\nc\nd\n"
            "```python\nfar = 1\n```\n"
        )
        snippets = check_docs.extract_snippets(text)
        assert snippets == [(7, "far = 1")]

    def test_indented_fence_is_dedented(self):
        text = "1. step\n\n   ```python\n   x = 1\n   y = x\n   ```\n"
        assert check_docs.extract_snippets(text) == [(4, "x = 1\ny = x")]

    def test_multiple_snippets_keep_line_numbers(self):
        text = "```python\na = 1\n```\ntext\n```python\nb = 2\n```\n"
        assert check_docs.extract_snippets(text) == [(2, "a = 1"), (6, "b = 2")]


class TestCheckLinks:
    def test_missing_target_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        problems = check_docs.check_links(str(doc), "[dead](nonexistent.md)\n")
        assert len(problems) == 1
        assert "nonexistent.md" in problems[0]

    def test_existing_relative_target_ok(self, tmp_path):
        (tmp_path / "other.md").write_text("# Sec\nhi\n")
        doc = tmp_path / "doc.md"
        text = "[ok](other.md) and [anchor](other.md#sec)\n"
        assert check_docs.check_links(str(doc), text) == []

    def test_dead_anchor_reported(self, tmp_path):
        (tmp_path / "other.md").write_text("# Real heading\n")
        doc = tmp_path / "doc.md"
        problems = check_docs.check_links(
            str(doc), "[x](other.md#no-such-section)\n"
        )
        assert len(problems) == 1
        assert "no-such-section" in problems[0]

    def test_anchor_slug_matches_github_style(self, tmp_path):
        (tmp_path / "other.md").write_text("## The `fast` tier, explained!\n")
        doc = tmp_path / "doc.md"
        text = "[ok](other.md#the-fast-tier-explained)\n"
        assert check_docs.check_links(str(doc), text) == []

    def test_external_links_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        text = "[w](https://example.com) [m](mailto:a@b.c)\n"
        assert check_docs.check_links(str(doc), text) == []

    def test_same_file_anchor_checked(self, tmp_path):
        doc = tmp_path / "doc.md"
        text = "# Intro\n[ok](#intro) [bad](#missing)\n"
        problems = check_docs.check_links(str(doc), text)
        assert len(problems) == 1
        assert "missing" in problems[0]

    def test_error_includes_line_number(self, tmp_path):
        doc = tmp_path / "doc.md"
        problems = check_docs.check_links(str(doc), "ok\n\n[x](gone.md)\n")
        assert ":3:" in problems[0]


class TestRealDocs:
    """The repo's own docs must stay extractable and internally linked."""

    DOCS = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

    @pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
    def test_links_resolve(self, path):
        assert check_docs.check_links(str(path), path.read_text()) == []

    def test_docs_contain_runnable_snippets(self):
        total = sum(
            len(check_docs.extract_snippets(p.read_text())) for p in self.DOCS
        )
        assert total >= 5

    @pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
    def test_snippets_compile(self, path):
        for lineno, code in check_docs.extract_snippets(path.read_text()):
            compile(code, f"{path.name}:{lineno}", "exec")

    def test_default_files_exist(self):
        files = check_docs.default_files()
        assert all(pathlib.Path(f).exists() for f in files)
        assert any(f.endswith("experiments.md") for f in files)
