"""Unit tests for repro.obs.spans and repro.obs.events.

Pins the disabled-by-default contract (NULL_SPANS / NULL_SPAN mirrors
NULL_METRICS), the encoded-span schema the fabric ships on the wire,
snapshot round-trips, and the Chrome trace-event export the
``repro obs trace export`` command renders for Perfetto.
"""

import json

import pytest

from repro.obs import spans as obs_spans
from repro.obs.events import EventBus
from repro.obs.spans import (
    NULL_SPAN,
    NULL_SPANS,
    SpanCollector,
    SpanError,
    check_context,
    check_span,
    load_spans,
    make_span,
    to_chrome_trace,
    write_spans,
)


class TestEncodedForm:
    def test_make_span_shape(self):
        doc = make_span("sweep.job", 100.0, 1.5, "t" * 32,
                        attributes={"benchmark": "milc"})
        assert doc["name"] == "sweep.job"
        assert doc["trace"] == "t" * 32
        assert doc["parent"] is None
        assert doc["start_unix"] == 100.0
        assert doc["duration_s"] == 1.5
        assert doc["status"] == "ok"
        assert doc["attrs"] == {"benchmark": "milc"}
        assert check_span(doc) == doc

    def test_negative_duration_clamped(self):
        assert make_span("x", 0.0, -3.0, "t")["duration_s"] == 0.0

    def test_check_span_rejects_non_object(self):
        with pytest.raises(SpanError, match="JSON object"):
            check_span([1, 2])

    def test_check_span_rejects_missing_ids(self):
        with pytest.raises(SpanError, match="'trace'"):
            check_span({"name": "x", "trace": "", "span": "s",
                        "status": "ok", "start_unix": 0, "duration_s": 0})

    def test_check_span_rejects_bool_number(self):
        doc = make_span("x", 0.0, 1.0, "t")
        doc["duration_s"] = True
        with pytest.raises(SpanError, match="duration_s"):
            check_span(doc)

    def test_check_span_rejects_unknown_fields(self):
        doc = make_span("x", 0.0, 1.0, "t")
        doc["surprise"] = 1
        with pytest.raises(SpanError, match="unknown span fields"):
            check_span(doc)

    def test_check_context(self):
        assert check_context(None) is None
        ctx = {"trace": "t", "span": "s"}
        assert check_context(ctx) == ctx
        with pytest.raises(SpanError, match="'span'"):
            check_context({"trace": "t"})
        with pytest.raises(SpanError, match="object or null"):
            check_context("t/s")


class TestDisabledContract:
    def test_null_collector_returns_null_span(self):
        span = NULL_SPANS.span("sweep.run_jobs", total=4)
        assert span is NULL_SPAN
        assert not span.enabled
        assert span.context() is None
        assert span.set_attr(extra=1) is span
        assert span.finish() is None
        with span:
            pass  # context-manager form is a no-op too
        assert len(NULL_SPANS) == 0

    def test_null_collector_ignores_add_and_ingest(self):
        assert NULL_SPANS.add("x", 0.0, 1.0) is None
        assert NULL_SPANS.ingest([make_span("x", 0.0, 1.0, "t")]) == 0
        assert len(NULL_SPANS) == 0

    def test_default_resolves_to_null_without_optin(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPANS", raising=False)
        obs_spans.reset_default_collector()
        try:
            assert obs_spans.default_collector() is NULL_SPANS
        finally:
            obs_spans.reset_default_collector()

    def test_env_var_enables_live_collector(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        obs_spans.reset_default_collector()
        try:
            collector = obs_spans.default_collector()
            assert collector.enabled
            assert collector is not NULL_SPANS
        finally:
            obs_spans.reset_default_collector()

    def test_set_default_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "0")
        mine = SpanCollector(enabled=True)
        obs_spans.set_default_collector(mine)
        try:
            assert obs_spans.default_collector() is mine
        finally:
            obs_spans.reset_default_collector()


class TestLiveSpans:
    def test_span_records_on_finish_with_parent_chain(self):
        collector = SpanCollector(enabled=True)
        with collector.span("sweep.run_jobs", total=2) as root:
            child = collector.span("sweep.job", parent=root,
                                   benchmark="milc")
            child.finish()
        docs = collector.spans()
        assert [d["name"] for d in docs] == ["sweep.job", "sweep.run_jobs"]
        job, run = docs
        assert job["trace"] == run["trace"]
        assert job["parent"] == run["span"]
        assert run["parent"] is None
        assert run["attrs"] == {"total": 2}

    def test_parent_can_be_wire_context(self):
        collector = SpanCollector(enabled=True)
        ctx = {"trace": "t" * 32, "span": "p" * 16}
        span = collector.span("fabric.sweep", parent=ctx)
        assert span.trace_id == ctx["trace"]
        assert span.parent_id == ctx["span"]

    def test_parent_can_be_full_span_doc(self):
        # add() returns the encoded doc; chaining it as a parent is how
        # the sweep engine builds job -> queue_wait/exec subtrees
        collector = SpanCollector(enabled=True)
        parent_doc = collector.add("sweep.job", 10.0, 2.0)
        child = collector.add("sweep.exec", 10.5, 1.5, parent=parent_doc)
        assert child["trace"] == parent_doc["trace"]
        assert child["parent"] == parent_doc["span"]

    def test_bad_parent_rejected(self):
        collector = SpanCollector(enabled=True)
        with pytest.raises(SpanError, match="parent context"):
            collector.span("x", parent={"trace": "t"})
        with pytest.raises(SpanError, match="cannot parent"):
            collector.span("x", parent=42)

    def test_exception_flips_status_to_error(self):
        collector = SpanCollector(enabled=True)
        with pytest.raises(RuntimeError):
            with collector.span("fabric.submit"):
                raise RuntimeError("boom")
        assert collector.spans()[0]["status"] == "error"

    def test_finish_is_idempotent(self):
        collector = SpanCollector(enabled=True)
        span = collector.span("x")
        assert span.finish() is not None
        assert span.finish() is None
        assert len(collector) == 1

    def test_bounded_with_eviction_count(self):
        collector = SpanCollector(enabled=True, capacity=3)
        for i in range(5):
            collector.add("x", float(i), 0.1)
        assert len(collector) == 3
        assert collector.dropped == 2
        assert [d["start_unix"] for d in collector.spans()] == [2.0, 3.0, 4.0]

    def test_ingest_validates(self):
        collector = SpanCollector(enabled=True)
        good = make_span("fabric.execute", 0.0, 1.0, "t")
        assert collector.ingest([good]) == 1
        with pytest.raises(SpanError):
            collector.ingest([{"name": "bad"}])

    def test_listeners_see_every_record(self):
        collector = SpanCollector(enabled=True)
        seen = []
        collector.subscribe(seen.append)
        collector.add("x", 0.0, 1.0)
        collector.span("y").finish()
        assert [d["name"] for d in seen] == ["x", "y"]


class TestSnapshots:
    def test_write_and_load_round_trip(self, tmp_path):
        collector = SpanCollector(enabled=True)
        collector.add("sweep.job", 5.0, 1.0, benchmark="tonto")
        path = write_spans(collector, directory=str(tmp_path))
        assert path == str(tmp_path / "latest.json")
        loaded = load_spans(path)
        assert loaded == collector.spans()
        with open(path) as handle:
            assert json.load(handle)["version"] == obs_spans.SPANS_VERSION

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("[1, 2]")
        with pytest.raises(SpanError, match="span snapshot"):
            load_spans(str(path))

    def test_default_directory_is_spans_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        path = write_spans([])
        assert path == str(tmp_path / "spans" / "latest.json")


class TestChromeTraceExport:
    def test_events_rebased_with_worker_lanes(self):
        trace = "t" * 32
        spans = [
            make_span("fabric.sweep", 100.0, 2.0, trace),
            make_span("fabric.execute", 100.5, 1.0, trace,
                      attributes={"worker": "w1"}),
            make_span("fabric.execute", 100.6, 0.5, trace,
                      attributes={"worker": "w2"}),
        ]
        document = to_chrome_trace(spans)
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert [e["ts"] for e in events] == [0, 500000, 600000]
        assert events[0]["dur"] == 2000000
        assert events[0]["cat"] == "fabric"
        assert {e["args"]["name"] for e in meta} == {"main", "w1", "w2"}
        # each distinct lane gets its own tid, shared pid
        assert len({e["tid"] for e in events}) == 3
        assert {e["pid"] for e in events} == {1}

    def test_empty_input(self):
        assert to_chrome_trace([])["traceEvents"] == []


class TestEventBus:
    def test_publish_reaches_every_subscriber(self):
        bus = EventBus()
        a, b = bus.subscribe(), bus.subscribe()
        assert bus.publish("progress", {"done": 1}) == 2
        assert a.get_nowait() == ("progress", {"done": 1})
        assert b.get_nowait() == ("progress", {"done": 1})

    def test_slow_subscriber_drops_its_own_oldest(self):
        bus = EventBus(capacity=2)
        q = bus.subscribe()
        for i in range(4):
            bus.publish("n", i)
        assert bus.dropped == 2
        assert [q.get_nowait()[1] for _ in range(2)] == [2, 3]

    def test_close_wakes_subscribers_with_sentinel(self):
        bus = EventBus()
        q = bus.subscribe()
        bus.close()
        assert q.get_nowait() is None
        assert bus.publish("n", 1) == 0
        # late subscribers learn of the shutdown immediately
        assert bus.subscribe().get_nowait() is None

    def test_unsubscribe(self):
        bus = EventBus()
        q = bus.subscribe()
        bus.unsubscribe(q)
        assert bus.subscribers == 0
        bus.unsubscribe(q)  # double-unsubscribe is a no-op
