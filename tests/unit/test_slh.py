"""Unit tests for the Likelihood Tables / Stream Length Histograms."""

import pytest

from repro.common.config import SLHConfig
from repro.prefetch.slh import LikelihoodTables, slh_bars


def make_tables(table_len=16, epoch_reads=1000):
    return LikelihoodTables(SLHConfig(table_len=table_len, epoch_reads=epoch_reads))


class TestRecordStream:
    def test_length_one_touches_only_first_entry(self):
        t = make_tables()
        t.record_stream(1)
        assert t.next[1] == 1
        assert t.next[2] == 0

    def test_length_l_adds_l_to_prefix(self):
        t = make_tables()
        t.record_stream(4)
        # a length-4 stream has 4 reads, all in streams of length >= i, i<=4
        assert t.next[1:6] == [4, 4, 4, 4, 0]

    def test_length_beyond_table_clamps(self):
        t = make_tables(table_len=4)
        t.record_stream(10)
        assert t.next[1:5] == [10, 10, 10, 10]

    def test_curr_decrements_saturating(self):
        t = make_tables()
        t.curr[1] = 3
        t.curr[2] = 1
        t.record_stream(2)
        assert t.curr[1] == 1
        assert t.curr[2] == 0  # saturates, never negative

    def test_counter_saturates_at_max(self):
        t = make_tables(table_len=4, epoch_reads=2)
        for _ in range(100):
            t.record_stream(4)
        assert t.next[1] == t.counter_max

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            make_tables().record_stream(0)

    def test_next_only_does_not_touch_curr(self):
        t = make_tables()
        t.curr[1] = 5
        t.record_stream_next_only(3)
        assert t.curr[1] == 5
        assert t.next[1] == 3


class TestRollover:
    def test_next_becomes_curr(self):
        t = make_tables()
        t.record_stream(3)
        t.rollover()
        assert t.curr[1:4] == [3, 3, 3]
        assert all(v == 0 for v in t.next)

    def test_epoch_start_snapshot(self):
        t = make_tables()
        t.record_stream(2)
        t.rollover()
        t.record_stream(2)  # decrements curr but not the snapshot
        assert t.epoch_start[1] == 2
        assert t.curr[1] == 0

    def test_epoch_counter(self):
        t = make_tables()
        t.rollover()
        t.rollover()
        assert t.epochs == 2


class TestShouldPrefetch:
    def test_empty_tables_never_prefetch(self):
        t = make_tables()
        assert not t.should_prefetch(1)

    def test_inequality_five_boundary(self):
        # lht(k) < 2*lht(k+1): equality must NOT prefetch
        t = make_tables()
        t.curr[1] = 4
        t.curr[2] = 2
        assert not t.should_prefetch(1)
        t.curr[2] = 3
        assert t.should_prefetch(1)

    def test_gemsfdtd_example_from_paper(self):
        # Paper Section 3.1: with 21.8% of reads in length-1 streams and
        # 43.7% in length-2 streams, prefetch at k=1 but not at k=2.
        t = make_tables()
        # construct lht from the figure's bar values (x1000 reads)
        bars = {1: 218, 2: 437, 3: 60, 4: 50, 5: 40, 6: 40, 7: 50}
        rest = 1000 - sum(bars.values())  # mass at length >= 8
        for i in range(1, 17):
            t.curr[i] = sum(v for k, v in bars.items() if k >= i)
            if i <= 8:
                t.curr[i] += rest
        assert t.should_prefetch(1)  # 78.2% chance of length >= 2
        assert not t.should_prefetch(2)  # 43.7% > remaining 34.5%

    def test_k_clamped_to_table(self):
        t = make_tables(table_len=4)
        t.curr[3] = 1
        t.curr[4] = 1
        # k beyond Lm uses the tail of the histogram
        assert t.should_prefetch(99) == t.should_prefetch(3)

    def test_degree_generalisation(self):
        # inequality (6): lht(k) < 2*lht(k+d)
        t = make_tables()
        t.curr[1] = 10
        t.curr[2] = 9
        t.curr[3] = 2
        assert t.should_prefetch(1, degree=1)
        assert not t.should_prefetch(1, degree=2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            make_tables().should_prefetch(0)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            make_tables(table_len=4).should_prefetch(1, degree=4)


class TestBars:
    def test_bars_reconstruct_fractions(self):
        t = make_tables(table_len=4)
        t.record_stream(1)  # 1 read in a length-1 stream
        t.record_stream(3)  # 3 reads in a length-3 stream
        t.rollover()
        bars = t.bars_epoch_start()
        assert bars[1] == pytest.approx(0.25)
        assert bars[2] == pytest.approx(0.0)
        assert bars[3] == pytest.approx(0.75)

    def test_bars_sum_to_one(self):
        t = make_tables()
        for length in (1, 2, 2, 5, 16, 20):
            t.record_stream(length)
        t.rollover()
        assert sum(t.bars_epoch_start()[1:]) == pytest.approx(1.0)

    def test_last_bar_aggregates_tail(self):
        t = make_tables(table_len=4)
        t.record_stream(9)
        t.rollover()
        assert t.bars_epoch_start()[4] == pytest.approx(1.0)

    def test_empty_bars_all_zero(self):
        assert all(b == 0 for b in make_tables().bars_next())


class TestSlhBarsFunction:
    def test_zero_total(self):
        assert slh_bars([0, 0, 0, 0, 0], 4) == [0.0] * 5

    def test_explicit_vector(self):
        # 10 reads total; 4 in length-1 streams, 6 in length>=2
        lht = [0, 10, 6, 6, 6]
        bars = slh_bars(lht, 4)
        assert bars[1] == pytest.approx(0.4)
        assert bars[2] == pytest.approx(0.0)
        assert bars[4] == pytest.approx(0.6)

    def test_negative_differences_clamped(self):
        # a noisy lht (non-monotone) must not yield negative bars
        bars = slh_bars([0, 5, 6, 0, 0], 4)
        assert all(b >= 0 for b in bars)
