"""Unit tests for the two Prefetch Buffer check points and conflict
accounting in the controller."""


from repro.common.config import (
    ControllerConfig,
    DRAMConfig,
    MemorySidePrefetcherConfig,
)
from repro.common.types import CommandKind, MemoryCommand, Provenance
from repro.controller.controller import MemoryController
from repro.dram.device import DRAMDevice
from repro.prefetch.memory_side import MemorySidePrefetcher


def build(engine="nextline", enabled=True, banks=1):
    dram = DRAMDevice(DRAMConfig(ranks=1, banks_per_rank=banks))
    ms = MemorySidePrefetcher(
        MemorySidePrefetcherConfig(enabled=enabled, engine=engine), threads=1
    )
    completed = []
    mc = MemoryController(
        ControllerConfig(),
        dram,
        ms,
        on_read_complete=lambda cmd, now: completed.append((cmd, now)),
    )
    return mc, completed


def read(line):
    return MemoryCommand(CommandKind.READ, line)


def drain(mc, start=0, limit=20_000):
    now = start
    while not mc.idle():
        mc.tick(now)
        now += 1
        assert now - start < limit
    return now


class TestFirstCheckPoint:
    def test_hit_before_caq(self):
        mc, completed = build()
        mc.ms.buffer.insert(7)
        mc.enqueue(read(7), 0)
        drain(mc)
        assert mc.stats["pb_hits_pre_caq"] == 1
        assert mc.stats["issued_regular"] == 0

    def test_miss_goes_to_dram(self):
        mc, _ = build()
        mc.enqueue(read(7), 0)
        drain(mc)
        assert mc.stats["pb_hits_pre_caq"] == 0
        assert mc.stats["issued_regular"] == 1


class TestSecondCheckPoint:
    def test_data_arriving_while_in_caq_squashes(self):
        # single bank: the second read sits in the CAQ behind the first;
        # meanwhile its line materialises in the Prefetch Buffer
        mc, completed = build(banks=1)
        mc.enqueue(read(0), 0)
        mc.enqueue(read(100), 0)  # same bank -> waits in the CAQ
        # let both move into the CAQ; the first occupies the bank
        for now in range(3):
            mc.tick(now)
        assert len(mc.caq) >= 1
        mc.ms.buffer.insert(100)  # prefetch data "arrives"
        drain(mc, start=3)
        assert mc.stats["pb_hits_caq"] == 1
        assert len(completed) == 2


class TestConflictAccounting:
    def test_blocked_head_read_counts_conflict(self):
        mc, _ = build(banks=1)
        # put a prefetch in flight on the only bank
        pf = MemoryCommand(
            CommandKind.READ, 0, provenance=Provenance.MS_PREFETCH
        )
        mc.ms.lpq.push(pf)
        mc.tick(0)  # prefetch issues (everything else empty: policy 1 ok)
        assert mc.stats["issued_prefetch"] == 1
        # a regular read to the held bank arrives and is blocked
        mc.enqueue(read(100), 1)
        mc.tick(1)
        mc.tick(2)
        assert mc.ms.scheduler.stats["conflicts"] >= 1

    def test_conflict_counted_once_per_command(self):
        mc, _ = build(banks=1)
        pf = MemoryCommand(
            CommandKind.READ, 0, provenance=Provenance.MS_PREFETCH
        )
        mc.ms.lpq.push(pf)
        mc.tick(0)
        mc.enqueue(read(100), 1)
        for now in range(1, 6):
            mc.tick(now)
        assert mc.ms.scheduler.stats["conflicts"] == 1

    def test_delayed_regular_stat(self):
        mc, _ = build(banks=1)
        pf = MemoryCommand(
            CommandKind.READ, 0, provenance=Provenance.MS_PREFETCH
        )
        mc.ms.lpq.push(pf)
        mc.tick(0)
        mc.enqueue(read(100), 1)
        drain(mc, start=1)
        assert mc.stats["delayed_regular"] >= 1

    def test_no_conflicts_without_prefetches(self):
        mc, _ = build(enabled=False, banks=1)
        mc.enqueue(read(0), 0)
        mc.enqueue(read(100), 0)
        drain(mc)
        assert mc.ms.scheduler.stats["conflicts"] == 0
        assert mc.stats["delayed_regular"] == 0
