"""Unit tests for the system-configuration presets."""

import pytest

from repro.system.presets import ABLATION_CONFIGS, CONFIG_NAMES, make_config


class TestPrimaryConfigs:
    def test_np_disables_everything(self):
        cfg = make_config("NP")
        assert not cfg.ms_prefetcher.enabled
        assert not cfg.ps_prefetcher.enabled

    def test_ps_only(self):
        cfg = make_config("PS")
        assert not cfg.ms_prefetcher.enabled
        assert cfg.ps_prefetcher.enabled

    def test_ms_only(self):
        cfg = make_config("MS")
        assert cfg.ms_prefetcher.enabled
        assert cfg.ms_prefetcher.engine == "asd"
        assert not cfg.ps_prefetcher.enabled

    def test_pms_both(self):
        cfg = make_config("PMS")
        assert cfg.ms_prefetcher.enabled
        assert cfg.ps_prefetcher.enabled

    def test_all_primary_names(self):
        for name in CONFIG_NAMES:
            assert make_config(name).name == name


class TestAblationConfigs:
    def test_fixed_policy_configs(self):
        for k in range(1, 6):
            cfg = make_config(f"PMS_POLICY{k}")
            assert cfg.ms_prefetcher.scheduling.fixed_policy == k

    def test_nextline_engine(self):
        assert make_config("PMS_NEXTLINE").ms_prefetcher.engine == "nextline"

    def test_p5_engine(self):
        assert make_config("PMS_P5MC").ms_prefetcher.engine == "p5"

    def test_all_ablation_configs_build(self):
        for name in ABLATION_CONFIGS:
            make_config(name)

    def test_degree_config(self):
        assert make_config("PMS_DEGREE3").ms_prefetcher.degree == 3

    def test_asd_ps_extension(self):
        cfg = make_config("ASD_PS")
        assert cfg.ms_prefetcher.enabled
        assert not cfg.ps_prefetcher.enabled


class TestOptions:
    def test_threads_passthrough(self):
        assert make_config("PMS", threads=2).threads == 2

    def test_scheduler_passthrough(self):
        assert make_config("NP", scheduler="in_order").controller.scheduler == "in_order"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_config("TURBO")

    def test_base_config_respected(self):
        from dataclasses import replace

        base = make_config("NP")
        base = base.derive(core=replace(base.core, mlp=7))
        cfg = make_config("PMS", base=base)
        assert cfg.core.mlp == 7
