"""Unit tests for the perf measurement helper and regression gate."""

import pytest

from repro.perf import (
    DEFAULT_FAIL_THRESHOLD,
    PERF_SCHEMA_VERSION,
    compare_reports,
    load_report,
    measure_suite,
    write_report,
)

TINY = dict(
    configs=("NP", "PMS"),
    accesses=300,
    benchmarks=("bwaves",),
    threads=1,
    seed=1,
)


@pytest.fixture(scope="module")
def tiny_report():
    return measure_suite("spec2006fp", **TINY)


class TestMeasureSuite:
    def test_report_shape(self, tiny_report):
        report = tiny_report
        assert report["schema"] == PERF_SCHEMA_VERSION
        assert report["suite"] == "spec2006fp"
        assert report["benchmarks"] == ["bwaves"]
        assert report["configs"] == ["NP", "PMS"]
        assert report["accesses"] == 300
        assert set(report["modes"]) == {"event", "reference"}
        for mode in report["modes"].values():
            assert mode["cycles"] > 0
            assert mode["wall_seconds"] >= 0
            assert mode["cycles_per_second"] > 0
        assert report["speedup_vs_reference"] > 0

    def test_both_modes_simulate_the_same_cycles(self, tiny_report):
        modes = tiny_report["modes"]
        assert modes["event"]["cycles"] == modes["reference"]["cycles"]

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown loop mode"):
            measure_suite("spec2006fp", modes=("turbo",), **TINY)

    def test_roundtrip(self, tiny_report, tmp_path):
        path = str(tmp_path / "perf.json")
        write_report(path, tiny_report)
        assert load_report(path) == tiny_report


def _report(schema=PERF_SCHEMA_VERSION, suite="spec2006fp", speedup=1.4):
    return {
        "schema": schema,
        "suite": suite,
        "speedup_vs_reference": speedup,
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        assert compare_reports(_report(), _report()) == []

    def test_small_drop_within_threshold_passes(self):
        current = _report(speedup=1.4 * (1 - DEFAULT_FAIL_THRESHOLD) + 0.01)
        assert compare_reports(current, _report(speedup=1.4)) == []

    def test_improvement_passes(self):
        assert compare_reports(_report(speedup=2.0), _report(speedup=1.4)) == []

    def test_regression_fails(self):
        problems = compare_reports(_report(speedup=1.0), _report(speedup=1.4))
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_threshold_is_respected(self):
        current, baseline = _report(speedup=1.0), _report(speedup=1.4)
        assert compare_reports(current, baseline, threshold=0.5) == []
        assert compare_reports(current, baseline, threshold=0.1)

    def test_schema_mismatch_fails(self):
        problems = compare_reports(_report(schema=99), _report())
        assert problems and "schema mismatch" in problems[0]

    def test_suite_mismatch_fails(self):
        problems = compare_reports(_report(suite="nas"), _report())
        assert problems and "suite mismatch" in problems[0]

    def test_missing_ratio_fails(self):
        current = _report()
        del current["speedup_vs_reference"]
        problems = compare_reports(current, _report())
        assert problems and "missing" in problems[0]
