"""Unit tests for RunResult extras: occupancy averages and JSON export."""

import json

import pytest

from repro import Trace, make_config, simulate


@pytest.fixture(scope="module")
def result():
    records = [(2, (1 << 34) + i, False) for i in range(300)]
    return simulate(make_config("PMS"), Trace(records, name="unit"))


class TestQueueOccupancy:
    def test_occupancies_non_negative(self, result):
        for queue in ("read_queue", "write_queue", "caq", "lpq"):
            assert result.avg_queue_occupancy(queue) >= 0.0

    def test_bounded_by_depths(self, result):
        assert result.avg_queue_occupancy("caq") <= 3
        assert result.avg_queue_occupancy("lpq") <= 3
        assert result.avg_queue_occupancy("read_queue") <= 8

    def test_zero_ticks_safe(self):
        from repro.system.results import RunResult

        empty = RunResult("NP", "x", 0, 0, 8)
        assert empty.avg_queue_occupancy() == 0.0


class TestToDict:
    def test_json_round_trips(self, result):
        payload = json.dumps(result.to_dict())
        back = json.loads(payload)
        assert back["config"] == "PMS"
        assert back["benchmark"] == "unit"
        assert back["cycles"] == result.cycles

    def test_power_section_present(self, result):
        d = result.to_dict()
        assert d["power"]["energy_uj"] > 0

    def test_derived_metrics_included(self, result):
        d = result.to_dict()
        assert 0 <= d["coverage"] <= 1
        assert d["avg_demand_latency_mc"] > 0
