"""Unit tests for the external-trace loaders (repro.scenarios.loaders)."""

import gzip

import pytest

from repro.scenarios.loaders import (
    ConversionReport,
    convert_trace,
    detect_format,
    iter_champsim,
    iter_csv,
    load_external,
    split_threads,
)
from repro.workloads.trace import Trace


def write(path, text):
    if str(path).endswith(".gz"):
        with gzip.open(str(path), "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write_text(text)
    return str(path)


class TestChampsim:
    def test_two_field_lines_use_default_gap(self, tmp_path):
        path = write(tmp_path / "t.trace", "0x1000 R\n0x1040 W\n")
        records = list(iter_champsim(path, line_size=64, default_gap=7))
        assert records == [(7, 0x40, False, 0), (7, 0x41, True, 0)]

    def test_instruction_counts_derive_gaps(self, tmp_path):
        path = write(tmp_path / "t.trace",
                     "10 0x1000 L\n11 0x1040 L\n20 0x1080 S\n")
        gaps = [r[0] for r in iter_champsim(path, default_gap=5)]
        # first access uses the default; then count deltas minus one
        assert gaps == [5, 0, 8]

    def test_backwards_count_rejected(self, tmp_path):
        path = write(tmp_path / "t.trace", "10 0x1000 L\n5 0x1040 L\n")
        with pytest.raises(ValueError, match="goes backwards"):
            list(iter_champsim(path))

    def test_line_size_rebasing(self, tmp_path):
        path = write(tmp_path / "t.trace", "0x1000 R\n")
        assert next(iter_champsim(path, line_size=128))[1] == 0x1000 >> 7
        assert next(iter_champsim(path, line_size=32))[1] == 0x1000 >> 5

    def test_non_power_of_two_line_size_rejected(self, tmp_path):
        path = write(tmp_path / "t.trace", "0x1000 R\n")
        with pytest.raises(ValueError, match="power of two"):
            list(iter_champsim(path, line_size=48))

    def test_bad_type_names_file_and_line(self, tmp_path):
        path = write(tmp_path / "t.trace", "0x1000 R\n0x1040 Q\n")
        with pytest.raises(ValueError) as err:
            list(iter_champsim(path))
        assert str(path) in str(err.value)
        assert ":2:" in str(err.value)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = write(tmp_path / "t.trace", "# hdr\n\n0x1000 R\n")
        assert len(list(iter_champsim(path))) == 1

    def test_decimal_and_bare_hex_addresses(self, tmp_path):
        path = write(tmp_path / "t.trace", "4096 R\nfa0 R\n")
        lines = [r[1] for r in iter_champsim(path, line_size=64)]
        assert lines == [4096 >> 6, 0xFA0 >> 6]


class TestCsv:
    def test_basic_rows_with_tid(self, tmp_path):
        path = write(tmp_path / "t.csv", "0x1000,R,0\n0x2000,W,1\n")
        records = list(iter_csv(path, default_gap=3))
        assert records == [(3, 0x40, False, 0), (3, 0x80, True, 1)]

    def test_header_row_skipped(self, tmp_path):
        path = write(tmp_path / "t.csv", "addr,rw,tid\n0x1000,R,0\n")
        assert len(list(iter_csv(path))) == 1

    def test_bad_address_after_data_is_error(self, tmp_path):
        path = write(tmp_path / "t.csv", "0x1000,R\nnope,R\n")
        with pytest.raises(ValueError, match="bad address"):
            list(iter_csv(path))

    def test_negative_tid_rejected(self, tmp_path):
        path = write(tmp_path / "t.csv", "0x1000,R,-2\n")
        with pytest.raises(ValueError, match="negative tid"):
            list(iter_csv(path))

    def test_gzipped_csv(self, tmp_path):
        path = write(tmp_path / "t.csv.gz", "0x1000,R\n0x1040,W\n")
        assert len(list(iter_csv(path))) == 2


class TestDetectFormat:
    def test_csv_suffixes(self):
        assert detect_format("a.csv") == "csv"
        assert detect_format("a.CSV.GZ") == "csv"

    def test_everything_else_is_champsim(self):
        assert detect_format("a.trace") == "champsim"
        assert detect_format("a.txt.gz") == "champsim"


class TestConvert:
    def test_roundtrip_through_internal_format(self, tmp_path):
        source = write(tmp_path / "t.csv", "0x1000,R\n0x1040,W\n0x2000,R\n")
        output = str(tmp_path / "t.trace")
        report = convert_trace(source, output, default_gap=2)
        assert isinstance(report, ConversionReport)
        assert report.records == 3
        assert report.writes == 1
        loaded = Trace.load(output)
        assert loaded.records == [(2, 0x40, False), (2, 0x41, True),
                                  (2, 0x80, False)]

    def test_gzip_output(self, tmp_path):
        source = write(tmp_path / "t.csv", "0x1000,R\n")
        output = str(tmp_path / "t.trace.gz")
        convert_trace(source, output)
        assert Trace.load(output).records == [(20, 0x40, False)]

    def test_limit_caps_conversion(self, tmp_path):
        source = write(tmp_path / "t.csv",
                       "".join(f"{hex(4096 + 64 * i)},R\n" for i in range(9)))
        output = str(tmp_path / "t.trace")
        assert convert_trace(source, output, limit=4).records == 4
        assert len(Trace.load(output)) == 4

    def test_empty_input_rejected(self, tmp_path):
        source = write(tmp_path / "t.csv", "# nothing\n")
        with pytest.raises(ValueError, match="no trace records"):
            convert_trace(source, str(tmp_path / "o.trace"))

    def test_unknown_format_rejected(self, tmp_path):
        source = write(tmp_path / "t.csv", "0x1000,R\n")
        with pytest.raises(ValueError, match="unknown trace format"):
            convert_trace(source, str(tmp_path / "o.trace"), fmt="vcd")

    def test_summary_mentions_counts(self, tmp_path):
        source = write(tmp_path / "t.csv", "0x1000,R\n0x1040,W\n")
        report = convert_trace(source, str(tmp_path / "o.trace"))
        assert "2 records" in report.summary()


class TestLoadExternalAndSplit:
    def test_load_external_returns_trace(self, tmp_path):
        path = write(tmp_path / "t.trace", "0x1000 R\n0x1040 W\n")
        trace = load_external(path, name="ext")
        assert trace.name == "ext"
        assert trace.records == [(20, 0x40, False), (20, 0x41, True)]

    def test_split_threads(self, tmp_path):
        path = write(tmp_path / "t.csv",
                     "0x1000,R,0\n0x2000,R,1\n0x1040,W,0\n")
        by_tid = split_threads(iter_csv(path), name="smt")
        assert sorted(by_tid) == [0, 1]
        assert by_tid[0].records == [(20, 0x40, False), (20, 0x41, True)]
        assert by_tid[1].name == "smt#t1"
