"""Unit tests for the experiment runner's environment handling."""

import pytest

from repro.experiments import runner


@pytest.fixture(autouse=True)
def clean(monkeypatch):
    runner.clear_cache()
    monkeypatch.delenv("REPRO_TRACE_ACCESSES", raising=False)
    monkeypatch.delenv("REPRO_SEED", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    yield
    runner.clear_cache()


class TestDefaults:
    def test_default_accesses(self):
        assert runner.default_accesses() == 20_000

    def test_env_overrides_accesses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_ACCESSES", "777")
        assert runner.default_accesses() == 777

    def test_default_seed(self):
        assert runner.default_seed() == 1

    def test_env_overrides_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "42")
        assert runner.default_seed() == 42

    def test_default_jobs(self, monkeypatch):
        assert runner.default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert runner.default_jobs() == 4


class TestAccessesValidation:
    """``accesses=0`` means zero, not "use the default" (falsy-arg bug)."""

    def test_get_trace_rejects_zero(self):
        with pytest.raises(ValueError, match="positive trace length"):
            runner.get_trace("tonto", 0)

    def test_get_trace_rejects_negative(self):
        with pytest.raises(ValueError, match="positive trace length"):
            runner.get_trace("tonto", -5)

    def test_run_rejects_zero(self):
        with pytest.raises(ValueError, match="positive trace length"):
            runner.run("tonto", "NP", accesses=0)

    def test_none_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_ACCESSES", "600")
        trace = runner.get_trace("tonto", None)
        assert len(trace.records) == 600


class TestTraceCache:
    def test_same_key_same_object(self):
        a = runner.get_trace("tonto", 500, seed=1)
        b = runner.get_trace("tonto", 500, seed=1)
        assert a is b

    def test_different_seed_different_trace(self):
        a = runner.get_trace("tonto", 500, seed=1)
        b = runner.get_trace("tonto", 500, seed=2)
        assert a.records != b.records

    def test_cache_info_counts(self):
        runner.get_trace("tonto", 500)
        runner.get_trace("milc", 500)
        assert runner.cache_info() == {"traces": 2, "runs": 0, "simulated": 0}

    def test_simulated_counter(self):
        runner.run("tonto", "NP", accesses=500, use_store=False)
        runner.run("tonto", "NP", accesses=500, use_store=False)  # cache hit
        assert runner.cache_info()["simulated"] == 1


class TestStoreReadThrough:
    def test_run_is_served_from_store_after_cache_clear(self):
        first = runner.run("tonto", "NP", accesses=500)
        runner.clear_cache()
        second = runner.run("tonto", "NP", accesses=500)
        assert second == first
        assert runner.cache_info()["simulated"] == 0

    def test_use_store_false_skips_the_store(self):
        from repro.experiments import store

        runner.run("tonto", "NP", accesses=500, use_store=False)
        assert len(store.get_store()) == 0

    def test_store_env_disable(self, monkeypatch):
        from repro.experiments import store

        monkeypatch.setenv("REPRO_STORE", "0")
        runner.run("tonto", "NP", accesses=500)
        assert len(store.get_store()) == 0


class TestRunConfigs:
    def test_run_configs_keys(self):
        results = runner.run_configs("tonto", ("NP", "MS"), accesses=800)
        assert set(results) == {"NP", "MS"}
        assert results["NP"].config_name == "NP"

    def test_run_suite_shape(self):
        results = runner.run_suite(("tonto",), ("NP",), accesses=800)
        assert set(results) == {"tonto"}
        assert set(results["tonto"]) == {"NP"}

    def test_run_suite_unknown_kwarg_raises_even_parallel(self):
        # A typo must raise the same TypeError it would serially, not be
        # silently dropped by the parallel path.
        with pytest.raises(TypeError):
            runner.run_suite(("tonto",), ("NP",), accesses=800, jobs=2,
                             acesses=900)

    def test_run_suite_mutate_key_stays_serial(self):
        # mutate_key is part of the cache identity; the parallel path
        # cannot model it, so the suite must fall back to serial.
        runner.run_suite(("tonto",), ("NP",), accesses=800, jobs=2,
                         mutate_key="x")
        key = runner.cache_key("tonto", "NP", 800, runner.default_seed(),
                               mutate_key="x")
        assert runner.cached_result(key) is not None

    def test_scheduler_in_cache_key(self):
        a = runner.run("tonto", "NP", accesses=800, scheduler="ahb")
        b = runner.run("tonto", "NP", accesses=800, scheduler="in_order")
        assert a is not b
