"""Unit tests for the experiment runner's environment handling."""

import pytest

from repro.experiments import runner


@pytest.fixture(autouse=True)
def clean(monkeypatch):
    runner.clear_cache()
    monkeypatch.delenv("REPRO_TRACE_ACCESSES", raising=False)
    monkeypatch.delenv("REPRO_SEED", raising=False)
    yield
    runner.clear_cache()


class TestDefaults:
    def test_default_accesses(self):
        assert runner.default_accesses() == 20_000

    def test_env_overrides_accesses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_ACCESSES", "777")
        assert runner.default_accesses() == 777

    def test_default_seed(self):
        assert runner.default_seed() == 1

    def test_env_overrides_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "42")
        assert runner.default_seed() == 42


class TestTraceCache:
    def test_same_key_same_object(self):
        a = runner.get_trace("tonto", 500, seed=1)
        b = runner.get_trace("tonto", 500, seed=1)
        assert a is b

    def test_different_seed_different_trace(self):
        a = runner.get_trace("tonto", 500, seed=1)
        b = runner.get_trace("tonto", 500, seed=2)
        assert a.records != b.records

    def test_cache_info_counts(self):
        runner.get_trace("tonto", 500)
        runner.get_trace("milc", 500)
        assert runner.cache_info() == {"traces": 2, "runs": 0}


class TestRunConfigs:
    def test_run_configs_keys(self):
        results = runner.run_configs("tonto", ("NP", "MS"), accesses=800)
        assert set(results) == {"NP", "MS"}
        assert results["NP"].config_name == "NP"

    def test_run_suite_shape(self):
        results = runner.run_suite(("tonto",), ("NP",), accesses=800)
        assert set(results) == {"tonto"}
        assert set(results["tonto"]) == {"NP"}

    def test_scheduler_in_cache_key(self):
        a = runner.run("tonto", "NP", accesses=800, scheduler="ahb")
        b = runner.run("tonto", "NP", accesses=800, scheduler="in_order")
        assert a is not b
