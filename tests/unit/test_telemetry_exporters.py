"""Unit tests for repro.telemetry.exporters — JSONL, CSV/JSON, reports."""

import io
import json

import pytest

from repro.telemetry.events import EpochBoundary, PrefetchIssued
from repro.telemetry.exporters import (
    JsonlEventWriter,
    epoch_report,
    read_events_jsonl,
    series_to_csv,
    series_to_json,
)
from repro.telemetry.probes import EpochProbes
from repro.telemetry.tracer import Tracer


class TestJsonlRoundTrip:
    def test_events_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = [
            EpochBoundary(t=10, epoch=1, reads=1000, policy=2),
            PrefetchIssued(t=11, line=7, thread=0),
        ]
        with JsonlEventWriter(path) as writer:
            for event in events:
                writer(event)
            assert writer.events_written == 2
        assert read_events_jsonl(path) == events

    def test_subscribed_writer_captures_emissions(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = Tracer()
        with JsonlEventWriter(path) as writer:
            tracer.subscribe(writer)
            tracer.emit(PrefetchIssued(t=1, line=2))
        events = read_events_jsonl(path)
        assert events == [PrefetchIssued(t=1, line=2)]

    def test_borrowed_stream_left_open(self):
        stream = io.StringIO()
        writer = JsonlEventWriter(stream)
        writer(EpochBoundary(t=1, epoch=1))
        writer.close()
        assert not stream.closed
        assert json.loads(stream.getvalue())["kind"] == "epoch_boundary"

    def test_blank_lines_skipped_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind":"epoch_boundary","t":1,"epoch":1,"reads":0,'
                        '"policy":0}\n\n')
        assert len(read_events_jsonl(str(path))) == 1
        path.write_text('{"kind":"bogus","t":1}\n')
        with pytest.raises(ValueError):
            read_events_jsonl(str(path))


def _synthetic_probes() -> EpochProbes:
    """Probes pre-filled with hand-made series (no system required)."""
    probes = EpochProbes(interval=1, capacity=16)
    for epoch in (1, 2, 3):
        probes._series("policy.index").record(epoch, epoch % 3)
        probes._series("queue.lpq.avg").record(epoch, 0.5 * epoch)
        probes._series("queue.caq.avg").record(epoch, 0.25 * epoch)
        probes._series("prefetch.accuracy").record(epoch, 0.5)
        probes._series("prefetch.coverage").record(epoch, 0.25)
        probes._series("mc.delayed_regular").record(epoch, epoch)
        probes._series("dram.power_mw").record(epoch, 700.0 + epoch)
        probes._series("slh.lht.t0.asc").record(epoch, (0, 10, 5))
        probes.samples_taken += 1
        probes.epochs_seen += 1
    return probes


class TestSeriesExport:
    def test_csv_one_row_per_epoch(self, tmp_path):
        probes = _synthetic_probes()
        path = str(tmp_path / "series.csv")
        rows = series_to_csv(probes, path)
        assert rows == 3
        lines = open(path).read().splitlines()
        header = lines[0].split(",")
        assert header[0] == "epoch"
        assert "policy.index" in header
        assert "slh.lht.t0.asc" not in header  # vectors excluded from CSV
        assert len(lines) == 4

    def test_json_includes_vectors(self, tmp_path):
        probes = _synthetic_probes()
        path = str(tmp_path / "series.json")
        doc = series_to_json(probes, path)
        assert doc["series"]["slh.lht.t0.asc"]["values"][0] == [0, 10, 5]
        on_disk = json.loads(open(path).read())
        assert on_disk["series"].keys() == doc["series"].keys()

    def test_json_without_path_returns_doc(self):
        doc = series_to_json(_synthetic_probes())
        assert doc["samples_taken"] == 3


class TestEpochReport:
    def test_report_renders_sampled_epochs(self):
        report = epoch_report(_synthetic_probes())
        assert "policy" in report
        assert "dram mW" in report
        for epoch in ("1", "2", "3"):
            assert epoch in report

    def test_report_empty_probes(self):
        assert "no epochs sampled" in epoch_report(EpochProbes())

    def test_report_honours_max_rows(self):
        report = epoch_report(_synthetic_probes(), max_rows=1)
        lines = [ln for ln in report.splitlines() if ln and ln[0].isdigit()]
        assert len(lines) == 1
