"""Unit tests for repro.telemetry.series — ring buffers and series."""

import pytest

from repro.telemetry.series import RingBuffer, Series


class TestRingBuffer:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_under_capacity_keeps_order(self):
        rb = RingBuffer(4)
        for v in (1, 2, 3):
            rb.append(v)
        assert rb.values() == [1, 2, 3]
        assert rb.dropped == 0

    def test_wraparound_keeps_most_recent(self):
        rb = RingBuffer(3)
        for v in range(6):
            rb.append(v)
        assert rb.values() == [3, 4, 5]
        assert rb.dropped == 3
        assert len(rb) == 3

    def test_wraparound_partial(self):
        rb = RingBuffer(4)
        for v in range(5):
            rb.append(v)
        assert rb.values() == [1, 2, 3, 4]
        assert rb.dropped == 1

    def test_iteration_matches_values(self):
        rb = RingBuffer(2)
        for v in (1, 2, 3):
            rb.append(v)
        assert list(rb) == rb.values() == [2, 3]


class TestSeries:
    def test_records_epoch_value_pairs(self):
        s = Series("x", capacity=8)
        s.record(1, 10.0)
        s.record(2, 20.0)
        assert s.samples() == [(1, 10.0), (2, 20.0)]
        assert s.epochs() == [1, 2]
        assert s.points() == [10.0, 20.0]

    def test_wraparound_drops_oldest_epochs(self):
        s = Series("x", capacity=3)
        for epoch in range(1, 7):
            s.record(epoch, epoch * 1.0)
        assert s.epochs() == [4, 5, 6]
        assert s.dropped == 3

    def test_is_scalar_for_numbers(self):
        s = Series("x")
        s.record(1, 3)
        s.record(2, 4.5)
        assert s.is_scalar

    def test_is_scalar_false_for_tuples(self):
        s = Series("x")
        s.record(1, (1, 2, 3))
        assert not s.is_scalar
