"""Unit tests for repro.obs.progress — counters, ETA, and rendering."""

import io

from repro.obs.progress import (
    ProgressPrinter,
    SweepProgress,
    merge_snapshots,
    render_line,
)


class TestSnapshot:
    def test_initial_state(self):
        snap = SweepProgress(total=4, workers=2).snapshot()
        assert snap["total"] == 4
        assert snap["done"] == 0
        assert snap["remaining"] == 4
        assert snap["percent"] == 0.0
        assert snap["hit_rate"] is None
        assert snap["eta_seconds"] is None
        assert snap["finished"] is False

    def test_job_done_accounting(self):
        progress = SweepProgress(total=4)
        progress.job_done("cached")
        progress.job_done("store")
        progress.job_done("serial", seconds=2.0)
        snap = progress.snapshot()
        assert snap["done"] == 3
        assert snap["percent"] == 75.0
        assert snap["outcomes"]["cached"] == 1
        assert snap["outcomes"]["serial"] == 1
        assert snap["hit_rate"] == 2 / 3
        assert snap["mean_job_seconds"] == 2.0

    def test_eta_from_mean_job_seconds_and_workers(self):
        progress = SweepProgress(total=5, workers=2)
        progress.job_done("serial", seconds=4.0)
        # 4 remaining * 4s mean / 2 workers
        assert progress.snapshot()["eta_seconds"] == 8.0

    def test_eta_zero_when_done_or_finished(self):
        progress = SweepProgress(total=1)
        progress.job_done("cached")
        assert progress.snapshot()["eta_seconds"] == 0.0
        progress.finish()
        snap = progress.snapshot()
        assert snap["finished"] is True
        assert snap["eta_seconds"] == 0.0

    def test_finish_freezes_elapsed(self):
        progress = SweepProgress(total=1)
        progress.finish()
        first = progress.snapshot()["elapsed_seconds"]
        assert progress.snapshot()["elapsed_seconds"] == first

    def test_begin_rearms(self):
        progress = SweepProgress()
        progress.begin(total=7, workers=3)
        snap = progress.snapshot()
        assert snap["total"] == 7
        assert snap["workers"] == 3

    def test_note_event_counts(self):
        progress = SweepProgress(total=1)
        progress.note_event("timeout")
        progress.note_event("timeout")
        assert progress.snapshot()["events"] == {"timeout": 2}

    def test_subscribe_fires_on_updates(self):
        progress = SweepProgress(total=2)
        calls = []
        progress.subscribe(lambda p: calls.append(p.done))
        progress.job_done("cached")
        progress.finish()
        assert calls == [1, 1]


class TestMergeSnapshots:
    def test_empty_input_is_all_zero_and_finished(self):
        merged = merge_snapshots([])
        assert merged["total"] == 0
        assert merged["done"] == 0
        assert merged["finished"] is True
        assert merged["eta_seconds"] == 0.0
        assert merged["sources"] == 0

    def test_counts_sum_across_sources(self):
        first = SweepProgress(total=4, workers=2)
        first.job_done("fabric", seconds=2.0)
        first.job_done("store")
        second = SweepProgress(total=6, workers=1)
        second.job_done("cached")
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["total"] == 10
        assert merged["done"] == 3
        assert merged["remaining"] == 7
        assert merged["workers"] == 3
        assert merged["percent"] == 30.0
        counted = {k: v for k, v in merged["outcomes"].items() if v}
        assert counted == {"cached": 1, "store": 1, "fabric": 1}
        assert merged["hit_rate"] == 2 / 3
        assert merged["sources"] == 2

    def test_finished_only_when_every_source_is(self):
        done = SweepProgress(total=1)
        done.job_done("cached")
        done.finish()
        pending = SweepProgress(total=2)
        merged = merge_snapshots([done.snapshot(), pending.snapshot()])
        assert merged["finished"] is False
        pending.job_done("serial")
        pending.job_done("serial")
        pending.finish()
        merged = merge_snapshots([done.snapshot(), pending.snapshot()])
        assert merged["finished"] is True
        assert merged["eta_seconds"] == 0.0

    def test_eta_is_the_slowest_outstanding_source(self):
        fast = SweepProgress(total=2, workers=1)
        fast.job_done("serial", seconds=1.0)  # eta 1s
        slow = SweepProgress(total=11, workers=1)
        slow.job_done("serial", seconds=4.0)  # eta 40s
        merged = merge_snapshots([fast.snapshot(), slow.snapshot()])
        assert merged["eta_seconds"] == 40.0

    def test_events_sum(self):
        first = SweepProgress(total=1)
        first.note_event("timeout")
        second = SweepProgress(total=1)
        second.note_event("timeout")
        second.note_event("retry")
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["events"] == {"timeout": 2, "retry": 1}


class TestRenderLine:
    def test_mid_sweep_line(self):
        progress = SweepProgress(total=4, workers=1)
        progress.job_done("cached")
        progress.job_done("serial", seconds=1.5)
        line = render_line(progress.snapshot())
        assert line.startswith("sweep 2/4 (50%)")
        assert "1 cached" in line
        assert "1 serial" in line
        assert "eta" in line
        assert "hit 50%" in line

    def test_finished_line_shows_duration(self):
        progress = SweepProgress(total=1)
        progress.job_done("cached")
        progress.finish()
        line = render_line(progress.snapshot())
        assert "done in" in line
        assert "eta" not in line

    def test_events_appear(self):
        progress = SweepProgress(total=2)
        progress.note_event("pool_break")
        assert "1 pool_break" in render_line(progress.snapshot())


class TestProgressPrinter:
    def test_non_tty_prints_plain_lines(self):
        stream = io.StringIO()
        progress = SweepProgress(total=1)
        printer = ProgressPrinter(progress, stream=stream, min_interval=0.0)
        progress.subscribe(printer.on_change)
        progress.job_done("serial", seconds=0.1)
        printer.close()
        out = stream.getvalue()
        assert "\r" not in out
        assert out.count("\n") >= 1
        assert "sweep 1/1 (100%)" in out

    def test_throttling_suppresses_repaints(self):
        stream = io.StringIO()
        progress = SweepProgress(total=100)
        printer = ProgressPrinter(progress, stream=stream, min_interval=3600.0)
        progress.subscribe(printer.on_change)
        for _ in range(50):
            progress.job_done("cached")
        # first update paints immediately, the other 49 are throttled
        assert stream.getvalue().count("\n") == 1
        printer.close()  # forced final paint
        assert "sweep 50/100" in stream.getvalue()

    def test_close_is_idempotent(self):
        stream = io.StringIO()
        printer = ProgressPrinter(SweepProgress(total=1), stream=stream,
                                  min_interval=0.0)
        printer.close()
        once = stream.getvalue()
        printer.close()
        assert stream.getvalue() == once
