"""Unit tests for the exact-SLH tracker and accuracy metric."""

import pytest

from repro.analysis.slh_accuracy import exact_slh, slh_rms_error


class TestExactSLH:
    def test_single_stream(self):
        bars = exact_slh([10, 11, 12, 13], table_len=8)
        assert bars[4] == pytest.approx(1.0)

    def test_isolated_reads(self):
        bars = exact_slh([10, 50, 90], table_len=8)
        assert bars[1] == pytest.approx(1.0)

    def test_mixture(self):
        # one length-1 plus one length-3: 1 + 3 reads
        bars = exact_slh([100, 10, 11, 12], table_len=8)
        assert bars[1] == pytest.approx(0.25)
        assert bars[3] == pytest.approx(0.75)

    def test_descending_stream(self):
        bars = exact_slh([20, 19, 18], table_len=8)
        assert bars[3] == pytest.approx(1.0)

    def test_interleaved_streams(self):
        seq = [10, 500, 11, 501, 12, 502]
        bars = exact_slh(seq, table_len=8)
        assert bars[3] == pytest.approx(1.0)

    def test_window_splits_quiet_streams(self):
        # the second touch arrives far outside the liveness window
        seq = [10] + [1000 + i * 10 for i in range(80)] + [11]
        bars = exact_slh(seq, table_len=8, window=16)
        assert bars[2] == pytest.approx(0.0)

    def test_tail_bar_aggregates(self):
        seq = list(range(100, 110))  # length-10 stream, Lm=4
        bars = exact_slh(seq, table_len=4)
        assert bars[4] == pytest.approx(1.0)

    def test_empty_sequence(self):
        assert all(b == 0 for b in exact_slh([], table_len=4))

    def test_bars_sum_to_one(self):
        seq = [1, 2, 3, 50, 51, 99, 200, 201, 202, 203]
        bars = exact_slh(seq, table_len=16)
        assert sum(bars[1:]) == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            exact_slh([1], table_len=1)
        with pytest.raises(ValueError):
            exact_slh([1], window=0)


class TestRMSError:
    def test_identical_vectors(self):
        assert slh_rms_error([0, 0.5, 0.5], [0, 0.5, 0.5]) == 0.0

    def test_known_error(self):
        assert slh_rms_error([0, 1.0, 0.0], [0, 0.0, 1.0]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            slh_rms_error([0, 1], [0, 1, 2])

    def test_index_zero_excluded(self):
        assert slh_rms_error([5.0, 0.5], [0.0, 0.5]) == 0.0
