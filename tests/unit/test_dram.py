"""Unit tests for the DRAM bank and device models."""


from repro.common.config import DRAMConfig, DRAMTimingConfig
from repro.common.types import CommandKind, MemoryCommand, Provenance
from repro.dram.bank import Bank
from repro.dram.device import DRAMDevice


def timing(**kw):
    return DRAMTimingConfig(**kw)


def read(line, prov=Provenance.DEMAND):
    return MemoryCommand(CommandKind.READ, line, provenance=prov)


def write(line):
    return MemoryCommand(CommandKind.WRITE, line)


class TestBank:
    def test_first_access_pays_activate(self):
        b = Bank(timing())
        cas_at, activated = b.reserve(row=0, now=0, is_write=False)
        assert activated
        assert cas_at == timing().t_rcd

    def test_row_hit_skips_activate(self):
        b = Bank(timing())
        b.reserve(0, 0, False)
        cas_at, activated = b.reserve(0, now=50, is_write=False)
        assert not activated
        assert cas_at == 50

    def test_row_conflict_pays_precharge(self):
        t = timing()
        b = Bank(t)
        b.reserve(0, 0, False)
        # at a quiet time, switching rows costs tRP + tRCD after pre_ready
        cas_at, activated = b.reserve(1, now=100, is_write=False)
        assert activated
        assert cas_at == 100 + t.t_rp + t.t_rcd

    def test_tras_respected_on_early_conflict(self):
        t = timing()
        b = Bank(t)
        b.reserve(0, 0, False)  # act at 0; pre_ready >= t_ras
        cas_at, _ = b.reserve(1, now=0, is_write=False)
        assert cas_at >= t.t_ras + t.t_rp + t.t_rcd

    def test_trc_limits_back_to_back_activates(self):
        t = timing()
        b = Bank(t)
        b.reserve(0, 0, False)
        b.reserve(1, 0, False)  # precharge + activate
        # third row: second activate must be >= first act + 2*t_rc? at
        # least the act_ready bookkeeping must push it past one t_rc
        cas_at, _ = b.reserve(2, now=0, is_write=False)
        assert cas_at >= 2 * t.t_rc - t.t_rc + t.t_rcd  # >= t_rc + t_rcd

    def test_write_recovery_delays_precharge(self):
        t = timing()
        b = Bank(t)
        b.reserve(0, 0, True)  # a write
        cas_read_conflict, _ = b.reserve(1, now=0, is_write=False)
        b2 = Bank(t)
        b2.reserve(0, 0, False)  # a read
        cas_after_read, _ = b2.reserve(1, now=0, is_write=False)
        assert cas_read_conflict >= cas_after_read

    def test_hold_and_holder(self):
        b = Bank(timing())
        b.hold(Provenance.MS_PREFETCH, until=10)
        assert b.holder_at(5) is Provenance.MS_PREFETCH
        assert b.holder_at(10) is None
        assert b.busy_at(9)
        assert not b.busy_at(10)


class TestAddressMap:
    def test_lines_interleave_across_banks(self):
        dev = DRAMDevice(DRAMConfig(ranks=2, banks_per_rank=4))
        banks = [dev.locate(line)[0] for line in range(8)]
        assert banks == list(range(8))

    def test_row_advances_after_sweep(self):
        cfg = DRAMConfig(ranks=1, banks_per_rank=2, row_lines=2)
        dev = DRAMDevice(cfg)
        # bank 0 owns lines 0,2,4,6..; rows hold 2 of them
        assert dev.locate(0) == (0, 0)
        assert dev.locate(2) == (0, 0)
        assert dev.locate(4) == (0, 1)


class TestDevice:
    def test_issue_returns_completion(self):
        dev = DRAMDevice(DRAMConfig())
        result = dev.try_issue(read(0), now=0)
        assert result.accepted
        t = DRAMTimingConfig()
        assert result.completion == t.t_rcd + t.t_cl + t.burst_cycles

    def test_busy_bank_rejects(self):
        dev = DRAMDevice(DRAMConfig())
        dev.try_issue(read(0), 0)
        result = dev.try_issue(read(0), 1)
        assert not result.accepted
        assert result.blocked_by is Provenance.DEMAND

    def test_blocked_by_reports_prefetch(self):
        dev = DRAMDevice(DRAMConfig())
        dev.try_issue(read(0, Provenance.MS_PREFETCH), 0)
        result = dev.try_issue(read(0), 1)
        assert result.blocked_by is Provenance.MS_PREFETCH

    def test_different_banks_overlap(self):
        dev = DRAMDevice(DRAMConfig())
        r0 = dev.try_issue(read(0), 0)
        r1 = dev.try_issue(read(1), 1)  # different bank
        assert r0.accepted and r1.accepted

    def test_bus_serialises_transfers(self):
        dev = DRAMDevice(DRAMConfig())
        r0 = dev.try_issue(read(0), 0)
        r1 = dev.try_issue(read(1), 0)
        burst = DRAMTimingConfig().burst_cycles
        assert r1.completion >= r0.completion + burst

    def test_row_hit_stat(self):
        cfg = DRAMConfig(ranks=1, banks_per_rank=1, row_lines=8)
        dev = DRAMDevice(cfg)
        first = dev.try_issue(read(0), 0)
        dev.try_issue(read(0), first.completion + 1)
        assert dev.stats["row_hits"] == 1
        assert dev.stats["activations"] == 1

    def test_ready_now_semantics(self):
        dev = DRAMDevice(DRAMConfig())
        assert dev.ready_now(read(0), 0)
        dev.try_issue(read(0), 0)
        assert not dev.ready_now(read(0), 1)  # bank mid-access

    def test_bank_holder_query(self):
        dev = DRAMDevice(DRAMConfig())
        dev.try_issue(read(5, Provenance.MS_PREFETCH), 0)
        assert dev.bank_holder(5, 1) is Provenance.MS_PREFETCH
        assert dev.bank_holder(6, 1) is None

    def test_utilization(self):
        dev = DRAMDevice(DRAMConfig())
        dev.try_issue(read(0), 0)
        assert 0 < dev.utilization(100) <= 1.0

    def test_bus_lead_cap_rejects_deep_reservation(self):
        dev = DRAMDevice(DRAMConfig())
        accepted = 0
        for line in range(64):
            if dev.try_issue(read(line), 0).accepted:
                accepted += 1
        # the data bus may only be reserved MAX_BUS_LEAD cycles ahead
        assert accepted < 64
