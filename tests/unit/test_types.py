"""Unit tests for repro.common.types."""


from repro.common.types import (
    LINE_SIZE,
    CommandKind,
    Direction,
    MemoryCommand,
    Provenance,
)


class TestDirection:
    def test_ascending_step(self):
        assert Direction.ASCENDING.step == 1

    def test_descending_step(self):
        assert Direction.DESCENDING.step == -1


class TestProvenance:
    def test_demand_is_regular(self):
        assert Provenance.DEMAND.is_regular

    def test_ps_prefetch_is_regular(self):
        # PS prefetches are indistinguishable from demand at the MC
        assert Provenance.PS_PREFETCH.is_regular

    def test_ms_prefetch_is_not_regular(self):
        assert not Provenance.MS_PREFETCH.is_regular


class TestMemoryCommand:
    def test_read_predicates(self):
        cmd = MemoryCommand(CommandKind.READ, 0x10)
        assert cmd.is_read
        assert not cmd.is_write

    def test_write_predicates(self):
        cmd = MemoryCommand(CommandKind.WRITE, 0x10)
        assert cmd.is_write
        assert not cmd.is_read

    def test_default_provenance_is_demand(self):
        cmd = MemoryCommand(CommandKind.READ, 1)
        assert cmd.provenance is Provenance.DEMAND
        assert not cmd.is_ms_prefetch

    def test_ms_prefetch_flag(self):
        cmd = MemoryCommand(
            CommandKind.READ, 1, provenance=Provenance.MS_PREFETCH
        )
        assert cmd.is_ms_prefetch

    def test_uids_are_unique_and_increasing(self):
        a = MemoryCommand(CommandKind.READ, 1)
        b = MemoryCommand(CommandKind.READ, 1)
        assert b.uid > a.uid

    def test_line_size_is_power5_line(self):
        assert LINE_SIZE == 128

    def test_default_thread_zero(self):
        assert MemoryCommand(CommandKind.READ, 5).thread == 0

    def test_arrival_defaults_to_zero(self):
        assert MemoryCommand(CommandKind.READ, 5).arrival == 0
