"""Unit tests for repro.obs.critpath.

Builds small synthetic span trees with known geometry so every number
the analyzer reports — critical path, self time, straggler share,
idle — can be asserted exactly.  Includes the seeded skewed-grid
scenario from the issue: one benchmark dominates the sweep and the
summary must name it.
"""

from repro.obs.critpath import (
    analyze,
    critical_path,
    primary_trace,
    render_summary,
    self_times,
)
from repro.obs.spans import make_span

TRACE = "t" * 32


def span(name, start, duration, span_id=None, parent=None, **attrs):
    return make_span(name, start, duration, TRACE, span_id=span_id,
                     parent_id=parent, attributes=attrs)


def skewed_sweep():
    """A 4-job sweep where milc/PS is 6x slower than everything else."""
    root = span("sweep.run_jobs", 0.0, 10.0, span_id="root")
    jobs = [
        span("sweep.job", 0.0, 1.0, span_id="j1", parent="root",
             benchmark="tonto", config="NP"),
        span("sweep.job", 0.0, 1.2, span_id="j2", parent="root",
             benchmark="tonto", config="PS"),
        span("sweep.job", 1.0, 1.1, span_id="j3", parent="root",
             benchmark="milc", config="NP"),
        span("sweep.job", 1.2, 8.0, span_id="j4", parent="root",
             benchmark="milc", config="PS"),
    ]
    return [root] + jobs


class TestPrimaryTrace:
    def test_largest_trace_wins(self):
        other = make_span("x", 0.0, 1.0, "a" * 32)
        spans = skewed_sweep() + [other]
        trace = primary_trace(spans)
        assert len(trace) == 5
        assert all(doc["trace"] == TRACE for doc in trace)

    def test_empty(self):
        assert primary_trace([]) == []


class TestCriticalPath:
    def test_descends_into_latest_finishing_child(self):
        chain = critical_path(skewed_sweep())
        assert [doc["span"] for doc in chain] == ["root", "j4"]

    def test_orphan_parents_treated_as_roots(self):
        # a worker span whose lease parent never reached this snapshot
        orphan = span("fabric.execute", 5.0, 2.0, span_id="o1",
                      parent="never-seen")
        chain = critical_path([orphan])
        assert chain == [orphan]


class TestSelfTimes:
    def test_parent_minus_children_union(self):
        docs = [
            span("root", 0.0, 10.0, span_id="r"),
            # children overlap 2..4: union covers 0..6, not 8 seconds
            span("child", 0.0, 4.0, span_id="c1", parent="r"),
            span("child", 2.0, 4.0, span_id="c2", parent="r"),
        ]
        rollup = self_times(docs)
        assert rollup["root"] == 4.0
        assert rollup["child"] == 8.0

    def test_children_clipped_to_parent(self):
        docs = [
            span("root", 0.0, 2.0, span_id="r"),
            span("child", 1.0, 5.0, span_id="c", parent="r"),  # overruns
        ]
        assert self_times(docs)["root"] == 1.0


class TestAnalyze:
    def test_empty_input(self):
        analysis = analyze([])
        assert analysis["spans"] == 0
        assert analysis["critical_path"] == []
        assert analysis["straggler"] is None

    def test_skewed_grid_straggler_is_named(self):
        analysis = analyze(skewed_sweep())
        assert analysis["spans"] == 5
        assert analysis["wall_s"] == 10.0
        straggler = analysis["straggler"]
        assert straggler["label"] == "milc/PS"
        assert straggler["duration_s"] == 8.0
        assert straggler["share"] == 0.8

    def test_idle_counts_gaps_nobody_worked(self):
        # jobs cover 0..2.3 and 1.2..9.2 of the 10s root: the union is
        # 0..9.2, so 0.8s of the root had no span running at all
        analysis = analyze(skewed_sweep())
        assert abs(analysis["idle_s"] - 0.8) < 1e-9

    def test_idle_sees_grandchildren(self):
        # fabric execute spans hang off the lease, not the root; work
        # done two levels down still is not idle time
        docs = [
            span("fabric.sweep", 0.0, 4.0, span_id="r"),
            span("fabric.lease", 0.0, 0.0, span_id="l", parent="r"),
            span("fabric.execute", 0.0, 4.0, span_id="e", parent="l"),
        ]
        assert analyze(docs)["idle_s"] == 0.0

    def test_straggler_falls_back_to_longest_leaf(self):
        docs = [
            span("root", 0.0, 3.0, span_id="r"),
            span("leafy", 0.0, 2.0, span_id="a", parent="r"),
        ]
        assert analyze(docs)["straggler"]["name"] == "leafy"


class TestRenderSummary:
    def test_no_spans(self):
        assert render_summary(analyze([])) == "trace: no spans recorded"

    def test_summary_names_the_straggler(self):
        text = render_summary(analyze(skewed_sweep()))
        lines = text.splitlines()
        assert lines[0].startswith("trace: 5 spans in 1 trace(s)")
        assert "critical path" in lines[0]
        assert "straggler: milc/PS 8.00s (80% of wall)" in lines[1]
        assert lines[2].startswith("self-time:")

    def test_millisecond_formatting(self):
        docs = [span("quick", 0.0, 0.05, span_id="q")]
        assert "50ms" in render_summary(analyze(docs))
