"""Unit tests for the assembled memory-side prefetcher."""


import pytest

from repro.common.config import MemorySidePrefetcherConfig, SLHConfig
from repro.common.types import CommandKind, MemoryCommand, Provenance
from repro.prefetch.memory_side import MemorySidePrefetcher


def make_ms(engine="nextline", enabled=True, **kw):
    cfg = MemorySidePrefetcherConfig(enabled=enabled, engine=engine, **kw)
    return MemorySidePrefetcher(cfg, threads=1)


def read(line, thread=0):
    return MemoryCommand(CommandKind.READ, line, thread=thread)


def write(line):
    return MemoryCommand(CommandKind.WRITE, line)


class TestGeneration:
    def test_nextline_lands_in_lpq(self):
        ms = make_ms()
        ms.observe_read(read(100), now_mc=5, now_cpu=40)
        assert len(ms.lpq) == 1
        cmd = ms.lpq.head()
        assert cmd.line == 101
        assert cmd.provenance is Provenance.MS_PREFETCH
        assert cmd.arrival == 5

    def test_disabled_generates_nothing(self):
        ms = make_ms(enabled=False)
        ms.observe_read(read(100), 0, 0)
        assert len(ms.lpq) == 0

    def test_dedupe_against_buffer(self):
        ms = make_ms()
        ms.buffer.insert(101)
        ms.observe_read(read(100), 0, 0)
        assert len(ms.lpq) == 0
        assert ms.stats["dropped_in_buffer"] == 1

    def test_dedupe_against_in_flight(self):
        ms = make_ms()
        ms.in_flight.add(101)
        ms.observe_read(read(100), 0, 0)
        assert len(ms.lpq) == 0
        assert ms.stats["dropped_in_flight"] == 1

    def test_negative_lines_discarded(self):
        ms = make_ms(engine="asd")
        # a descending stream at address 0 could propose line -1; the
        # nextline engine cannot, so drive the filter directly
        ms._try_generate(-1, 0, 0)
        assert len(ms.lpq) == 0


class TestIssueComplete:
    def test_issue_tracks_in_flight(self):
        ms = make_ms()
        ms.observe_read(read(100), 0, 0)
        cmd = ms.lpq.pop()
        ms.notify_issue(cmd)
        assert cmd.line in ms.in_flight

    def test_complete_fills_buffer(self):
        ms = make_ms()
        ms.observe_read(read(100), 0, 0)
        cmd = ms.lpq.pop()
        ms.notify_issue(cmd)
        ms.notify_complete(cmd)
        assert cmd.line not in ms.in_flight
        assert ms.buffer.contains(101)


class TestReadLookup:
    def test_hit_consumes(self):
        ms = make_ms()
        ms.buffer.insert(101)
        assert ms.read_lookup(101)
        assert not ms.read_lookup(101)

    def test_lookup_squashes_pending_prefetch(self):
        ms = make_ms()
        ms.observe_read(read(100), 0, 0)
        assert ms.lpq.contains_line(101)
        ms.read_lookup(101)  # demand for the line arrived
        assert not ms.lpq.contains_line(101)

    def test_disabled_lookup_misses(self):
        ms = make_ms(enabled=False)
        assert not ms.read_lookup(101)


class TestMerge:
    def prepared(self):
        ms = make_ms()
        ms.observe_read(read(100), 0, 0)
        cmd = ms.lpq.pop()
        ms.notify_issue(cmd)
        return ms, cmd

    def test_merge_with_in_flight(self):
        ms, pf = self.prepared()
        demand = read(101)
        assert ms.try_merge(demand)

    def test_merge_delivers_on_complete(self):
        ms, pf = self.prepared()
        delivered = []
        ms.on_merge_ready = delivered.append
        demand = read(101)
        ms.try_merge(demand)
        ms.notify_complete(pf)
        assert delivered == [demand]

    def test_merged_line_not_left_in_buffer(self):
        # the waiting read consumes the arriving line (read-once)
        ms, pf = self.prepared()
        ms.on_merge_ready = lambda cmd: None
        ms.try_merge(read(101))
        ms.notify_complete(pf)
        assert not ms.buffer.contains(101)

    def test_no_merge_without_in_flight(self):
        ms = make_ms()
        assert not ms.try_merge(read(999))

    def test_write_cancels_unmerged_in_flight(self):
        ms, pf = self.prepared()
        ms.observe_write(write(101))
        ms.notify_complete(pf)
        # stale data must not land in the buffer
        assert not ms.buffer.contains(101)

    def test_write_does_not_cancel_merged(self):
        ms, pf = self.prepared()
        delivered = []
        ms.on_merge_ready = delivered.append
        ms.try_merge(read(101))
        ms.observe_write(write(101))
        ms.notify_complete(pf)
        assert len(delivered) == 1


class TestWritePath:
    def test_write_invalidates_buffer(self):
        ms = make_ms()
        ms.buffer.insert(50)
        ms.observe_write(write(50))
        assert not ms.buffer.contains(50)

    def test_write_squashes_lpq(self):
        ms = make_ms()
        ms.observe_read(read(100), 0, 0)
        ms.observe_write(write(101))
        assert not ms.lpq.contains_line(101)


class TestEpochs:
    def test_epoch_counter_drives_scheduler(self):
        cfg = MemorySidePrefetcherConfig(
            enabled=True, engine="nextline", slh=SLHConfig(epoch_reads=4)
        )
        ms = MemorySidePrefetcher(cfg, threads=1)
        for i in range(8):
            ms.observe_read(read(i * 100), i, i * 8)
        assert ms.stats["epochs"] == 2
        assert ms.scheduler.stats["epochs"] == 2

    def test_coverage_metric(self):
        ms = make_ms()
        ms.buffer.insert(5)
        ms.read_lookup(5)
        assert ms.coverage(total_reads=10) == pytest.approx(0.1)
        assert ms.coverage(total_reads=0) == 0.0

    def test_asd_tables_accessor(self):
        assert make_ms(engine="asd").asd_tables() is not None
        assert make_ms(engine="nextline").asd_tables() is None
