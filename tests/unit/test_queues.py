"""Unit tests for controller queues."""

import pytest

from repro.common.types import CommandKind, MemoryCommand
from repro.controller.queues import CommandQueue, ReorderQueues


def read(line, arrival=0):
    return MemoryCommand(CommandKind.READ, line, arrival=arrival)


def write(line, arrival=0):
    return MemoryCommand(CommandKind.WRITE, line, arrival=arrival)


class TestCommandQueue:
    def test_fifo(self):
        q = CommandQueue(3)
        a, b = read(1), read(2)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_bounded(self):
        q = CommandQueue(1)
        assert q.push(read(1))
        assert not q.push(read(2))
        assert q.full

    def test_head_and_empty(self):
        q = CommandQueue(2)
        assert q.head() is None
        assert q.empty
        q.push(read(9))
        assert q.head().line == 9
        assert not q.empty

    def test_positional_remove(self):
        q = CommandQueue(3)
        a, b = read(1), read(2)
        q.push(a)
        q.push(b)
        q.remove(a)
        assert q.head() is b

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            CommandQueue(0)

    def test_iteration(self):
        q = CommandQueue(3)
        q.push(read(1))
        q.push(read(2))
        assert [c.line for c in q] == [1, 2]


class TestReorderQueues:
    def test_reads_always_candidates(self):
        q = ReorderQueues(4, 4)
        r = read(1)
        q.reads.push(r)
        q.writes.push(write(2))
        assert q.candidates(drain_writes=False) == [r]

    def test_writes_join_when_draining(self):
        q = ReorderQueues(4, 4)
        r, w = read(1), write(2)
        q.reads.push(r)
        q.writes.push(w)
        assert q.candidates(drain_writes=True) == [r, w]

    def test_writes_serve_when_no_reads(self):
        q = ReorderQueues(4, 4)
        w = write(2)
        q.writes.push(w)
        assert q.candidates(drain_writes=False) == [w]

    def test_remove_routes_by_kind(self):
        q = ReorderQueues(4, 4)
        r, w = read(1), write(2)
        q.reads.push(r)
        q.writes.push(w)
        q.remove(w)
        assert len(q.writes) == 0
        q.remove(r)
        assert q.empty

    def test_len_counts_both(self):
        q = ReorderQueues(4, 4)
        q.reads.push(read(1))
        q.writes.push(write(2))
        assert len(q) == 2

    def test_all_commands(self):
        q = ReorderQueues(4, 4)
        q.reads.push(read(1))
        q.writes.push(write(2))
        assert sorted(c.line for c in q.all_commands()) == [1, 2]
