"""Unit tests for the DRAM power/energy model."""

import pytest

from repro.common.config import DRAMConfig, DRAMPowerConfig
from repro.dram.power import DRAMPowerModel


def model(**kw):
    return DRAMPowerModel(DRAMConfig(), DRAMPowerConfig(**kw))


class TestAccounting:
    def test_event_counters(self):
        m = model()
        m.record_access(is_write=False, activated=True)
        m.record_access(is_write=True, activated=False)
        assert m.activations == 1
        assert m.read_bursts == 1
        assert m.write_bursts == 1

    def test_zero_time_report(self):
        report = model().finalize(0)
        assert report.energy_uj == 0
        assert report.avg_power_mw == 0

    def test_background_scales_with_time(self):
        m = model()
        short = m.finalize(1000)
        long = m.finalize(2000)
        assert long.background_energy_uj == pytest.approx(
            2 * short.background_energy_uj
        )

    def test_known_energy_arithmetic(self):
        cfg = DRAMPowerConfig(
            e_activate_nj=2.0,
            e_read_nj=3.0,
            e_write_nj=5.0,
            p_background_active_mw=100.0,
            p_refresh_mw=0.0,
        )
        m = DRAMPowerModel(DRAMConfig(ranks=1), cfg)
        m.record_access(False, True)  # 1 activate + 1 read
        m.record_access(True, False)  # 1 write
        report = m.finalize(1000)  # 1000 * 3.75 ns
        t_ns = 1000 * 3.75
        expected_bg = 100.0 * t_ns * 1e-6
        assert report.activate_energy_uj == pytest.approx(2.0e-3)
        assert report.burst_energy_uj == pytest.approx(8.0e-3)
        assert report.background_energy_uj == pytest.approx(expected_bg)

    def test_average_power_consistent_with_energy(self):
        m = model()
        for _ in range(100):
            m.record_access(False, True)
        report = m.finalize(10_000)
        # P = E / t (uJ / ns -> kW; kW -> mW is 1e6)
        expected = report.energy_uj / report.elapsed_ns * 1e6
        assert report.avg_power_mw == pytest.approx(expected)

    def test_more_traffic_more_power(self):
        quiet = model()
        busy = model()
        for _ in range(500):
            busy.record_access(False, True)
        t = 100_000
        assert busy.finalize(t).avg_power_mw > quiet.finalize(t).avg_power_mw

    def test_describe(self):
        report = model().finalize(100)
        assert "mW" in report.describe()
