"""Unit tests for refresh staggering and lazy catch-up in the device."""


from repro.common.config import DRAMConfig, DRAMTimingConfig
from repro.common.types import CommandKind, MemoryCommand
from repro.dram.device import DRAMDevice


def read(line):
    return MemoryCommand(CommandKind.READ, line)


def make(ranks=2, t_refi=400, t_rfc=34):
    return DRAMDevice(
        DRAMConfig(
            ranks=ranks,
            banks_per_rank=2,
            timing=DRAMTimingConfig(t_refi=t_refi, t_rfc=t_rfc),
        )
    )


class TestStaggering:
    def test_ranks_refresh_at_different_times(self):
        dev = make(ranks=2, t_refi=400)
        assert dev._next_refresh == [400, 600]

    def test_single_rank(self):
        dev = make(ranks=1)
        assert dev._next_refresh == [400]


class TestLazyCatchup:
    def test_multiple_missed_refreshes_all_counted(self):
        dev = make(ranks=1, t_refi=100, t_rfc=20)
        dev.try_issue(read(0), 1000)  # ten deadlines passed
        assert dev.stats["refreshes"] == 10

    def test_refresh_closes_open_rows(self):
        dev = make(ranks=1, t_refi=400)
        dev.try_issue(read(0), 0)
        # a later access to the same row, after a refresh, re-activates
        second_time = 500
        dev.try_issue(read(0), second_time)
        assert dev.stats["activations"] == 2
        assert dev.stats["row_hits"] == 0

    def test_access_between_refreshes_unaffected(self):
        dev = make(ranks=1, t_refi=400, t_rfc=34)
        r = dev.try_issue(read(0), 50)
        t = dev.timing
        assert r.completion == 50 + t.t_rcd + t.t_cl + t.burst_cycles

    def test_refresh_does_not_advance_past_now(self):
        dev = make(ranks=1, t_refi=100)
        dev.try_issue(read(0), 250)
        # deadlines at 100, 200 consumed; next pending at 300
        assert dev._next_refresh == [300]
