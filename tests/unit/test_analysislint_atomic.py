"""ATO001: seeded torn-write fixture flagged, real store writers clean."""

import pytest

from repro.analysislint.atomic import AtomicWriteRule
from tests.unit._lint_util import mount, mount_text, real_tree

FIXTURE = ("ato_violations.py", "src/repro/experiments/ato_violations.py")


@pytest.fixture(scope="module")
def tree():
    return mount(FIXTURE)


class TestSeededFixture:
    def test_only_the_bare_write_is_flagged(self, tree):
        findings = AtomicWriteRule().check(tree)
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "save_report"
        assert "'path'" in f.message
        assert "os.replace" in f.message

    def test_sanctioned_idioms_clean(self, tree):
        flagged = {f.symbol for f in AtomicWriteRule().check(tree)}
        for clean in ("save_report_mkstemp", "save_report_suffix", "append_log"):
            assert clean not in flagged


class TestScopingAndWaivers:
    def test_non_atomic_package_ignored(self):
        tree = mount(("ato_violations.py", "src/repro/telemetry/ato.py"))
        assert AtomicWriteRule().check(tree) == []

    def test_waiver_suppresses(self):
        tree = mount_text(
            "def dump(path, text):\n"
            "    with open(path, 'w') as handle:  # lint: non-atomic-ok\n"
            "        handle.write(text)\n",
            "src/repro/experiments/waived.py",
        )
        assert AtomicWriteRule().check(tree) == []

    def test_read_mode_open_ignored(self):
        tree = mount_text(
            "def load(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n",
            "src/repro/experiments/reader.py",
        )
        assert AtomicWriteRule().check(tree) == []


class TestRealTreeClean:
    def test_real_tree_has_no_findings(self):
        findings = AtomicWriteRule().check(real_tree())
        assert findings == [], [f.render() for f in findings]

    def test_real_tree_has_write_sites(self):
        """The clean pass must come from recognized atomic idioms, not
        from the scan finding nothing to look at."""
        from repro.analysislint.concurrency import walk_own
        from repro.analysislint.atomic import _OPENERS, _write_mode
        from repro.analysislint.core import call_name
        import ast

        rule = AtomicWriteRule()
        writes = 0
        for sf in real_tree().in_packages(set(rule.config.atomic_packages)):
            for func in sf.functions():
                for node in walk_own(func):
                    if (
                        isinstance(node, ast.Call)
                        and call_name(node).rsplit(".", 1)[-1] in _OPENERS
                        and _write_mode(node)
                    ):
                        writes += 1
        assert writes > 0
