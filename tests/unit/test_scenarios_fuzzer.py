"""Unit tests for the adversarial fuzzer (space, objectives, search)."""

import json
import random

import pytest

from repro.scenarios.fuzzer import report_path, run_fuzz, save_report
from repro.scenarios.objectives import OBJECTIVES, get_objective
from repro.scenarios.space import FuzzSpace, candidate_name
from repro.system.results import RunResult
from repro.workloads.dynamic import resolve_workload, workload_benchmark


def result(config="PMS", cycles=1000, inserts=100.0, read_hits=40.0):
    return RunResult(
        config_name=config, benchmark="wl:x", cycles=cycles,
        instructions=5000, cpu_ratio=4,
        stats={"pb.inserts": inserts, "pb.read_hits": read_hits},
    )


class TestFuzzSpace:
    def test_sampling_is_deterministic(self):
        space = FuzzSpace()
        first = [space.sample(random.Random(11)) for _ in range(1)]
        second = [space.sample(random.Random(11)) for _ in range(1)]
        assert [w.name for w in first] == [w.name for w in second]
        assert workload_benchmark(first[0]) == workload_benchmark(second[0])

    def test_samples_are_valid_and_in_bounds(self):
        space = FuzzSpace()
        rng = random.Random(0)
        for _ in range(50):
            candidate = space.sample(rng)
            candidate.validate()  # raises on any violation
            assert 1 <= candidate.interleave <= space.interleave_max
            assert 0.0 <= candidate.gap_mean <= space.gap_mean_max
            assert candidate.name.startswith("fuzz-")

    def test_mutation_stays_valid(self):
        space = FuzzSpace()
        rng = random.Random(1)
        parent = space.sample(rng)
        for _ in range(50):
            child = space.mutate(rng, parent)
            child.validate()
            assert 1 <= child.interleave <= space.interleave_max

    def test_mutation_changes_something(self):
        space = FuzzSpace()
        rng = random.Random(2)
        parent = space.sample(rng)
        children = {space.mutate(rng, parent).name for _ in range(10)}
        assert parent.name not in children

    def test_candidate_name_ignores_existing_name(self):
        space = FuzzSpace()
        candidate = space.sample(random.Random(3))
        renamed = type(candidate)(**{**candidate.__dict__, "name": "other"})
        assert candidate_name(renamed) == candidate.name

    def test_candidates_roundtrip_through_wl_names(self):
        space = FuzzSpace()
        candidate = space.sample(random.Random(4))
        decoded = resolve_workload(workload_benchmark(candidate))
        assert decoded == candidate


class TestObjectives:
    def test_registry_names(self):
        assert sorted(OBJECTIVES) == ["fidelity", "regret", "waste"]

    def test_get_objective_unknown(self):
        with pytest.raises(ValueError, match="unknown objective"):
            get_objective("speed")

    def test_waste_score_rises_as_usefulness_falls(self):
        waste = OBJECTIVES["waste"]
        useful = waste.score({("PMS", "exact"): result(read_hits=90.0)})
        useless = waste.score({("PMS", "exact"): result(read_hits=5.0)})
        assert useless > useful

    def test_waste_score_zero_without_inserts(self):
        waste = OBJECTIVES["waste"]
        assert waste.score(
            {("PMS", "exact"): result(inserts=0.0, read_hits=0.0)}
        ) == 0.0

    def test_regret_positive_when_adaptive_loses(self):
        regret = OBJECTIVES["regret"]
        grid = {("PMS", "exact"): result(cycles=1200)}
        for k in range(1, 6):
            grid[(f"PMS_POLICY{k}", "exact")] = result(
                config=f"PMS_POLICY{k}", cycles=1000 + k
            )
        # best fixed policy is PMS_POLICY1 at 1001 cycles
        assert regret.score(grid) == pytest.approx((1200 / 1001 - 1) * 100)

    def test_fidelity_score_is_worst_metric_error(self):
        fidelity = OBJECTIVES["fidelity"]
        grid = {
            ("PMS", "fast"): result(cycles=1100),
            ("PMS", "exact"): result(cycles=1000),
        }
        assert fidelity.score(grid) >= 0.0999

    def test_every_objective_declares_cells(self):
        for objective in OBJECTIVES.values():
            assert objective.cells
            for config, tier in objective.cells:
                assert tier in ("exact", "fast")


class TestRunFuzz:
    @pytest.fixture(autouse=True)
    def isolated_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_STORE", "1")

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="budget"):
            run_fuzz(budget=0)

    def test_same_seed_same_worst_case(self):
        kwargs = dict(budget=3, seed=9, objective="waste", accesses=250,
                      round_size=3, save=False)
        a = run_fuzz(**kwargs)
        b = run_fuzz(**kwargs)
        assert a.best is not None
        assert a.best.benchmark == b.best.benchmark
        assert a.best.score == b.best.score
        assert [r.name for r in a.results] == [r.name for r in b.results]
        # second run is answered from cache/store, not re-simulated
        assert b.stats.executed_serial == 0

    def test_report_persists_under_store(self, tmp_path):
        report = run_fuzz(budget=2, seed=4, objective="waste",
                          accesses=250, round_size=2)
        assert report.path == report_path("waste", 4)
        with open(report.path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["objective"] == "waste"
        assert payload["seed"] == 4
        assert len(payload["results"]) == 2
        assert payload["baseline"]["origin"] == "baseline"
        for row in payload["results"]:
            # persisted worst cases are fully decodable parameter sets
            resolve_workload(row["benchmark"]).validate()

    def test_save_report_is_atomic_and_rewritable(self, tmp_path):
        report = run_fuzz(budget=1, seed=6, accesses=250, save=False)
        path = save_report(report, root=str(tmp_path))
        assert path.endswith("waste-seed6.json")
        assert save_report(report, root=str(tmp_path)) == path

    def test_mutation_kicks_in_after_first_round(self):
        report = run_fuzz(budget=6, seed=2, accesses=250, round_size=2,
                          save=False)
        assert report.rounds == 3
        origins = {r.origin for r in report.results}
        assert "random" in origins
