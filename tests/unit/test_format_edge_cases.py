"""Edge-case tests for report formatting and bar helpers."""


from repro.analysis.report import format_bar_chart, format_table


class TestFormatTableEdges:
    def test_single_cell(self):
        out = format_table(["x"], [[1]])
        assert "x" in out and "1" in out

    def test_no_rows(self):
        out = format_table(["a", "b"], [])
        lines = out.splitlines()
        assert len(lines) == 2  # header + rule

    def test_wide_values_stretch_columns(self):
        out = format_table(["n"], [["a-very-long-benchmark-name"]])
        header, rule, row = out.splitlines()
        assert len(rule) >= len("a-very-long-benchmark-name")

    def test_mixed_types(self):
        out = format_table(["a", "b", "c"], [["s", 3, 4.5678]])
        assert "4.57" in out  # two decimals for small floats
        out2 = format_table(["a"], [[123.456]])
        assert "123.5" in out2  # one decimal for large floats

    def test_no_trailing_whitespace(self):
        out = format_table(["a", "bb"], [["x", "y"]])
        for line in out.splitlines():
            assert line == line.rstrip()


class TestBarChartEdges:
    def test_zero_values(self):
        out = format_bar_chart({"a": 0.0})
        assert "|" in out

    def test_max_value_override(self):
        out = format_bar_chart({"a": 5.0}, width=10, max_value=10.0)
        assert out.count("#") == 5

    def test_custom_unit(self):
        out = format_bar_chart({"a": 1.0}, unit="x")
        assert "x" in out
