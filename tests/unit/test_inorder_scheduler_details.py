"""Additional scheduler tests: strict arrival order and write handling."""


from repro.common.config import DRAMConfig
from repro.common.types import CommandKind, MemoryCommand
from repro.controller.schedulers import InOrderScheduler, MemorylessScheduler
from repro.dram.device import DRAMDevice


def cmd(kind, line, arrival):
    return MemoryCommand(kind, line, arrival=arrival)


class TestInOrderStrictness:
    def test_arrival_ties_broken_by_uid(self):
        a = cmd(CommandKind.READ, 1, arrival=5)
        b = cmd(CommandKind.READ, 2, arrival=5)
        dev = DRAMDevice(DRAMConfig())
        picked = InOrderScheduler().select([b, a], dev, 0)
        assert picked is a  # earlier uid

    def test_writes_and_reads_ordered_together(self):
        r = cmd(CommandKind.READ, 1, arrival=7)
        w = cmd(CommandKind.WRITE, 2, arrival=3)
        dev = DRAMDevice(DRAMConfig())
        assert InOrderScheduler().select([r, w], dev, 0) is w


class TestMemorylessWriteHandling:
    def test_ready_write_beats_blocked_read(self):
        dev = DRAMDevice(DRAMConfig(ranks=1, banks_per_rank=2))
        dev.try_issue(cmd(CommandKind.READ, 0, 0), 0)  # bank 0 busy
        blocked_read = cmd(CommandKind.READ, 0, arrival=1)
        ready_write = cmd(CommandKind.WRITE, 1, arrival=2)
        picked = MemorylessScheduler().select(
            [blocked_read, ready_write], dev, 1
        )
        assert picked is ready_write

    def test_single_candidate_always_selected(self):
        dev = DRAMDevice(DRAMConfig())
        only = cmd(CommandKind.WRITE, 5, arrival=9)
        assert MemorylessScheduler().select([only], dev, 0) is only
