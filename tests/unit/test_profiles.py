"""Unit tests for the benchmark profiles."""

import pytest

from repro.workloads.profiles import (
    BENCHMARKS,
    FOCUS_BENCHMARKS,
    SUITES,
    get_profile,
    suite_benchmarks,
)


class TestInventory:
    def test_suite_sizes_match_paper(self):
        assert len(SUITES["spec2006fp"]) == 17
        assert len(SUITES["nas"]) == 8
        assert len(SUITES["commercial"]) == 5

    def test_all_benchmarks_registered(self):
        assert len(BENCHMARKS) == 30

    def test_focus_benchmarks_exist(self):
        assert len(FOCUS_BENCHMARKS) == 8
        for name in FOCUS_BENCHMARKS:
            assert name in BENCHMARKS

    def test_focus_set_matches_paper(self):
        assert set(FOCUS_BENCHMARKS) == {
            "bwaves", "milc", "GemsFDTD", "tonto",
            "tpcc", "trade2", "sap", "notesbench",
        }

    def test_suite_membership_consistent(self):
        for suite, names in SUITES.items():
            for name in names:
                assert BENCHMARKS[name].suite == suite


class TestProfiles:
    def test_all_workloads_validate(self):
        for profile in BENCHMARKS.values():
            profile.workload.validate()

    def test_workload_names_match(self):
        for name, profile in BENCHMARKS.items():
            assert profile.workload.name == name

    def test_paper_light_benchmarks_flagged(self):
        # "gamess, namd, povray, and calculix are not memory intensive"
        for name in ("gamess", "namd", "povray", "calculix", "ep"):
            assert not get_profile(name).memory_intensive

    def test_light_benchmarks_mostly_cached(self):
        for name in ("gamess", "namd", "povray"):
            assert get_profile(name).workload.hot_fraction >= 0.9

    def test_heavy_benchmarks_low_gap(self):
        for name in ("bwaves", "lbm", "leslie3d"):
            assert get_profile(name).workload.gap_mean <= 40

    def test_commercial_profiles_have_phases(self):
        for name in SUITES["commercial"]:
            assert get_profile(name).workload.phases

    def test_gemsfdtd_has_phases(self):
        # the paper's Figure 3 showcase must vary across epochs
        assert len(get_profile("GemsFDTD").workload.phases) == 3

    def test_descriptions_present(self):
        for profile in BENCHMARKS.values():
            assert profile.description


class TestLookups:
    def test_get_profile(self):
        assert get_profile("bwaves").name == "bwaves"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_suite_benchmarks_unknown(self):
        with pytest.raises(KeyError):
            suite_benchmarks("spec2049")

    def test_suite_benchmarks_order_stable(self):
        assert suite_benchmarks("spec2006fp")[0] == "bwaves"
