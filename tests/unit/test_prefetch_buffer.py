"""Unit tests for the Prefetch Buffer."""

import pytest

from repro.common.config import PrefetchBufferConfig
from repro.prefetch.prefetch_buffer import PrefetchBuffer


def make_buffer(entries=16, assoc=4):
    return PrefetchBuffer(PrefetchBufferConfig(entries=entries, assoc=assoc))


class TestInsertAndHit:
    def test_insert_then_read_hit(self):
        pb = make_buffer()
        pb.insert(10)
        assert pb.read_hit(10)

    def test_read_hit_consumes_entry(self):
        # paper: a matching regular Read invalidates the entry
        pb = make_buffer()
        pb.insert(10)
        pb.read_hit(10)
        assert not pb.read_hit(10)

    def test_miss_on_absent_line(self):
        assert not make_buffer().read_hit(42)

    def test_contains_is_side_effect_free(self):
        pb = make_buffer()
        pb.insert(10)
        assert pb.contains(10)
        assert pb.contains(10)
        assert pb.read_hit(10)

    def test_duplicate_insert_counted_not_grown(self):
        pb = make_buffer()
        pb.insert(10)
        pb.insert(10)
        assert pb.occupancy == 1
        assert pb.stats["duplicate_inserts"] == 1


class TestEviction:
    def test_lru_within_set(self):
        pb = make_buffer(entries=4, assoc=2)  # 2 sets
        # lines 0, 2, 4 map to set 0
        pb.insert(0)
        pb.insert(2)
        pb.insert(4)  # evicts 0 (LRU)
        assert not pb.contains(0)
        assert pb.contains(2)
        assert pb.contains(4)

    def test_reinsert_refreshes_lru(self):
        pb = make_buffer(entries=4, assoc=2)
        pb.insert(0)
        pb.insert(2)
        pb.insert(0)  # refresh 0
        pb.insert(4)  # now 2 is LRU
        assert pb.contains(0)
        assert not pb.contains(2)

    def test_unused_eviction_counted(self):
        pb = make_buffer(entries=4, assoc=2)
        pb.insert(0)
        pb.insert(2)
        pb.insert(4)
        assert pb.stats["evicted_unused"] == 1

    def test_capacity_never_exceeded(self):
        pb = make_buffer(entries=8, assoc=4)
        for line in range(100):
            pb.insert(line)
        assert pb.occupancy <= 8


class TestInvalidation:
    def test_write_invalidates(self):
        pb = make_buffer()
        pb.insert(10)
        assert pb.invalidate(10)
        assert not pb.contains(10)

    def test_invalidate_absent_returns_false(self):
        assert not make_buffer().invalidate(10)

    def test_invalidation_counted(self):
        pb = make_buffer()
        pb.insert(10)
        pb.invalidate(10)
        assert pb.stats["write_invalidations"] == 1


class TestUsefulFraction:
    def test_no_inserts(self):
        assert make_buffer().useful_fraction() == 0.0

    def test_fraction(self):
        pb = make_buffer()
        pb.insert(1)
        pb.insert(2)
        pb.read_hit(1)
        assert pb.useful_fraction() == pytest.approx(0.5)


class TestGeometry:
    def test_set_mapping(self):
        pb = make_buffer(entries=16, assoc=4)  # 4 sets
        assert pb.num_sets == 4
        # lines differing by num_sets collide in a set
        for i in range(5):
            pb.insert(4 * i)
        assert pb.occupancy == 4
