"""Unit tests for the fast analytic model (docs/fidelity.md)."""

from repro import generate_trace, get_profile, make_config
from repro.fastsim import FastModelProbes, predict, simulate_job_fast
from repro.fastsim.banktables import bank_table, clear_tables
from repro.fastsim.version import FAST_MODEL_VERSION

ACCESSES = 1500


def trace_for(benchmark, seed=1):
    return generate_trace(
        get_profile(benchmark).workload, ACCESSES, seed=seed
    )


class TestPrediction:
    def test_result_is_stamped_fast(self):
        result = predict(make_config("PMS"), [trace_for("milc")])
        assert result.fidelity == {
            "tier": "fast", "model_version": FAST_MODEL_VERSION,
        }
        assert result.fidelity_tier == "fast"
        assert result.error_bar("cycles") is None  # not yet calibrated

    def test_deterministic(self):
        a = predict(make_config("PMS"), [trace_for("milc")])
        b = predict(make_config("PMS"), [trace_for("milc")])
        assert a == b

    def test_metrics_are_sane(self):
        result = predict(make_config("PMS"), [trace_for("milc")])
        assert result.cycles > 0
        assert result.instructions >= ACCESSES  # accesses + gap work
        assert 0.0 <= result.coverage <= 1.0
        assert 0.0 <= result.useful_prefetch_fraction <= 1.0
        assert result.power is not None and result.power.energy_uj > 0

    def test_prefetching_configs_beat_np_on_streaming_workloads(self):
        # GemsFDTD is long-stream dominated: any sane model must show
        # the paper's qualitative ordering
        # longer trace: the SLH needs a few epochs of warmup before
        # ASD opens up, so coverage at unit-test scale would be noise
        trace = generate_trace(
            get_profile("GemsFDTD").workload, 6000, seed=1
        )
        np_result = predict(make_config("NP"), [trace])
        ms = predict(make_config("MS"), [trace])
        pms = predict(make_config("PMS"), [trace])
        assert pms.cycles < np_result.cycles
        assert ms.cycles < np_result.cycles
        # MS sees every miss at the controller, so its coverage is the
        # cleanest qualitative signal (PMS's PS engine absorbs streams
        # before the MC sees them)
        assert ms.coverage > 0.2
        assert np_result.coverage == 0.0

    def test_emits_fast_namespace_stats(self):
        result = predict(make_config("PMS"), [trace_for("milc")])
        assert any(key.startswith("fast.") for key in result.stats)

    def test_simulate_job_fast_uses_the_trace_cache(self):
        direct = predict(make_config("PMS"), [trace_for("milc")])
        viajob = simulate_job_fast(make_config("PMS"), "milc", ACCESSES, 1)
        assert viajob.cycles == direct.cycles


class TestProbes:
    def test_epoch_series_recorded(self):
        probes = FastModelProbes()
        predict(make_config("PMS"), [trace_for("milc")], probes=probes)
        assert probes.samples > 0
        assert probes.rows("rho"), "no utilisation samples"
        for _epoch, rho in probes.rows("rho"):
            assert 0.0 <= rho < 1.0
        assert len(probes.rows("mc_reads")) == probes.samples

    def test_as_dict_is_json_shaped(self):
        probes = FastModelProbes()
        predict(make_config("PMS"), [trace_for("milc")], probes=probes)
        doc = probes.as_dict()
        assert doc["samples"] == probes.samples
        assert "rho" in doc["series"]


class TestBankTables:
    def setup_method(self):
        clear_tables()

    def test_open_page_orders_hit_empty_miss(self):
        table = bank_table(make_config("NP").dram)
        assert table.read_hit < table.read_empty < table.read_miss
        assert table.write_hit < table.write_empty < table.write_miss

    def test_closed_page_collapses_classes(self):
        import dataclasses
        dram = dataclasses.replace(make_config("NP").dram,
                                   page_policy="closed")
        table = bank_table(dram)
        assert table.read_hit == table.read_miss == table.read_empty

    def test_tables_are_cached_by_identity(self):
        dram = make_config("NP").dram
        assert bank_table(dram) is bank_table(dram)
