"""Unit tests for CLI argument parsing (no simulation)."""

import pytest

from repro.cli import FIGURES, _build_parser


class TestParser:
    def test_run_defaults(self):
        args = _build_parser().parse_args(["run", "-b", "milc"])
        assert args.config == "PMS"
        assert args.accesses == 15_000
        assert args.threads == 1
        assert not args.json

    def test_run_json_flag(self):
        args = _build_parser().parse_args(["run", "-b", "milc", "--json"])
        assert args.json

    def test_suite_choices_enforced(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["suite", "-s", "spec2049"])

    def test_scheduler_choices_enforced(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["run", "-b", "x", "--scheduler", "magic"])

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])

    def test_trace_requires_output(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["trace", "-b", "milc"])

    def test_cost_threads_list(self):
        args = _build_parser().parse_args(["cost", "--threads", "1", "8"])
        assert args.threads == [1, 8]


class TestFigureRegistry:
    def test_every_paper_figure_registered(self):
        for fid in ("fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
                    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
                    "fig16"):
            assert fid in FIGURES

    def test_tables_registered(self):
        for tid in ("hardware", "smt", "scheduler"):
            assert tid in FIGURES

    def test_registry_targets_importable(self):
        import importlib

        for module_name, func_name, render_name in FIGURES.values():
            module = importlib.import_module(module_name)
            assert hasattr(module, func_name)
            if render_name:
                assert hasattr(module, render_name)


class TestObsFlags:
    def test_sweep_obs_defaults(self):
        args = _build_parser().parse_args(["sweep", "-b", "milc"])
        assert args.metrics_port is None
        assert not args.no_progress
        assert not args.verbose

    def test_sweep_obs_flags(self):
        args = _build_parser().parse_args(
            ["sweep", "-b", "milc", "--metrics-port", "0",
             "--no-progress", "--verbose"]
        )
        assert args.metrics_port == 0
        assert args.no_progress
        assert args.verbose

    def test_obs_serve_defaults(self):
        args = _build_parser().parse_args(["obs", "serve"])
        assert args.obs_command == "serve"
        assert args.port == 9123
        assert args.host == "127.0.0.1"
        assert args.directory is None

    def test_obs_serve_flags(self):
        args = _build_parser().parse_args(
            ["obs", "serve", "--port", "0", "--host", "0.0.0.0",
             "--dir", "/tmp/metrics"]
        )
        assert args.port == 0
        assert args.host == "0.0.0.0"
        assert args.directory == "/tmp/metrics"

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["obs"])

    def test_obs_trace_export_defaults(self):
        args = _build_parser().parse_args(["obs", "trace", "export"])
        assert args.obs_command == "trace"
        assert args.obs_trace_command == "export"
        assert args.input is None  # resolves to spans/latest.json
        assert args.output == "trace.json"

    def test_obs_trace_export_flags(self):
        args = _build_parser().parse_args(
            ["obs", "trace", "export", "--input", "/tmp/spans.json",
             "-o", "/tmp/out.json"]
        )
        assert args.input == "/tmp/spans.json"
        assert args.output == "/tmp/out.json"

    def test_obs_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["obs", "trace"])


class TestFabricSubcommand:
    def test_serve_defaults(self):
        args = _build_parser().parse_args(["fabric", "serve"])
        assert args.fabric_command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.lease_seconds == 60.0
        assert args.max_attempts == 3

    def test_work_requires_coordinator(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["fabric", "work"])

    def test_work_flags(self):
        args = _build_parser().parse_args(
            ["fabric", "work", "--coordinator", "http://h:1",
             "--id", "w7", "--capacity", "4", "--poll", "0.2",
             "--drain-idle", "9"]
        )
        assert args.coordinator == "http://h:1"
        assert args.worker_id == "w7"
        assert args.capacity == 4
        assert args.poll == 0.2
        assert args.drain_idle == 9.0

    def test_submit_defaults_and_grid(self):
        args = _build_parser().parse_args(
            ["fabric", "submit", "--coordinator", "http://h:1",
             "-b", "milc", "tonto", "-c", "NP", "PS"]
        )
        assert args.benchmarks == ["milc", "tonto"]
        assert args.configs == ["NP", "PS"]
        assert args.accesses == 15_000
        assert not args.watch

    def test_status_takes_optional_sweep(self):
        args = _build_parser().parse_args(
            ["fabric", "status", "--coordinator", "http://h:1",
             "--sweep", "sweep-3"]
        )
        assert args.sweep == "sweep-3"

    def test_watch_defaults(self):
        args = _build_parser().parse_args(
            ["fabric", "watch", "--coordinator", "http://h:1"]
        )
        assert args.fabric_command == "watch"
        assert args.coordinator == "http://h:1"
        assert args.sweep is None
        assert args.poll == 2.0

    def test_watch_flags(self):
        args = _build_parser().parse_args(
            ["fabric", "watch", "--coordinator", "http://h:1",
             "--sweep", "sweep-9", "--poll", "0.5"]
        )
        assert args.sweep == "sweep-9"
        assert args.poll == 0.5

    def test_watch_requires_coordinator(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["fabric", "watch"])

    def test_fabric_requires_subcommand(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["fabric"])


class TestLintSubcommand:
    def test_lint_defaults(self):
        args = _build_parser().parse_args(["lint"])
        assert args.paths == []
        assert not args.check
        assert not args.json
        assert args.baseline is None
        assert not args.update_baseline
        assert not args.write_registry

    def test_lint_full_flag_set(self):
        args = _build_parser().parse_args(
            ["lint", "src/repro/controller", "--check", "--json",
             "--baseline", "custom.json"]
        )
        assert args.paths == ["src/repro/controller"]
        assert args.check and args.json
        assert args.baseline == "custom.json"

    def test_lint_write_registry(self):
        args = _build_parser().parse_args(["lint", "--write-registry"])
        assert args.write_registry


class TestFidelityFlags:
    def test_sweep_fidelity_default_exact(self):
        args = _build_parser().parse_args(["sweep", "-b", "milc"])
        assert args.fidelity == "exact"

    def test_sweep_fidelity_choices(self):
        for tier in ("exact", "fast", "auto"):
            args = _build_parser().parse_args(
                ["sweep", "-b", "milc", "--fidelity", tier]
            )
            assert args.fidelity == tier

    def test_sweep_fidelity_rejects_unknown(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(
                ["sweep", "-b", "milc", "--fidelity", "approximate"]
            )

    def test_fabric_submit_fidelity(self):
        args = _build_parser().parse_args(
            ["fabric", "submit", "--coordinator", "http://127.0.0.1:1",
             "-b", "milc", "-c", "NP", "--fidelity", "fast"]
        )
        assert args.fidelity == "fast"

    def test_fabric_submit_rejects_auto(self):
        # escalation needs the local orchestrator loop; the fabric
        # accepts per-job tiers only
        with pytest.raises(SystemExit):
            _build_parser().parse_args(
                ["fabric", "submit", "--coordinator", "http://127.0.0.1:1",
                 "-b", "milc", "--fidelity", "auto"]
            )


class TestTraceSubcommands:
    def test_generate_defaults(self):
        args = _build_parser().parse_args(
            ["trace", "generate", "-b", "milc", "-o", "out.trace"]
        )
        assert args.trace_command == "generate"
        assert args.benchmark == "milc"
        assert args.output == "out.trace"

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["trace", "generate", "-b", "milc"])

    def test_convert_defaults(self):
        args = _build_parser().parse_args(
            ["trace", "convert", "in.csv", "-o", "out.trace"]
        )
        assert args.trace_command == "convert"
        assert args.source == "in.csv"
        assert args.fmt is None
        assert args.line_size == 64
        assert args.gap == 20
        assert args.limit is None

    def test_convert_format_choices(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(
                ["trace", "convert", "in.vcd", "-o", "o", "--format", "vcd"]
            )

    def test_calibrate_flags(self):
        args = _build_parser().parse_args(
            ["trace", "calibrate", "t.trace", "-c", "NP", "PMS",
             "-n", "500", "-j", "2"]
        )
        assert args.trace_command == "calibrate"
        assert args.file == "t.trace"
        assert args.configs == ["NP", "PMS"]
        assert args.accesses == 500
        assert args.jobs == 2

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["trace"])


class TestFuzzSubcommand:
    def test_defaults(self):
        args = _build_parser().parse_args(["fuzz"])
        assert args.budget == 16
        assert args.seed == 0
        assert args.objective == "waste"
        assert args.top == 8
        assert args.round_size == 8
        assert args.accesses == 4000
        assert not args.json
        assert not args.no_store

    def test_full_flag_set(self):
        args = _build_parser().parse_args(
            ["fuzz", "--budget", "32", "--seed", "7",
             "--objective", "regret", "--top", "4", "--round-size", "16",
             "-n", "2000", "-j", "4", "--no-store", "--json"]
        )
        assert args.budget == 32
        assert args.seed == 7
        assert args.objective == "regret"
        assert args.top == 4
        assert args.round_size == 16
        assert args.accesses == 2000
        assert args.jobs == 4
        assert args.no_store and args.json

    def test_objective_choices_enforced(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["fuzz", "--objective", "speed"])
