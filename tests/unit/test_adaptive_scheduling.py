"""Unit tests for Adaptive Scheduling (the five policies + adaptation)."""


from repro.common.config import AdaptiveSchedulingConfig
from repro.prefetch.adaptive_scheduling import (
    POLICIES,
    AdaptiveScheduler,
    SchedulerView,
)


def view(
    caq_len=0,
    caq_head_arrival=None,
    reorder_empty=True,
    reorder_has_issuable=False,
    lpq_len=1,
    lpq_full=False,
    lpq_head_arrival=0,
):
    return SchedulerView(
        caq_len=caq_len,
        caq_head_arrival=caq_head_arrival,
        reorder_empty=reorder_empty,
        reorder_has_issuable=reorder_has_issuable,
        lpq_len=lpq_len,
        lpq_full=lpq_full,
        lpq_head_arrival=lpq_head_arrival,
    )


class TestPolicies:
    def test_policy1_requires_everything_empty(self):
        assert POLICIES[1](view())
        assert not POLICIES[1](view(reorder_empty=False))
        assert not POLICIES[1](view(caq_len=1))

    def test_policy2_allows_unissuable_reorder_commands(self):
        v = view(reorder_empty=False, reorder_has_issuable=False)
        assert POLICIES[2](v)
        assert not POLICIES[2](view(reorder_empty=False, reorder_has_issuable=True))

    def test_policy3_only_needs_empty_caq(self):
        assert POLICIES[3](view(reorder_empty=False, reorder_has_issuable=True))
        assert not POLICIES[3](view(caq_len=1))

    def test_policy4_one_caq_entry_and_full_lpq(self):
        v = view(caq_len=1, caq_head_arrival=5, lpq_full=True)
        assert POLICIES[4](v)
        assert not POLICIES[4](view(caq_len=1, caq_head_arrival=5, lpq_full=False))
        assert not POLICIES[4](view(caq_len=2, caq_head_arrival=5, lpq_full=True))

    def test_policy5_timestamp_comparison(self):
        older = view(caq_len=1, caq_head_arrival=10, lpq_head_arrival=5)
        newer = view(caq_len=1, caq_head_arrival=3, lpq_head_arrival=5)
        assert POLICIES[5](older)
        assert not POLICIES[5](newer)

    def test_policies_monotone_when_caq_empty(self):
        # with an empty CAQ and empty reorder queues, every policy allows
        v = view()
        assert all(POLICIES[k](v) for k in range(1, 6))

    def test_conservative_ordering_example(self):
        # a busy system: only the aggressive policies allow issue
        v = view(
            caq_len=1,
            caq_head_arrival=10,
            reorder_empty=False,
            reorder_has_issuable=True,
            lpq_head_arrival=1,
        )
        assert not POLICIES[1](v)
        assert not POLICIES[2](v)
        assert not POLICIES[3](v)
        assert not POLICIES[4](v)
        assert POLICIES[5](v)


class TestAdaptiveScheduler:
    def make(self, **kw):
        return AdaptiveScheduler(AdaptiveSchedulingConfig(**kw))

    def test_initial_policy(self):
        assert self.make(initial_policy=3).policy == 3

    def test_empty_lpq_never_allows(self):
        s = self.make()
        assert not s.allows_lpq(view(lpq_len=0))

    def test_many_conflicts_step_conservative(self):
        s = self.make(raise_threshold=5, lower_threshold=1, initial_policy=3)
        s.record_conflict(10)
        s.epoch_update()
        assert s.policy == 2

    def test_few_conflicts_step_aggressive(self):
        s = self.make(raise_threshold=5, lower_threshold=3, initial_policy=3)
        s.record_conflict(1)
        s.epoch_update()
        assert s.policy == 4

    def test_policy_bounded_one_to_five(self):
        s = self.make(raise_threshold=5, lower_threshold=1, initial_policy=1)
        s.record_conflict(100)
        s.epoch_update()
        assert s.policy == 1
        s = self.make(raise_threshold=5, lower_threshold=3, initial_policy=5)
        s.epoch_update()
        assert s.policy == 5

    def test_conflicts_reset_each_epoch(self):
        s = self.make(raise_threshold=5, lower_threshold=0, initial_policy=3)
        s.record_conflict(10)
        s.epoch_update()
        assert s.conflicts_this_epoch == 0
        s.epoch_update()  # zero conflicts but lower_threshold=0: no step
        assert s.policy == 2

    def test_fixed_policy_never_adapts(self):
        s = self.make(fixed_policy=4)
        s.record_conflict(1000)
        s.epoch_update()
        assert s.policy == 4

    def test_midband_holds_policy(self):
        s = self.make(raise_threshold=10, lower_threshold=2, initial_policy=3)
        s.record_conflict(5)
        s.epoch_update()
        assert s.policy == 3

    def test_stats_track_epochs(self):
        s = self.make()
        s.epoch_update()
        s.epoch_update()
        assert s.stats["epochs"] == 2
