"""Unit tests for the fabric wire protocol (codec + validation)."""

import pytest

from repro.experiments import sweep
from repro.fabric import protocol
from repro.fabric.protocol import PROTOCOL_VERSION, ProtocolError
from repro.obs import spans as obs_spans


def resolved_job(**overrides):
    fields = dict(benchmark="milc", config_name="NP", accesses=2000,
                  seed=1, threads=1, scheduler="ahb")
    fields.update(overrides)
    return sweep.Job(**fields)


class TestEnvelope:
    def test_envelope_carries_version_and_kind(self):
        message = protocol.envelope("heartbeat", worker="w1")
        assert message["protocol"] == PROTOCOL_VERSION
        assert message["kind"] == "heartbeat"
        assert message["worker"] == "w1"

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.check_envelope([1, 2], "heartbeat")

    def test_version_mismatch_rejected(self):
        stale = protocol.envelope("heartbeat")
        stale["protocol"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version mismatch"):
            protocol.check_envelope(stale, "heartbeat")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="expected message kind"):
            protocol.check_envelope(
                protocol.envelope("lease_request"), "heartbeat"
            )


class TestJobCodec:
    def test_round_trip(self):
        job = resolved_job(threads=2, scheduler="in_order")
        assert protocol.decode_job(protocol.encode_job(job)) == job

    def test_unresolved_job_rejected(self):
        # env-backed defaults differ per host, so the wire form must be
        # fully resolved
        with pytest.raises(ProtocolError, match="resolved"):
            protocol.encode_job(resolved_job(accesses=None))
        with pytest.raises(ProtocolError, match="resolved"):
            protocol.encode_job(resolved_job(seed=None))

    def test_unknown_fields_rejected(self):
        payload = protocol.encode_job(resolved_job())
        payload["surprise"] = 1
        with pytest.raises(ProtocolError, match="unknown job fields"):
            protocol.decode_job(payload)

    def test_wrong_types_rejected(self):
        payload = protocol.encode_job(resolved_job())
        payload["accesses"] = "2000"
        with pytest.raises(ProtocolError, match="accesses"):
            protocol.decode_job(payload)

    def test_bool_is_not_an_int(self):
        payload = protocol.encode_job(resolved_job())
        payload["seed"] = True
        with pytest.raises(ProtocolError, match="seed"):
            protocol.decode_job(payload)


class TestSweepRequest:
    def test_grid_form_expands_like_the_sweep_engine(self):
        request = protocol.sweep_request(
            ["milc", "tonto"], ["NP", "PS"], accesses=500, seed=3
        )
        jobs, priority = protocol.parse_sweep_request(request)
        assert priority == 0
        assert jobs == sweep.expand_grid(
            ["milc", "tonto"], ["NP", "PS"], accesses=500, seed=3
        )

    def test_explicit_jobs_form(self):
        request = protocol.envelope(
            "sweep_request",
            jobs=[protocol.encode_job(resolved_job())],
            priority=5,
        )
        jobs, priority = protocol.parse_sweep_request(request)
        assert jobs == [resolved_job()]
        assert priority == 5

    def test_empty_grid_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            protocol.parse_sweep_request(
                protocol.sweep_request([], ["NP"], accesses=1, seed=1)
            )

    def test_bad_priority_rejected(self):
        request = protocol.sweep_request(["milc"], ["NP"])
        request["priority"] = "urgent"
        with pytest.raises(ProtocolError, match="priority"):
            protocol.parse_sweep_request(request)


class TestLeaseMessages:
    def test_lease_request_round_trip(self):
        parsed = protocol.parse_lease_request(
            protocol.lease_request("w1", 4)
        )
        assert parsed == ("w1", 4)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ProtocolError, match=">= 1"):
            protocol.parse_lease_request(protocol.lease_request("w1", 0))

    def test_lease_grant_round_trip(self):
        job = resolved_job()
        grant = protocol.lease_grant("lease-1", [("k1", job, None)], 30.0)
        lease_id, jobs, seconds = protocol.parse_lease_grant(grant)
        assert lease_id == "lease-1"
        assert jobs == [("k1", job, None)]
        assert seconds == 30.0

    def test_lease_grant_carries_trace_context(self):
        job = resolved_job()
        ctx = {"trace": "t" * 32, "span": "s" * 16}
        grant = protocol.lease_grant(
            "lease-1", [("k1", job, ctx)], 30.0, trace=ctx
        )
        _lease_id, jobs, _seconds = protocol.parse_lease_grant(grant)
        assert jobs == [("k1", job, ctx)]
        assert grant["trace"] == ctx

    def test_lease_grant_malformed_trace_rejected(self):
        job = resolved_job()
        grant = protocol.lease_grant("lease-1", [("k1", job, None)], 30.0)
        grant["jobs"][0]["trace"] = {"trace": "only-half"}
        with pytest.raises(ProtocolError, match="trace"):
            protocol.parse_lease_grant(grant)

    def test_empty_grant_means_nothing_queued(self):
        lease_id, jobs, _ = protocol.parse_lease_grant(
            protocol.lease_grant(None, [], 30.0)
        )
        assert lease_id is None
        assert jobs == []


class TestCompleteReport:
    def test_round_trip_with_metrics(self):
        report = protocol.complete_report(
            "w1", "lease-1",
            [{"key": "k1", "result": {"x": 1}, "outcome": "executed",
              "seconds": 0.5, "error": None}],
            metrics={"jobs": 1.0},
        )
        worker, lease_id, items, metrics, spans = (
            protocol.parse_complete_report(report)
        )
        assert (worker, lease_id) == ("w1", "lease-1")
        assert items[0]["key"] == "k1"
        assert items[0]["result"] == {"x": 1}
        assert items[0]["seconds"] == 0.5
        assert metrics == {"jobs": 1.0}
        assert spans == []

    def test_error_item_allowed_without_result(self):
        report = protocol.complete_report(
            "w1", "lease-1", [{"key": "k1", "error": "boom"}]
        )
        _, _, items, _, _ = protocol.parse_complete_report(report)
        assert items[0]["result"] is None
        assert items[0]["error"] == "boom"

    def test_item_needs_result_or_error(self):
        report = protocol.complete_report(
            "w1", "lease-1", [{"key": "k1"}]
        )
        with pytest.raises(ProtocolError, match="neither result nor error"):
            protocol.parse_complete_report(report)

    def test_non_numeric_metrics_dropped(self):
        report = protocol.complete_report(
            "w1", None, [{"key": "k1", "result": {}}],
            metrics={"ok": 2, "bad": "nan-ish", "flag": True},
        )
        _, _, _, metrics, _ = protocol.parse_complete_report(report)
        assert metrics == {"ok": 2.0}

    def test_report_ships_worker_spans(self):
        span = obs_spans.make_span(
            "fabric.execute", 100.0, 0.25, "t" * 32,
            attributes={"worker": "w1"},
        )
        report = protocol.complete_report(
            "w1", "lease-1", [{"key": "k1", "result": {}}], spans=[span]
        )
        _, _, _, _, spans = protocol.parse_complete_report(report)
        assert spans == [span]

    def test_malformed_span_rejected(self):
        report = protocol.complete_report(
            "w1", "lease-1", [{"key": "k1", "result": {}}]
        )
        report["spans"] = [{"name": "fabric.execute"}]
        with pytest.raises(ProtocolError, match="span"):
            protocol.parse_complete_report(report)


class TestTraceOnTheWire:
    """Protocol v3: messages may carry a span context (docs/fabric.md)."""

    def test_sweep_request_carries_submitter_context(self):
        ctx = {"trace": "a" * 32, "span": "b" * 16}
        request = protocol.sweep_request(
            ["milc"], ["NP"], accesses=100, seed=1, trace=ctx
        )
        assert protocol.trace_context(request) == ctx

    def test_absent_trace_parses_as_none(self):
        request = protocol.sweep_request(["milc"], ["NP"])
        assert protocol.trace_context(request) is None

    def test_malformed_trace_rejected(self):
        request = protocol.sweep_request(["milc"], ["NP"])
        request["trace"] = {"span": "orphan"}
        with pytest.raises(ProtocolError, match="trace"):
            protocol.trace_context(request)


class TestHeartbeat:
    def test_round_trip(self):
        parsed = protocol.parse_heartbeat(protocol.heartbeat("w1", "lease-9"))
        assert parsed == ("w1", "lease-9")

    def test_missing_lease_rejected(self):
        message = protocol.envelope("heartbeat", worker="w1")
        with pytest.raises(ProtocolError, match="lease"):
            protocol.parse_heartbeat(message)


class TestFidelityOnTheWire:
    """Protocol v2: jobs carry their fidelity tier (docs/fidelity.md)."""

    def test_protocol_version_is_3(self):
        # v2 added fidelity tiers; v3 added trace context + worker span
        # shipping — both breaking bumps for older peers
        assert PROTOCOL_VERSION == 3

    def test_fast_job_round_trip(self):
        job = resolved_job(fidelity="fast")
        decoded = protocol.decode_job(protocol.encode_job(job))
        assert decoded == job
        assert decoded.fidelity == "fast"

    def test_missing_fidelity_defaults_to_exact(self):
        payload = protocol.encode_job(resolved_job())
        payload.pop("fidelity", None)
        assert protocol.decode_job(payload).fidelity == "exact"

    def test_unknown_fidelity_rejected(self):
        payload = protocol.encode_job(resolved_job())
        payload["fidelity"] = "approximate"
        with pytest.raises(ProtocolError, match="fidelity"):
            protocol.decode_job(payload)

    def test_sweep_policy_auto_is_not_a_wire_tier(self):
        payload = protocol.encode_job(resolved_job())
        payload["fidelity"] = "auto"
        with pytest.raises(ProtocolError, match="fidelity"):
            protocol.decode_job(payload)

    def test_grid_request_carries_fidelity(self):
        request = protocol.sweep_request(
            ["milc"], ["NP", "PS"], accesses=2000, seed=1, fidelity="fast"
        )
        jobs, _priority = protocol.parse_sweep_request(request)
        assert [job.fidelity for job in jobs] == ["fast", "fast"]

    def test_explicit_jobs_form_preserves_mixed_tiers(self):
        jobs = [resolved_job(fidelity="fast"),
                resolved_job(config_name="PS")]
        request = protocol.sweep_request_jobs(jobs)
        decoded, _priority = protocol.parse_sweep_request(request)
        assert [job.fidelity for job in decoded] == ["fast", "exact"]
