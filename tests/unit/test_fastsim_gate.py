"""Unit tests for the FidelityGate (sampling, calibration, attach)."""

import pytest

from repro.dram.power import PowerReport
from repro.fastsim.gate import (
    BOUND_FLOOR,
    BOUND_MARGIN,
    CalibrationRecord,
    FidelityGate,
    GATED_METRICS,
    metric_value,
    near_decision_boundary,
    relative_error,
)
from repro.fastsim.version import FAST_MODEL_VERSION
from repro.system.results import RunResult


def result(cycles=10_000, coverage=0.0, fast=False, **overrides):
    stats = {
        "mc.reads_arrived": 1000,
        "pb.hits": int(coverage * 1000),
    }
    stats.update(overrides.pop("stats", {}))
    fields = dict(
        config_name="PMS",
        benchmark="milc",
        cycles=cycles,
        instructions=8000,
        cpu_ratio=8,
        stats=stats,
        power=PowerReport(
            elapsed_ns=cycles * 3.75, energy_uj=100.0, avg_power_mw=500.0,
            activate_energy_uj=10.0, burst_energy_uj=20.0,
            background_energy_uj=70.0,
        ),
        fidelity=(
            {"tier": "fast", "model_version": FAST_MODEL_VERSION}
            if fast else None
        ),
    )
    fields.update(overrides)
    return RunResult(**fields)


class TestSampling:
    def test_deterministic_across_calls(self):
        keys = [f"key-{i}" for i in range(20)]
        assert FidelityGate().select(keys) == FidelityGate().select(keys)

    def test_sample_size_honours_fraction_and_minimum(self):
        gate = FidelityGate(fraction=0.2, min_samples=3)
        assert gate.sample_size(0) == 0
        assert gate.sample_size(2) == 2      # capped at the population
        assert gate.sample_size(10) == 3     # the minimum dominates
        assert gate.sample_size(40) == 8     # the fraction dominates
        assert FidelityGate(fraction=1.0).sample_size(5) == 5

    def test_salt_changes_the_selection(self):
        keys = [f"key-{i}" for i in range(40)]
        plain = FidelityGate().select(keys)
        salted = FidelityGate(salt="other").select(keys)
        assert plain != salted

    def test_selection_is_key_driven_not_positional(self):
        keys = [f"key-{i}" for i in range(10)]
        chosen = {keys[i] for i in FidelityGate().select(keys)}
        rotated = keys[3:] + keys[:3]
        rechosen = {rotated[i] for i in FidelityGate().select(rotated)}
        assert chosen == rechosen

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            FidelityGate(fraction=0.0)
        with pytest.raises(ValueError, match="min_samples"):
            FidelityGate(min_samples=0)


class TestErrors:
    def test_relative_error_plain(self):
        fast, exact = result(cycles=11_000, fast=True), result(cycles=10_000)
        assert relative_error(fast, exact, "cycles") == pytest.approx(0.1)

    def test_denominator_floor_prevents_blowup(self):
        # coverage 0 vs 0.01: without the 0.02 floor this would be inf
        fast = result(coverage=0.01, fast=True)
        exact = result(coverage=0.0)
        err = relative_error(fast, exact, "coverage")
        assert err == pytest.approx(abs(
            metric_value(fast, "coverage") - 0.0
        ) / 0.02)

    def test_energy_reads_the_power_report(self):
        assert metric_value(result(), "energy_uj") == 100.0
        assert metric_value(result(power=None), "energy_uj") == 0.0


class TestCalibration:
    def test_bound_is_margin_over_worst_plus_floor(self):
        pairs = [
            (result(cycles=10_500, fast=True), result(cycles=10_000)),
            (result(cycles=9_000, fast=True), result(cycles=10_000)),
        ]
        record = FidelityGate().calibrate(pairs)
        stats = record.errors["cycles"]
        assert stats["max"] == pytest.approx(0.1)
        assert stats["mean"] == pytest.approx(0.075)
        assert record.bound("cycles") == pytest.approx(
            0.1 * BOUND_MARGIN + BOUND_FLOOR
        )

    def test_every_gated_metric_calibrated(self):
        record = FidelityGate().calibrate(
            [(result(fast=True), result())]
        )
        assert set(record.errors) == set(GATED_METRICS)
        assert record.model_version == FAST_MODEL_VERSION

    def test_empty_validation_set_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            FidelityGate().calibrate([])

    def test_record_round_trips_as_dict(self):
        record = FidelityGate().calibrate([(result(fast=True), result())])
        doc = record.as_dict()
        rebuilt = CalibrationRecord(**doc)
        assert rebuilt.error_bars() == record.error_bars()


class TestAttach:
    def test_fast_result_gains_bars_and_record(self):
        record = FidelityGate().calibrate(
            [(result(cycles=10_200, fast=True), result(cycles=10_000))]
        )
        fast = result(fast=True)
        FidelityGate.attach(fast, record)
        assert fast.error_bar("cycles") == record.bound("cycles")
        assert fast.fidelity["calibration"]["samples"] == 1

    def test_exact_result_passes_through(self):
        record = FidelityGate().calibrate([(result(fast=True), result())])
        exact = result()
        assert FidelityGate.attach(exact, record) is exact
        assert exact.fidelity is None


class TestDecisionBoundary:
    def make_record(self, cycle_bound):
        worst = (cycle_bound - BOUND_FLOOR) / BOUND_MARGIN
        fast = result(cycles=int(10_000 * (1 + worst)), fast=True)
        return FidelityGate().calibrate([(fast, result(cycles=10_000))])

    def test_gain_inside_the_band_escalates(self):
        record = self.make_record(0.05)
        baseline = result(cycles=10_000)
        close = result(cycles=9_700, fast=True)     # ~3.1% gain < 5%
        assert near_decision_boundary(close, baseline, record)

    def test_gain_outside_the_band_does_not(self):
        record = self.make_record(0.05)
        baseline = result(cycles=10_000)
        clear = result(cycles=7_000, fast=True)     # ~43% gain
        assert not near_decision_boundary(clear, baseline, record)

    def test_fast_baseline_widens_the_band(self):
        record = self.make_record(0.05)
        point = result(cycles=9_200, fast=True)     # ~8.7% gain
        exact_base = result(cycles=10_000)
        fast_base = result(cycles=10_000, fast=True)
        assert not near_decision_boundary(point, exact_base, record)
        assert near_decision_boundary(point, fast_base, record)
