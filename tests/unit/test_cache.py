"""Unit tests for the set-associative cache."""


from repro.cache.cache import Cache, Eviction
from repro.common.config import CacheConfig


def make_cache(size=1024, assoc=2, line=128):
    # 1024/128 = 8 lines, 2-way -> 4 sets
    return Cache(CacheConfig(size, assoc, latency=1, line_size=line))


class TestLookup:
    def test_miss_on_empty(self):
        c = make_cache()
        assert not c.lookup(5)
        assert c.stats["misses"] == 1

    def test_hit_after_fill(self):
        c = make_cache()
        c.fill(5)
        assert c.lookup(5)
        assert c.stats["hits"] == 1

    def test_contains_no_side_effects(self):
        c = make_cache()
        c.fill(5)
        c.contains(5)
        assert c.stats["hits"] == 0

    def test_write_sets_dirty(self):
        c = make_cache()
        c.fill(0)
        c.fill(4)  # same set (4 sets, lines 0 and 4 collide)
        c.lookup(0, write=True)
        c.lookup(0)  # refresh 0 again -> 4 is LRU... fill order matters
        ev = c.fill(8)  # set 0 full: evicts 4 (LRU)
        assert ev == Eviction(4, False)
        ev = c.fill(12)  # now evicts 0, which is dirty
        assert ev == Eviction(0, True)


class TestFill:
    def test_fill_existing_keeps_single_copy(self):
        c = make_cache()
        c.fill(5)
        assert c.fill(5) is None
        assert c.occupancy == 1

    def test_refill_ors_dirty(self):
        c = make_cache(size=256, assoc=2)  # 1 set of 2
        c.fill(0, dirty=True)
        c.fill(0, dirty=False)  # must not clear the dirty bit
        c.fill(1)
        ev = c.fill(2)
        assert ev.line == 0 and ev.dirty

    def test_eviction_is_lru(self):
        c = make_cache(size=256, assoc=2)  # 1 set
        c.fill(0)
        c.fill(1)
        c.lookup(0)  # 1 becomes LRU
        ev = c.fill(2)
        assert ev.line == 1

    def test_occupancy_bounded(self):
        c = make_cache()
        for line in range(100):
            c.fill(line)
        assert c.occupancy <= 8

    def test_dirty_eviction_counted(self):
        c = make_cache(size=256, assoc=2)
        c.fill(0, dirty=True)
        c.fill(1)
        c.fill(2)
        assert c.stats["dirty_evictions"] == 1


class TestInvalidate:
    def test_invalidate_present(self):
        c = make_cache()
        c.fill(5)
        assert c.invalidate(5)
        assert not c.contains(5)

    def test_invalidate_absent(self):
        assert not make_cache().invalidate(5)

    def test_refill_after_invalidate(self):
        c = make_cache()
        c.fill(5)
        c.invalidate(5)
        c.fill(5)
        assert c.contains(5)

    def test_resident_lines(self):
        c = make_cache()
        c.fill(1)
        c.fill(2)
        assert sorted(c.resident_lines()) == [1, 2]
