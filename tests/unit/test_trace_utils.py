"""Unit tests for trace manipulation utilities and latency histograms."""

import pytest

from repro.workloads.trace import Trace


def t(lines, name="t"):
    return Trace([(0, line, False) for line in lines], name=name)


class TestSlice:
    def test_slice_range(self):
        trace = t([1, 2, 3, 4])
        assert [r[1] for r in trace.slice(1, 3).records] == [2, 3]

    def test_slice_open_end(self):
        assert len(t([1, 2, 3]).slice(1)) == 2

    def test_slice_does_not_share(self):
        trace = t([1, 2, 3])
        sliced = trace.slice(0, 2)
        sliced.records.append((0, 99, False))
        assert len(trace) == 3


class TestConcat:
    def test_concat_order(self):
        combined = t([1, 2]).concat(t([3]))
        assert [r[1] for r in combined.records] == [1, 2, 3]

    def test_concat_name(self):
        assert t([1], "a").concat(t([2], "b")).name == "a+b"


class TestInterleave:
    def test_round_robin(self):
        mixed = Trace.interleave([t([1, 2]), t([10, 20])])
        assert [r[1] for r in mixed.records] == [1, 10, 2, 20]

    def test_chunked(self):
        mixed = Trace.interleave([t([1, 2, 3]), t([10, 20, 30])], chunk=2)
        assert [r[1] for r in mixed.records] == [1, 2, 10, 20, 3, 30]

    def test_uneven_lengths(self):
        mixed = Trace.interleave([t([1]), t([10, 20, 30])])
        assert sorted(r[1] for r in mixed.records) == [1, 10, 20, 30]

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            Trace.interleave([t([1])], chunk=0)


class TestLatencyHistogram:
    def test_histogram_from_run(self):
        from repro import make_config, simulate

        trace = Trace([(0, (1 << 34) + i * 7, False) for i in range(30)])
        result = simulate(make_config("NP"), trace)
        hist = result.read_latency_histogram()
        assert sum(hist.values()) == result.stats["mc.lat_cnt_demand"]
        assert all(bucket >= 1 for bucket in hist)

    def test_histogram_empty_for_ps_when_disabled(self):
        from repro import make_config, simulate

        trace = Trace([(0, (1 << 34), False)])
        result = simulate(make_config("NP"), trace)
        assert result.read_latency_histogram("ps_prefetch") == {}
