"""Unit tests for controller extras: RAW forwarding, latency stats,
refresh, and closed-page DRAM."""

import pytest

from repro.common.config import (
    ControllerConfig,
    DRAMConfig,
    DRAMTimingConfig,
    MemorySidePrefetcherConfig,
)
from repro.common.types import CommandKind, MemoryCommand
from repro.controller.controller import MemoryController
from repro.dram.device import DRAMDevice
from repro.prefetch.memory_side import MemorySidePrefetcher


def build(dram_config=None, **ctrl_kw):
    dram = DRAMDevice(dram_config or DRAMConfig())
    ms = MemorySidePrefetcher(MemorySidePrefetcherConfig(enabled=False))
    completed = []
    mc = MemoryController(
        ControllerConfig(**ctrl_kw),
        dram,
        ms,
        on_read_complete=lambda cmd, now: completed.append((cmd, now)),
    )
    return mc, completed


def read(line):
    return MemoryCommand(CommandKind.READ, line)


def write(line):
    return MemoryCommand(CommandKind.WRITE, line)


def drain(mc, start=0, limit=20_000):
    now = start
    while not mc.idle():
        mc.tick(now)
        now += 1
        assert now - start < limit
    return now


class TestRAWForwarding:
    def test_read_forwarded_from_queued_write(self):
        mc, completed = build()
        mc.enqueue(write(5), 0)
        mc.enqueue(read(5), 0)
        drain(mc)
        assert mc.stats["raw_forwards"] == 1
        assert len(completed) == 1

    def test_forwarded_read_is_fast(self):
        mc, completed = build()
        mc.enqueue(write(5), 0)
        mc.enqueue(read(5), 0)
        drain(mc)
        _, when = completed[0]
        assert when <= ControllerConfig().overhead_mc_cycles + 3

    def test_no_forward_after_write_issues(self):
        mc, completed = build()
        mc.enqueue(write(5), 0)
        now = drain(mc)
        mc.enqueue(read(5), now)
        drain(mc, start=now)
        assert mc.stats["raw_forwards"] == 0

    def test_different_line_not_forwarded(self):
        mc, _ = build()
        mc.enqueue(write(5), 0)
        mc.enqueue(read(6), 0)
        drain(mc)
        assert mc.stats["raw_forwards"] == 0

    def test_duplicate_writes_tracked(self):
        mc, _ = build()
        mc.enqueue(write(5), 0)
        mc.enqueue(write(5), 0)
        drain(mc)
        assert not mc._pending_write_lines


class TestLatencyStats:
    def test_latency_recorded_per_read(self):
        mc, _ = build()
        mc.enqueue(read(1), 0)
        mc.enqueue(read(2), 0)
        drain(mc)
        assert mc.stats["lat_cnt_demand"] == 2
        assert mc.stats["lat_sum_demand"] > 0
        assert mc.stats["lat_max_demand"] >= (
            mc.stats["lat_sum_demand"] / 2
        )

    def test_writes_not_in_latency_stats(self):
        mc, _ = build()
        mc.enqueue(write(1), 0)
        drain(mc)
        assert mc.stats["lat_cnt_demand"] == 0


class TestRefresh:
    def timing(self):
        return DRAMTimingConfig(t_refi=200, t_rfc=34)

    def test_refresh_counted(self):
        dev = DRAMDevice(DRAMConfig(timing=self.timing()))
        dev.try_issue(read(0), 1000)
        assert dev.stats["refreshes"] > 0

    def test_refresh_blocks_rank(self):
        cfg = DRAMConfig(ranks=1, banks_per_rank=2, timing=self.timing())
        dev = DRAMDevice(cfg)
        # issue exactly at the refresh deadline: access waits out tRFC
        result = dev.try_issue(read(0), 200)
        t = self.timing()
        assert result.completion >= 200 + t.t_rfc + t.t_rcd + t.t_cl

    def test_refresh_disabled_by_default(self):
        dev = DRAMDevice(DRAMConfig())
        dev.try_issue(read(0), 10_000_000)
        assert dev.stats["refreshes"] == 0

    def test_refresh_config_validation(self):
        with pytest.raises(ValueError):
            DRAMTimingConfig(t_refi=10, t_rfc=34).validate()


class TestClosedPage:
    def test_closed_page_never_row_hits(self):
        cfg = DRAMConfig(ranks=1, banks_per_rank=1, row_lines=8,
                         page_policy="closed")
        dev = DRAMDevice(cfg)
        first = dev.try_issue(read(0), 0)
        dev.try_issue(read(0), first.completion + 50)
        assert dev.stats["row_hits"] == 0
        assert dev.stats["activations"] == 2

    def test_open_page_row_hits(self):
        cfg = DRAMConfig(ranks=1, banks_per_rank=1, row_lines=8,
                         page_policy="open")
        dev = DRAMDevice(cfg)
        first = dev.try_issue(read(0), 0)
        dev.try_issue(read(0), first.completion + 50)
        assert dev.stats["row_hits"] == 1

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            DRAMConfig(page_policy="half-open").validate()
