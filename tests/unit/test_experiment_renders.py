"""Unit tests for the experiment render functions (table formatting)."""


from repro.analysis.metrics import ConfigComparison, SuiteResult
from repro.experiments.ablation import AblationFigure
from repro.experiments.ablation import render as render_ablation
from repro.experiments.efficiency import EfficiencyFigure, EfficiencyRow
from repro.experiments.efficiency import render as render_efficiency
from repro.experiments.performance import render as render_performance
from repro.experiments.sensitivity import SweepFigure
from repro.experiments.sensitivity import render as render_sweep
from repro.experiments.smt import SMTResult
from repro.experiments.smt import render as render_smt
from repro.system.presets import ABLATION_CONFIGS


class TestPerformanceRender:
    def suite(self):
        result = SuiteResult("spec2006fp")
        result.rows.append(ConfigComparison("bwaves", 60.0, 30.0, 8.0))
        result.rows.append(ConfigComparison("gamess", 0.5, 0.1, 0.0))
        return result

    def test_contains_rows_and_average(self):
        out = render_performance(self.suite())
        assert "bwaves" in out
        assert "Average" in out
        assert "60.0" in out

    def test_mentions_paper_averages(self):
        out = render_performance(self.suite())
        assert "paper averages" in out
        assert "32.7" in out  # the SPEC PMS-vs-NP paper number


class TestAblationRender:
    def test_summary_lines(self):
        fig = AblationFigure(["b1"])
        fig.normalized["b1"] = {c: 1.0 for c in ABLATION_CONFIGS}
        out = render_ablation(fig)
        assert "adaptive vs best fixed policy" in out
        assert "next-line vs P5-style" in out


class TestEfficiencyRender:
    def test_paper_bands_in_title(self):
        fig = EfficiencyFigure()
        fig.rows["x"] = EfficiencyRow("x", 80.0, 25.0, 2.0)
        out = render_efficiency(fig)
        assert "82-91%" in out
        assert "19-34%" in out


class TestSweepRender:
    def test_sweep_columns(self):
        fig = SweepFigure("pb_entries", (8, 16))
        fig.speedups["x"] = {8: 1.1, 16: 1.2}
        out = render_sweep(fig)
        assert "pb_entries" in out
        assert "1.20" in out


class TestSMTRender:
    def test_with_and_without_suite(self):
        result = SMTResult(["x"])
        result.rows["x"] = {"pms_vs_np": 10.0, "ms_vs_np": 5.0, "pms_vs_ps": 3.0}
        plain = render_smt(result)
        assert "SMT" in plain
        with_suite = render_smt(result, suite="nas")
        assert "paper" in with_suite
