"""Unit tests for core behaviour under controller back-pressure."""


from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import (
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DRAMConfig,
    HierarchyConfig,
    MemorySidePrefetcherConfig,
    ProcessorSidePrefetcherConfig,
)
from repro.controller.controller import MemoryController
from repro.cpu.core import Core
from repro.dram.device import DRAMDevice
from repro.prefetch.memory_side import MemorySidePrefetcher
from repro.prefetch.processor_side import ProcessorSidePrefetcher
from repro.workloads.trace import Trace


def build(records, read_depth=1, write_depth=2, mlp=8, ps=False):
    hierarchy = CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(256, 2, latency=1),
            l2=CacheConfig(512, 2, latency=10),
            l3=CacheConfig(1024, 2, latency=50),
        )
    )
    mc = MemoryController(
        ControllerConfig(
            read_queue_depth=read_depth,
            write_queue_depth=write_depth,
            write_drain_threshold=min(2, write_depth),
        ),
        DRAMDevice(DRAMConfig()),
        MemorySidePrefetcher(MemorySidePrefetcherConfig(enabled=False)),
    )
    core = Core(
        CoreConfig(mlp=mlp),
        hierarchy,
        ProcessorSidePrefetcher(ProcessorSidePrefetcherConfig(enabled=ps)),
        mc,
        [Trace(records)],
    )
    return core, mc


def drive(core, mc, limit=100_000):
    now = 0
    while not (core.done and mc.idle()):
        mc.tick(now)
        core.tick(now)
        now += 1
        assert now < limit, "system failed to drain"
    return now


class TestReadQueueBackpressure:
    def test_tiny_read_queue_still_completes(self):
        records = [(0, (1 << 20) + i * 10, False) for i in range(20)]
        core, mc = build(records, read_depth=1)
        drive(core, mc)
        assert mc.stats["reads_demand"] == 20

    def test_queue_stall_cycles_recorded(self):
        records = [(0, (1 << 20) + i * 10, False) for i in range(20)]
        core, mc = build(records, read_depth=1)
        drive(core, mc)
        assert core.stats["stall_cycles_queue"] > 0

    def test_rejections_counted(self):
        records = [(0, (1 << 20) + i * 10, False) for i in range(20)]
        core, mc = build(records, read_depth=1)
        drive(core, mc)
        assert mc.stats["read_rejects"] > 0


class TestWriteQueueBackpressure:
    def test_writeback_storm_drains(self):
        # conflicting dirty stores flood the 2-entry write queue
        records = [(0, (1 << 20) + i * 2, True) for i in range(60)]
        core, mc = build(records, write_depth=2)
        drive(core, mc)
        assert mc.stats["writes_arrived"] > 0
        # no writeback was ever dropped: all arrived writes issued
        assert mc.stats["issued_regular"] == mc.stats["writes_arrived"]


class TestPSDropsUnderPressure:
    def test_ps_prefetches_dropped_not_blocking(self):
        records = [(0, (1 << 20) + i, False) for i in range(40)]
        core, mc = build(records, read_depth=1, ps=True)
        drive(core, mc)
        # demand always completes even when PS requests found no room
        assert mc.stats["reads_demand"] == 40
        assert core.stats["ps_dropped_queue"] > 0
