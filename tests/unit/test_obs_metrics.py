"""Unit tests for repro.obs.metrics — the fleet-level registry contract.

The disabled-default behaviour deliberately mirrors the NULL_TRACER
contract tested in test_telemetry_tracer.py: mutators on a disabled
registry return immediately and allocate nothing.
"""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
    set_default_registry,
)


@pytest.fixture(autouse=True)
def _fresh_default():
    reset_default_registry()
    yield
    reset_default_registry()


class TestDisabled:
    def test_null_metrics_is_disabled(self):
        assert NULL_METRICS.enabled is False

    def test_disabled_counter_inc_stores_nothing(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("c_total", "help", ("kind",))
        for _ in range(100):
            counter.inc(kind="x")
        assert counter.samples() == []
        assert counter.value(kind="x") == 0.0

    def test_disabled_gauge_and_histogram_store_nothing(self):
        reg = MetricsRegistry(enabled=False)
        gauge = reg.gauge("g")
        hist = reg.histogram("h_seconds")
        gauge.set(5.0)
        gauge.inc()
        gauge.dec()
        hist.observe(1.5)
        assert gauge.samples() == []
        assert hist.samples() == []

    def test_disabled_counter_skips_validation(self):
        # The early return happens before any label/sign checking —
        # that is the "one attribute check and nothing else" contract
        # hot call sites rely on.
        counter = MetricsRegistry(enabled=False).counter("c", "", ("a",))
        counter.inc(-5, bogus_label="x")  # must not raise

    def test_default_registry_is_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        reset_default_registry()
        assert default_registry() is NULL_METRICS


class TestDefaultRegistry:
    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        reset_default_registry()
        reg = default_registry()
        assert reg.enabled is True
        assert reg is not NULL_METRICS
        assert default_registry() is reg  # cached

    def test_env_zero_stays_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "0")
        reset_default_registry()
        assert default_registry() is NULL_METRICS

    def test_set_default_registry_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        mine = MetricsRegistry(enabled=True)
        set_default_registry(mine)
        assert default_registry() is mine
        reset_default_registry()
        assert default_registry() is NULL_METRICS


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("jobs_total", "", ("outcome",))
        counter.inc(outcome="serial")
        counter.inc(2, outcome="serial")
        counter.inc(outcome="parallel")
        assert counter.value(outcome="serial") == 3.0
        assert counter.value(outcome="parallel") == 1.0

    def test_negative_inc_raises(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(MetricError, match="decrease"):
            counter.inc(-1)

    def test_wrong_labels_raise(self):
        counter = MetricsRegistry().counter("c", "", ("kind",))
        with pytest.raises(MetricError, match="expected labels"):
            counter.inc(other="x")
        with pytest.raises(MetricError, match="expected labels"):
            counter.inc()

    def test_samples_sorted_by_label_values(self):
        counter = MetricsRegistry().counter("c", "", ("k",))
        counter.inc(k="zz")
        counter.inc(k="aa")
        assert [labels["k"] for labels, _ in counter.samples()] == ["aa", "zz"]


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13.0


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        [(labels, (counts, total, count))] = hist.samples()
        assert labels == {}
        assert counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert total == 105.5
        assert count == 3

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are upper-inclusive: le="1.0" covers 1.0.
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        hist.observe(1.0)
        [(_, (counts, _, _))] = hist.samples()
        assert counts == [1, 0, 0]

    def test_mean(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert hist.mean() == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean() == 3.0

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

    def test_empty_buckets_raise(self):
        with pytest.raises(MetricError, match="bucket"):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistration:
    def test_same_name_same_shape_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("c", "help", ("k",))
        b = reg.counter("c", "other help", ("k",))
        assert a is b
        assert len(reg) == 1

    def test_same_name_different_type_raises(self):
        reg = MetricsRegistry()
        reg.counter("metric")
        with pytest.raises(MetricError, match="already registered"):
            reg.gauge("metric")

    def test_same_name_different_labels_raises(self):
        reg = MetricsRegistry()
        reg.counter("metric", "", ("a",))
        with pytest.raises(MetricError, match="already registered"):
            reg.counter("metric", "", ("b",))

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError, match="invalid metric name"):
            reg.counter("1bad")
        with pytest.raises(MetricError, match="invalid label name"):
            reg.counter("ok", "", ("bad-label",))
        with pytest.raises(MetricError, match="invalid label name"):
            reg.counter("ok", "", ("__reserved",))
        with pytest.raises(MetricError, match="duplicate"):
            reg.counter("ok", "", ("a", "a"))

    def test_collect_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.gauge("aa")
        assert [i.name for i in reg.collect()] == ["aa", "zz"]
