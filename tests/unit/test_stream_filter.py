"""Unit tests for the Stream Filter."""


from repro.common.config import StreamFilterConfig
from repro.common.types import Direction
from repro.prefetch.stream_filter import StreamFilter


def make_filter(slots=8, init=10, inc=10, cap=80, collect=None):
    cfg = StreamFilterConfig(
        slots=slots, lifetime_init=init, lifetime_increment=inc, lifetime_cap=cap
    )
    return StreamFilter(cfg, on_evict=collect)


class TestAllocation:
    def test_first_read_allocates_length_one(self):
        sf = make_filter()
        obs = sf.observe(100, 0)
        assert obs.position == 1
        assert obs.tracked
        assert obs.direction is Direction.ASCENDING
        assert sf.occupancy == 1

    def test_each_new_region_gets_a_slot(self):
        sf = make_filter()
        for i, line in enumerate((100, 200, 300)):
            sf.observe(line, i)
        assert sf.occupancy == 3


class TestAdvance:
    def test_sequential_reads_extend_stream(self):
        sf = make_filter()
        sf.observe(100, 0)
        obs = sf.observe(101, 1)
        assert obs.position == 2
        assert obs.direction is Direction.ASCENDING
        assert sf.occupancy == 1

    def test_long_stream_positions(self):
        sf = make_filter()
        for k, line in enumerate(range(100, 110)):
            obs = sf.observe(line, k)
            assert obs.position == k + 1

    def test_descending_flip_on_length_one(self):
        # paper: direction becomes Negative when a length-1 stream sees
        # the preceding address
        sf = make_filter()
        sf.observe(100, 0)
        obs = sf.observe(99, 1)
        assert obs.direction is Direction.DESCENDING
        assert obs.position == 2

    def test_descending_stream_continues_downward(self):
        sf = make_filter()
        sf.observe(100, 0)
        sf.observe(99, 1)
        obs = sf.observe(98, 2)
        assert obs.position == 3
        assert obs.direction is Direction.DESCENDING

    def test_no_descending_flip_after_length_two(self):
        sf = make_filter()
        sf.observe(100, 0)
        sf.observe(101, 1)
        # 100 again does not extend the (now length-2 ascending) stream
        obs = sf.observe(100, 2)
        assert obs.position == 1
        assert sf.occupancy == 2

    def test_nonadjacent_read_starts_new_stream(self):
        sf = make_filter()
        sf.observe(100, 0)
        obs = sf.observe(105, 1)
        assert obs.position == 1
        assert sf.occupancy == 2


class TestFullFilter:
    def test_untracked_when_full(self):
        sf = make_filter(slots=2)
        sf.observe(100, 0)
        sf.observe(200, 0)
        obs = sf.observe(300, 0)
        assert not obs.tracked
        assert sf.occupancy == 2

    def test_untracked_records_length_one(self):
        # paper: the SLH is still updated as if a length-1 stream occurred
        seen = []
        sf = make_filter(slots=1, collect=lambda l, d: seen.append((l, d)))
        sf.observe(100, 0)
        sf.observe(200, 0)
        assert seen == [(1, Direction.ASCENDING)]

    def test_advance_still_possible_when_full(self):
        sf = make_filter(slots=1)
        sf.observe(100, 0)
        obs = sf.observe(101, 1)
        assert obs.tracked
        assert obs.position == 2


class TestLifetimes:
    def test_expiry_evicts_and_reports_length(self):
        seen = []
        sf = make_filter(init=5, collect=lambda l, d: seen.append(l))
        sf.observe(100, 0)
        sf.observe(101, 1)
        sf.expire(100)
        assert seen == [2]
        assert sf.occupancy == 0

    def test_advance_extends_lifetime(self):
        sf = make_filter(init=5, inc=5)
        sf.observe(100, 0)  # expires at 5
        sf.observe(101, 2)  # expires at 10
        sf.expire(7)
        assert sf.occupancy == 1

    def test_lifetime_cap(self):
        sf = make_filter(init=5, inc=100, cap=10)
        sf.observe(100, 0)
        sf.observe(101, 1)  # would be 105, capped at 1+10
        sf.expire(12)
        assert sf.occupancy == 0

    def test_observe_expires_implicitly(self):
        seen = []
        sf = make_filter(init=5, collect=lambda l, d: seen.append(l))
        sf.observe(100, 0)
        sf.observe(500, 50)  # first slot long dead
        assert seen == [1]
        assert sf.occupancy == 1


class TestFlush:
    def test_flush_reports_all_streams(self):
        seen = []
        sf = make_filter(collect=lambda l, d: seen.append(l))
        sf.observe(100, 0)
        sf.observe(101, 1)
        sf.observe(500, 2)
        sf.flush()
        assert sorted(seen) == [1, 2]
        assert sf.occupancy == 0

    def test_flush_callback_override(self):
        normal, special = [], []
        sf = make_filter(collect=lambda l, d: normal.append(l))
        sf.observe(100, 0)
        sf.flush(callback=lambda l, d: special.append(l))
        assert normal == []
        assert special == [1]

    def test_flush_direction_reported(self):
        seen = []
        sf = make_filter(collect=lambda l, d: seen.append(d))
        sf.observe(100, 0)
        sf.observe(99, 1)
        sf.flush()
        assert seen == [Direction.DESCENDING]


class TestStats:
    def test_counts(self):
        sf = make_filter(slots=1)
        sf.observe(100, 0)  # allocation
        sf.observe(101, 1)  # advance
        sf.observe(500, 2)  # untracked
        assert sf.stats["allocations"] == 1
        assert sf.stats["advances"] == 1
        assert sf.stats["untracked"] == 1

    def test_lengths_helper(self):
        sf = make_filter()
        sf.observe(100, 0)
        sf.observe(101, 1)
        sf.observe(200, 2)
        assert sorted(sf.lengths()) == [1, 2]
