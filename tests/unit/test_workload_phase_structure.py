"""Unit tests: phase rounds show up in the generated traces."""


from repro.analysis.slh_accuracy import exact_slh
from repro.workloads.synthetic import StreamWorkload, WorkloadPhase, generate_trace


def phased_workload(round_size=400):
    return StreamWorkload(
        name="phased",
        length_dist={4: 1.0},
        gap_mean=0,
        hot_fraction=0.0,
        write_fraction=0.0,
        descending_fraction=0.0,
        interleave=1,
        burstiness=1.0,
        phases=(
            WorkloadPhase(weight=0.5, length_dist={1: 1.0}),
            WorkloadPhase(weight=0.5, length_dist={8: 1.0}),
        ),
        phase_round=round_size,
    )


class TestPhaseRounds:
    def test_first_segment_is_phase_one(self):
        trace = generate_trace(phased_workload(), 800, seed=2)
        first = [r[1] for r in trace.records[:150]]
        bars = exact_slh(first)
        assert bars[1] > 0.9  # isolated lines

    def test_second_segment_is_phase_two(self):
        trace = generate_trace(phased_workload(), 800, seed=2)
        second = [r[1] for r in trace.records[250:390]]
        bars = exact_slh(second)
        assert bars[8] > 0.6  # 8-line runs

    def test_rounds_repeat(self):
        trace = generate_trace(phased_workload(), 1200, seed=2)
        third = [r[1] for r in trace.records[420:560]]  # round 2, phase 1
        bars = exact_slh(third)
        assert bars[1] > 0.8

    def test_weights_control_segment_sizes(self):
        wl = phased_workload()
        wl = StreamWorkload(
            **{**wl.__dict__,
               "phases": (
                   WorkloadPhase(weight=0.25, length_dist={1: 1.0}),
                   WorkloadPhase(weight=0.75, length_dist={8: 1.0}),
               )}
        )
        trace = generate_trace(wl, 400, seed=2)
        head = [r[1] for r in trace.records[:80]]
        tail = [r[1] for r in trace.records[150:350]]
        assert exact_slh(head)[1] > 0.8
        assert exact_slh(tail)[8] > 0.6

    def test_streams_survive_phase_boundary(self):
        # a live stream at the boundary continues into the next segment
        wl = phased_workload(round_size=10)  # tiny rounds force carries
        trace = generate_trace(wl, 200, seed=2)
        lines = [r[1] for r in trace.records]
        assert len(set(lines)) == len(lines)  # still all-unique cold lines
