"""Unit tests for the three-level cache hierarchy."""


from repro.cache.hierarchy import CacheHierarchy, Level
from repro.common.config import CacheConfig, HierarchyConfig


def tiny_hierarchy():
    # l1: 2 lines (1 set x 2), l2: 4 lines, l3: 8 lines
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(256, 2, latency=1),
            l2=CacheConfig(512, 2, latency=10),
            l3=CacheConfig(1024, 2, latency=50),
        )
    )


class TestDemandPath:
    def test_cold_load_misses_to_memory(self):
        h = tiny_hierarchy()
        result = h.access(100)
        assert result.level is Level.MEMORY
        assert result.writebacks == []

    def test_fill_then_l1_hit(self):
        h = tiny_hierarchy()
        h.access(100)
        h.fill_from_memory(100)
        result = h.access(100)
        assert result.level is Level.L1
        assert result.latency_cpu == 1

    def test_l2_hit_promotes_to_l1(self):
        h = tiny_hierarchy()
        h.fill_from_memory(100, to_l1=False)
        assert h.access(100).level is Level.L2
        assert h.access(100).level is Level.L1

    def test_l3_hit_promotes(self):
        h = tiny_hierarchy()
        h.fill_from_memory(100)
        # push 100 out of l1 and l2 into the victim l3
        for line in (2, 4, 6, 8):  # same-set conflicts
            h.fill_from_memory(line)
        level = h.present_level(100)
        if level is Level.L3:
            assert h.access(100).level is Level.L3
            assert h.present_level(100) in (Level.L1, Level.L2)

    def test_latency_comes_from_config(self):
        h = tiny_hierarchy()
        h.fill_from_memory(100, to_l1=False)
        assert h.access(100).latency_cpu == 10


class TestStores:
    def test_store_miss_write_validates(self):
        h = tiny_hierarchy()
        result = h.access(100, write=True)
        assert result.level is Level.MEMORY
        assert h.present_level(100) is Level.L1
        assert h.stats["write_validates"] == 1

    def test_store_hit_dirties_line(self):
        h = tiny_hierarchy()
        h.fill_from_memory(100)
        h.access(100, write=True)
        # evict 100 from L1 by conflicting fills; its dirty bit must
        # propagate down, eventually producing a DRAM write
        writebacks = []
        line = 102
        for _ in range(12):
            writebacks += h.fill_from_memory(line)
            line += 2
        assert 100 in writebacks or h.present_level(100) is not None


class TestVictimL3:
    def test_clean_l2_victims_enter_l3(self):
        h = tiny_hierarchy()
        h.fill_from_memory(0, to_l1=False)
        # conflict 0 out of its l2 set (l2 has 2 sets: lines 0,2,4 share)
        h.fill_from_memory(2, to_l1=False)
        h.fill_from_memory(4, to_l1=False)
        assert h.l3.contains(0)

    def test_dirty_l3_victims_become_writebacks(self):
        h = tiny_hierarchy()
        collected = []
        # create many dirty lines in one l3 set
        for i in range(12):
            line = i * 2  # all even lines share l2/l3 sets heavily
            result = h.access(line, write=True)
            collected += result.writebacks
        assert collected, "expected dirty L3 victims to reach memory"

    def test_writebacks_are_line_addresses(self):
        h = tiny_hierarchy()
        seen = set()
        for i in range(20):
            result = h.access(i * 2, write=True)
            seen.update(result.writebacks)
        assert all(isinstance(line, int) for line in seen)


class TestQueries:
    def test_present_level_reports_highest(self):
        h = tiny_hierarchy()
        h.fill_from_memory(100)
        assert h.present_level(100) is Level.L1

    def test_absent_line(self):
        h = tiny_hierarchy()
        assert h.present_level(100) is None
        assert not h.cached_anywhere(100)

    def test_memory_access_counted(self):
        h = tiny_hierarchy()
        h.access(1)
        h.access(3)
        assert h.stats["memory_accesses"] == 2
