"""Unit tests for the two Stream Filter lifetime clocks.

The default counts observed Reads; ``lifetime_unit="cpu"`` restores the
paper's processor-cycle mechanism (see DESIGN.md deviation 1).  Both
clocks must drive the same eviction semantics.
"""



from repro.common.config import MemorySidePrefetcherConfig, StreamFilterConfig
from repro.prefetch.engines import ASDEngine


def engine(unit, init, inc, cap):
    cfg = MemorySidePrefetcherConfig(
        enabled=True,
        engine="asd",
        stream_filter=StreamFilterConfig(
            lifetime_unit=unit,
            lifetime_init=init,
            lifetime_increment=inc,
            lifetime_cap=cap,
        ),
    )
    return ASDEngine(cfg, threads=1)


class TestReadClock:
    def test_quiet_stream_evicts_after_n_reads(self):
        e = engine("reads", init=3, inc=3, cap=24)
        e.observe_read(100, 0, 0)
        # three unrelated reads age the first slot out
        for i, line in enumerate((500, 900, 1300), start=1):
            e.observe_read(line, 0, i * 8)
        assert 100 not in [s.last for s in e.filters[0].slots]

    def test_active_stream_survives(self):
        e = engine("reads", init=3, inc=3, cap=24)
        line = 100
        for i in range(10):
            e.observe_read(line + i, 0, i * 8)
        lengths = e.filters[0].lengths()
        assert 10 in lengths

    def test_cpu_time_irrelevant_for_read_clock(self):
        e = engine("reads", init=3, inc=3, cap=24)
        e.observe_read(100, 0, 0)
        # an enormous CPU-time jump with only one intervening read must
        # NOT expire the slot (only read events age it)
        e.observe_read(500, 0, 10_000_000)
        e.observe_read(101, 0, 10_000_001)
        assert 2 in e.filters[0].lengths()

    def test_tick_is_noop_for_read_clock(self):
        e = engine("reads", init=3, inc=3, cap=24)
        e.observe_read(100, 0, 0)
        e.tick(10_000_000)
        assert e.filters[0].occupancy == 1


class TestCpuClock:
    def test_quiet_stream_evicts_after_cpu_cycles(self):
        e = engine("cpu", init=100, inc=100, cap=800)
        e.observe_read(100, 0, 0)
        e.tick(200)
        assert e.filters[0].occupancy == 0

    def test_read_count_irrelevant_for_cpu_clock(self):
        e = engine("cpu", init=1000, inc=1000, cap=8000)
        e.observe_read(100, 0, 0)
        # many reads in a short cpu window: slot must survive
        for i, line in enumerate((500, 900, 1300, 1700), start=1):
            e.observe_read(line, 0, i)
        e.observe_read(101, 0, 10)
        assert 2 in e.filters[0].lengths()

    def test_advance_extends_cpu_lifetime(self):
        e = engine("cpu", init=100, inc=100, cap=800)
        e.observe_read(100, 0, 0)
        e.observe_read(101, 0, 90)  # extends to ~200
        e.tick(150)
        assert e.filters[0].occupancy == 1


class TestSemanticEquivalence:
    def test_same_behaviour_when_clocks_align(self):
        """With one read per CPU cycle the two clocks agree exactly."""
        reads = [100, 101, 102, 700, 701, 1500]
        a = engine("reads", init=4, inc=4, cap=32)
        b = engine("cpu", init=4, inc=4, cap=32)
        for i, line in enumerate(reads):
            a.observe_read(line, 0, i + 1)
            b.observe_read(line, 0, i + 1)
            assert sorted(a.filters[0].lengths()) == sorted(b.filters[0].lengths())
