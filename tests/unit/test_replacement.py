"""Unit tests for replacement policies."""


from repro.cache.replacement import LRUPolicy, TreePLRUPolicy


class TestLRU:
    def test_initial_victim_is_way_zero(self):
        assert LRUPolicy(1, 4).victim(0) == 0

    def test_touch_moves_to_mru(self):
        p = LRUPolicy(1, 4)
        p.touch(0, 0)
        assert p.victim(0) == 1

    def test_full_rotation(self):
        p = LRUPolicy(1, 3)
        for way in (0, 1, 2):
            p.touch(0, way)
        assert p.victim(0) == 0

    def test_sets_are_independent(self):
        p = LRUPolicy(2, 2)
        p.touch(0, 0)
        assert p.victim(1) == 0

    def test_fill_counts_as_touch(self):
        p = LRUPolicy(1, 2)
        p.fill(0, 0)
        assert p.victim(0) == 1


class TestTreePLRU:
    def test_victim_in_range(self):
        p = TreePLRUPolicy(1, 8)
        for way in range(8):
            p.touch(0, way)
            assert 0 <= p.victim(0) < 8

    def test_victim_avoids_most_recent(self):
        p = TreePLRUPolicy(1, 4)
        for way in range(4):
            p.touch(0, way)
            assert p.victim(0) != way

    def test_single_way_degenerate(self):
        p = TreePLRUPolicy(1, 1)
        p.touch(0, 0)
        assert p.victim(0) == 0

    def test_non_power_of_two_assoc(self):
        p = TreePLRUPolicy(1, 10)
        for way in range(10):
            p.touch(0, way)
        assert 0 <= p.victim(0) < 10

    def test_alternating_touch_pattern(self):
        p = TreePLRUPolicy(1, 2)
        p.touch(0, 0)
        assert p.victim(0) == 1
        p.touch(0, 1)
        assert p.victim(0) == 0
