"""Unit tests for the Power5-style processor-side prefetcher."""


from repro.common.config import ProcessorSidePrefetcherConfig
from repro.prefetch.processor_side import ProcessorSidePrefetcher


def make_ps(**kw):
    defaults = dict(enabled=True, l1_lead=1, l2_lead=4, ramp=1)
    defaults.update(kw)
    return ProcessorSidePrefetcher(ProcessorSidePrefetcherConfig(**defaults))


class TestConfirmation:
    def test_single_miss_only_allocates(self):
        ps = make_ps()
        assert ps.observe(100, l1_hit=False) == []

    def test_two_consecutive_misses_confirm(self):
        ps = make_ps()
        ps.observe(100, l1_hit=False)
        reqs = ps.observe(101, l1_hit=False)
        assert [r.line for r in reqs] == [102]

    def test_descending_confirmation(self):
        ps = make_ps()
        ps.observe(100, l1_hit=False)
        reqs = ps.observe(99, l1_hit=False)
        assert [r.line for r in reqs] == [98]

    def test_disabled_never_prefetches(self):
        ps = make_ps(enabled=False)
        ps.observe(100, l1_hit=False)
        assert ps.observe(101, l1_hit=False) == []

    def test_candidate_table_bounded(self):
        ps = make_ps(detect_entries=2)
        ps.observe(10, l1_hit=False)
        ps.observe(20, l1_hit=False)
        ps.observe(30, l1_hit=False)  # 10 falls out of the FIFO
        assert ps.observe(11, l1_hit=False) == []


class TestRampAndLeads:
    def test_depth_grows_per_advance(self):
        ps = make_ps(ramp=1, l2_lead=4)
        ps.observe(100, l1_hit=False)
        first = ps.observe(101, l1_hit=False)  # depth 1 -> line 102
        second = ps.observe(102, l1_hit=False)  # depth 2 -> 103, 104
        assert [r.line for r in first] == [102]
        assert [r.line for r in second] == [103, 104]

    def test_depth_caps_at_l2_lead(self):
        ps = make_ps(ramp=1, l2_lead=2)
        ps.observe(100, l1_hit=False)
        ps.observe(101, l1_hit=False)
        ps.observe(102, l1_hit=False)
        steady = ps.observe(103, l1_hit=False)
        assert [r.line for r in steady] == [105]  # one new edge line

    def test_l1_destination_within_lead(self):
        ps = make_ps(ramp=2, l1_lead=1, l2_lead=4)
        ps.observe(100, l1_hit=False)
        reqs = ps.observe(101, l1_hit=False)
        dests = {r.line: r.to_l1 for r in reqs}
        assert dests[102] is True  # within l1_lead
        assert dests[103] is False  # beyond l1_lead


class TestAdvanceOnHit:
    def test_prefetched_l1_hit_advances_stream(self):
        ps = make_ps()
        ps.observe(100, l1_hit=False)
        ps.observe(101, l1_hit=False)  # confirm, prefetch 102
        ps.notify_fill(102, to_l1=True)
        reqs = ps.observe(102, l1_hit=True)
        assert [r.line for r in reqs] == [103, 104]

    def test_ordinary_l1_hit_ignored(self):
        ps = make_ps()
        ps.observe(100, l1_hit=False)
        ps.observe(101, l1_hit=False)
        assert ps.observe(102, l1_hit=True) == []  # not PS-installed

    def test_l2_fills_not_tracked_for_hits(self):
        ps = make_ps()
        ps.notify_fill(500, to_l1=False)
        assert ps.observe(500, l1_hit=True) == []


class TestStreamTable:
    def test_max_streams_lru(self):
        ps = make_ps(max_streams=2)
        for s in range(3):
            base = s * 1000
            ps.observe(base, l1_hit=False)
            ps.observe(base + 1, l1_hit=False)
        assert ps.active_streams == 2
        # the first stream was evicted
        assert ps.observe(2, l1_hit=False) == []

    def test_stats(self):
        ps = make_ps()
        ps.observe(100, l1_hit=False)
        ps.observe(101, l1_hit=False)
        ps.observe(102, l1_hit=False)
        assert ps.stats["confirms"] == 1
        assert ps.stats["advances"] == 1
