"""Unit tests for the processor-side ASD prefetcher (future work)."""


import pytest

from repro.common.config import ProcessorSidePrefetcherConfig, SLHConfig
from repro.prefetch.asd_processor_side import (
    ASDProcessorSidePrefetcher,
    build_processor_side,
)
from repro.prefetch.processor_side import ProcessorSidePrefetcher


def make(epoch=50, lead=4, enabled=True):
    cfg = ProcessorSidePrefetcherConfig(
        enabled=enabled,
        engine="asd",
        lead=lead,
        asd_slh=SLHConfig(epoch_reads=epoch),
    )
    return ASDProcessorSidePrefetcher(cfg)


def train_streams(ps, count=30, length=8, start=0):
    """Teach the prefetcher `count` ascending streams of `length`."""
    line = start
    for _ in range(count):
        for _ in range(length):
            ps.observe(line, l1_hit=False)
            line += 1
        line += 100
    return line


class TestFactory:
    def test_asd_engine_selected(self):
        cfg = ProcessorSidePrefetcherConfig(enabled=True, engine="asd")
        assert isinstance(build_processor_side(cfg), ASDProcessorSidePrefetcher)

    def test_power5_default(self):
        cfg = ProcessorSidePrefetcherConfig(enabled=True)
        assert isinstance(build_processor_side(cfg), ProcessorSidePrefetcher)

    def test_invalid_engine(self):
        with pytest.raises(ValueError):
            ProcessorSidePrefetcherConfig(engine="oracle").validate()

    def test_lead_bounds(self):
        with pytest.raises(ValueError):
            ProcessorSidePrefetcherConfig(lead=0).validate()
        with pytest.raises(ValueError):
            ProcessorSidePrefetcherConfig(
                lead=16, asd_slh=SLHConfig(table_len=16)
            ).validate()


class TestBehaviour:
    def test_no_prefetch_before_first_epoch(self):
        ps = make(epoch=1000)
        out = []
        for line in range(20):
            out += ps.observe(line, l1_hit=False)
        assert out == []

    def test_prefetches_after_training(self):
        ps = make(epoch=40)
        train_streams(ps)
        reqs = ps.observe(1_000_000, l1_hit=False)
        assert reqs
        assert reqs[0].line == 1_000_001
        # multi-line lead on stream-heavy histograms
        assert len(reqs) >= 2

    def test_l1_destination_within_l1_lead(self):
        ps = make(epoch=40)
        train_streams(ps)
        reqs = ps.observe(2_000_000, l1_hit=False)
        dests = {r.line - 2_000_000: r.to_l1 for r in reqs}
        cfg = ps.config
        for distance, to_l1 in dests.items():
            assert to_l1 == (distance <= cfg.l1_lead)

    def test_suppresses_on_random_workload(self):
        ps = make(epoch=40)
        for i in range(200):
            ps.observe(i * 1000, l1_hit=False)
        out = []
        for i in range(200, 240):
            out += ps.observe(i * 1000, l1_hit=False)
        assert out == []

    def test_advance_on_own_install(self):
        ps = make(epoch=40)
        train_streams(ps)
        base = 3_000_000
        reqs = ps.observe(base, l1_hit=False)
        assert reqs
        ps.notify_fill(base + 1, to_l1=True)
        follow = ps.observe(base + 1, l1_hit=True)  # hit on own install
        assert any(r.line == base + 2 for r in follow)

    def test_foreign_l1_hits_ignored(self):
        ps = make(epoch=40)
        train_streams(ps)
        assert ps.observe(9_999_999, l1_hit=True) == []

    def test_disabled(self):
        ps = make(enabled=False)
        assert ps.observe(1, l1_hit=False) == []


class TestSystemIntegration:
    def test_ps_asd_config_runs(self):
        from repro import Trace, make_config, simulate

        records = [(5, (1 << 34) + i, False) for i in range(400)]
        result = simulate(make_config("PS_ASD"), Trace(records))
        assert result.cycles > 0
        assert result.stats.get("ps.generated", 0) >= 0

    def test_ps_asd_beats_np_on_streams(self):
        from repro import generate_trace, get_profile, make_config, simulate

        trace = generate_trace(get_profile("milc").workload, 6000, seed=4)
        np_run = simulate(make_config("NP"), trace)
        ps_asd = simulate(make_config("PS_ASD"), trace)
        assert ps_asd.cycles < np_run.cycles
