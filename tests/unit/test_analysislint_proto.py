"""PROTO rules: wire-kind symmetry and version-bump discipline."""

import os

import pytest

from repro.analysislint.wireproto import (
    WIRE_SCHEMA_RELPATH,
    WireHandlerParityRule,
    WireVersionRule,
    load_committed,
    scan_wire,
    write_wire_schema,
)
from tests.unit._lint_util import mount, mount_text, real_tree

FIXTURE = ("proto_violation.py", "src/repro/fabric/proto_violation.py")

#: A self-contained protocol module at version 7; the second %s slot
#: lets tests grow the wire shape of ``status_ping``.
PROTO_SRC = """\
PROTOCOL_VERSION = %d

_JOB_WIRE_FIELDS = ("id", "seed")


def envelope(kind, **fields):
    return dict(fields, kind=kind)


def check_envelope(doc, kind):
    return doc


def send(job_id):
    return envelope("status_ping", job_id=job_id%s)


def recv(doc):
    return check_envelope(doc, "status_ping")
"""


def proto_tree(tmp_path, version=7, extra_field=""):
    extra = f", {extra_field}=1" if extra_field else ""
    return mount_text(
        PROTO_SRC % (version, extra),
        "src/repro/fabric/proto.py",
        root=str(tmp_path),
    )


def commit_schema(tree, root):
    os.makedirs(os.path.join(root, "src", "repro", "fabric"), exist_ok=True)
    return write_wire_schema(tree, root)


class TestHandlerParity:
    @pytest.fixture(scope="class")
    def tree(self):
        return mount(FIXTURE)

    def test_both_asymmetries_flagged(self, tree):
        findings = WireHandlerParityRule().check(tree)
        by_kind = {f.symbol: f for f in findings}
        assert sorted(by_kind) == ["orphan_poke", "status_reply"]
        assert "never produced" in by_kind["orphan_poke"].message
        assert "never validated" in by_kind["status_reply"].message

    def test_symmetric_kind_clean(self, tree):
        assert "status_ping" not in {
            f.symbol for f in WireHandlerParityRule().check(tree)
        }

    def test_waiver_suppresses(self):
        tree = mount_text(
            "def envelope(kind, **fields):\n"
            "    return dict(fields, kind=kind)\n\n\n"
            "def fire(job_id):\n"
            "    return envelope('fire_and_forget', job_id=job_id)  # lint: wire-ok\n",
            "src/repro/fabric/waived.py",
        )
        assert WireHandlerParityRule().check(tree) == []

    def test_tree_without_fabric_sources_is_skipped(self):
        tree = mount_text("x = 1\n", "src/repro/cache/empty.py")
        assert WireHandlerParityRule().check(tree) == []


class TestVersionDiscipline:
    def test_fresh_schema_is_clean(self, tmp_path):
        tree = proto_tree(tmp_path)
        commit_schema(tree, str(tmp_path))
        assert WireVersionRule().check(tree) == []

    def test_missing_schema_demands_write_registry(self, tmp_path):
        tree = proto_tree(tmp_path)
        findings = WireVersionRule().check(tree)
        assert len(findings) == 1
        assert "wire schema missing" in findings[0].message

    def test_shape_change_without_bump_flagged(self, tmp_path):
        commit_schema(proto_tree(tmp_path), str(tmp_path))
        changed = proto_tree(tmp_path, version=7, extra_field="retries")
        findings = WireVersionRule().check(changed)
        assert len(findings) == 1
        assert "without a PROTOCOL_VERSION bump" in findings[0].message
        assert "status_ping" in findings[0].message

    def test_shape_change_with_bump_only_needs_regeneration(self, tmp_path):
        commit_schema(proto_tree(tmp_path), str(tmp_path))
        bumped = proto_tree(tmp_path, version=8, extra_field="retries")
        findings = WireVersionRule().check(bumped)
        assert len(findings) == 1
        assert "regenerate" in findings[0].message
        # after regenerating, the rule is satisfied again
        commit_schema(bumped, str(tmp_path))
        assert WireVersionRule().check(bumped) == []

    def test_committed_schema_round_trips(self, tmp_path):
        tree = proto_tree(tmp_path)
        commit_schema(tree, str(tmp_path))
        version, job_fields, kinds = load_committed(str(tmp_path))
        assert version == 7
        assert job_fields == ("id", "seed")
        assert kinds == {"status_ping": ("job_id",)}


class TestRealTree:
    def test_all_kinds_produced_and_consumed(self):
        model = scan_wire(real_tree())
        assert set(model.kinds) >= {
            "sweep_request",
            "sweep_accepted",
            "lease_request",
            "lease_grant",
            "complete_report",
            "complete_ack",
            "heartbeat",
            "heartbeat_ack",
        }
        for kind in model.kinds:
            assert model.producers.get(kind), f"{kind} has no producer"
            assert model.consumers.get(kind), f"{kind} has no consumer"

    @pytest.mark.parametrize("rule_cls", [WireHandlerParityRule, WireVersionRule])
    def test_real_tree_has_no_findings(self, rule_cls):
        findings = rule_cls().check(real_tree())
        assert findings == [], [f.render() for f in findings]

    def test_committed_schema_exists(self):
        from tests.unit._lint_util import REPO_ROOT

        assert os.path.exists(os.path.join(REPO_ROOT, WIRE_SCHEMA_RELPATH))
