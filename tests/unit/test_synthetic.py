"""Unit tests for the synthetic workload generator."""

import pytest

from repro.workloads.synthetic import (
    COLD_BASE,
    HOT_BASE,
    StreamWorkload,
    WorkloadPhase,
    generate_trace,
)


def simple_workload(**kw):
    defaults = dict(
        name="t",
        length_dist={4: 1.0},
        gap_mean=0.0,
        hot_fraction=0.0,
        write_fraction=0.0,
        descending_fraction=0.0,
        interleave=1,
        burstiness=1.0,
    )
    defaults.update(kw)
    return StreamWorkload(**defaults)


class TestValidation:
    def test_empty_dist_rejected(self):
        with pytest.raises(ValueError):
            simple_workload(length_dist={}).validate()

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            simple_workload(length_dist={0: 1.0}).validate()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            simple_workload(length_dist={2: -1.0}).validate()

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            simple_workload(hot_fraction=1.5).validate()
        with pytest.raises(ValueError):
            simple_workload(burstiness=-0.1).validate()

    def test_zero_accesses_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(simple_workload(), 0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        wl = simple_workload(interleave=3, burstiness=0.5, hot_fraction=0.2,
                             hot_lines=64, gap_mean=5)
        a = generate_trace(wl, 500, seed=7)
        b = generate_trace(wl, 500, seed=7)
        assert a.records == b.records

    def test_different_seed_differs(self):
        wl = simple_workload(gap_mean=5)
        a = generate_trace(wl, 200, seed=1)
        b = generate_trace(wl, 200, seed=2)
        assert a.records != b.records


class TestStreamStructure:
    def test_single_stream_is_sequential(self):
        trace = generate_trace(simple_workload(), 8, seed=1)
        lines = [r[1] for r in trace.records]
        # interleave=1, burstiness irrelevant: strictly 4-line runs
        assert lines[1] == lines[0] + 1
        assert lines[2] == lines[0] + 2
        assert lines[3] == lines[0] + 3
        # a new region starts afterwards
        assert lines[4] > lines[3] + 1

    def test_descending_streams(self):
        wl = simple_workload(descending_fraction=1.0)
        trace = generate_trace(wl, 8, seed=1)
        lines = [r[1] for r in trace.records]
        assert lines[1] == lines[0] - 1

    def test_streams_never_overlap_regions(self):
        wl = simple_workload(interleave=4, burstiness=0.0)
        trace = generate_trace(wl, 2000, seed=3)
        lines = [r[1] for r in trace.records]
        assert len(set(lines)) == len(lines)  # cold lines unique

    def test_hot_accesses_in_hot_region(self):
        wl = simple_workload(hot_fraction=1.0, hot_lines=16)
        trace = generate_trace(wl, 100, seed=1)
        for _, line, _ in trace.records:
            assert HOT_BASE <= line < HOT_BASE + 16

    def test_cold_accesses_in_cold_region(self):
        trace = generate_trace(simple_workload(), 100, seed=1)
        for _, line, _ in trace.records:
            assert line >= COLD_BASE


class TestWriteStreams:
    def test_write_fraction_zero_all_reads(self):
        trace = generate_trace(simple_workload(), 100, seed=1)
        assert trace.write_fraction == 0.0

    def test_whole_streams_are_write_or_read(self):
        wl = simple_workload(write_fraction=0.5, length_dist={4: 1.0})
        trace = generate_trace(wl, 400, seed=2)
        # group into consecutive runs of 4 (interleave=1): each run must
        # be homogeneous in its write flag
        recs = trace.records
        for i in range(0, len(recs) - 4, 4):
            flags = {recs[i + j][2] for j in range(4)}
            assert len(flags) == 1

    def test_write_fraction_approximate(self):
        wl = simple_workload(write_fraction=0.5)
        trace = generate_trace(wl, 4000, seed=2)
        assert 0.3 < trace.write_fraction < 0.7


class TestGaps:
    def test_zero_gap_mean(self):
        trace = generate_trace(simple_workload(gap_mean=0), 50, seed=1)
        assert all(r[0] == 0 for r in trace.records)

    def test_gap_mean_approximate(self):
        trace = generate_trace(simple_workload(gap_mean=20), 5000, seed=1)
        mean = sum(r[0] for r in trace.records) / len(trace)
        assert 15 < mean < 25


class TestPhases:
    def test_phase_round_alternates(self):
        wl = simple_workload(
            length_dist={8: 1.0},
            phases=(
                WorkloadPhase(weight=0.5, length_dist={1: 1.0}),
                WorkloadPhase(weight=0.5, length_dist={8: 1.0}),
            ),
            phase_round=100,
        )
        trace = generate_trace(wl, 400, seed=1)
        # first 50 accesses: isolated lines; next 50: 8-line runs
        first = [r[1] for r in trace.records[:40]]
        assert all(b - a != 1 for a, b in zip(first, first[1:]))

    def test_phase_weights_must_be_positive(self):
        wl = simple_workload(
            phases=(WorkloadPhase(weight=0.0),), phase_round=10
        )
        with pytest.raises(ValueError):
            generate_trace(wl, 100)

    def test_exact_access_count_with_phases(self):
        wl = simple_workload(
            phases=(
                WorkloadPhase(weight=0.3, length_dist={1: 1.0}),
                WorkloadPhase(weight=0.7, length_dist={2: 1.0}),
            ),
            phase_round=70,
        )
        assert len(generate_trace(wl, 1234, seed=1)) == 1234

    def test_phase_overrides_gap(self):
        wl = simple_workload(
            gap_mean=0,
            phases=(WorkloadPhase(weight=1.0, gap_mean=50.0),),
            phase_round=100,
        )
        trace = generate_trace(wl, 300, seed=1)
        assert sum(r[0] for r in trace.records) > 0


class TestPhaseWeightFixes:
    def test_negative_phase_weight_rejected(self):
        wl = simple_workload(
            phases=(WorkloadPhase(weight=-0.5), WorkloadPhase(weight=1.5)),
            phase_round=50,
        )
        with pytest.raises(ValueError, match="non-negative"):
            wl.validate()

    def test_negative_phase_weight_rejected_at_generation(self):
        wl = simple_workload(
            phases=(WorkloadPhase(weight=-0.5), WorkloadPhase(weight=1.5)),
            phase_round=50,
        )
        with pytest.raises(ValueError, match="non-negative"):
            generate_trace(wl, 100)

    def test_zero_weight_phase_is_skipped(self):
        # Pre-fix, the >=1 clamp forced one access per round from the
        # zero-weight phase; its huge gap override would leak through.
        wl = simple_workload(
            gap_mean=0.0,
            phases=(
                WorkloadPhase(weight=0.0, gap_mean=500.0),
                WorkloadPhase(weight=1.0),
            ),
            phase_round=50,
        )
        trace = generate_trace(wl, 500, seed=2)
        assert len(trace) == 500
        assert sum(r[0] for r in trace.records) == 0

    def test_zero_weight_phase_matches_absent_phase(self):
        with_zero = simple_workload(
            phases=(
                WorkloadPhase(weight=0.0, length_dist={1: 1.0}),
                WorkloadPhase(weight=1.0),
            ),
            phase_round=50,
        )
        lines = [r[1] for r in generate_trace(with_zero, 300, seed=3).records]
        # every access comes from the weight-1.0 phase's 4-line streams
        runs = sum(1 for a, b in zip(lines, lines[1:]) if b - a == 1)
        assert runs > len(lines) // 2
