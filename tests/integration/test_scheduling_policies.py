"""Integration tests: the five LPQ policies driving real issue behaviour.

Unit tests cover the policy predicates; these tests check that pinning
each policy in a live controller produces the expected *issue-order*
behaviour between demand reads and prefetches.
"""


import pytest

from repro.common.config import (
    AdaptiveSchedulingConfig,
    ControllerConfig,
    DRAMConfig,
    MemorySidePrefetcherConfig,
)
from repro.common.types import CommandKind, MemoryCommand, Provenance
from repro.controller.controller import MemoryController
from repro.dram.device import DRAMDevice
from repro.prefetch.memory_side import MemorySidePrefetcher


def build(policy):
    dram = DRAMDevice(DRAMConfig())
    ms_cfg = MemorySidePrefetcherConfig(
        enabled=True,
        engine="nextline",
        scheduling=AdaptiveSchedulingConfig(fixed_policy=policy),
    )
    ms = MemorySidePrefetcher(ms_cfg, threads=1)
    issued = []
    mc = MemoryController(ControllerConfig(), dram, ms)
    original = dram.try_issue

    def spy(cmd, now):
        result = original(cmd, now)
        if result.accepted:
            issued.append(cmd)
        return result

    dram.try_issue = spy
    return mc, issued


def drain(mc, start=0, limit=20_000):
    now = start
    while not mc.idle():
        mc.tick(now)
        now += 1
        assert now - start < limit
    return now


def read(line):
    return MemoryCommand(CommandKind.READ, line)


@pytest.mark.parametrize("policy", [1, 2, 3, 4, 5])
def test_prefetches_eventually_issue_under_every_policy(policy):
    mc, issued = build(policy)
    mc.enqueue(read(100), 0)
    drain(mc)
    kinds = [c.provenance for c in issued]
    assert Provenance.MS_PREFETCH in kinds


@pytest.mark.parametrize("policy", [1, 2])
def test_conservative_policies_issue_demand_first(policy):
    """Policies 1-2 also require quiet reorder queues, so a burst of
    demand reads always issues ahead of the prefetches they spawn.
    (Policy 3 only watches the CAQ, so a prefetch may slip into a gap
    while demand still sits in the reorder queues.)"""
    mc, issued = build(policy)
    for line in (100, 300, 500):
        mc.enqueue(read(line), 0)
    drain(mc)
    first_prefetch = next(
        i for i, c in enumerate(issued) if c.provenance is Provenance.MS_PREFETCH
    )
    demand_after = [
        c
        for c in issued[first_prefetch:]
        if c.provenance is not Provenance.MS_PREFETCH
    ]
    # under conservative policies no *initial-burst* demand read queues
    # behind a prefetch (prefetches only issue once the CAQ drained)
    assert len(demand_after) <= 1


def test_policy5_can_issue_prefetch_before_younger_demand():
    """The least conservative policy lets an old prefetch beat a newer
    demand read to DRAM."""
    mc, issued = build(5)
    mc.enqueue(read(100), 0)  # spawns prefetch of 101 at t=0
    mc.tick(0)
    mc.tick(1)
    mc.enqueue(read(500), 10)  # much younger demand
    drain(mc, start=10)
    order = [(c.provenance, c.line) for c in issued]
    pf_pos = order.index((Provenance.MS_PREFETCH, 101))
    demand_pos = order.index((Provenance.DEMAND, 500))
    assert pf_pos < demand_pos


def test_adaptive_policy_stays_within_bounds():
    dram = DRAMDevice(DRAMConfig())
    ms = MemorySidePrefetcher(
        MemorySidePrefetcherConfig(enabled=True, engine="nextline"), threads=1
    )
    mc = MemoryController(ControllerConfig(), dram, ms)
    now = 0
    for burst in range(20):
        for line in range(burst * 50, burst * 50 + 5):
            while not mc.enqueue(read(line), now):
                mc.tick(now)
                now += 1
        for _ in range(200):
            mc.tick(now)
            now += 1
        assert 1 <= ms.scheduler.policy <= 5
