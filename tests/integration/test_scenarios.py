"""Integration tests: dynamic benchmarks through the real sweep stack.

Covers the two scenario-diversity paths end to end: a converted
external trace running as a content-addressed ``trace:`` benchmark
(store dedupe, digest staleness, fast-model calibration), and fuzz
candidates running as inline ``wl:`` benchmarks (CLI included).
"""

import json

import pytest

import repro.cli as cli
from repro.experiments.sweep import Job, run_jobs
from repro.scenarios.calibrate import calibrate_trace
from repro.scenarios.loaders import convert_trace
from repro.workloads.dynamic import trace_benchmark, workload_benchmark
from repro.workloads.synthetic import StreamWorkload


@pytest.fixture(autouse=True)
def isolated_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    monkeypatch.setenv("REPRO_STORE", "1")


@pytest.fixture()
def converted(tmp_path):
    """A small external CSV converted to the internal format."""
    source = tmp_path / "ext.csv"
    rows = []
    for i in range(300):
        base = 0x100000 + 64 * (i % 50) + 0x4000 * (i // 50)
        rows.append(f"{hex(base)},{'W' if i % 7 == 0 else 'R'}\n")
    source.write_text("".join(rows))
    output = str(tmp_path / "ext.trace")
    convert_trace(str(source), output, default_gap=5)
    return output


class TestTraceBenchmarks:
    def test_sweep_and_store_dedupe(self, converted):
        benchmark = trace_benchmark(converted)
        specs = [Job(benchmark, "PMS", accesses=300, seed=1)]
        first = run_jobs(specs)
        assert first.stats.executed_serial == 1
        result = first.results[0]
        assert result.cycles > 0
        assert result.benchmark == benchmark
        # a fresh process would re-derive the same key: here the second
        # call is answered without re-simulating
        second = run_jobs(specs)
        assert second.stats.executed_serial == 0
        assert second.results[0].cycles == result.cycles

    def test_digest_mismatch_refuses_stale_file(self, converted):
        benchmark = trace_benchmark(converted)
        with open(converted, "a", encoding="utf-8") as handle:
            handle.write("0 999 0\n")
        with pytest.raises(ValueError, match="changed since"):
            run_jobs([Job(benchmark, "NP", accesses=100, seed=1)])

    def test_calibrate_trace_produces_error_bars(self, converted):
        record, outcome = calibrate_trace(
            converted, configs=("NP", "PMS"), accesses=300, seed=1
        )
        assert record.samples >= 1
        assert set(record.errors) >= {"cycles", "coverage"}
        for result in outcome.results:
            assert result.fidelity_tier == "fast"
            assert result.error_bar("cycles") is not None


class TestWorkloadBenchmarks:
    def test_wl_benchmark_runs_and_dedupes(self):
        benchmark = workload_benchmark(StreamWorkload(name="wl-int-test"))
        outcome = run_jobs([Job(benchmark, "PS", accesses=300, seed=2)])
        assert outcome.results[0].cycles > 0
        again = run_jobs([Job(benchmark, "PS", accesses=300, seed=2)])
        assert again.stats.executed_serial == 0

    def test_wl_benchmark_parallel_matches_serial(self):
        benchmark = workload_benchmark(StreamWorkload(name="wl-par-test"))
        specs = [Job(benchmark, c, accesses=300, seed=2)
                 for c in ("NP", "PMS")]
        serial = run_jobs(specs, jobs=1, use_store=False)
        parallel = run_jobs(specs, jobs=2, use_store=False)
        for a, b in zip(serial.results, parallel.results):
            assert a.cycles == b.cycles
            assert a.stats == b.stats


class TestCliEndToEnd:
    def test_trace_convert_and_calibrate(self, tmp_path, capsys):
        source = tmp_path / "ext.csv"
        source.write_text(
            "".join(f"{hex(0x8000 + 64 * i)},R\n" for i in range(200))
        )
        output = str(tmp_path / "ext.trace.gz")
        assert cli.main(["trace", "convert", str(source), "-o", output,
                         "--gap", "4"]) == 0
        out = capsys.readouterr().out
        assert "200 records" in out
        assert "benchmark name: trace:" in out
        assert cli.main(["trace", "calibrate", output, "-c", "NP", "PMS",
                         "-n", "200"]) == 0
        out = capsys.readouterr().out
        assert "fidelity" in out
        assert "exact sample(s)" in out  # the calibration record summary

    def test_fuzz_cli_json_reproducible(self, capsys):
        argv = ["fuzz", "--budget", "2", "--seed", "3", "-n", "250",
                "--round-size", "2", "--json", "--no-store"]
        assert cli.main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert cli.main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["results"] == second["results"]
        assert first["baseline"]["score"] == second["baseline"]["score"]
        assert len(first["results"]) == 2
