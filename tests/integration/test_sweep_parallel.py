"""Parallel-vs-serial equivalence and cross-session store reuse.

The determinism guarantee of docs/experiments.md: a `run_suite(jobs=N)`
result compares equal, field for field, to the `jobs=1` result for the
same spec, and a second session re-simulates nothing because every run
is served from the on-disk store.
"""

import pytest

from repro.experiments import runner, store

ACCESSES = 1200
BENCHMARKS = ("tonto", "milc")
CONFIGS = ("NP", "PMS")


@pytest.fixture(autouse=True)
def clean():
    runner.clear_cache()
    yield
    runner.clear_cache()


class TestParallelEqualsSerial:
    def test_run_suite_jobs4_equals_jobs1(self):
        parallel = runner.run_suite(
            BENCHMARKS, CONFIGS, accesses=ACCESSES, jobs=4, use_store=False
        )
        runner.clear_cache()
        serial = runner.run_suite(
            BENCHMARKS, CONFIGS, accesses=ACCESSES, jobs=1, use_store=False
        )
        for bench in BENCHMARKS:
            for config in CONFIGS:
                p, s = parallel[bench][config], serial[bench][config]
                # dataclass equality covers every field, including the
                # stats dict and the nested PowerReport
                assert p == s, (bench, config)
                assert p.stats == s.stats

    def test_parallel_results_fill_the_run_cache(self):
        runner.run_suite(BENCHMARKS, CONFIGS, accesses=ACCESSES, jobs=2)
        assert runner.cache_info()["runs"] == len(BENCHMARKS) * len(CONFIGS)
        # a follow-up serial call is served without simulating
        before = runner.cache_info()["simulated"]
        runner.run(BENCHMARKS[0], CONFIGS[0], accesses=ACCESSES)
        assert runner.cache_info()["simulated"] == before


class TestStoreAcrossSessions:
    def test_second_session_simulates_nothing(self):
        runner.run_suite(BENCHMARKS, CONFIGS, accesses=ACCESSES)
        st = store.get_store()
        assert len(st) == len(BENCHMARKS) * len(CONFIGS)

        runner.clear_cache()  # simulate a fresh interpreter
        st.stats.reset()
        again = runner.run_suite(BENCHMARKS, CONFIGS, accesses=ACCESSES)
        assert runner.cache_info()["simulated"] == 0
        assert st.stats.hits == len(BENCHMARKS) * len(CONFIGS)
        assert {b: set(c) for b, c in again.items()} == {
            b: set(CONFIGS) for b in BENCHMARKS
        }

    def test_store_round_trip_preserves_derived_metrics(self):
        first = runner.run("tpcc", "PMS", accesses=ACCESSES)
        runner.clear_cache()
        second = runner.run("tpcc", "PMS", accesses=ACCESSES)
        assert second == first
        assert second.ipc == first.ipc
        assert second.coverage == first.coverage
        assert second.avg_read_latency() == first.avg_read_latency()
        assert second.read_latency_histogram() == first.read_latency_histogram()
        assert second.power.energy_uj == first.power.energy_uj

    def test_preload_store_warms_the_cache(self):
        runner.run_suite(BENCHMARKS, CONFIGS, accesses=ACCESSES)
        runner.clear_cache()
        loaded = runner.preload_store()
        assert loaded == len(BENCHMARKS) * len(CONFIGS)
        assert runner.cache_info()["runs"] == loaded
        runner.run(BENCHMARKS[0], CONFIGS[1], accesses=ACCESSES)
        assert runner.cache_info()["simulated"] == 0

    def test_preload_skips_stale_fingerprints(self, monkeypatch):
        runner.run("tonto", "NP", accesses=ACCESSES)
        runner.clear_cache()
        # a preset/config change after the entry was written
        monkeypatch.setattr(
            store, "config_fingerprint", lambda config: "deadbeef"
        )
        assert runner.preload_store() == 0

    def test_mutated_runs_round_trip_via_read_through(self):
        def degrade(config):
            config.ms_prefetcher.slh.epoch_reads = 500
            return config

        first = runner.run("tonto", "MS", accesses=ACCESSES,
                           mutate=degrade, mutate_key="epoch=500")
        runner.clear_cache()
        second = runner.run("tonto", "MS", accesses=ACCESSES,
                            mutate=degrade, mutate_key="epoch=500")
        assert second == first
        assert runner.cache_info()["simulated"] == 0

    def test_mutation_semantics_change_invalidates(self):
        def v1(config):
            config.ms_prefetcher.slh.epoch_reads = 500
            return config

        def v2(config):  # same mutate_key, different effect
            config.ms_prefetcher.slh.epoch_reads = 250
            return config

        runner.run("tonto", "MS", accesses=ACCESSES,
                   mutate=v1, mutate_key="epoch")
        runner.clear_cache()
        before = runner.cache_info()["simulated"]
        runner.run("tonto", "MS", accesses=ACCESSES,
                   mutate=v2, mutate_key="epoch")
        assert runner.cache_info()["simulated"] == before + 1


class TestTelemetryStaysSerial:
    def test_traced_suite_ignores_jobs(self):
        from repro.telemetry.probes import EpochProbes
        from repro.telemetry.tracer import Tracer

        tracer = Tracer()
        probes = EpochProbes(interval=1)

        def short_epochs(config):
            config.ms_prefetcher.slh.epoch_reads = 50
            return config

        results = runner.run_suite(
            ("tonto",), ("MS",), accesses=ACCESSES, jobs=4,
            tracer=tracer, probes=probes, mutate=short_epochs,
        )
        assert results["tonto"]["MS"].telemetry is not None
        assert probes.samples_taken > 0  # ran in THIS process, serially
        # traced runs are neither cached nor stored
        assert runner.cache_info()["runs"] == 0
        assert len(store.get_store()) == 0
