"""Integration tests: the three MC engines' traffic signatures.

The Figure 11 story in traffic terms: next-line issues the most
prefetches, ASD suppresses where the histogram says stop, and the
P5-style engine cannot touch the second line of any stream.
"""

import pytest

from repro import generate_trace, get_profile, make_config, simulate


@pytest.fixture(scope="module")
def runs():
    trace = generate_trace(get_profile("GemsFDTD").workload, 6000, seed=17)
    return {
        name: simulate(make_config(name), trace)
        for name in ("PMS", "PMS_NEXTLINE", "PMS_P5MC", "PS")
    }


class TestTrafficSignatures:
    def test_nextline_issues_most(self, runs):
        nl = runs["PMS_NEXTLINE"].stats["ms.issued"]
        asd = runs["PMS"].stats["ms.issued"]
        p5 = runs["PMS_P5MC"].stats["ms.issued"]
        assert nl > asd
        assert nl > p5

    def test_asd_suppression_visible(self, runs):
        asd = runs["PMS"]
        assert asd.stats["engine.suppressed"] > 0

    def test_all_engines_produce_buffer_hits(self, runs):
        for name in ("PMS", "PMS_NEXTLINE", "PMS_P5MC"):
            assert runs[name].stats["pb.read_hits"] > 0, name

    def test_every_engine_beats_ps_alone_or_ties(self, runs):
        ps_cycles = runs["PS"].cycles
        for name in ("PMS", "PMS_NEXTLINE"):
            assert runs[name].cycles <= ps_cycles * 1.02, name

    def test_asd_more_efficient_than_nextline(self, runs):
        # equal-or-better performance per prefetch issued
        asd = runs["PMS"]
        nl = runs["PMS_NEXTLINE"]
        asd_eff = asd.stats["pb.read_hits"] / asd.stats["ms.issued"]
        nl_eff = nl.stats["pb.read_hits"] / nl.stats["ms.issued"]
        assert asd_eff > nl_eff

    def test_dram_reads_ordering(self, runs):
        # more prefetch waste = more DRAM reads for the same demand
        assert (
            runs["PMS_NEXTLINE"].stats["dram.issued_reads"]
            >= runs["PMS"].stats["dram.issued_reads"]
        )

    def test_energy_follows_traffic(self, runs):
        assert (
            runs["PMS_NEXTLINE"].power.burst_energy_uj
            >= runs["PMS"].power.burst_energy_uj
        )
