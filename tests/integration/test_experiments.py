"""Integration tests for the experiment harness (small traces).

Each experiment function must run end to end and produce data of the
right shape; the full-size qualitative assertions live in benchmarks/.
"""

import pytest

from repro.experiments import runner
from repro.experiments.ablation import fig11_ablation
from repro.experiments.efficiency import fig13_efficiency
from repro.experiments.extensions import asd_only, degree_sweep
from repro.experiments.hardware_cost import tab_hardware_cost
from repro.experiments.performance import performance_figure
from repro.experiments.power import power_figure
from repro.experiments.scheduler_interaction import tab_scheduler_interaction
from repro.experiments.sensitivity import fig14_buffer_size, fig15_filter_size
from repro.experiments.slh_figures import (
    fig16_slh_accuracy,
    fig2_slh_example,
    fig3_slh_phases,
    mc_read_stream,
)
from repro.experiments.smt import tab_smt
from repro.experiments.stream_lengths import fig12_stream_lengths

SMALL = 2500
BENCHES = ("GemsFDTD", "tpcc")


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


class TestRunner:
    def test_run_caches(self):
        a = runner.run("tonto", "NP", accesses=SMALL)
        b = runner.run("tonto", "NP", accesses=SMALL)
        assert a is b
        assert runner.cache_info()["runs"] == 1

    def test_mutated_runs_not_cached_without_key(self):
        runner.run("tonto", "NP", accesses=SMALL, mutate=lambda c: c)
        assert runner.cache_info()["runs"] == 0

    def test_mutated_runs_cached_with_key(self):
        runner.run(
            "tonto", "NP", accesses=SMALL, mutate=lambda c: c, mutate_key="x"
        )
        assert runner.cache_info()["runs"] == 1

    def test_smt_uses_distinct_seeds(self):
        runner.run("tonto", "NP", accesses=SMALL, threads=2)
        assert runner.cache_info()["traces"] == 2


class TestSLHFigures:
    def test_mc_read_stream_is_subset_of_trace_reads(self):
        trace = runner.get_trace("GemsFDTD", SMALL)
        reads = mc_read_stream(trace)
        trace_reads = [l for _, l, w in trace.records if not w]
        assert 0 < len(reads) <= len(trace_reads)

    def test_fig2_bars_normalised(self):
        bars = fig2_slh_example(accesses=SMALL, epoch_reads=500)
        assert abs(sum(bars[1:]) - 1.0) < 1e-9

    def test_fig3_multiple_epochs(self):
        fig = fig3_slh_phases(accesses=SMALL, epoch_reads=400)
        assert len(fig.epoch_bars) >= 2
        assert fig.table(epochs=[0, 1])

    def test_fig16_accuracy_reasonable(self):
        acc = fig16_slh_accuracy(accesses=SMALL, epoch_reads=500)
        assert 0 <= acc.rms_error < 0.5
        assert acc.table()


class TestPerformanceAndPower:
    def test_performance_figure_rows(self):
        suite = performance_figure("commercial", accesses=SMALL)
        assert len(suite.rows) == 5
        assert suite.avg_pms_vs_np == pytest.approx(
            sum(r.pms_vs_np for r in suite.rows) / 5
        )

    def test_power_figure_rows(self):
        fig = power_figure("commercial", accesses=SMALL)
        assert len(fig.rows) == 5
        assert fig.avg_energy_reduction == pytest.approx(
            sum(r["energy_reduction_pct"] for r in fig.rows) / 5
        )


class TestFocusFigures:
    def test_fig11_normalised_to_pms(self):
        fig = fig11_ablation(benchmarks=BENCHES, accesses=SMALL)
        for bench in BENCHES:
            assert fig.normalized[bench]["PMS"] == 1.0

    def test_fig12_percentages(self):
        fig = fig12_stream_lengths(benchmarks=BENCHES, accesses=SMALL)
        for bench in BENCHES:
            assert 0 < fig.short_fraction(bench) <= 100.0

    def test_fig13_ranges(self):
        fig = fig13_efficiency(benchmarks=BENCHES, accesses=SMALL)
        for row in fig.rows.values():
            assert 0 <= row.useful_pct <= 100
            assert 0 <= row.coverage_pct <= 100
            assert 0 <= row.delayed_pct <= 100

    def test_fig14_sweep_values(self):
        fig = fig14_buffer_size(benchmarks=("tpcc",), accesses=SMALL, sizes=(8, 16))
        assert set(fig.speedups["tpcc"]) == {8, 16}
        assert all(v > 0 for v in fig.speedups["tpcc"].values())

    def test_fig15_sweep_values(self):
        fig = fig15_filter_size(benchmarks=("tpcc",), accesses=SMALL, sizes=(4, 8))
        assert set(fig.speedups["tpcc"]) == {4, 8}


class TestTables:
    def test_smt_runs_two_threads(self):
        result = tab_smt(benchmarks=("tonto",), accesses=SMALL)
        assert "tonto" in result.rows

    def test_scheduler_interaction_all_schedulers(self):
        result = tab_scheduler_interaction(benchmarks=("tonto",), accesses=SMALL)
        assert set(result.gains) == {"ahb", "memoryless", "in_order"}

    def test_hardware_cost_table(self):
        table = tab_hardware_cost()
        assert set(table.costs) == {1, 2, 4}

    def test_degree_sweep(self):
        sweep = degree_sweep(benchmarks=("tonto",), accesses=SMALL, degrees=(1, 2))
        assert set(sweep.speedups["tonto"]) == {1, 2}

    def test_asd_only(self):
        result = asd_only(benchmarks=("tonto",), accesses=SMALL)
        assert set(result.gains["tonto"]) == {"asd", "ps", "ps_asd"}
