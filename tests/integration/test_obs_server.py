"""Endpoint tests for repro.obs.server against a real HTTP socket.

The server binds port 0 (OS-assigned) on 127.0.0.1 and is exercised
with urllib from the test process — no external tooling.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import exporters
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress
from repro.obs.server import ObsServer
from repro.obs.spans import SpanCollector


def get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode("utf-8")


@pytest.fixture()
def live_server():
    registry = MetricsRegistry(enabled=True)
    registry.counter("repro_sweep_jobs_total", "jobs", ("outcome",)).inc(
        2, outcome="serial"
    )
    registry.histogram("repro_sweep_job_seconds", "seconds").observe(0.2)
    progress = SweepProgress(total=4)
    progress.job_done("serial", seconds=0.2)
    server = ObsServer(registry=registry, progress=progress).start()
    yield server
    server.close()


class TestLiveEndpoints:
    def test_metrics_is_valid_exposition(self, live_server):
        status, headers, body = get(live_server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == exporters.EXPOSITION_CONTENT_TYPE
        parsed = exporters.parse_exposition(body)
        assert parsed[
            ("repro_sweep_jobs_total", (("outcome", "serial"),))
        ] == 2.0
        assert ("repro_sweep_job_seconds_count", ()) in parsed

    def test_metrics_json(self, live_server):
        status, _, body = get(live_server.url + "/metrics.json")
        document = json.loads(body)
        assert status == 200
        assert document["version"] == exporters.SNAPSHOT_VERSION
        assert document["progress"]["done"] == 1

    def test_healthz(self, live_server):
        status, _, body = get(live_server.url + "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["metrics_source"] == "live"
        assert health["uptime_seconds"] >= 0
        assert isinstance(health["pid"], int)

    def test_healthz_reports_protocol_and_span_plane(self, live_server):
        # fleet-skew visibility: which wire version and span plane this
        # process runs must be readable before any protocol error hits
        from repro.fabric.protocol import PROTOCOL_VERSION

        _, _, body = get(live_server.url + "/healthz")
        health = json.loads(body)
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["obs"] == {"spans": "disabled"}

    def test_progress_json(self, live_server):
        status, _, body = get(live_server.url + "/progress.json")
        snap = json.loads(body)
        assert status == 200
        assert snap["done"] == 1
        assert snap["total"] == 4

    def test_progress_dashboard_html(self, live_server):
        for path in ("/progress", "/"):
            status, headers, body = get(live_server.url + path)
            assert status == 200
            assert headers["Content-Type"].startswith("text/html")
            assert "<progress" in body
            assert "sweep 1/4" in body

    def test_unknown_route_is_404(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(live_server.url + "/nope")
        assert err.value.code == 404


class TestSpansEndpoint:
    def test_spans_json_serves_collector_contents(self):
        collector = SpanCollector(enabled=True)
        collector.add("sweep.job", 10.0, 1.5, benchmark="milc")
        server = ObsServer(
            registry=MetricsRegistry(enabled=True), spans=collector
        ).start()
        try:
            status, _, body = get(server.url + "/spans.json")
            document = json.loads(body)
            assert status == 200
            assert document["enabled"] is True
            assert document["dropped"] == 0
            assert [s["name"] for s in document["spans"]] == ["sweep.job"]
            _, _, health = get(server.url + "/healthz")
            obs = json.loads(health)["obs"]
            assert obs == {"spans": "enabled", "span_count": 1}
        finally:
            server.close()

    def test_no_collector_is_404(self):
        server = ObsServer(registry=MetricsRegistry(enabled=True)).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.url + "/spans.json")
            assert err.value.code == 404
        finally:
            server.close()


class TestEventsStream:
    @staticmethod
    def read_frames(response, want: int):
        """Parse SSE frames off a live response until ``want`` arrive."""
        frames, kind, data = [], None, []
        while len(frames) < want:
            line = response.readline().decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue  # keepalive comment
            if line.startswith("event:"):
                kind = line.split(":", 1)[1].strip()
            elif line.startswith("data:"):
                data.append(line.split(":", 1)[1].strip())
            elif line == "" and (kind or data):
                frames.append((kind, json.loads("\n".join(data))))
                kind, data = None, []
        return frames

    def test_progress_and_span_events_stream(self):
        registry = MetricsRegistry(enabled=True)
        progress = SweepProgress(total=2)
        collector = SpanCollector(enabled=True)
        server = ObsServer(
            registry=registry, progress=progress, spans=collector
        ).start()
        try:
            response = urllib.request.urlopen(  # lint: resource-ok
                server.url + "/events", timeout=5
            )
            try:
                (hello_kind, hello), = self.read_frames(response, 1)
                assert hello_kind == "hello"
                assert hello["progress"]["total"] == 2
                # a finishing job and a finishing span must both fan out
                progress.job_done("serial", seconds=0.1)
                collector.add("sweep.job", 5.0, 0.1, benchmark="milc")
                frames = dict(self.read_frames(response, 2))
                assert frames["progress"]["done"] == 1
                assert "sweep 1/2" in frames["progress"]["line"]
                assert frames["span"]["name"] == "sweep.job"
            finally:
                response.close()
        finally:
            server.close()

    def test_close_ends_the_stream(self):
        server = ObsServer(registry=MetricsRegistry(enabled=True)).start()
        response = urllib.request.urlopen(  # lint: resource-ok
            server.url + "/events", timeout=5
        )
        try:
            self.read_frames(response, 1)  # hello
            server.close()
            # the handler stops writing; the stream drains to EOF
            deadline = 200
            while response.readline() and deadline:
                deadline -= 1
            assert deadline > 0
        finally:
            response.close()


class TestCloseReleasesSocket:
    def test_socket_closed_even_when_shutdown_raises(self):
        """Regression: ``close()`` used to call ``server_close`` only
        after ``shutdown()`` returned, so a raising shutdown leaked the
        bound socket and every later bind hit EADDRINUSE."""
        server = ObsServer(registry=MetricsRegistry(enabled=True)).start()

        def exploding_shutdown():
            # still stop the serve loop (via the flag the real shutdown()
            # sets) so the test does not leave a spinning thread behind
            server._httpd._BaseServer__shutdown_request = True
            raise RuntimeError("half-torn-down serve loop")

        server._httpd.shutdown = exploding_shutdown
        with pytest.raises(RuntimeError, match="half-torn-down"):
            server.close()
        # the finally block must still have released the socket
        assert server._httpd.socket.fileno() == -1

    def test_clean_close_releases_the_socket_too(self):
        server = ObsServer(registry=MetricsRegistry(enabled=True)).start()
        server.close()
        assert server._httpd.socket.fileno() == -1


class TestSnapshotDirServing:
    def test_serves_latest_snapshot(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        registry.counter("repro_store_reads_total", "reads", ("result",)).inc(
            5, result="hit"
        )
        directory = str(tmp_path)
        exporters.write_snapshot(
            registry, directory=directory, progress={"done": 9, "total": 9,
                                                     "percent": 100.0,
                                                     "outcomes": {},
                                                     "events": {},
                                                     "eta_seconds": 0.0,
                                                     "elapsed_seconds": 1.0,
                                                     "hit_rate": 1.0,
                                                     "finished": True},
        )
        server = ObsServer(snapshot_dir=directory).start()
        try:
            _, _, body = get(server.url + "/metrics")
            parsed = exporters.parse_exposition(body)
            assert parsed[
                ("repro_store_reads_total", (("result", "hit"),))
            ] == 5.0
            _, _, health = get(server.url + "/healthz")
            assert "snapshot:" in json.loads(health)["metrics_source"]
            _, _, progress = get(server.url + "/progress.json")
            assert json.loads(progress)["done"] == 9
        finally:
            server.close()

    def test_empty_dir_serves_empty_exposition(self, tmp_path):
        server = ObsServer(snapshot_dir=str(tmp_path)).start()
        try:
            status, _, body = get(server.url + "/metrics")
            assert status == 200
            assert body == ""
            _, _, health = get(server.url + "/healthz")
            assert "(empty)" in json.loads(health)["metrics_source"]
        finally:
            server.close()

    def test_needs_registry_or_dir(self):
        with pytest.raises(ValueError, match="registry or a snapshot_dir"):
            ObsServer()


class TestHealthStaleness:
    @staticmethod
    def write_aged_snapshot(directory, age_seconds):
        import time

        registry = MetricsRegistry(enabled=True)
        path = exporters.write_snapshot(registry, directory=directory)
        with open(path) as handle:
            document = json.load(handle)
        document["generated_unix"] = time.time() - age_seconds
        with open(path, "w") as handle:
            json.dump(document, handle)

    def test_fresh_snapshot_reports_age_and_ok(self, tmp_path):
        self.write_aged_snapshot(str(tmp_path), age_seconds=5)
        server = ObsServer(snapshot_dir=str(tmp_path), stale_after=600).start()
        try:
            _, _, body = get(server.url + "/healthz")
            health = json.loads(body)
            assert health["status"] == "ok"
            assert 0 <= health["snapshot_age_seconds"] < 600
        finally:
            server.close()

    def test_old_snapshot_flips_to_stale(self, tmp_path):
        # a sweep that died stops refreshing its snapshot; /healthz must
        # say so instead of answering "ok" forever
        self.write_aged_snapshot(str(tmp_path), age_seconds=3600)
        server = ObsServer(snapshot_dir=str(tmp_path), stale_after=600).start()
        try:
            _, _, body = get(server.url + "/healthz")
            health = json.loads(body)
            assert health["status"] == "stale"
            assert health["snapshot_age_seconds"] > 600
            assert health["stale_after_seconds"] == 600
        finally:
            server.close()

    def test_staleness_check_can_be_disabled(self, tmp_path):
        self.write_aged_snapshot(str(tmp_path), age_seconds=3600)
        server = ObsServer(snapshot_dir=str(tmp_path), stale_after=None).start()
        try:
            _, _, body = get(server.url + "/healthz")
            assert json.loads(body)["status"] == "ok"
        finally:
            server.close()

    def test_empty_dir_has_no_age(self, tmp_path):
        server = ObsServer(snapshot_dir=str(tmp_path)).start()
        try:
            _, _, body = get(server.url + "/healthz")
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["snapshot_age_seconds"] is None
        finally:
            server.close()

    def test_live_registry_mode_has_no_snapshot_age(self, tmp_path):
        server = ObsServer(registry=MetricsRegistry(enabled=True)).start()
        try:
            _, _, body = get(server.url + "/healthz")
            assert "snapshot_age_seconds" not in json.loads(body)
        finally:
            server.close()
