"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "spec2006fp" in out
        assert "PMS" in out
        assert "commercial" in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "-b", "tonto", "-c", "PMS", "-n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "MC cycles" in out
        assert "useful prefetches" in out

    def test_run_np_has_no_prefetch_metrics(self, capsys):
        assert main(["run", "-b", "tonto", "-c", "NP", "-n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "useful prefetches" not in out

    def test_run_smt(self, capsys):
        assert main(
            ["run", "-b", "tonto", "-c", "PMS", "-n", "1500", "--threads", "2"]
        ) == 0
        assert "IPC" in capsys.readouterr().out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["run", "-b", "quake4", "-n", "1000"])


class TestCompare:
    def test_four_rows(self, capsys):
        assert main(["compare", "-b", "tonto", "-n", "2000"]) == 0
        out = capsys.readouterr().out
        for name in ("NP", "PS", "MS", "PMS"):
            assert name in out


class TestTrace:
    def test_trace_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        assert main(["trace", "generate", "-b", "tonto", "-o", str(path),
                     "-n", "500"]) == 0
        assert "wrote 500 records" in capsys.readouterr().out
        from repro.workloads.trace import Trace

        assert len(Trace.load(str(path))) == 500


class TestCost:
    def test_cost_table(self, capsys):
        assert main(["cost", "--threads", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "MC area" in out


class TestObsTraceExport:
    def test_export_renders_perfetto_json(self, tmp_path, capsys):
        import json

        from repro.obs.spans import SpanCollector, write_spans

        collector = SpanCollector(enabled=True)
        with collector.span("sweep.run_jobs", total=1) as root:
            collector.add("sweep.job", root.start_unix, 0.2, parent=root,
                          benchmark="milc", config="PS")
        snapshot = write_spans(collector, directory=str(tmp_path))
        output = tmp_path / "trace.json"
        assert main(["obs", "trace", "export", "--input", snapshot,
                     "-o", str(output)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "2 span(s)" in out
        assert "straggler: milc/PS" in out
        document = json.loads(output.read_text())
        names = {e["name"] for e in document["traceEvents"]
                 if e["ph"] == "X"}
        assert names == {"sweep.run_jobs", "sweep.job"}

    def test_missing_snapshot_is_a_clean_error(self, tmp_path, capsys):
        assert main(["obs", "trace", "export",
                     "--input", str(tmp_path / "nope.json"),
                     "-o", str(tmp_path / "out.json")]) == 2
        assert "no span snapshot" in capsys.readouterr().err


class TestFigure:
    def test_figure_hardware(self, capsys):
        assert main(["figure", "hardware"]) == 0
        assert "Hardware cost" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
