"""Integration tests for the telemetry subsystem against live runs.

Covers the acceptance claims in docs/telemetry.md: a traced run emits
the full event catalogue as parseable JSONL; probe series line up with
the simulator's own state (the SLH decision series must equal the
inequality-(5) verdicts recomputed from the recorded ``lht`` vectors);
and telemetry flows through the CLI and the experiment runner without
polluting the run cache.
"""

import json

from repro.cli import main
from repro.experiments import runner
from repro.system.presets import make_config
from repro.system.simulator import simulate
from repro.telemetry import (
    EpochProbes,
    TelemetrySession,
    Tracer,
    read_events_jsonl,
)
from repro.workloads.trace import Trace


def _two_phase_trace(n_streams: int = 60, length: int = 12) -> Trace:
    """Phase 1: long ascending streams.  Phase 2: isolated single reads.

    The phase flip makes the SLH histogram (and hence the inequality-(5)
    decisions) change across epochs, which is what the probe-consistency
    test needs to be meaningful.
    """
    records = []
    base = 0
    for s in range(n_streams):
        for i in range(length):
            records.append((3, base + i, False))
        base += 1024
    for s in range(n_streams * length):
        records.append((3, base + s * 977, False))
    return Trace(records, name="two_phase")


def _small_epoch_config(epoch_reads: int = 200):
    config = make_config("PMS")
    config.ms_prefetcher.slh.epoch_reads = epoch_reads
    return config


class TestTracedRun:
    def test_event_log_covers_the_catalogue(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        session = TelemetrySession(trace_events=path, probe_interval=1)
        result = simulate(
            _small_epoch_config(), [_two_phase_trace()],
            tracer=session.tracer, probes=session.probes,
        )
        session.close()

        assert result.telemetry_active
        events = read_events_jsonl(path)
        kinds = {e.kind for e in events}
        for kind in ("epoch_boundary", "prefetch_issued", "prefetch_hit",
                     "prefetch_discard", "policy_change", "dram_command",
                     "queue_depth"):
            assert kind in kinds, f"missing {kind}"
        assert len(events) == session.tracer.total_events

        boundaries = [e for e in events if e.kind == "epoch_boundary"]
        assert [b.epoch for b in boundaries] == list(
            range(1, len(boundaries) + 1)
        )
        times = [e.t for e in events]
        assert times == sorted(times)

    def test_untraced_run_attaches_no_telemetry(self):
        result = simulate(_small_epoch_config(), [_two_phase_trace(10, 8)])
        assert not result.telemetry_active
        assert "telemetry" not in result.to_dict()

    def test_slh_decision_series_matches_inequality(self):
        """slh.decision.* must equal lht(k) < 2*lht(k+d) recomputed from
        the recorded lht vectors — the probe reads the same tables the
        engine prefetches from."""
        tracer = Tracer()
        probes = EpochProbes(interval=1)
        config = _small_epoch_config()
        simulate(config, [_two_phase_trace()], tracer=tracer, probes=probes)

        degree = config.ms_prefetcher.degree
        checked = 0
        for name in probes.vector_names():
            if not name.startswith("slh.lht."):
                continue
            suffix = name[len("slh.lht."):]
            decisions = dict(probes.get(f"slh.decision.{suffix}").samples())
            for epoch, lht in probes.get(name).samples():
                lm = len(lht) - 1
                expected = tuple(
                    lht[k] < (lht[k + degree] << 1)
                    for k in range(1, lm - degree + 1)
                )
                assert decisions[epoch] == expected
                checked += 1
        assert checked >= 4, "too few SLH samples to be meaningful"
        # the phase flip must actually change some decision vector
        asc = probes.get("slh.decision.t0.asc")
        assert len(set(asc.points())) > 1

    def test_probe_policy_series_matches_boundary_events(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        session = TelemetrySession(trace_events=path, probe_interval=1)
        simulate(
            _small_epoch_config(), [_two_phase_trace()],
            tracer=session.tracer, probes=session.probes,
        )
        session.close()
        by_epoch = {
            e.epoch: e.policy
            for e in read_events_jsonl(path)
            if e.kind == "epoch_boundary"
        }
        for epoch, policy in session.probes.get("policy.index").samples():
            assert by_epoch[epoch] == policy


class TestRunnerCache:
    def test_traced_request_never_served_from_cache(self):
        runner.clear_cache()
        try:
            plain = runner.run("tonto", "PMS", accesses=1500)
            assert runner.run("tonto", "PMS", accesses=1500) is plain
            tracer = Tracer()
            traced = runner.run("tonto", "PMS", accesses=1500, tracer=tracer)
            assert traced is not plain
            assert traced.telemetry_active
            assert tracer.total_events > 0
            # traced results themselves are not cached
            assert runner.run(
                "tonto", "PMS", accesses=1500, tracer=Tracer()
            ) is not traced
        finally:
            runner.clear_cache()

    def test_disabled_tracer_still_cacheable(self):
        runner.clear_cache()
        try:
            plain = runner.run("tonto", "PMS", accesses=1500)
            again = runner.run(
                "tonto", "PMS", accesses=1500, tracer=Tracer(enabled=False)
            )
            assert again is plain
        finally:
            runner.clear_cache()


class TestCliTelemetry:
    def test_run_trace_events_writes_parseable_jsonl(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main([
            "run", "-b", "GemsFDTD", "-n", "4000",
            "--trace-events", str(path), "--probe-interval", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
        assert "epoch telemetry" in out
        kinds = set()
        with open(path) as fh:
            for line in fh:
                kinds.add(json.loads(line)["kind"])
        for kind in ("epoch_boundary", "prefetch_issued", "prefetch_hit",
                     "prefetch_discard", "policy_change"):
            assert kind in kinds

    def test_run_json_includes_telemetry_block(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main([
            "run", "-b", "GemsFDTD", "-n", "4000", "--json",
            "--trace-events", str(path),
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        telemetry = doc["telemetry"]
        assert telemetry["tracer"]["total_events"] > 0
        assert telemetry["events_written"] > 0

    def test_run_without_flags_has_no_telemetry(self, capsys):
        assert main(["run", "-b", "GemsFDTD", "-n", "2000", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "telemetry" not in doc

    def test_telemetry_subcommand_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "series.csv"
        json_path = tmp_path / "series.json"
        assert main([
            "telemetry", "-b", "GemsFDTD", "-n", "4000",
            "--series-csv", str(csv_path), "--series-json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch telemetry" in out
        assert "events:" in out
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("epoch,")
        doc = json.loads(json_path.read_text())
        assert any(n.startswith("slh.lht.") for n in doc["series"])

    def test_compare_splits_event_logs_per_config(self, tmp_path, capsys):
        base = tmp_path / "cmp.jsonl"
        assert main([
            "compare", "-b", "tonto", "-n", "2000",
            "--trace-events", str(base),
        ]) == 0
        for config in ("NP", "PS", "MS", "PMS"):
            per_config = tmp_path / f"cmp.{config}.jsonl"
            assert per_config.exists(), config
            first = json.loads(per_config.read_text().splitlines()[0])
            assert "kind" in first
