"""Golden equality: the event-driven loop against the per-cycle oracle.

The ``reference`` main-loop mode is the literal per-cycle tick — the
executable specification.  The ``event`` mode fast-forwards
deterministic waits and must land on a field-for-field identical
:class:`~repro.system.results.RunResult` (cycles, instructions, every
stat, power) for every benchmark character, config, and thread count.
"""

import pytest

from repro import generate_trace, get_profile, make_config
from repro.system.simulator import (
    LOOP_MODES,
    System,
    default_loop_mode,
    resolve_loop_mode,
    simulate,
)
from repro.telemetry.tracer import Tracer
from repro.workloads.profiles import SUITES

#: First benchmark of each suite: streaming FP, NAS kernel, commercial.
BENCHMARKS = tuple(names[0] for names in SUITES.values())

CONFIGS = ("NP", "PS", "MS", "PMS")

ACCESSES = 700


def _traces(benchmark, threads, seed=11):
    profile = get_profile(benchmark)
    return [
        generate_trace(profile.workload, ACCESSES, seed=seed + t)
        for t in range(threads)
    ]


def _run(config_name, traces, loop, tracer=None):
    config = make_config(config_name, threads=len(traces))
    system = System(config, traces, tracer=tracer)
    result = system.run(loop=loop)
    return system, result


@pytest.mark.parametrize("threads", (1, 2))
@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("bench", BENCHMARKS)
def test_event_loop_matches_reference(bench, config_name, threads):
    traces = _traces(bench, threads)
    _, ref = _run(config_name, traces, "reference")
    system, evt = _run(config_name, traces, "event")
    assert evt == ref  # RunResult equality is field-for-field
    # not vacuous: the event loop actually fast-forwarded
    assert system.loop_stats["jumps"] > 0
    assert system.loop_stats["cycles_skipped"] > 0
    assert (
        system.loop_stats["ticks_executed"]
        + system.loop_stats["cycles_skipped"]
        == evt.cycles
    )


@pytest.mark.parametrize("loop", LOOP_MODES)
def test_ticks_integral_covers_all_cycles(loop):
    # occupancy averages divide by mc.ticks: it must count every
    # simulated cycle, fast-forwarded ones included
    traces = _traces(BENCHMARKS[0], 1)
    _, result = _run("PMS", traces, loop)
    assert result.stats["mc.ticks"] == result.cycles


@pytest.mark.parametrize("loop", LOOP_MODES)
def test_max_cycles_raises_in_both_modes(loop):
    traces = _traces(BENCHMARKS[0], 1)
    config = make_config("PMS", threads=1)
    with pytest.raises(RuntimeError, match="exceeded"):
        System(config, traces).run(max_cycles=500, loop=loop)


def test_event_mode_never_overshoots_cap():
    # the cap must fire even when it lands inside a fast-forward window
    traces = _traces(BENCHMARKS[0], 1)
    config = make_config("PMS", threads=1)
    system = System(config, traces)
    with pytest.raises(RuntimeError, match="exceeded"):
        system.run(max_cycles=500, loop="event")
    assert system.now <= 501


def test_queue_depth_samples_identical_across_modes():
    # fast-forward jumps must not drop the 256-cycle telemetry samples
    traces = _traces(BENCHMARKS[0], 1)
    samples = {}
    for loop in LOOP_MODES:
        tracer = Tracer(enabled=True)
        collected = samples[loop] = []
        tracer.subscribe(
            lambda e, out=collected: out.append(
                (e.t, e.read_queue, e.write_queue, e.caq, e.lpq)
            ),
            kinds=("queue_depth",),
        )
        _run("PMS", traces, loop, tracer=tracer)
    assert samples["event"] == samples["reference"]
    assert len(samples["event"]) > 2


def test_resolve_loop_mode_validates():
    assert resolve_loop_mode(None) == default_loop_mode()
    assert resolve_loop_mode("reference") == "reference"
    with pytest.raises(ValueError, match="unknown loop mode"):
        resolve_loop_mode("turbo")


def test_env_default_loop_mode(monkeypatch):
    monkeypatch.setenv("REPRO_LOOP", "reference")
    assert default_loop_mode() == "reference"
    assert resolve_loop_mode(None) == "reference"


def test_simulate_passes_loop_through():
    traces = _traces(BENCHMARKS[0], 1)
    config = make_config("MS", threads=1)
    ref = simulate(config, traces, loop="reference")
    evt = simulate(config, traces, loop="event")
    assert ref == evt
