"""Two-fidelity sweeps end to end (docs/fidelity.md).

The property the whole tier rests on: every FidelityGate validation
sample's relative error is within the advertised bound — asserted here
across the figure-5 suite grid at reduced trace length, plus the auto
tier's exact-replacement and decision-boundary escalation, the store
round-trip of calibrated error bars, and a fast-fidelity sweep through
a live fabric fleet.
"""

import pytest

from repro.experiments import runner, store, sweep
from repro.fastsim import FidelityGate, run_fidelity_sweep
from repro.fastsim.gate import GATED_METRICS, relative_error
from repro.workloads.profiles import suite_benchmarks

ACCESSES = 1200
SEED = 1


@pytest.fixture(autouse=True)
def _fresh_caches():
    runner.clear_cache()
    yield
    runner.clear_cache()


def grid(benchmarks, configs, accesses=ACCESSES):
    return sweep.expand_grid(benchmarks, configs, accesses=accesses,
                             seed=SEED)


class TestFigure5GridBound:
    """Property-style: the advertised bound holds on every sampled
    exact point of the full fig5 grid (17 benchmarks x NP/PS/MS/PMS)."""

    @pytest.fixture(scope="class")
    def outcome(self):
        runner.clear_cache()
        jobs = grid(suite_benchmarks("spec2006fp"), ["NP", "PS", "MS", "PMS"])
        return jobs, run_fidelity_sweep(jobs, fidelity="fast",
                                        use_store=False)

    def test_every_fast_result_carries_the_bars(self, outcome):
        _jobs, out = outcome
        assert out.record is not None
        for result in out.results:
            assert result.fidelity_tier == "fast"
            for metric in GATED_METRICS:
                assert result.error_bar(metric) == out.record.bound(metric)

    def test_bound_holds_on_every_validation_sample(self, outcome):
        jobs, out = outcome
        assert len(out.validated_indices) == FidelityGate().sample_size(
            len(jobs)
        )
        checked = 0
        for index in out.validated_indices:
            job = jobs[index]
            exact = runner.simulate_job(
                sweep.prepare(job)[3], job.benchmark, job.accesses,
                job.seed, job.threads,
            )
            for metric in GATED_METRICS:
                observed = relative_error(out.results[index], exact, metric)
                assert observed <= out.record.bound(metric), (
                    f"{job.benchmark}/{job.config_name}: {metric} error "
                    f"{observed:.4f} > bound {out.record.bound(metric):.4f}"
                )
            checked += 1
        assert checked >= 3

    def test_stats_report_the_tier_split(self, outcome):
        jobs, out = outcome
        sample = len(out.validated_indices)
        assert out.stats.fast_jobs == len(jobs)
        assert out.stats.exact_jobs == sample
        assert out.stats.validated == sample
        assert f"{len(jobs)} fast / {sample} exact" in out.stats.describe()


class TestAutoTier:
    BENCHMARKS = ["gamess", "povray", "ep"]  # low-gain: escalation bait
    CONFIGS = ["NP", "PS"]

    def run_auto(self, **kwargs):
        jobs = grid(self.BENCHMARKS, self.CONFIGS)
        return jobs, run_fidelity_sweep(jobs, fidelity="auto", **kwargs)

    def test_validated_slots_are_replaced_by_exact(self):
        _jobs, out = self.run_auto(use_store=False)
        for index in out.validated_indices:
            assert out.results[index].fidelity is None

    def test_boundary_points_escalate_to_exact(self):
        jobs, out = self.run_auto(use_store=False)
        # compute-bound benchmarks have ~zero PS gain, inside any
        # honest error band — at least one must escalate
        assert out.escalated_indices
        for index in out.escalated_indices:
            assert jobs[index].config_name != "NP"  # never the baseline
            assert out.results[index].fidelity is None

    def test_far_from_boundary_points_stay_fast(self):
        jobs, out = self.run_auto(use_store=False)
        exact_slots = set(out.validated_indices) | set(out.escalated_indices)
        fast_slots = [
            i for i in range(len(jobs)) if i not in exact_slots
        ]
        for index in fast_slots:
            assert out.results[index].fidelity_tier == "fast"
            assert out.results[index].error_bar("cycles") is not None


class TestStoreRoundTrip:
    def test_calibrated_bars_survive_a_cold_process(self):
        jobs = grid(["milc", "cg"], ["NP", "PMS"])
        first = run_fidelity_sweep(jobs, fidelity="fast")
        assert first.stats.store_puts > 0
        runner.clear_cache()  # "new process": only the store remains
        again = run_fidelity_sweep(jobs, fidelity="fast")
        assert again.stats.from_store == again.stats.total
        assert again.results == first.results
        for result in again.results:
            assert result.error_bar("cycles") == again.record.bound("cycles")

    def test_fast_entries_do_not_shadow_exact_ones(self):
        jobs = grid(["milc"], ["NP"])
        run_fidelity_sweep(jobs, fidelity="fast")
        exact = run_fidelity_sweep(jobs, fidelity="exact")
        assert exact.results[0].fidelity is None


class TestFabricFastFidelity:
    def test_fleet_sweep_returns_calibrated_suite(self, tmp_path):
        from repro.fabric.agent import WorkerAgent
        from repro.fabric.client import FabricClient
        from repro.fabric.coordinator import Coordinator, CoordinatorServer

        coordinator = Coordinator(
            result_store=store.ResultStore(str(tmp_path / "coordinator"))
        )
        server = CoordinatorServer(coordinator).start()
        try:
            client = FabricClient(server.url)
            accepted = client.submit(
                ["milc"], ["NP", "PMS"], accesses=ACCESSES, seed=SEED,
                fidelity="fast",
            )
            # the fast grid plus the gate's exact validation twins
            assert accepted["total"] == 2 + FidelityGate().sample_size(2)
            agent = WorkerAgent(
                server.url, worker_id="w1", capacity=4,
                poll_seconds=0.05, drain_idle_seconds=0.2,
                result_store=store.ResultStore(str(tmp_path / "worker")),
            )
            totals = agent.run()
            assert totals["errors"] == 0
            suite, record = client.fetch_calibrated_suite(accepted["sweep"])
            assert record is not None and record.samples >= 1
            tiers = {
                result.fidelity_tier
                for per_config in suite.values()
                for result in per_config.values()
            }
            assert "exact" in tiers  # validation twins win their cells
            fast_rows = [
                result
                for per_config in suite.values()
                for result in per_config.values()
                if result.fidelity_tier == "fast"
            ]
            for result in fast_rows:
                assert result.error_bar("cycles") == record.bound("cycles")
        finally:
            server.close()
