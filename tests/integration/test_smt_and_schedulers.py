"""Integration tests: SMT behaviour and scheduler interplay."""

import pytest

from repro import generate_trace, get_profile, make_config, simulate

ACCESSES = 3000


@pytest.fixture(scope="module")
def pair():
    wl = get_profile("milc").workload
    return [
        generate_trace(wl, ACCESSES, seed=21),
        generate_trace(wl, ACCESSES, seed=22),
    ]


class TestSMT:
    def test_two_threads_complete_all_instructions(self, pair):
        result = simulate(make_config("PMS", threads=2), pair)
        assert result.instructions == sum(t.instructions for t in pair)

    def test_smt_slower_than_single_thread_each(self, pair):
        # two threads sharing the machine take longer than either alone
        single = simulate(make_config("NP"), pair[0])
        both = simulate(make_config("NP", threads=2), pair)
        assert both.cycles > single.cycles

    def test_smt_prefetching_still_helps(self, pair):
        np_run = simulate(make_config("NP", threads=2), pair)
        pms = simulate(make_config("PMS", threads=2), pair)
        assert pms.cycles < np_run.cycles

    def test_smt_deterministic(self, pair):
        a = simulate(make_config("PMS", threads=2), pair)
        b = simulate(make_config("PMS", threads=2), pair)
        assert a.cycles == b.cycles

    def test_threads_config_auto_set_from_traces(self, pair):
        result = simulate(make_config("PMS"), pair)  # threads inferred
        assert result.instructions == sum(t.instructions for t in pair)


class TestSchedulers:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(get_profile("milc").workload, 4000, seed=5)

    def test_all_schedulers_complete(self, trace):
        for scheduler in ("ahb", "memoryless", "in_order"):
            result = simulate(make_config("NP", scheduler=scheduler), trace)
            assert result.cycles > 0

    def test_scheduler_quality_ordering(self, trace):
        cycles = {
            s: simulate(make_config("NP", scheduler=s), trace).cycles
            for s in ("ahb", "memoryless", "in_order")
        }
        # better schedulers never lose, in-order is the weakest
        assert cycles["ahb"] <= cycles["in_order"]
        assert cycles["memoryless"] <= cycles["in_order"]

    def test_prefetch_gain_under_every_scheduler(self, trace):
        for scheduler in ("ahb", "memoryless", "in_order"):
            np_run = simulate(make_config("NP", scheduler=scheduler), trace)
            pms = simulate(make_config("PMS", scheduler=scheduler), trace)
            assert pms.cycles < np_run.cycles


class TestTraceReplay:
    def test_saved_trace_reproduces_simulation(self, tmp_path):
        from repro.workloads.trace import Trace

        wl = get_profile("tonto").workload
        original = generate_trace(wl, 2000, seed=9)
        path = tmp_path / "t.trace"
        original.save(str(path))
        replayed = Trace.load(str(path), name=original.name)

        a = simulate(make_config("PMS"), original)
        b = simulate(make_config("PMS"), replayed)
        assert a.cycles == b.cycles
        assert a.stats == b.stats
