"""Integration tests: refresh and page-policy options in full runs."""

from dataclasses import replace

import pytest

from repro import generate_trace, get_profile, make_config, simulate


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_profile("milc").workload, 3000, seed=13)


def with_refresh(config, t_refi=400, t_rfc=34):
    timing = replace(config.dram.timing, t_refi=t_refi, t_rfc=t_rfc)
    return config.derive(dram=replace(config.dram, timing=timing))


def with_page_policy(config, policy):
    return config.derive(dram=replace(config.dram, page_policy=policy))


class TestRefresh:
    def test_refresh_slows_execution(self, trace):
        base = simulate(make_config("NP"), trace)
        refreshed = simulate(with_refresh(make_config("NP")), trace)
        assert refreshed.cycles > base.cycles
        assert refreshed.stats["dram.refreshes"] > 0

    def test_refresh_overhead_is_modest(self, trace):
        # tRFC/tREFI = 34/400 bounds the theoretical slowdown at ~9%
        base = simulate(make_config("NP"), trace)
        refreshed = simulate(with_refresh(make_config("NP")), trace)
        assert refreshed.cycles < base.cycles * 1.15

    def test_prefetching_still_works_with_refresh(self, trace):
        np_run = simulate(with_refresh(make_config("NP")), trace)
        pms = simulate(with_refresh(make_config("PMS")), trace)
        assert pms.cycles < np_run.cycles


class TestPagePolicy:
    def test_closed_page_kills_row_hits(self, trace):
        closed = simulate(with_page_policy(make_config("NP"), "closed"), trace)
        assert closed.stats.get("dram.row_hits", 0) == 0

    def test_open_page_faster_on_streams(self, trace):
        open_run = simulate(with_page_policy(make_config("NP"), "open"), trace)
        closed = simulate(with_page_policy(make_config("NP"), "closed"), trace)
        # streaming workloads love open rows
        assert open_run.cycles <= closed.cycles
        assert open_run.stats["dram.row_hits"] > 0

    def test_prefetching_gains_survive_closed_page(self, trace):
        np_run = simulate(with_page_policy(make_config("NP"), "closed"), trace)
        pms = simulate(with_page_policy(make_config("PMS"), "closed"), trace)
        assert pms.cycles < np_run.cycles
