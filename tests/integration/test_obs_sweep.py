"""End-to-end observability of the sweep engine.

Covers the acceptance path of the obs subsystem: a sweep with metrics
enabled populates job/store/run counters; a forced worker crash or
timeout leaves a readable post-mortem JSON under
``.repro-results/postmortem/``; and a disabled registry keeps every
instrumented path on its zero-cost branch.
"""

import os
import time

import pytest

from repro.experiments import runner, store, sweep
from repro.obs import flightrec
from repro.obs import metrics as obs_metrics
from repro.obs.paths import postmortem_dir
from repro.obs.progress import SweepProgress

ACCESSES = 900


@pytest.fixture(autouse=True)
def clean():
    runner.clear_cache()
    obs_metrics.reset_default_registry()
    yield
    runner.clear_cache()
    obs_metrics.reset_default_registry()


def crashing_worker(payload, config):
    """Hard worker death (must be module-level to pickle)."""
    os._exit(13)


def hanging_worker(payload, config):
    """Never returns within any sane per-job timeout."""
    time.sleep(60)


class TestMetricsFlow:
    def test_serial_sweep_populates_registry(self):
        registry = obs_metrics.MetricsRegistry(enabled=True)
        spec = [sweep.Job("tonto", "NP", accesses=ACCESSES)]
        out = sweep.run_jobs(spec, metrics=registry)
        again = sweep.run_jobs(spec, metrics=registry)
        assert out.stats.executed_serial == 1
        assert again.stats.from_cache == 1
        jobs = registry.counter("repro_sweep_jobs_total",
                                labelnames=("outcome",))
        assert jobs.value(outcome="serial") == 1.0
        assert jobs.value(outcome="cached") == 1.0
        seconds = registry.histogram("repro_sweep_job_seconds",
                                     labelnames=("mode",))
        assert seconds.mean(mode="serial") > 0.0

    def test_store_and_run_metrics_via_default_registry(self):
        registry = obs_metrics.MetricsRegistry(enabled=True)
        obs_metrics.set_default_registry(registry)
        sweep.run_jobs([sweep.Job("milc", "NP", accesses=ACCESSES)])
        reads = registry.counter("repro_store_reads_total",
                                 labelnames=("result",))
        assert reads.value(result="miss") == 1.0
        assert registry.counter("repro_store_writes_total").value() == 1.0
        assert registry.counter("repro_store_bytes_written_total").value() > 0
        # the simulator bridge fired once for the in-parent simulation
        completed = registry.counter("repro_runs_completed_total",
                                     labelnames=("config", "loop_mode"))
        assert sum(v for _, v in completed.samples()) == 1.0
        assert registry.counter("repro_run_cycles_total").value() > 0

    def test_parallel_sweep_reports_queue_wait_and_exec_time(self):
        registry = obs_metrics.MetricsRegistry(enabled=True)
        sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES),
             sweep.Job("milc", "NP", accesses=ACCESSES)],
            jobs=2, metrics=registry,
        )
        seconds = registry.histogram("repro_sweep_job_seconds",
                                     labelnames=("mode",))
        assert seconds.mean(mode="parallel") > 0.0
        [(_, (_, _, count))] = registry.histogram(
            "repro_sweep_queue_wait_seconds"
        ).samples()
        assert count == 2

    def test_disabled_registry_registers_nothing(self):
        registry = obs_metrics.MetricsRegistry(enabled=False)
        sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)], metrics=registry
        )
        assert all(not inst.samples() for inst in registry.collect())

    def test_progress_is_driven(self):
        progress = SweepProgress()
        spec = [sweep.Job("tonto", "NP", accesses=ACCESSES)]
        sweep.run_jobs(spec, progress=progress)
        assert progress.snapshot()["outcomes"]["serial"] == 1
        sweep.run_jobs(spec, progress=progress)  # begin() re-arms
        snap = progress.snapshot()
        assert snap["total"] == 1
        assert snap["done"] == 1
        assert snap["finished"] is True
        assert snap["outcomes"]["cached"] == 1
        assert snap["outcomes"]["serial"] == 0

    def test_run_suite_serial_path_drives_progress(self):
        progress = SweepProgress()
        runner.run_suite(("tonto",), ("NP", "PS"), accesses=ACCESSES,
                         progress=progress)
        snap = progress.snapshot()
        assert snap["done"] == 2
        assert snap["finished"] is True


class TestPostmortems:
    def test_worker_crash_writes_readable_postmortem(self):
        out = sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2, retries=1, worker=crashing_worker,
        )
        assert out.results[0] is not None  # sweep still completed
        assert out.stats.serial_fallbacks == 1
        directory = postmortem_dir()
        names = os.listdir(directory)
        assert len(names) == 1
        doc = flightrec.read_postmortem(os.path.join(directory, names[0]))
        assert doc["reason"] == "worker_crash"
        assert doc["spec"]["benchmark"] == "tonto"
        assert doc["job_key"] == names[0].removesuffix(".json")
        assert doc["extra"]["attempts"] == 2
        kinds = [r["kind"] for r in doc["records"]]
        assert "pool_break" in kinds
        assert "retry" in kinds
        assert "retry_exhausted" in kinds
        # the structured-logging satellite: log lines reach the ring
        log_lines = [r["message"] for r in doc["records"]
                     if r["kind"] == "log"]
        assert any("worker process died" in line for line in log_lines)
        assert any("exhausted" in line for line in log_lines)

    def test_timeout_writes_postmortem(self):
        sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2, timeout=0.5, worker=hanging_worker,
        )
        directory = postmortem_dir()
        [name] = os.listdir(directory)
        doc = flightrec.read_postmortem(os.path.join(directory, name))
        assert doc["reason"] == "timeout"
        assert doc["extra"]["timeout_s"] == 0.5
        assert any(r["kind"] == "timeout" for r in doc["records"])

    def test_clean_sweep_writes_nothing(self):
        sweep.run_jobs([sweep.Job("tonto", "NP", accesses=ACCESSES)])
        assert not os.path.isdir(postmortem_dir())

    def test_postmortem_embeds_metrics_when_enabled(self):
        registry = obs_metrics.MetricsRegistry(enabled=True)
        sweep.run_jobs(
            [sweep.Job("tonto", "NP", accesses=ACCESSES)],
            jobs=2, timeout=0.5, worker=hanging_worker, metrics=registry,
        )
        [name] = os.listdir(postmortem_dir())
        doc = flightrec.read_postmortem(
            os.path.join(postmortem_dir(), name)
        )
        names = {m["name"] for m in doc["metrics"]["metrics"]}
        assert "repro_sweep_events_total" in names


class TestSerialFallbackLogging:
    def test_pool_unavailable_is_logged_and_counted(self, monkeypatch, caplog):
        monkeypatch.setattr(sweep, "_make_executor", lambda workers: None)
        registry = obs_metrics.MetricsRegistry(enabled=True)
        with caplog.at_level("WARNING", logger="repro.experiments.sweep"):
            out = sweep.run_jobs(
                [sweep.Job("tonto", "NP", accesses=ACCESSES)],
                jobs=4, metrics=registry,
            )
        assert out.stats.serial_fallbacks == 1
        assert any("pool unavailable" in r.message for r in caplog.records)
        events = registry.counter("repro_sweep_events_total",
                                  labelnames=("event",))
        assert events.value(event="serial_fallback") == 1.0
