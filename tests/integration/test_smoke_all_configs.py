"""Smoke matrix: every named configuration simulates every workload
character without deadlock or accounting violations."""

import pytest

from repro import generate_trace, get_profile, make_config, simulate
from repro.system.presets import ABLATION_CONFIGS

ALL_CONFIGS = (
    "NP", "PS", "MS", "PMS",
    *[c for c in ABLATION_CONFIGS if c != "PMS"],
    "PMS_DEGREE2", "ASD_PS", "PS_ASD", "PMS_ASDPS",
)

CHARACTERS = {
    "streaming": "lbm",
    "short-stream": "GemsFDTD",
    "commercial": "tpcc",
    "compute-bound": "gamess",
}


@pytest.fixture(scope="module")
def traces():
    return {
        label: generate_trace(get_profile(name).workload, 1500, seed=31)
        for label, name in CHARACTERS.items()
    }


@pytest.mark.parametrize("config_name", ALL_CONFIGS)
@pytest.mark.parametrize("character", sorted(CHARACTERS))
def test_config_runs_clean(config_name, character, traces):
    trace = traces[character]
    result = simulate(make_config(config_name), trace, max_cycles=2_000_000)
    # completed, accounted, and self-consistent
    assert result.cycles > 0
    assert result.instructions == trace.instructions
    stats = result.stats
    assert stats.get("pb.read_hits", 0) <= stats.get("pb.inserts", 0)
    regular = stats.get("mc.issued_regular", 0)
    prefetch = stats.get("mc.issued_prefetch", 0)
    assert stats.get("dram.issued", 0) == regular + prefetch
