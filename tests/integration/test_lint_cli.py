"""End-to-end runs of the lint front doors against the real repo.

These are the same invocations CI's lint job makes, so a failure here
reproduces the CI failure locally with pytest alone.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def _run(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestToolsLint:
    def test_check_passes_on_the_repo(self):
        proc = _run("tools/lint.py", "--check")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new finding(s)" in proc.stdout

    def test_json_report_is_parseable(self):
        proc = _run("tools/lint.py", "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        data = json.loads(proc.stdout)
        assert data["new"] == []
        assert data["files"] > 50

    def test_write_registry_is_a_no_op(self, tmp_path):
        """Regenerating the committed registries must not change them —
        the same invariant CI enforces with git diff --exit-code."""
        registries = [
            os.path.join(REPO_ROOT, "src", "repro", "common", "stat_keys.py"),
            os.path.join(REPO_ROOT, "src", "repro", "fabric", "wire_schema.py"),
            os.path.join(REPO_ROOT, "src", "repro", "obs", "metric_names.py"),
        ]
        before = {}
        for registry in registries:
            with open(registry, "r", encoding="utf-8") as handle:
                before[registry] = handle.read()
        proc = _run("tools/lint.py", "--write-registry")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        for registry in registries:
            with open(registry, "r", encoding="utf-8") as handle:
                assert handle.read() == before[registry], registry

    def test_output_writes_json_artifact(self, tmp_path):
        """--output writes the JSON report to a file (the CI artifact)
        while stdout keeps the human-readable report."""
        artifact = tmp_path / "lint-report.json"
        proc = _run("tools/lint.py", "--check", "--output", str(artifact))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new finding(s)" in proc.stdout  # stdout stays text
        data = json.loads(artifact.read_text())
        assert data["new"] == []
        assert data["stale_waivers"] == []
        assert data["files"] > 50

    def test_seeded_violation_fails_check(self, tmp_path):
        """--check must exit nonzero when pointed at code that violates
        an invariant (here: a det_violations fixture copied into a
        virtual sim package)."""
        bad_root = tmp_path / "src" / "repro" / "controller"
        bad_root.mkdir(parents=True)
        fixture = os.path.join(
            REPO_ROOT, "tests", "lint_fixtures", "det_violations.py"
        )
        with open(fixture, "r", encoding="utf-8") as handle:
            (bad_root / "leaky.py").write_text(handle.read())
        proc = _run(
            "tools/lint.py",
            "--check",
            "--baseline",
            str(tmp_path / "empty-baseline.json"),
            str(tmp_path / "src" / "repro"),
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "DET001" in proc.stdout


class TestReproLintSubcommand:
    def test_module_entry_point(self):
        proc = _run("-m", "repro", "lint", "--check")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new finding(s)" in proc.stdout
