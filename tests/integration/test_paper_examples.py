"""Scenario tests encoding the paper's own worked examples.

Section 1: "on a workload in which every stream is of length 2, a
[two-miss-confirm] policy would successfully prefetch the second cache
line of each stream, but each successful prefetch would be followed by
a useless prefetch, so 50% of its prefetches would be useless" — while
ASD "can predict when to stop prefetching without incurring a useless
prefetch".
"""

import pytest

from repro import make_config, simulate
from repro.workloads.synthetic import StreamWorkload, generate_trace


@pytest.fixture(scope="module")
def length2_trace():
    """Every stream exactly two lines; no noise, no writes."""
    wl = StreamWorkload(
        name="len2",
        length_dist={2: 1.0},
        gap_mean=20,
        hot_fraction=0.0,
        write_fraction=0.0,
        descending_fraction=0.0,
        interleave=2,
        burstiness=0.5,
    )
    return generate_trace(wl, 6000, seed=7)


@pytest.fixture(scope="module")
def runs(length2_trace):
    return {
        name: simulate(make_config(name), length2_trace)
        for name in ("NP", "MS", "PMS_NEXTLINE")
    }


class TestLengthTwoWorkload:
    def test_asd_prefetches_only_second_lines(self, runs):
        """ASD learns the all-length-2 histogram: prefetch at k=1, stop
        at k=2 — so (after the first epoch) usefulness approaches 100%,
        far above the 50% a stop-on-useless prefetcher is doomed to."""
        ms = runs["MS"]
        assert ms.useful_prefetch_fraction > 0.85

    def test_nextline_wastes_about_half(self, runs):
        """Next-line prefetches after *every* read: the one after the
        second line of each stream is useless -> ~50% useful."""
        nl = runs["PMS_NEXTLINE"]
        assert 0.35 < nl.useful_prefetch_fraction < 0.65

    def test_asd_covers_second_lines(self, runs):
        """Roughly half of all reads are second lines; ASD should cover
        most of them (minus the first training epoch)."""
        ms = runs["MS"]
        covered = ms.pb_hits + ms.stats.get("mc.merged_responses", 0)
        reads = ms.stats["mc.reads_arrived"]
        assert covered / reads > 0.30

    def test_asd_outperforms_np(self, runs):
        assert runs["MS"].gain_vs(runs["NP"]) > 10

    def test_asd_issues_half_the_prefetches_of_nextline(self, runs):
        asd_issued = runs["MS"].stats["ms.issued"]
        nl_issued = runs["PMS_NEXTLINE"].stats["ms.issued"]
        assert asd_issued < 0.7 * nl_issued


class TestLengthOneWorkload:
    def test_asd_goes_quiet_on_random_traffic(self):
        """All streams length 1: the histogram says 'never continue',
        so ASD must issue (almost) nothing after warm-up."""
        wl = StreamWorkload(
            name="len1",
            length_dist={1: 1.0},
            gap_mean=20,
            hot_fraction=0.0,
            write_fraction=0.0,
            interleave=2,
            burstiness=0.0,
        )
        trace = generate_trace(wl, 5000, seed=7)
        ms = simulate(make_config("MS"), trace)
        reads = ms.stats["mc.reads_arrived"]
        assert ms.stats.get("ms.generated", 0) < 0.05 * reads

    def test_nextline_cannot_go_quiet(self):
        wl = StreamWorkload(
            name="len1",
            length_dist={1: 1.0},
            gap_mean=20,
            hot_fraction=0.0,
            write_fraction=0.0,
            interleave=2,
            burstiness=0.0,
        )
        trace = generate_trace(wl, 5000, seed=7)
        nl = simulate(make_config("PMS_NEXTLINE"), trace)
        reads = nl.stats["mc.reads_arrived"]
        assert nl.stats.get("ms.generated", 0) > 0.5 * reads
        assert nl.useful_prefetch_fraction < 0.1
