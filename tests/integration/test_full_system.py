"""Integration tests: full-system runs on small traces.

These exercise the complete machine — core, caches, PS prefetcher,
controller, ASD prefetcher, DRAM, power model — and check cross-module
invariants rather than absolute numbers.
"""

import pytest

from repro import (
    Trace,
    generate_trace,
    get_profile,
    make_config,
    simulate,
)
from repro.system.simulator import System

ACCESSES = 4000


@pytest.fixture(scope="module")
def gems_trace():
    return generate_trace(get_profile("GemsFDTD").workload, ACCESSES, seed=3)


@pytest.fixture(scope="module")
def runs(gems_trace):
    return {
        name: simulate(make_config(name), gems_trace)
        for name in ("NP", "PS", "MS", "PMS")
    }


class TestCompletion:
    def test_all_configs_finish(self, runs):
        for result in runs.values():
            assert result.cycles > 0

    def test_instructions_equal_across_configs(self, runs, gems_trace):
        expected = gems_trace.instructions
        for result in runs.values():
            assert result.instructions == expected

    def test_system_runs_once(self, gems_trace):
        system = System(make_config("NP"), gems_trace)
        system.run()
        with pytest.raises(RuntimeError):
            system.run()


class TestDeterminism:
    def test_same_trace_same_cycles(self, gems_trace):
        a = simulate(make_config("PMS"), gems_trace)
        b = simulate(make_config("PMS"), gems_trace)
        assert a.cycles == b.cycles
        assert a.stats == b.stats


class TestOrderings:
    def test_prefetching_helps_memory_bound_workload(self, runs):
        assert runs["PMS"].cycles < runs["NP"].cycles
        assert runs["PS"].cycles < runs["NP"].cycles
        assert runs["MS"].cycles < runs["NP"].cycles

    def test_pms_beats_or_matches_ps(self, runs):
        assert runs["PMS"].cycles <= runs["PS"].cycles * 1.01


class TestTrafficInvariants:
    def test_np_reads_bounded_by_load_misses(self, runs):
        np_run = runs["NP"]
        load_misses = (
            np_run.stats["mem.memory_accesses"]
            - np_run.stats["mem.write_validates"]
        )
        assert 0 < np_run.stats["mc.reads_demand"] <= load_misses
        # every load miss either issued a read or merged with one
        assert (
            np_run.stats["mc.reads_demand"] + np_run.stats.get("core.demand_merged", 0)
            >= load_misses
        )

    def test_pb_hits_bounded_by_prefetches(self, runs):
        pms = runs["PMS"]
        assert pms.stats["pb.read_hits"] <= pms.stats["pb.inserts"]

    def test_completed_prefetches_bounded_by_issued(self, runs):
        pms = runs["PMS"]
        assert pms.stats["ms.completed"] <= pms.stats["ms.issued"]

    def test_dram_issues_match_controller(self, runs):
        for result in runs.values():
            mc_total = result.stats.get("mc.issued_regular", 0) + result.stats.get(
                "mc.issued_prefetch", 0
            )
            assert result.stats["dram.issued"] == mc_total

    def test_prefetch_never_issued_when_disabled(self, runs):
        for name in ("NP", "PS"):
            assert runs[name].stats.get("mc.issued_prefetch", 0) == 0
            assert runs[name].stats.get("pb.inserts", 0) == 0

    def test_ps_reads_only_with_ps_enabled(self, runs):
        assert runs["NP"].stats.get("mc.reads_ps", 0) == 0
        assert runs["MS"].stats.get("mc.reads_ps", 0) == 0
        assert runs["PS"].stats.get("mc.reads_ps", 0) > 0

    def test_row_hits_plus_activations_equal_issues(self, runs):
        for result in runs.values():
            assert (
                result.stats["dram.row_hits"] + result.stats["dram.activations"]
                == result.stats["dram.issued"]
            )


class TestPower:
    def test_power_reports_present(self, runs):
        for result in runs.values():
            assert result.power is not None
            assert result.power.energy_uj > 0

    def test_pms_energy_no_worse_than_ps(self, runs):
        # shorter runtime cuts background energy, extra prefetch traffic
        # adds burst energy; net DRAM energy must not regress (Figure 8
        # shows a reduction at full trace lengths; the short integration
        # trace only reaches break-even)
        assert runs["PMS"].power.energy_uj <= runs["PS"].power.energy_uj * 1.02

    def test_pms_background_energy_below_ps(self, runs):
        # the runtime saving itself must always show up in background
        assert (
            runs["PMS"].power.background_energy_uj
            < runs["PS"].power.background_energy_uj
        )

    def test_background_energy_dominates(self, runs):
        p = runs["NP"].power
        assert p.background_energy_uj > p.activate_energy_uj
        assert p.background_energy_uj > p.burst_energy_uj


class TestWriteTraffic:
    def test_writes_flow_to_dram(self, runs):
        for result in runs.values():
            assert result.stats["dram.issued_writes"] > 0

    def test_write_count_unaffected_by_memory_side_prefetch(self, runs):
        # the MS prefetcher never touches the caches, so dirty-eviction
        # traffic matches NP exactly; PS changes it (its fills evict)
        assert (
            runs["MS"].stats["dram.issued_writes"]
            == runs["NP"].stats["dram.issued_writes"]
        )


class TestSmallTraces:
    def test_single_access_trace(self):
        result = simulate(make_config("PMS"), Trace([(0, 1 << 34, False)]))
        assert result.cycles > 0

    def test_write_only_trace(self):
        records = [(0, (1 << 34) + i * 2, True) for i in range(50)]
        result = simulate(make_config("PMS"), Trace(records))
        assert result.stats.get("mc.reads_demand", 0) == 0

    def test_max_cycles_guard(self):
        trace = generate_trace(get_profile("bwaves").workload, 500, seed=1)
        with pytest.raises(RuntimeError, match="exceeded"):
            simulate(make_config("NP"), trace, max_cycles=10)
