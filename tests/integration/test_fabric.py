"""Fabric integration tests: failure modes and the HTTP round trip.

The three failure modes named by the fabric design (docs/fabric.md):

* a worker killed mid-lease — its jobs re-queue after lease expiry and
  a second worker finishes the sweep;
* a coordinator restart with sweeps in flight — state rebuilds from
  the result store (resubmission dedupes everything already finished);
* duplicate submission of a fully-cached grid — zero jobs execute.

Plus one in-process end-to-end: a real :class:`WorkerAgent` draining a
real :class:`CoordinatorServer` over HTTP, results equal to a serial
``run_suite``.  The subprocess version of that loop (two workers, CLI
submission) lives in ``tools/fabric_smoke.py``.
"""

import threading

import pytest

from repro.experiments import runner, store, sweep
from repro.fabric import protocol
from repro.obs import critpath
from repro.obs import spans as obs_spans
from repro.fabric.agent import WorkerAgent
from repro.fabric.client import FabricClient
from repro.fabric.coordinator import Coordinator, CoordinatorServer
from repro.fabric.protocol import ProtocolError

ACCESSES = 300
SEED = 1


@pytest.fixture(autouse=True)
def _fresh_caches():
    runner.clear_cache()
    yield
    runner.clear_cache()


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_coordinator(root, **overrides):
    kwargs = dict(result_store=store.ResultStore(str(root)))
    kwargs.update(overrides)
    return Coordinator(**kwargs)


def grid_request(benchmarks=("milc",), configs=("NP", "PS")):
    return protocol.sweep_request(
        list(benchmarks), list(configs), accesses=ACCESSES, seed=SEED
    )


def executed_item(key, job):
    """Simulate one leased job the way a worker would, as a wire item."""
    job, _cache_key, _spec, config = sweep.prepare(job)
    result = runner.simulate_job(
        config, job.benchmark, job.accesses, job.seed, job.threads
    )
    return {"key": key, "result": store.encode_result(result),
            "outcome": "executed", "seconds": 0.01, "error": None}


class TestWorkerDeath:
    def test_killed_worker_requeues_after_lease_expiry(self, tmp_path):
        clock = FakeClock()
        coordinator = make_coordinator(
            tmp_path / "store", lease_seconds=30.0, clock=clock
        )
        reply = coordinator.submit(grid_request())
        assert reply["queued"] == 2

        grant = coordinator.lease(protocol.lease_request("doomed", 2))
        _, doomed_jobs, _ = protocol.parse_lease_grant(grant)
        assert len(doomed_jobs) == 2
        # "doomed" is killed here: no completion, no heartbeats.  While
        # its lease is alive the jobs are not up for grabs...
        empty = protocol.parse_lease_grant(
            coordinator.lease(protocol.lease_request("rescuer", 2))
        )
        assert empty[0] is None and empty[1] == []
        # ...but once the lease expires they re-queue for anyone.
        clock.advance(31.0)
        lease_id, jobs, _ = protocol.parse_lease_grant(
            coordinator.lease(protocol.lease_request("rescuer", 2))
        )
        assert sorted(key for key, _j, _c in jobs) == sorted(
            key for key, _j, _c in doomed_jobs
        )
        ack = coordinator.complete(protocol.complete_report(
            "rescuer", lease_id, [executed_item(k, j) for k, j, _c in jobs]
        ))
        assert ack["accepted"] == 2
        status = coordinator.sweep_status(reply["sweep"])
        assert status["done"] is True
        assert status["counts"]["failed"] == 0

    def test_repeatedly_fatal_job_fails_instead_of_looping(self, tmp_path):
        clock = FakeClock()
        coordinator = make_coordinator(
            tmp_path / "store", lease_seconds=30.0, max_attempts=2,
            clock=clock,
        )
        reply = coordinator.submit(grid_request(configs=("NP",)))
        for _ in range(2):  # every worker that touches the job dies
            grant = coordinator.lease(protocol.lease_request("doomed", 1))
            assert protocol.parse_lease_grant(grant)[0] is not None
            clock.advance(31.0)
        empty = coordinator.lease(protocol.lease_request("doomed", 1))
        assert protocol.parse_lease_grant(empty)[0] is None
        status = coordinator.sweep_status(reply["sweep"])
        assert status["counts"]["failed"] == 1
        assert "presumed dead" in status["failed"][0]["error"]


class TestCoordinatorRestart:
    def test_restart_rebuilds_from_the_store(self, tmp_path):
        shared = tmp_path / "store"
        first = make_coordinator(shared)
        request = grid_request(benchmarks=("milc", "tonto"))
        accepted = first.submit(request)
        assert accepted["queued"] == 4

        # Half the grid completes, then the coordinator dies with the
        # other half still queued.
        lease_id, jobs, _ = protocol.parse_lease_grant(
            first.lease(protocol.lease_request("w1", 2))
        )
        first.complete(protocol.complete_report(
            "w1", lease_id, [executed_item(k, j) for k, j, _c in jobs]
        ))
        done_keys = {key for key, _j, _c in jobs}

        # A fresh process has no in-process cache: recovery must come
        # from the on-disk store alone.
        runner.clear_cache()
        second = make_coordinator(shared)
        resubmitted = second.submit(request)
        assert resubmitted["total"] == 4
        assert resubmitted["deduped"] == 2
        assert resubmitted["queued"] == 2

        lease_id, remainder, _ = protocol.parse_lease_grant(
            second.lease(protocol.lease_request("w2", 4))
        )
        assert {key for key, _j, _c in remainder}.isdisjoint(done_keys)
        second.complete(protocol.complete_report(
            "w2", lease_id, [executed_item(k, j) for k, j, _c in remainder]
        ))
        status = second.sweep_status(resubmitted["sweep"])
        assert status["done"] is True
        assert status["progress"]["finished"] is True


class TestDuplicateSubmission:
    def test_fully_cached_grid_executes_nothing(self, tmp_path):
        suite = runner.run_suite(
            ["milc"], ["NP", "PS"], accesses=ACCESSES, seed=SEED
        )
        coordinator = make_coordinator(store.get_store().root)
        reply = coordinator.submit(grid_request())
        assert reply["total"] == 2
        assert reply["deduped"] == 2
        assert reply["queued"] == 0
        # nothing for a worker to do, and the sweep is born finished
        empty = coordinator.lease(protocol.lease_request("idle", 4))
        assert protocol.parse_lease_grant(empty)[0] is None
        status = coordinator.sweep_status(reply["sweep"], include_results=True)
        assert status["done"] is True
        assert status["progress"]["finished"] is True
        # ...and the served results are the serial run's, field for field
        for row in status["results"]:
            assert store.decode_result(row["result"]) == (
                suite[row["benchmark"]][row["config"]]
            )


class TestHttpRoundTrip:
    def test_agent_drains_a_live_server(self, tmp_path):
        coordinator = make_coordinator(tmp_path / "coordinator-store")
        server = CoordinatorServer(coordinator).start()
        try:
            client = FabricClient(server.url)
            accepted = client.submit(
                ["milc"], ["NP", "PS"], accesses=ACCESSES, seed=SEED
            )
            agent = WorkerAgent(
                server.url, worker_id="w1", capacity=4, poll_seconds=0.05,
                drain_idle_seconds=0.2,
                result_store=store.ResultStore(str(tmp_path / "worker-store")),
            )
            totals = agent.run()
            assert totals["executed"] == 2
            assert totals["errors"] == 0

            status = client.sweep_status(accepted["sweep"])
            assert status["counts"]["done"] == 2
            suite = client.fetch_suite(accepted["sweep"])
            serial = runner.run_suite(
                ["milc"], ["NP", "PS"], accesses=ACCESSES, seed=SEED
            )
            assert suite == serial

            progress = client.progress()
            assert progress["done"] == 2
            assert progress["finished"] is True
            assert progress["outcomes"]["fabric"] == 2
            health = client.health()
            assert health["role"] == "fabric-coordinator"
            assert "w1" in health["workers"]
        finally:
            server.close()

    def test_protocol_violations_are_http_400(self, tmp_path):
        coordinator = make_coordinator(tmp_path / "store")
        server = CoordinatorServer(coordinator).start()
        try:
            client = FabricClient(server.url)
            with pytest.raises(ProtocolError, match="non-empty"):
                client.submit([], [])
            with pytest.raises(ProtocolError, match="unknown sweep"):
                client.sweep_status("sweep-404")
        finally:
            server.close()


class TestTraceStitching:
    """Protocol v3 acceptance: a two-worker run yields ONE stitched
    trace covering submit -> lease -> execute -> report per job."""

    def test_two_worker_sweep_stitches_into_one_trace(self, tmp_path):
        submit_spans = obs_spans.SpanCollector(enabled=True)
        obs_spans.set_default_collector(submit_spans)
        coordinator = make_coordinator(tmp_path / "coordinator-store")
        server = CoordinatorServer(coordinator).start()
        try:
            client = FabricClient(server.url)
            accepted = client.submit(
                ["milc", "tonto"], ["NP", "PS"], accesses=ACCESSES,
                seed=SEED,
            )
            agents = [
                WorkerAgent(
                    server.url, worker_id=f"w{n}", capacity=2,
                    poll_seconds=0.05, drain_idle_seconds=0.3,
                    result_store=store.ResultStore(
                        str(tmp_path / f"worker-{n}-store")
                    ),
                )
                for n in (1, 2)
            ]
            threads = [
                threading.Thread(target=agent.run) for agent in agents
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert client.sweep_status(accepted["sweep"])["done"] is True

            fleet = client.trace()["spans"]
            local = submit_spans.spans()
        finally:
            server.close()
            obs_spans.reset_default_collector()

        # one trace end to end: the submitter's span and everything the
        # coordinator collected (its own + worker-shipped) share it
        submit_local = [d for d in local if d["name"] == "fabric.submit"]
        assert len(submit_local) == 1
        traces = {doc["trace"] for doc in fleet}
        assert traces == {submit_local[0]["trace"]}

        by_name = {}
        by_id = {doc["span"]: doc for doc in fleet}
        for doc in fleet:
            by_name.setdefault(doc["name"], []).append(doc)
        root, = by_name["fabric.sweep"]
        assert root["parent"] == submit_local[0]["span"]
        for lease in by_name["fabric.lease"]:
            assert lease["parent"] == root["span"]
        # every job executed exactly once, under a lease, by our workers
        executes = by_name["fabric.execute"]
        assert sorted(
            (doc["attrs"]["benchmark"], doc["attrs"]["config"])
            for doc in executes
        ) == [("milc", "NP"), ("milc", "PS"),
              ("tonto", "NP"), ("tonto", "PS")]
        for doc in executes:
            assert by_id[doc["parent"]]["name"] == "fabric.lease"
            assert doc["attrs"]["worker"] in {"w1", "w2"}
        for report in by_name["fabric.report"]:
            assert by_id[report["parent"]]["name"] == "fabric.lease"
        # the analyzer reads the stitched tree directly
        analysis = critpath.analyze(fleet)
        assert analysis["traces"] == 1
        assert analysis["critical_path"][0]["name"] == "fabric.sweep"
        assert analysis["straggler"] is not None
        assert "/" in analysis["straggler"]["label"]
