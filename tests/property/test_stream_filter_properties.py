"""Property-based tests for the Stream Filter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import StreamFilterConfig
from repro.common.types import Direction
from repro.prefetch.stream_filter import StreamFilter

# random mixtures of interleaved streams and noise
stream_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),  # region id
        st.integers(min_value=1, max_value=12),  # length
        st.booleans(),  # descending
    ),
    min_size=0,
    max_size=20,
)


def interleaved_reads(specs, interleave_seed):
    """Build a read sequence by round-robin interleaving the streams."""
    streams = []
    for i, (region, length, descending) in enumerate(specs):
        base = region * 1000 + i * 64
        if descending:
            lines = list(range(base + length - 1, base - 1, -1))
        else:
            lines = list(range(base, base + length))
        streams.append(lines)
    out = []
    idx = interleave_seed
    while any(streams):
        live = [s for s in streams if s]
        pick = live[idx % len(live)]
        out.append(pick.pop(0))
        idx += 3
    return out


@given(stream_specs, st.integers(min_value=0, max_value=7))
@settings(max_examples=50)
def test_evicted_read_mass_conserved(specs, seed):
    """Every observed read is eventually credited to exactly one stream:
    the evicted lengths (plus untracked length-1 records) sum to the
    number of reads."""
    total = []
    sf = StreamFilter(
        StreamFilterConfig(slots=4, lifetime_init=6, lifetime_increment=6,
                           lifetime_cap=48),
        on_evict=lambda length, d: total.append(length),
    )
    reads = interleaved_reads(specs, seed)
    for i, line in enumerate(reads):
        sf.observe(line, i)
    sf.flush()
    assert sum(total) == len(reads)


@given(stream_specs, st.integers(min_value=0, max_value=7))
@settings(max_examples=50)
def test_occupancy_never_exceeds_slots(specs, seed):
    sf = StreamFilter(StreamFilterConfig(slots=3))
    for i, line in enumerate(interleaved_reads(specs, seed)):
        sf.observe(line, i)
        assert sf.occupancy <= 3


@given(stream_specs)
@settings(max_examples=50)
def test_positions_grow_by_one_within_stream(specs):
    """Feeding one stream alone, the reported position counts 1,2,3,..."""
    sf = StreamFilter(StreamFilterConfig())
    for region, length, descending in specs[:1]:
        step = -1 if descending else 1
        base = region * 1000 + (length if descending else 0)
        expected = 1
        for k in range(length):
            obs = sf.observe(base + k * step, k)
            assert obs.position == expected
            expected += 1


@given(st.lists(st.integers(min_value=0, max_value=500), max_size=150))
@settings(max_examples=50)
def test_never_crashes_on_arbitrary_addresses(random_lines):
    sf = StreamFilter(StreamFilterConfig(slots=2, lifetime_init=3,
                                         lifetime_increment=3,
                                         lifetime_cap=24))
    collected = []
    sf.on_evict = lambda l, d: collected.append((l, d))
    for i, line in enumerate(random_lines):
        obs = sf.observe(line, i)
        assert obs.position >= 1
        assert obs.direction in (Direction.ASCENDING, Direction.DESCENDING)
    sf.flush()
    assert all(length >= 1 for length, _ in collected)


@given(st.integers(min_value=1, max_value=30))
@settings(max_examples=30)
def test_isolated_stream_full_length_recorded(length):
    """With no competition, a single stream is credited at full length."""
    seen = []
    sf = StreamFilter(
        StreamFilterConfig(),
        on_evict=lambda l, d: seen.append(l),
    )
    for k in range(length):
        sf.observe(1000 + k, k)
    sf.flush()
    assert seen == [length]
