"""Metamorphic properties of the full system.

Rather than checking absolute numbers, these tests check that the
simulated machine responds to workload changes the way a real machine
must: more compute takes longer, more memory pressure takes longer,
prefetching never breaks correctness accounting, and results compose
deterministically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Trace, make_config, simulate
from repro.workloads.synthetic import StreamWorkload, generate_trace

small_workloads = st.builds(
    StreamWorkload,
    name=st.just("meta"),
    length_dist=st.just({1: 0.3, 2: 0.4, 4: 0.3}),
    gap_mean=st.floats(min_value=5.0, max_value=40.0),
    hot_fraction=st.floats(min_value=0.0, max_value=0.5),
    hot_lines=st.just(256),
    write_fraction=st.floats(min_value=0.0, max_value=0.3),
    interleave=st.integers(min_value=1, max_value=4),
    burstiness=st.just(0.5),
)


@given(small_workloads, st.integers(min_value=200, max_value=800))
@settings(max_examples=10, deadline=None)
def test_longer_traces_take_longer(workload, n):
    short = simulate(make_config("NP"), generate_trace(workload, n, seed=3))
    long = simulate(make_config("NP"), generate_trace(workload, 2 * n, seed=3))
    assert long.cycles > short.cycles


@given(small_workloads)
@settings(max_examples=10, deadline=None)
def test_bigger_gaps_take_longer(workload):
    import dataclasses

    base = generate_trace(workload, 400, seed=3)
    slower_wl = dataclasses.replace(workload, gap_mean=workload.gap_mean * 4)
    slower = generate_trace(slower_wl, 400, seed=3)
    a = simulate(make_config("NP"), base)
    b = simulate(make_config("NP"), slower)
    assert b.cycles > a.cycles


@given(small_workloads)
@settings(max_examples=10, deadline=None)
def test_instruction_count_config_invariant(workload):
    trace = generate_trace(workload, 400, seed=3)
    counts = {
        simulate(make_config(name), trace).instructions
        for name in ("NP", "PS", "MS", "PMS")
    }
    assert len(counts) == 1
    assert counts.pop() == trace.instructions


@given(small_workloads)
@settings(max_examples=8, deadline=None)
def test_prefetching_never_regresses_badly(workload):
    """PMS may not help a given random workload, but it must never cost
    more than a small constant factor — the adaptive machinery's job."""
    trace = generate_trace(workload, 500, seed=3)
    np_run = simulate(make_config("NP"), trace)
    pms = simulate(make_config("PMS"), trace)
    assert pms.cycles < np_run.cycles * 1.15


@given(st.integers(min_value=0, max_value=2**30))
@settings(max_examples=10, deadline=None)
def test_single_line_trace_latency_sane(offset):
    line = (1 << 34) + offset
    result = simulate(make_config("NP"), Trace([(0, line, False)]))
    # one cold read: a handful of MC cycles, never hundreds
    assert result.cycles < 200
