"""Property-based tests: the controller under random command streams.

Feeds arbitrary interleavings of reads/writes (with the memory-side
prefetcher enabled) and checks end-to-end invariants: every accepted
read is answered exactly once, the controller always drains, write
forwarding never loses commands, and DRAM never sees a line fetched
twice concurrently for the same demand.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (
    ControllerConfig,
    DRAMConfig,
    MemorySidePrefetcherConfig,
)
from repro.common.types import CommandKind, MemoryCommand
from repro.controller.controller import MemoryController
from repro.dram.device import DRAMDevice
from repro.prefetch.memory_side import MemorySidePrefetcher

command_stream = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # line
        st.booleans(),  # is_write
        st.integers(min_value=0, max_value=6),  # arrival gap
    ),
    max_size=60,
)


def drive(spec, engine="nextline"):
    dram = DRAMDevice(DRAMConfig())
    ms = MemorySidePrefetcher(
        MemorySidePrefetcherConfig(enabled=True, engine=engine), threads=1
    )
    completed = []
    mc = MemoryController(
        ControllerConfig(),
        dram,
        ms,
        on_read_complete=lambda cmd, now: completed.append(cmd),
    )
    now = 0
    accepted_reads = 0
    for line, is_write, gap in spec:
        now += gap
        kind = CommandKind.WRITE if is_write else CommandKind.READ
        cmd = MemoryCommand(kind, line)
        while not mc.enqueue(cmd, now):
            mc.tick(now)
            now += 1
        if not is_write:
            accepted_reads += 1
    guard = 0
    while not mc.idle():
        mc.tick(now)
        now += 1
        guard += 1
        assert guard < 50_000, "controller failed to drain"
    return mc, completed, accepted_reads


@given(command_stream)
@settings(max_examples=40, deadline=None)
def test_every_read_answered_exactly_once(spec):
    mc, completed, accepted_reads = drive(spec)
    assert len(completed) == accepted_reads
    # each read object answered once
    assert len({c.uid for c in completed}) == len(completed)


@given(command_stream)
@settings(max_examples=40, deadline=None)
def test_drains_with_asd_engine(spec):
    mc, completed, accepted_reads = drive(spec, engine="asd")
    assert len(completed) == accepted_reads


@given(command_stream)
@settings(max_examples=40, deadline=None)
def test_no_pending_write_lines_after_drain(spec):
    mc, _, _ = drive(spec)
    assert not mc._pending_write_lines


@given(command_stream)
@settings(max_examples=40, deadline=None)
def test_dram_traffic_bounded(spec):
    """DRAM never issues more than regular commands + prefetches, and
    every regular command either issued, forwarded, or was served by
    the Prefetch Buffer / merge."""
    mc, _, accepted_reads = drive(spec)
    writes = mc.stats["writes_arrived"]
    served = (
        mc.stats["issued_regular"]
        + mc.pb_hits
        + mc.stats["raw_forwards"]
        + mc.stats["merged_responses"]
    )
    assert served == accepted_reads + writes
    assert mc.stats["issued_prefetch"] <= mc.stats["ms.generated"] if "ms.generated" in mc.stats else True


@given(command_stream)
@settings(max_examples=40, deadline=None)
def test_prefetcher_accounting_balances(spec):
    mc, _, _ = drive(spec)
    ms = mc.ms
    # every generated prefetch was issued, squashed, or still nothing
    assert ms.stats["issued"] == ms.stats["completed"]
    assert not ms.in_flight
    assert ms.buffer.occupancy <= ms.buffer.config.entries
