"""Property-based tests for the Likelihood Tables / SLH algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SLHConfig
from repro.prefetch.slh import LikelihoodTables, slh_bars

lengths = st.lists(st.integers(min_value=1, max_value=40), min_size=0, max_size=60)


def tables_for(stream_lengths, table_len=16):
    t = LikelihoodTables(SLHConfig(table_len=table_len, epoch_reads=100_000))
    for length in stream_lengths:
        t.record_stream(length)
    return t


@given(lengths)
def test_lht_monotone_non_increasing(stream_lengths):
    """lht(i) >= lht(i+1): a read in a stream of length >= i+1 is also
    in a stream of length >= i."""
    t = tables_for(stream_lengths)
    for i in range(1, t.lm):
        assert t.next[i] >= t.next[i + 1]


@given(lengths)
def test_lht1_equals_total_reads(stream_lengths):
    """lht(1) counts every read."""
    t = tables_for(stream_lengths)
    assert t.next[1] == sum(stream_lengths)


@given(lengths)
def test_bars_sum_to_one(stream_lengths):
    t = tables_for(stream_lengths)
    bars = slh_bars(t.next, t.lm)
    if stream_lengths:
        assert abs(sum(bars[1:]) - 1.0) < 1e-9
    else:
        assert sum(bars[1:]) == 0


@given(lengths)
def test_bars_non_negative(stream_lengths):
    t = tables_for(stream_lengths)
    assert all(b >= 0 for b in slh_bars(t.next, t.lm))


@given(lengths)
def test_bar_reconstruction(stream_lengths):
    """bars[i] * total = reads belonging to streams of exactly length i
    (with the last bar aggregating >= Lm)."""
    t = tables_for(stream_lengths)
    total = sum(stream_lengths)
    if total == 0:
        return
    bars = slh_bars(t.next, t.lm)
    for i in range(1, t.lm):
        expected = sum(n for n in stream_lengths if n == i)
        assert abs(bars[i] * total - expected) < 1e-6
    tail = sum(n for n in stream_lengths if n >= t.lm)
    assert abs(bars[t.lm] * total - tail) < 1e-6


@given(lengths, lengths)
def test_rollover_conserves_next_into_curr(first_epoch, second_epoch):
    t = tables_for(first_epoch)
    snapshot = list(t.next)
    t.rollover()
    assert t.curr == snapshot
    assert all(v == 0 for v in t.next)


@given(lengths)
def test_decrement_saturates_at_zero(stream_lengths):
    """LHTcurr never goes negative regardless of eviction pattern."""
    t = tables_for([])
    t.rollover()
    for length in stream_lengths:
        t.record_stream(length)
    assert all(v >= 0 for v in t.curr)


@given(lengths, st.integers(min_value=1, max_value=15))
def test_decision_is_pure(stream_lengths, k):
    """should_prefetch never mutates the tables."""
    t = tables_for(stream_lengths)
    t.rollover()
    before = (list(t.curr), list(t.next))
    t.should_prefetch(k)
    assert (list(t.curr), list(t.next)) == before


@given(lengths)
@settings(max_examples=30)
def test_decision_matches_inequality_five(stream_lengths):
    """The implementation agrees with lht(k) < 2*lht(k+1) literally."""
    t = tables_for(stream_lengths)
    t.rollover()
    for k in range(1, t.lm):
        expected = t.curr[k] < 2 * t.curr[k + 1]
        assert t.should_prefetch(k) == expected
