"""Property-based tests for DRAM timing-protocol safety."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DRAMConfig, DRAMTimingConfig
from repro.common.types import CommandKind, MemoryCommand
from repro.dram.device import DRAMDevice

commands = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),  # line
        st.booleans(),  # is_write
        st.integers(min_value=0, max_value=3),  # cycle gap to next issue
    ),
    max_size=80,
)


def replay(spec):
    """Issue commands as soon as the device accepts them; collect the
    (cas-equivalent) completion schedule per bank and the bus slots."""
    dev = DRAMDevice(DRAMConfig(ranks=1, banks_per_rank=4, row_lines=8))
    now = 0
    completions = []
    for line, is_write, gap in spec:
        now += gap
        cmd = MemoryCommand(
            CommandKind.WRITE if is_write else CommandKind.READ, line
        )
        result = dev.try_issue(cmd, now)
        while not result.accepted:
            now += 1
            result = dev.try_issue(cmd, now)
        completions.append((cmd, now, result.completion))
    return dev, completions


@given(commands)
@settings(max_examples=40, deadline=None)
def test_completions_after_issue(spec):
    _, completions = replay(spec)
    t = DRAMTimingConfig()
    for _, issued_at, completed_at in completions:
        assert completed_at >= issued_at + min(t.t_wl, t.t_cl) + t.burst_cycles


@given(commands)
@settings(max_examples=40, deadline=None)
def test_data_bus_never_overlaps(spec):
    """Burst windows on the shared data bus must not overlap."""
    _, completions = replay(spec)
    t = DRAMTimingConfig()
    windows = sorted(
        (done - t.burst_cycles, done) for _, _, done in completions
    )
    for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
        assert s2 >= e1


@given(commands)
@settings(max_examples=40, deadline=None)
def test_same_bank_accesses_serialise(spec):
    """Two accesses to one bank never run their bursts concurrently."""
    dev, completions = replay(spec)
    t = DRAMTimingConfig()
    by_bank = {}
    for cmd, _, done in completions:
        bank, _ = dev.locate(cmd.line)
        by_bank.setdefault(bank, []).append((done - t.burst_cycles, done))
    for windows in by_bank.values():
        windows.sort()
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert s2 >= e1


@given(commands)
@settings(max_examples=40, deadline=None)
def test_activation_accounting(spec):
    dev, completions = replay(spec)
    assert (
        dev.stats["activations"] + dev.stats["row_hits"]
        == dev.stats["issued"]
        == len(completions)
    )


@given(commands)
@settings(max_examples=40, deadline=None)
def test_row_hits_require_prior_access_to_row(spec):
    """The first access to each (bank, row) can never be a row hit, so
    activations >= number of distinct rows touched."""
    dev, completions = replay(spec)
    distinct_rows = {dev.locate(cmd.line) for cmd, _, _ in completions}
    assert dev.stats["activations"] >= len(distinct_rows)
