"""Property-based tests for trace manipulation and persistence."""

from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.trace import Trace

records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1 << 40),
        st.booleans(),
    ),
    max_size=50,
)


@given(records)
def test_save_load_roundtrip(recs):
    import os
    import tempfile

    trace = Trace(recs, name="prop")
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "t.trace")
        trace.save(path)
        loaded = Trace.load(path)
    assert loaded.records == trace.records


@given(records, st.integers(min_value=0, max_value=60),
       st.integers(min_value=0, max_value=60))
def test_slice_matches_python_semantics(recs, start, stop):
    trace = Trace(recs)
    assert trace.slice(start, stop).records == recs[start:stop]


@given(records, records)
def test_concat_preserves_counts(a, b):
    combined = Trace(a).concat(Trace(b))
    assert len(combined) == len(a) + len(b)
    assert combined.instructions == Trace(a).instructions + Trace(b).instructions


@given(st.lists(records, min_size=1, max_size=4),
       st.integers(min_value=1, max_value=5))
def test_interleave_is_a_permutation(trace_lists, chunk):
    traces = [Trace(r) for r in trace_lists]
    mixed = Trace.interleave(traces, chunk=chunk)
    assert len(mixed) == sum(len(t) for t in traces)
    assert sorted(mixed.records) == sorted(
        r for t in traces for r in t.records
    )


@given(st.lists(records, min_size=1, max_size=3))
def test_interleave_preserves_per_trace_order(trace_lists):
    traces = [Trace(r, name=str(i)) for i, r in enumerate(trace_lists)]
    # tag records by identity through unique wrapping is overkill: per
    # trace, the subsequence of its own records must appear in order.
    mixed = Trace.interleave(traces)
    for t in traces:
        remaining = list(t.records)
        for rec in mixed.records:
            if remaining and rec == remaining[0]:
                remaining.pop(0)
        assert not remaining
