"""Property-based tests for the synthetic workload generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.slh_accuracy import exact_slh
from repro.workloads.synthetic import (
    COLD_BASE,
    HOT_BASE,
    StreamWorkload,
    generate_trace,
)

workloads = st.builds(
    StreamWorkload,
    name=st.just("prop"),
    length_dist=st.dictionaries(
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.01, max_value=1.0),
        min_size=1,
        max_size=5,
    ),
    gap_mean=st.floats(min_value=0.0, max_value=50.0),
    hot_fraction=st.floats(min_value=0.0, max_value=0.9),
    hot_lines=st.integers(min_value=1, max_value=512),
    write_fraction=st.floats(min_value=0.0, max_value=0.5),
    descending_fraction=st.floats(min_value=0.0, max_value=0.5),
    interleave=st.integers(min_value=1, max_value=8),
    burstiness=st.floats(min_value=0.0, max_value=1.0),
)


@given(workloads, st.integers(min_value=1, max_value=300))
@settings(max_examples=40, deadline=None)
def test_exact_length(workload, n):
    assert len(generate_trace(workload, n, seed=5)) == n


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_determinism(workload):
    a = generate_trace(workload, 100, seed=9)
    b = generate_trace(workload, 100, seed=9)
    assert a.records == b.records


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_regions_partition_address_space(workload):
    for _, line, _ in generate_trace(workload, 200, seed=1).records:
        assert (HOT_BASE <= line < HOT_BASE + workload.hot_lines) or (
            line >= COLD_BASE
        )


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_gaps_non_negative(workload):
    assert all(r[0] >= 0 for r in generate_trace(workload, 100, seed=2).records)


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_fixed_length_dist_is_recovered(length):
    """A single-length distribution with no noise yields streams of
    exactly that length at the memory side (measured by the exact
    tracker on the raw cold-read sequence)."""
    wl = StreamWorkload(
        name="pure",
        length_dist={length: 1.0},
        gap_mean=0,
        hot_fraction=0.0,
        write_fraction=0.0,
        descending_fraction=0.0,
        interleave=2,
        burstiness=0.5,
    )
    trace = generate_trace(wl, length * 40, seed=3)
    bars = exact_slh([r[1] for r in trace.records], table_len=16)
    # nearly all read mass sits at the target length (edge streams at
    # the trace end may be truncated)
    assert bars[min(length, 16)] > 0.8
