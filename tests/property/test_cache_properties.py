"""Property-based tests for the cache and Prefetch Buffer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.common.config import CacheConfig, PrefetchBufferConfig
from repro.prefetch.prefetch_buffer import PrefetchBuffer

lines = st.integers(min_value=0, max_value=63)
ops = st.lists(
    st.tuples(st.sampled_from(["fill", "read", "write", "inval"]), lines),
    max_size=200,
)


def run_cache(operations, size=1024, assoc=2):
    cache = Cache(CacheConfig(size, assoc, latency=1))
    for op, line in operations:
        if op == "fill":
            cache.fill(line)
        elif op in ("read", "write"):
            cache.lookup(line, write=op == "write")
        elif op == "inval":
            cache.invalidate(line)
    return cache


@given(ops)
def test_cache_occupancy_bounded(operations):
    cache = run_cache(operations)
    assert cache.occupancy <= cache.config.num_lines


@given(ops)
def test_cache_no_duplicate_lines(operations):
    cache = run_cache(operations)
    resident = list(cache.resident_lines())
    assert len(resident) == len(set(resident))


@given(ops)
def test_cache_hit_iff_resident(operations):
    """contains() and lookup() agree; lookup after fill always hits
    until eviction/invalidation."""
    cache = run_cache(operations)
    for line in range(64):
        assert cache.contains(line) == (line in set(cache.resident_lines()))


@given(ops)
def test_set_discipline(operations):
    """A line only ever lives in its own set."""
    cache = run_cache(operations)
    for s_index, lines_map in enumerate(cache._lines):
        for line in lines_map.values():
            assert cache.set_index(line) == s_index


@given(st.lists(st.tuples(st.sampled_from(["insert", "read", "write"]), lines), max_size=200))
def test_prefetch_buffer_read_once(operations):
    """A line can be consumed by exactly one read after each insert."""
    pb = PrefetchBuffer(PrefetchBufferConfig())
    consumable = set()
    for op, line in operations:
        if op == "insert":
            pb.insert(line)
            consumable.add(line)
        elif op == "read":
            hit = pb.read_hit(line)
            if hit:
                assert line in consumable
                consumable.discard(line)
            else:
                # misses may be capacity evictions; never a consumable
                # line that was not inserted
                pass
            assert not pb.contains(line) or line != line  # consumed
        else:
            pb.invalidate(line)
            consumable.discard(line)
    assert pb.occupancy <= PrefetchBufferConfig().entries


@given(st.lists(lines, max_size=300))
def test_prefetch_buffer_capacity(inserts):
    pb = PrefetchBuffer(PrefetchBufferConfig(entries=16, assoc=4))
    for line in inserts:
        pb.insert(line)
    assert pb.occupancy <= 16
    # stats balance: inserts = resident + consumed(0) + evicted
    assert pb.stats["inserts"] == pb.occupancy + pb.stats["evicted_unused"]


@given(st.lists(lines, min_size=1, max_size=100))
def test_prefetch_buffer_useful_fraction_bounds(inserts):
    pb = PrefetchBuffer(PrefetchBufferConfig())
    for line in inserts:
        pb.insert(line)
    pb.read_hit(inserts[-1])
    assert 0.0 <= pb.useful_fraction() <= 1.0
