"""Property-based tests: Prefetch Buffer coherence in the memory-side
prefetcher under random read/write interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import MemorySidePrefetcherConfig
from repro.common.types import CommandKind, MemoryCommand
from repro.prefetch.memory_side import MemorySidePrefetcher

events = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "issue", "complete"]),
        st.integers(min_value=0, max_value=24),
    ),
    max_size=120,
)


def replay(spec):
    """Drive the prefetcher directly; returns it plus a model of which
    lines were last written (and therefore must never be served)."""
    ms = MemorySidePrefetcher(
        MemorySidePrefetcherConfig(enabled=True, engine="nextline"), threads=1
    )
    delivered = []
    ms.on_merge_ready = delivered.append
    stale = set()  # lines whose freshest version is a write
    now = 0
    for op, line in spec:
        now += 1
        if op == "read":
            cmd = MemoryCommand(CommandKind.READ, line, arrival=now)
            served = ms.read_lookup(line)
            if served:
                assert line not in stale, "served stale data after a write"
            ms.observe_read(cmd, now, now * 8)
            stale.discard(line + 1)  # a fresh prefetch of line+1 may follow
        elif op == "write":
            ms.observe_write(MemoryCommand(CommandKind.WRITE, line, arrival=now))
            stale.add(line)
        elif op == "issue" and ms.lpq.head() is not None:
            ms.notify_issue(ms.lpq.pop())
        elif op == "complete" and ms.in_flight:
            target = next(iter(ms.in_flight))
            ms.notify_complete(
                MemoryCommand(
                    CommandKind.READ,
                    target,
                    provenance=__import__(
                        "repro.common.types", fromlist=["Provenance"]
                    ).Provenance.MS_PREFETCH,
                )
            )
    return ms, stale


@given(events)
@settings(max_examples=60, deadline=None)
def test_writes_never_served_from_buffer(spec):
    ms, stale = replay(spec)
    # after the dust settles, no stale line is resident
    for line in stale:
        assert not ms.buffer.contains(line)


@given(events)
@settings(max_examples=60, deadline=None)
def test_structural_bounds(spec):
    ms, _ = replay(spec)
    assert ms.buffer.occupancy <= ms.buffer.config.entries
    assert len(ms.lpq) <= ms.lpq.depth
    # in-flight lines are disjoint from LPQ lines
    for cmd_line in list(ms.in_flight):
        assert not ms.lpq.contains_line(cmd_line)


@given(events)
@settings(max_examples=60, deadline=None)
def test_epoch_counter_monotone(spec):
    ms, _ = replay(spec)
    reads = sum(1 for op, _ in spec if op == "read")
    assert ms.stats["epochs"] == reads // ms.config.slh.epoch_reads
