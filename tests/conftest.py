"""Shared test configuration.

Every test gets a private on-disk result store: experiment runs made
by one test must never be served (stale) to another, and test runs
must not litter the repository's ``.repro-results/``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "repro-store"))
