#!/usr/bin/env python
"""Simulator-invariant static analysis — CLI front door.

Usage (from the repo root, with ``PYTHONPATH=src``)::

    python tools/lint.py                  # report findings
    python tools/lint.py --check         # CI gate: nonzero on new findings
    python tools/lint.py --json          # machine-readable report
    python tools/lint.py --write-registry  # regenerate stat_keys.py
    python tools/lint.py --update-baseline # grandfather current findings

The same engine is exposed as ``python -m repro lint``.  Rule
catalogue, waiver syntax, and the baseline workflow: docs/linting.md.
"""

import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.analysislint.runner import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
