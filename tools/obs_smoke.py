"""CI smoke test for the observability stack (docs/observability.md).

Runs one tiny sweep through ``repro.cli`` with ``--metrics-port 0``, then
— in the same process, while the CLI's registry is still reachable from
the written snapshot — starts a snapshot-serving endpoint and asserts
the full acceptance path:

1. ``repro sweep --metrics-port`` completes and writes
   ``<store>/metrics/latest.json``;
2. ``GET /metrics`` returns Prometheus text exposition that
   :func:`repro.obs.exporters.parse_exposition` accepts, containing the
   sweep job counters and the store read/write counters;
3. ``GET /healthz`` answers ``status: ok``;
4. ``GET /progress.json`` reflects the finished sweep.

Everything runs in-process (the endpoint on its daemon thread, probed
with urllib), so there are no background processes to orchestrate or
race against.  Exits non-zero with a message on the first failed
assertion.

Usage::

    PYTHONPATH=src python tools/obs_smoke.py [--keep DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import urllib.request


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        if response.status != 200:
            raise SystemExit(f"obs_smoke: GET {url} -> {response.status}")
        return response.read().decode("utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="store root to use (kept afterwards); "
                             "default: a fresh temp dir")
    args = parser.parse_args(argv)

    root = args.keep or tempfile.mkdtemp(prefix="repro-obs-smoke-")
    os.environ["REPRO_STORE_DIR"] = root

    from repro.cli import main as repro_main
    from repro.obs import exporters
    from repro.obs.paths import metrics_dir
    from repro.obs.server import ObsServer

    rc = repro_main([
        "sweep", "-b", "milc", "tonto", "-c", "NP", "PS",
        "-n", "2500", "--jobs", "2", "--metrics-port", "0", "--no-progress",
    ])
    if rc != 0:
        raise SystemExit(f"obs_smoke: repro sweep exited {rc}")

    snapshot_path = os.path.join(metrics_dir(), "latest.json")
    if not os.path.isfile(snapshot_path):
        raise SystemExit(f"obs_smoke: no snapshot at {snapshot_path}")

    server = ObsServer(snapshot_dir=metrics_dir()).start()
    try:
        text = fetch(server.url + "/metrics")
        parsed = exporters.parse_exposition(text)  # raises if malformed
        names = {name for name, _ in parsed}
        for required in ("repro_sweep_jobs_total", "repro_store_reads_total",
                         "repro_store_writes_total",
                         "repro_sweep_job_seconds_count"):
            if required not in names:
                raise SystemExit(
                    f"obs_smoke: {required} missing from /metrics "
                    f"(got {sorted(names)})"
                )
        jobs = sum(value for (name, _), value in parsed.items()
                   if name == "repro_sweep_jobs_total")
        if jobs != 4:
            raise SystemExit(f"obs_smoke: expected 4 sweep jobs, saw {jobs}")

        health = json.loads(fetch(server.url + "/healthz"))
        if health.get("status") != "ok":
            raise SystemExit(f"obs_smoke: /healthz said {health}")

        progress = json.loads(fetch(server.url + "/progress.json"))
        if not (progress.get("finished") and progress.get("done") == 4):
            raise SystemExit(f"obs_smoke: bad /progress.json: {progress}")
    finally:
        server.close()

    print(f"obs_smoke: OK ({len(parsed)} samples, snapshot {snapshot_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
