"""CI smoke test for the observability stack (docs/observability.md).

Runs one tiny sweep through ``repro.cli`` with ``--metrics-port 0``, then
— in the same process, while the CLI's registry is still reachable from
the written snapshot — starts a snapshot-serving endpoint and asserts
the full acceptance path:

1. ``repro sweep --metrics-port`` completes and writes
   ``<store>/metrics/latest.json`` and ``<store>/spans/latest.json``;
2. ``GET /metrics`` returns Prometheus text exposition that
   :func:`repro.obs.exporters.parse_exposition` accepts, containing the
   sweep job counters and the store read/write counters;
3. ``GET /healthz`` answers ``status: ok`` and states the wire
   ``protocol`` version and the ``obs`` span-plane block;
4. ``GET /progress.json`` reflects the finished sweep;
5. ``GET /events`` on a live server delivers real SSE frames over the
   socket — the ``hello`` handshake plus at least one ``progress`` and
   one ``span`` event;
6. ``repro obs trace export`` renders the sweep's span snapshot into
   Chrome trace-event JSON that passes a minimal Perfetto schema check
   (written under the store root, uploaded as a CI artifact).

Everything runs in-process (the endpoint on its daemon thread, probed
with urllib), so there are no background processes to orchestrate or
race against.  Exits non-zero with a message on the first failed
assertion.

Usage::

    PYTHONPATH=src python tools/obs_smoke.py [--keep DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import urllib.request


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        if response.status != 200:
            raise SystemExit(f"obs_smoke: GET {url} -> {response.status}")
        return response.read().decode("utf-8")


def read_sse_frames(response, want: int):
    """Parse ``want`` SSE frames off a live ``/events`` response."""
    frames, kind, data = [], None, []
    while len(frames) < want:
        line = response.readline().decode("utf-8").rstrip("\n")
        if line.startswith(":"):
            continue  # keepalive comment
        if line.startswith("event:"):
            kind = line.split(":", 1)[1].strip()
        elif line.startswith("data:"):
            data.append(line.split(":", 1)[1].strip())
        elif line == "" and (kind or data):
            frames.append((kind, json.loads("\n".join(data))))
            kind, data = None, []
    return frames


def check_sse(root: str) -> None:
    """Consume real SSE events from a live server over the socket."""
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.progress import SweepProgress
    from repro.obs.server import ObsServer
    from repro.obs.spans import SpanCollector

    progress = SweepProgress(total=2)
    collector = SpanCollector(enabled=True)
    server = ObsServer(
        registry=MetricsRegistry(enabled=True),
        progress=progress, spans=collector,
    ).start()
    try:
        response = urllib.request.urlopen(server.url + "/events", timeout=10)
        try:
            (hello_kind, hello), = read_sse_frames(response, 1)
            if hello_kind != "hello" or hello.get("progress", {}).get("total") != 2:
                raise SystemExit(f"obs_smoke: bad SSE hello: {hello}")
            progress.job_done("serial", seconds=0.1)
            collector.add("sweep.job", 1.0, 0.1, benchmark="milc")
            frames = dict(read_sse_frames(response, 2))
            if frames.get("progress", {}).get("done") != 1:
                raise SystemExit(f"obs_smoke: bad SSE progress: {frames}")
            if frames.get("span", {}).get("name") != "sweep.job":
                raise SystemExit(f"obs_smoke: bad SSE span: {frames}")
        finally:
            response.close()
    finally:
        server.close()


def check_trace_export(root: str, repro_main) -> str:
    """Export the sweep's span snapshot; validate the Perfetto schema."""
    from repro.obs.paths import spans_dir

    snapshot = os.path.join(spans_dir(), "latest.json")
    if not os.path.isfile(snapshot):
        raise SystemExit(f"obs_smoke: no span snapshot at {snapshot}")
    trace_path = os.path.join(root, "trace", "trace.json")
    os.makedirs(os.path.dirname(trace_path), exist_ok=True)
    rc = repro_main(["obs", "trace", "export",
                     "--input", snapshot, "-o", trace_path])
    if rc != 0:
        raise SystemExit(f"obs_smoke: obs trace export exited {rc}")
    with open(trace_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SystemExit(f"obs_smoke: {trace_path} has no traceEvents")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        raise SystemExit("obs_smoke: exported trace has no complete events")
    for event in events:
        if event.get("ph") not in ("X", "M"):
            raise SystemExit(f"obs_smoke: unexpected trace phase: {event}")
        if not isinstance(event.get("name"), str) or "pid" not in event:
            raise SystemExit(f"obs_smoke: malformed trace event: {event}")
        if event["ph"] == "X" and not (
            isinstance(event.get("ts"), int) and event["ts"] >= 0
            and isinstance(event.get("dur"), int) and event["dur"] >= 0
            and isinstance(event.get("tid"), int)
        ):
            raise SystemExit(f"obs_smoke: malformed span event: {event}")
    names = {event["name"] for event in spans}
    if "sweep.run_jobs" not in names or "sweep.job" not in names:
        raise SystemExit(f"obs_smoke: span names missing from trace: {names}")
    return trace_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="store root to use (kept afterwards); "
                             "default: a fresh temp dir")
    args = parser.parse_args(argv)

    root = args.keep or tempfile.mkdtemp(prefix="repro-obs-smoke-")
    os.environ["REPRO_STORE_DIR"] = root

    from repro.cli import main as repro_main
    from repro.obs import exporters
    from repro.obs.paths import metrics_dir
    from repro.obs.server import ObsServer

    rc = repro_main([
        "sweep", "-b", "milc", "tonto", "-c", "NP", "PS",
        "-n", "2500", "--jobs", "2", "--metrics-port", "0", "--no-progress",
    ])
    if rc != 0:
        raise SystemExit(f"obs_smoke: repro sweep exited {rc}")

    snapshot_path = os.path.join(metrics_dir(), "latest.json")
    if not os.path.isfile(snapshot_path):
        raise SystemExit(f"obs_smoke: no snapshot at {snapshot_path}")

    server = ObsServer(snapshot_dir=metrics_dir()).start()
    try:
        text = fetch(server.url + "/metrics")
        parsed = exporters.parse_exposition(text)  # raises if malformed
        names = {name for name, _ in parsed}
        for required in ("repro_sweep_jobs_total", "repro_store_reads_total",
                         "repro_store_writes_total",
                         "repro_sweep_job_seconds_count"):
            if required not in names:
                raise SystemExit(
                    f"obs_smoke: {required} missing from /metrics "
                    f"(got {sorted(names)})"
                )
        jobs = sum(value for (name, _), value in parsed.items()
                   if name == "repro_sweep_jobs_total")
        if jobs != 4:
            raise SystemExit(f"obs_smoke: expected 4 sweep jobs, saw {jobs}")

        health = json.loads(fetch(server.url + "/healthz"))
        if health.get("status") != "ok":
            raise SystemExit(f"obs_smoke: /healthz said {health}")
        if not isinstance(health.get("protocol"), int):
            raise SystemExit(f"obs_smoke: /healthz lacks protocol: {health}")
        if health.get("obs", {}).get("spans") not in ("enabled", "disabled"):
            raise SystemExit(f"obs_smoke: /healthz lacks obs block: {health}")

        progress = json.loads(fetch(server.url + "/progress.json"))
        if not (progress.get("finished") and progress.get("done") == 4):
            raise SystemExit(f"obs_smoke: bad /progress.json: {progress}")
    finally:
        server.close()

    check_sse(root)
    trace_path = check_trace_export(root, repro_main)

    print(f"obs_smoke: OK ({len(parsed)} samples, snapshot {snapshot_path}, "
          f"trace {trace_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
