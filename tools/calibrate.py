"""Calibration sweep: all benchmarks x {NP, PS, MS, PMS}.

Prints per-benchmark gains and suite averages next to the paper's
reported averages.  Used during development to tune workload profiles;
kept as a maintenance tool.
"""

import sys
import time

from repro import SUITES, generate_trace, get_profile, make_config, simulate

N_ACCESSES = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
SEED = 1

PAPER = {  # suite -> (MS vs NP, PMS vs NP, PMS vs PS)
    "spec2006fp": (14.6, 32.7, 10.2),
    "nas": (11.7, 24.2, 8.1),
    "commercial": (9.3, 15.1, 8.4),
}


def main() -> None:
    for suite, names in SUITES.items():
        sums = [0.0, 0.0, 0.0]
        print(f"== {suite} ==")
        for name in names:
            t0 = time.time()
            trace = generate_trace(get_profile(name).workload, N_ACCESSES, seed=SEED)
            rs = {c: simulate(make_config(c), trace) for c in ("NP", "PS", "MS", "PMS")}
            ms = rs["MS"].gain_vs(rs["NP"])
            pms = rs["PMS"].gain_vs(rs["NP"])
            vs_ps = rs["PMS"].gain_vs(rs["PS"])
            ps = rs["PS"].gain_vs(rs["NP"])
            sums[0] += ms
            sums[1] += pms
            sums[2] += vs_ps
            print(
                f"  {name:<11} PS:{ps:+6.1f}%  MS:{ms:+6.1f}%  PMS:{pms:+6.1f}%  "
                f"PMSvsPS:{vs_ps:+6.1f}%   ({time.time() - t0:.0f}s)"
            )
        n = len(names)
        p = PAPER[suite]
        print(
            f"  AVG          MS:{sums[0] / n:+6.1f}% (paper {p[0]:+.1f})  "
            f"PMS:{sums[1] / n:+6.1f}% (paper {p[1]:+.1f})  "
            f"PMSvsPS:{sums[2] / n:+6.1f}% (paper {p[2]:+.1f})"
        )


if __name__ == "__main__":
    main()
