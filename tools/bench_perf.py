"""Measure simulator throughput and gate main-loop perf regressions.

Runs one benchmark suite under the standard config set in both main-loop
modes (``event`` and ``reference``), reports simulated-MC-cycles per
wall-clock second, and writes a schema-versioned JSON report (see
:mod:`repro.perf`).  With ``--baseline`` it exits non-zero when the
event/reference speedup ratio fell more than ``--fail-threshold`` below
the baseline's — the ratio cancels host speed, so the gate is portable
across machines (CI runners included).

Usage::

    PYTHONPATH=src python tools/bench_perf.py --smoke \
        --baseline BENCH_PERF.json          # CI gate
    PYTHONPATH=src python tools/bench_perf.py --smoke \
        --output BENCH_PERF.json            # refresh the baseline
    PYTHONPATH=src python tools/bench_perf.py --suite spec2006fp \
        --accesses 20000                    # full fig5-scale measurement
"""

from __future__ import annotations

import argparse
import sys

from repro.perf import (
    DEFAULT_CONFIGS,
    DEFAULT_FAIL_THRESHOLD,
    compare_reports,
    load_report,
    measure_fast_vs_exact,
    measure_suite,
    write_report,
)
from repro.workloads.profiles import suite_benchmarks

#: Smoke-mode scale: a suite prefix at reduced trace length, sized so
#: the CI bench job finishes in a couple of minutes yet still exercises
#: every config and both loop modes.
SMOKE_BENCHMARKS = 3
SMOKE_ACCESSES = 4000


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--suite", default="spec2006fp")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"first {SMOKE_BENCHMARKS} benchmarks at "
        f"{SMOKE_ACCESSES} accesses (CI scale)",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=None,
        help="trace length (default: REPRO_TRACE_ACCESSES or 20000; "
        "--smoke overrides to its own default unless set here)",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated subset of the suite (overrides --smoke's)",
    )
    parser.add_argument(
        "--configs", default=",".join(DEFAULT_CONFIGS),
        help="comma-separated config names",
    )
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--baseline", default=None,
        help="compare against this report; exit 1 on regression",
    )
    parser.add_argument(
        "--fail-threshold", type=float, default=DEFAULT_FAIL_THRESHOLD,
        help="allowed fractional drop of the event/reference speedup "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--no-fast",
        action="store_true",
        help="skip the fast-vs-exact analytic-model measurement "
        "(docs/fidelity.md)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    benchmarks = None
    accesses = args.accesses
    if args.smoke:
        benchmarks = list(suite_benchmarks(args.suite))[:SMOKE_BENCHMARKS]
        if accesses is None:
            accesses = SMOKE_ACCESSES
    if args.benchmarks:
        benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    configs = [c.strip() for c in args.configs.split(",") if c.strip()]

    report = measure_suite(
        args.suite,
        configs=configs,
        accesses=accesses,
        benchmarks=benchmarks,
        threads=args.threads,
        seed=args.seed,
    )
    for mode, m in sorted(report["modes"].items()):
        print(
            f"{mode:>10}: {m['cycles']:>12,} cycles in "
            f"{m['wall_seconds']:8.2f}s  -> {m['cycles_per_second']:>10,} cyc/s"
        )
    ratio = report.get("speedup_vs_reference")
    if ratio is not None:
        print(f"{'speedup':>10}: {ratio:.3f}x (event vs reference)")

    if not args.no_fast:
        fast = measure_fast_vs_exact(
            args.suite,
            configs=configs,
            accesses=accesses,
            benchmarks=benchmarks,
            threads=args.threads,
            seed=args.seed,
        )
        report["fast_vs_exact"] = fast
        bars = ", ".join(
            f"{metric} ±{bound * 100:.1f}%"
            for metric, bound in sorted(fast["error_bars"].items())
        )
        print(
            f"{'fast':>10}: {fast['speedup']:.1f}x over exact "
            f"({fast['jobs']} jobs, {fast['fast_wall_seconds']:.2f}s vs "
            f"{fast['exact_wall_seconds']:.2f}s); error bars: {bars}"
        )

    if args.output:
        write_report(args.output, report)
        print(f"wrote {args.output}")

    if args.baseline:
        baseline = load_report(args.baseline)
        problems = compare_reports(report, baseline, args.fail_threshold)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(
            f"baseline ok: {ratio:.3f}x vs "
            f"{baseline.get('speedup_vs_reference'):.3f}x "
            f"(threshold {args.fail_threshold:.0%})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
