"""CI smoke test for the sweep fabric (docs/fabric.md).

Stands up a real two-worker localhost fleet as *subprocesses* — one
``repro fabric serve`` coordinator and two ``repro fabric work`` agents
with separate local stores — submits a small real grid through the
``repro fabric submit`` CLI, polls the coordinator's ``/progress.json``
until the sweep finishes, and then asserts the acceptance criteria
end to end:

1. the sweep completes with every job executed by a worker (fresh
   stores, so nothing dedupes);
2. the coordinator's store holds results **byte-identical** to a serial
   ``run_suite`` of the same grid into a fresh store — same SHA-256
   job-key filenames, equal JSON payloads (the store writes
   canonically, so file bytes compare);
3. the fleet ``/metrics`` endpoint reports per-worker job counts that
   sum to the grid size;
4. ``/healthz`` answers with coordinator role + worker liveness.

Exits non-zero with a message on the first failed assertion.

Usage::

    PYTHONPATH=src python tools/fabric_smoke.py [--keep DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request

BENCHMARKS = ["milc", "tonto"]
CONFIGS = ["NP", "PS"]
ACCESSES = 2000
SEED = 1
GRID = len(BENCHMARKS) * len(CONFIGS)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
SRC = os.path.join(REPO_ROOT, "src")


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        if response.status != 200:
            raise SystemExit(f"fabric_smoke: GET {url} -> {response.status}")
        return response.read().decode("utf-8")


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(args, store_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_STORE_DIR"] = store_dir
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.2)
    raise SystemExit(f"fabric_smoke: timed out waiting for {message}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="artifact root to use (kept afterwards); "
                             "default: a fresh temp dir")
    args = parser.parse_args(argv)

    root = args.keep or tempfile.mkdtemp(prefix="repro-fabric-smoke-")
    os.makedirs(root, exist_ok=True)
    coord_store = os.path.join(root, "coordinator-store")
    serial_store = os.path.join(root, "serial-store")
    port = free_port()
    url = f"http://127.0.0.1:{port}"

    coordinator = spawn(
        ["fabric", "serve", "--port", str(port), "--lease-seconds", "30"],
        coord_store,
    )
    workers = []
    processes = [coordinator]
    try:
        def coordinator_up():
            if coordinator.poll() is not None:
                raise SystemExit(
                    "fabric_smoke: coordinator exited early:\n"
                    + coordinator.stdout.read()
                )
            try:
                return json.loads(fetch(url + "/healthz"))["status"] == "ok"
            except OSError:
                return False

        wait_for(coordinator_up, 30, "the coordinator to come up")

        workers = [
            spawn(
                ["fabric", "work", "--coordinator", url, "--id", f"w{n}",
                 "--capacity", "1", "--poll", "0.2", "--drain-idle", "3"],
                os.path.join(root, f"worker{n}-store"),
            )
            for n in (1, 2)
        ]
        processes += workers

        submit = spawn(
            ["fabric", "submit", "--coordinator", url,
             "-b", *BENCHMARKS, "-c", *CONFIGS,
             "-n", str(ACCESSES), "--seed", str(SEED)],
            os.path.join(root, "client-store"),
        )
        out, _ = submit.communicate(timeout=60)
        if submit.returncode != 0:
            raise SystemExit(f"fabric_smoke: submit failed:\n{out}")
        print(out.strip())
        if f"{GRID} jobs" not in out or f"{GRID} queued" not in out:
            raise SystemExit(
                f"fabric_smoke: expected a fresh {GRID}-job submission, "
                f"got:\n{out}"
            )

        def sweep_done():
            progress = json.loads(fetch(url + "/progress.json"))
            return progress["done"] == GRID and progress["finished"]

        wait_for(sweep_done, 180, "the fleet to finish the grid")

        # -- per-worker /metrics accounting ----------------------------
        exposition = fetch(url + "/metrics")
        per_worker = {}
        for line in exposition.splitlines():
            if line.startswith("repro_fabric_jobs_total{"):
                labels, value = line.rsplit(" ", 1)
                if 'outcome="executed"' in labels or 'outcome="store"' in labels:
                    worker = labels.split('worker="', 1)[1].split('"', 1)[0]
                    per_worker[worker] = per_worker.get(worker, 0) + int(
                        float(value)
                    )
        if sum(per_worker.values()) != GRID:
            raise SystemExit(
                f"fabric_smoke: per-worker job counts {per_worker} do not "
                f"sum to the grid size {GRID}"
            )
        print(f"per-worker jobs: {per_worker} (sum = {GRID})")

        health = json.loads(fetch(url + "/healthz"))
        if health.get("role") != "fabric-coordinator" or not health.get("workers"):
            raise SystemExit(f"fabric_smoke: bad /healthz: {health}")
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()

    # -- byte-identical store vs. the serial path ----------------------
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_STORE_DIR"] = serial_store
    serial = subprocess.run(
        [sys.executable, "-c",
         "from repro.experiments.runner import run_suite; "
         f"run_suite({BENCHMARKS!r}, {CONFIGS!r}, accesses={ACCESSES}, "
         f"seed={SEED})"],
        env=env, cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if serial.returncode != 0:
        raise SystemExit(f"fabric_smoke: serial run failed:\n{serial.stderr}")

    fabric_entries = sorted(
        name for name in os.listdir(coord_store)
        if name.endswith(".json") and not name.startswith(".")
    )
    serial_entries = sorted(
        name for name in os.listdir(serial_store)
        if name.endswith(".json") and not name.startswith(".")
    )
    if fabric_entries != serial_entries:
        raise SystemExit(
            "fabric_smoke: store keys differ\n"
            f"  fabric: {fabric_entries}\n  serial: {serial_entries}"
        )
    if len(fabric_entries) != GRID:
        raise SystemExit(
            f"fabric_smoke: expected {GRID} store entries, "
            f"got {len(fabric_entries)}"
        )
    for name in fabric_entries:
        with open(os.path.join(coord_store, name), "rb") as handle:
            fabric_bytes = handle.read()
        with open(os.path.join(serial_store, name), "rb") as handle:
            serial_bytes = handle.read()
        if fabric_bytes != serial_bytes:
            raise SystemExit(f"fabric_smoke: payload mismatch in {name}")

    print(f"fabric_smoke: OK ({GRID} jobs over 2 workers; "
          f"{len(fabric_entries)} store entries byte-identical to serial)")
    if not args.keep:
        shutil.rmtree(root, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
