"""Execute the docs' fenced python snippets and check cross-file links.

Every ```` ```python ```` fence in README.md and docs/*.md is executed
against the installed package (each snippet in a fresh namespace, in a
throwaway working directory, with a throwaway result store), and every
relative markdown link is checked to point at a file that exists.  CI
runs this so the guides cannot rot.

Conventions:

* A fence is skipped when one of the three lines above it contains the
  marker ``<!-- docs-check: skip -->`` (used for illustrative
  fragments that are not self-contained programs).
* ``REPRO_TRACE_ACCESSES`` defaults to 2000 here, so snippets that
  lean on the environment default stay fast; snippets that pass an
  explicit trace length keep it.

Usage: ``PYTHONPATH=src python tools/check_docs.py [files...]``
(defaults to README.md and docs/*.md).
"""

from __future__ import annotations

import glob
import os
import re
import sys
import tempfile
import textwrap
import traceback
from typing import List, Optional, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_MARK = "docs-check: skip"
FENCE_OPEN = re.compile(r"^```+\s*python\s*$")
FENCE_CLOSE = re.compile(r"^```+\s*$")
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def extract_snippets(text: str) -> List[Tuple[int, str]]:
    """``(first_code_line, dedented_code)`` for each executable fence."""
    lines = text.splitlines()
    snippets: List[Tuple[int, str]] = []
    i = 0
    while i < len(lines):
        if not FENCE_OPEN.match(lines[i].strip()):
            i += 1
            continue
        skip = any(
            SKIP_MARK in lines[j] for j in range(max(0, i - 3), i)
        )
        start = i + 1
        body: List[str] = []
        i += 1
        while i < len(lines) and not FENCE_CLOSE.match(lines[i].strip()):
            body.append(lines[i])
            i += 1
        i += 1  # closing fence
        if not skip:
            snippets.append((start + 1, textwrap.dedent("\n".join(body))))
    return snippets


HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def anchors_in(text: str) -> set:
    """GitHub-style anchor slugs for every heading in markdown text."""
    anchors = set()
    for line in text.splitlines():
        match = HEADING.match(line)
        if not match:
            continue
        title = re.sub(r"[`*_]", "", match.group(1).strip())
        slug = re.sub(r"[^\w\- ]", "", title.lower())
        anchors.add(re.sub(r" ", "-", slug))
    return anchors


def heading_anchors(markdown_path: str) -> set:
    with open(markdown_path, "r", encoding="utf-8") as handle:
        return anchors_in(handle.read())


def check_links(path: str, text: str) -> List[str]:
    """Broken relative links (dead files *or* dead anchors)."""
    errors = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, line in enumerate(text.splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if not file_part:
                # same-file fragment: resolve against the text in hand
                if anchor and anchor.lower() not in anchors_in(text):
                    errors.append(
                        f"{path}:{lineno}: dead anchor -> {target} "
                        f"(no such heading in this file)"
                    )
                continue
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                errors.append(f"{path}:{lineno}: broken link -> {target}")
                continue
            if anchor and resolved.endswith(".md"):
                if anchor.lower() not in heading_anchors(resolved):
                    errors.append(
                        f"{path}:{lineno}: dead anchor -> {target} "
                        f"(no such heading in {os.path.relpath(resolved, ROOT)})"
                    )
    return errors


def run_snippet(path: str, lineno: int, code: str, workdir: str) -> Optional[str]:
    """Execute one snippet; returns an error description or None."""
    namespace = {"__name__": "__docs_check__"}
    cwd = os.getcwd()
    os.chdir(workdir)
    try:
        exec(compile(code, f"{path}:{lineno}", "exec"), namespace)
    except Exception:
        return f"{path}:{lineno}: snippet raised\n{traceback.format_exc()}"
    finally:
        os.chdir(cwd)
    return None


def default_files() -> List[str]:
    return [os.path.join(ROOT, "README.md")] + sorted(
        glob.glob(os.path.join(ROOT, "docs", "*.md"))
    )


def main(argv: Optional[List[str]] = None) -> int:
    files = (argv or sys.argv[1:]) or default_files()
    os.environ.setdefault("REPRO_TRACE_ACCESSES", "2000")
    sys.path.insert(0, os.path.join(ROOT, "src"))

    failures: List[str] = []
    snippet_count = 0
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as workdir:
        # Snippets get a throwaway store so doc runs never pollute (or
        # get served stale results from) the repository's store — even
        # when the developer has REPRO_STORE_DIR exported.
        os.environ["REPRO_STORE_DIR"] = os.path.join(workdir, "store")
        for path in files:
            rel = os.path.relpath(path, ROOT)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            failures.extend(check_links(path, text))
            for lineno, code in extract_snippets(text):
                snippet_count += 1
                error = run_snippet(rel, lineno, code, workdir)
                if error is None:
                    print(f"ok   {rel}:{lineno}")
                else:
                    print(f"FAIL {rel}:{lineno}")
                    failures.append(error)
    if failures:
        print(f"\n{len(failures)} problem(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\n{len(files)} files, {snippet_count} snippets executed, "
          f"all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
