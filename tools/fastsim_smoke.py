"""CI smoke test for the two-fidelity core (docs/fidelity.md).

Runs one tiny grid end to end at ``--fidelity auto`` — first through
``repro.cli`` (the user-facing path), then through
:func:`repro.fastsim.run_fidelity_sweep` in-process against the same
store — and asserts the acceptance contract:

1. ``repro sweep --fidelity auto`` exits 0;
2. the sweep produced a calibration record (error distribution from
   the exact validation sample);
3. every fast result carries the record's per-metric error bars, both
   in memory and round-tripped through the on-disk store;
4. the advertised bound actually holds on every sampled exact point
   (re-measured here, not trusted from the record).

Exits non-zero with a message on the first failed assertion.

Usage::

    PYTHONPATH=src python tools/fastsim_smoke.py [--keep DIR]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

BENCHMARKS = ["milc", "cg"]
CONFIGS = ["NP", "PMS"]
ACCESSES = 2500
SEED = 1


def fail(message: str) -> "SystemExit":
    return SystemExit(f"fastsim_smoke: {message}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="store root to use (kept afterwards); "
                             "default: a fresh temp dir")
    args = parser.parse_args(argv)

    root = args.keep or tempfile.mkdtemp(prefix="repro-fastsim-smoke-")
    os.environ["REPRO_STORE_DIR"] = root

    from repro.cli import main as repro_main
    from repro.experiments.sweep import expand_grid
    from repro.fastsim import run_fidelity_sweep
    from repro.fastsim.gate import GATED_METRICS, relative_error

    rc = repro_main([
        "sweep", "-b", *BENCHMARKS, "-c", *CONFIGS,
        "-n", str(ACCESSES), "--seed", str(SEED),
        "--fidelity", "auto", "--no-progress",
    ])
    if rc != 0:
        raise fail(f"repro sweep --fidelity auto exited {rc}")

    jobs = expand_grid(BENCHMARKS, CONFIGS, accesses=ACCESSES, seed=SEED)
    outcome = run_fidelity_sweep(jobs, fidelity="auto")

    record = outcome.record
    if record is None:
        raise fail("auto sweep produced no calibration record")
    if record.samples < 1:
        raise fail("calibration record has no exact samples")
    print(f"fastsim_smoke: {record.summary()}")

    fast_results = [r for r in outcome.results if r.fidelity_tier == "fast"]
    if not fast_results:
        raise fail("auto sweep returned no fast-tier results")
    for result in fast_results:
        for metric in GATED_METRICS:
            if result.error_bar(metric) != record.bound(metric):
                raise fail(
                    f"{result.benchmark}/{result.config_name} lacks the "
                    f"calibrated {metric} error bar"
                )

    # Re-measure the bound on the validation sample instead of
    # trusting the record: rerun the validated cells at both tiers
    # (instant store hits) and compare.
    exact_by_cell = {
        (r.benchmark, r.config_name): r
        for r in outcome.results if r.fidelity_tier == "exact"
    }
    fast_outcome = run_fidelity_sweep(jobs, fidelity="fast")
    checked = 0
    for result in fast_outcome.results:
        exact = exact_by_cell.get((result.benchmark, result.config_name))
        if exact is None or result.fidelity_tier != "fast":
            continue
        for metric in GATED_METRICS:
            observed = relative_error(result, exact, metric)
            if observed > record.bound(metric):
                raise fail(
                    f"{metric} error {observed:.4f} exceeds advertised "
                    f"bound {record.bound(metric):.4f} on "
                    f"{result.benchmark}/{result.config_name}"
                )
        checked += 1
    if checked < 1:
        raise fail("no (fast, exact) pair available to re-check the bound")

    print(
        f"fastsim_smoke: ok — {len(fast_results)} fast result(s) carry "
        f"error bars, bound re-verified on {checked} exact sample(s), "
        f"{len(outcome.validated_indices)} validated / "
        f"{len(outcome.escalated_indices)} escalated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
