"""CI smoke test for the adversarial fuzzer (docs/scenarios.md).

Runs a seeded micro-fuzz end to end — once through ``repro fuzz`` (the
user-facing CLI path), once in-process against the same store — and
asserts the acceptance contract:

1. ``repro fuzz --budget N --seed S`` exits 0 and persists the report
   (worst-case configs + objective scores) under ``<store>/fuzz/``;
2. the search is reproducible: the in-process rerun of the same seed
   finds the identical worst cases with identical scores, served from
   the store instead of re-simulated;
3. the fuzzer actually found something adversarial: the best
   candidate's ASD useful-prefetch fraction is measurably below the
   synthetic-default workload's (the baseline the report carries);
4. every persisted worst case is a fully decodable ``wl:`` parameter
   set that passes ``StreamWorkload.validate()``.

Exits non-zero with a message on the first failed assertion.

Usage::

    PYTHONPATH=src python tools/fuzz_smoke.py [--keep DIR]
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

BUDGET = 8
SEED = 1
ACCESSES = 1500
ROUND_SIZE = 4
#: How far below the baseline the best useful-prefetch fraction must
#: land for the find to count as "measurable".
MARGIN = 0.05


def fail(message: str) -> "SystemExit":
    return SystemExit(f"fuzz_smoke: {message}")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="store root to use (kept afterwards); "
                             "default: a fresh temp dir")
    args = parser.parse_args(argv)

    root = args.keep or tempfile.mkdtemp(prefix="repro-fuzz-smoke-")
    os.environ["REPRO_STORE_DIR"] = root

    from repro.cli import main as repro_main
    from repro.scenarios.fuzzer import report_path, run_fuzz
    from repro.workloads.dynamic import resolve_workload

    rc = repro_main([
        "fuzz", "--budget", str(BUDGET), "--seed", str(SEED),
        "-n", str(ACCESSES), "--round-size", str(ROUND_SIZE),
    ])
    if rc != 0:
        raise fail(f"repro fuzz exited {rc}")

    persisted = report_path("waste", SEED)
    if not os.path.exists(persisted):
        raise fail(f"no report persisted at {persisted}")
    with open(persisted, "r", encoding="utf-8") as handle:
        on_disk = json.load(handle)
    if len(on_disk["results"]) < 1:
        raise fail("persisted report holds no worst cases")
    for row in on_disk["results"]:
        if "score" not in row:
            raise fail(f"persisted result {row.get('name')} has no score")
        resolve_workload(row["benchmark"]).validate()

    # Reproducibility: same seed in-process, served from the store.
    rerun = run_fuzz(budget=BUDGET, seed=SEED, objective="waste",
                     accesses=ACCESSES, round_size=ROUND_SIZE)
    if [r.to_dict() for r in rerun.results] != on_disk["results"]:
        raise fail("rerun with the same seed found different worst cases")
    if rerun.stats.executed_serial or rerun.stats.executed_parallel:
        raise fail(
            f"rerun re-simulated {rerun.stats.executed_serial + rerun.stats.executed_parallel} "
            "job(s) instead of reading the store"
        )

    baseline_upf = rerun.baseline.metrics["useful_prefetch_fraction"]
    found_upf = min(
        r.metrics["useful_prefetch_fraction"]
        for r in rerun.results
        if r.metrics.get("pb_inserts", 0) > 0
    )
    if found_upf > baseline_upf - MARGIN:
        raise fail(
            f"found useful-prefetch fraction {found_upf:.4f} is not "
            f"measurably below the synthetic-default baseline "
            f"{baseline_upf:.4f} (margin {MARGIN})"
        )

    print(
        f"fuzz_smoke: ok — {rerun.evaluated} candidates, worst case "
        f"{rerun.best.name} score {rerun.best.score:.4f}, useful-prefetch "
        f"fraction {found_upf:.4f} vs baseline {baseline_upf:.4f}, "
        f"report at {persisted}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
