#!/usr/bin/env python
"""Read-latency distribution analysis: where the prefetcher's time goes.

Compares the demand-read latency distribution at the memory controller
between PS and PMS on one benchmark.  The memory-side prefetcher's
entire effect is visible here: covered reads collapse into the lowest
latency buckets (Prefetch Buffer hits and in-flight merges) while the
remaining reads keep the DRAM-access profile.

Run:  python examples/latency_analysis.py [benchmark] [accesses]
"""

import sys

from repro import generate_trace, get_profile, make_config, simulate


def show_histogram(result, title):
    hist = result.read_latency_histogram("demand")
    total = sum(hist.values()) or 1
    print(f"\n{title}  (avg {result.avg_read_latency():.1f} MC cycles, "
          f"{total:.0f} demand reads)")
    for bucket, count in hist.items():
        share = count / total
        print(f"  [{bucket:>4}, {bucket * 2:>4})  {share * 100:5.1f}%  "
              f"{'#' * int(share * 60)}")


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "milc"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

    trace = generate_trace(get_profile(bench).workload, accesses, seed=1)
    ps = simulate(make_config("PS"), trace)
    pms = simulate(make_config("PMS"), trace)

    show_histogram(ps, f"{bench} under PS")
    show_histogram(pms, f"{bench} under PMS")

    fast_ps = sum(
        c for b, c in ps.read_latency_histogram("demand").items() if b < 8
    )
    fast_pms = sum(
        c for b, c in pms.read_latency_histogram("demand").items() if b < 8
    )
    print()
    print(f"demand reads answered in < 8 MC cycles: "
          f"PS {fast_ps:.0f} -> PMS {fast_pms:.0f}")
    print(f"PMS vs PS performance: {pms.gain_vs(ps):+.1f}%")


if __name__ == "__main__":
    main()
