#!/usr/bin/env python
"""Design-space exploration with the public API.

Sweeps the memory-side prefetcher's main design knobs on one workload —
Prefetch Buffer size, Stream Filter slots, prefetch degree, and the
scheduling policy — and prints a compact design table with speedups
over the no-prefetch baseline and the hardware cost of each point.

This is the workflow a practitioner would use to size the prefetcher
for a new memory controller.

Run:  python examples/design_space.py [benchmark]
"""

import sys
from dataclasses import replace

from repro import generate_trace, get_profile, make_config, simulate
from repro.analysis.hardware import estimate_cost
from repro.analysis.report import format_table


def run_point(trace, label, mutate):
    config = mutate(make_config("PMS"))
    result = simulate(config, trace)
    cost = estimate_cost(config.ms_prefetcher)
    return label, result, cost


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "milc"
    trace = generate_trace(get_profile(bench).workload, 12_000, seed=1)
    baseline = simulate(make_config("NP"), trace)

    points = []

    def pb(entries):
        def mutate(c):
            ms = replace(
                c.ms_prefetcher,
                buffer=replace(
                    c.ms_prefetcher.buffer,
                    entries=entries,
                    assoc=min(4, entries),
                ),
            )
            return c.derive(ms_prefetcher=ms)

        return mutate

    def slots(n):
        def mutate(c):
            ms = replace(
                c.ms_prefetcher,
                stream_filter=replace(c.ms_prefetcher.stream_filter, slots=n),
            )
            return c.derive(ms_prefetcher=ms)

        return mutate

    def degree(d):
        def mutate(c):
            return c.derive(ms_prefetcher=replace(c.ms_prefetcher, degree=d))

        return mutate

    def policy(k):
        def mutate(c):
            ms = replace(
                c.ms_prefetcher,
                scheduling=replace(c.ms_prefetcher.scheduling, fixed_policy=k),
            )
            return c.derive(ms_prefetcher=ms)

        return mutate

    points.append(run_point(trace, "default (16 PB, 8 SF, d1, adaptive)", lambda c: c))
    for entries in (8, 32):
        points.append(run_point(trace, f"PB {entries} lines", pb(entries)))
    for n in (4, 16):
        points.append(run_point(trace, f"SF {n} slots", slots(n)))
    for d in (2, 4):
        points.append(run_point(trace, f"degree {d}", degree(d)))
    for k in (1, 5):
        points.append(run_point(trace, f"fixed policy {k}", policy(k)))

    rows = []
    for label, result, cost in points:
        rows.append(
            [
                label,
                baseline.cycles / result.cycles,
                result.useful_prefetch_fraction * 100,
                cost.total_state_bytes,
            ]
        )
    print(
        format_table(
            ["design point", "speedup vs NP", "useful %", "state bytes"],
            rows,
            title=f"ASD design space on {bench}",
        )
    )


if __name__ == "__main__":
    main()
