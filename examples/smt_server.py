#!/usr/bin/env python
"""SMT server consolidation scenario (paper Section 5.2).

Runs two hardware threads on one core — a commercial OLTP thread next
to a streaming analytics thread, the classic consolidation mix — and
shows that the memory-side prefetcher keeps paying off under SMT
because its per-thread Stream Filters and Likelihood Tables keep the
two threads' locality separate, while the 2 KB Prefetch Buffer stays
shared (the paper's hardware-scaling argument against 64KB-table
designs).

Run:  python examples/smt_server.py [accesses]
"""

import sys

from repro import generate_trace, get_profile, make_config
from repro.analysis.hardware import estimate_cost
from repro.system.simulator import simulate


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000

    oltp = generate_trace(get_profile("tpcc").workload, accesses, seed=11)
    streaming = generate_trace(get_profile("milc").workload, accesses, seed=12)
    pair = [oltp, streaming]
    print(f"thread 0: tpcc ({len(oltp)} accesses)")
    print(f"thread 1: milc ({len(streaming)} accesses)")
    print()

    results = {}
    for name in ("NP", "PS", "MS", "PMS"):
        results[name] = simulate(make_config(name, threads=2), pair)
        r = results[name]
        print(f"{name:<4} {r.cycles:>9} MC cycles   combined IPC {r.ipc:.3f}")

    np_run = results["NP"]
    print()
    print("SMT performance gain over NP:")
    for name in ("PS", "MS", "PMS"):
        print(f"  {name:<4} {results[name].gain_vs(np_run):+6.1f}%")
    print(f"  PMS vs PS: {results['PMS'].gain_vs(results['PS']):+6.1f}%")

    one = estimate_cost(make_config("PMS", threads=1).ms_prefetcher, threads=1)
    two = estimate_cost(make_config("PMS", threads=2).ms_prefetcher, threads=2)
    print()
    print("hardware scaling (the paper's SMT argument):")
    print(f"  1 thread : {one.total_state_bytes:7.0f} bytes of prefetcher state")
    print(f"  2 threads: {two.total_state_bytes:7.0f} bytes "
          f"(+{(two.total_state_bits / one.total_state_bits - 1) * 100:.0f}% — "
          "only the small tracking tables replicate)")


if __name__ == "__main__":
    main()
