#!/usr/bin/env python
"""Quickstart: simulate one benchmark under the four configurations.

Builds a synthetic GemsFDTD trace, runs the paper's four system
configurations — NP (no prefetching), PS (processor-side only), MS
(memory-side ASD only), and PMS (both) — and prints the performance
gains plus the memory-side prefetcher's effectiveness metrics.

Run:  python examples/quickstart.py [benchmark] [accesses]
"""

import sys

from repro import generate_trace, get_profile, make_config, simulate


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "GemsFDTD"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 15_000

    profile = get_profile(bench)
    print(f"benchmark : {profile.name} ({profile.suite})")
    print(f"           {profile.description}")
    trace = generate_trace(profile.workload, accesses, seed=1)
    print(
        f"trace     : {len(trace)} accesses, {trace.unique_lines} unique "
        f"lines, {trace.write_fraction * 100:.0f}% writes"
    )
    print()

    results = {}
    for name in ("NP", "PS", "MS", "PMS"):
        results[name] = simulate(make_config(name), trace)
        r = results[name]
        print(
            f"{name:<4} {r.cycles:>9} MC cycles   IPC {r.ipc:.3f}   "
            f"DRAM reads {r.stats['dram.issued_reads']:.0f}"
        )

    np_run = results["NP"]
    print()
    print("performance gain over NP (paper Figure 5 style):")
    for name in ("PS", "MS", "PMS"):
        print(f"  {name:<4} {results[name].gain_vs(np_run):+6.1f}%")
    print(f"  PMS vs PS: {results['PMS'].gain_vs(results['PS']):+6.1f}%")

    pms = results["PMS"]
    covered = pms.pb_hits + pms.stats.get("mc.merged_responses", 0)
    reads = pms.stats.get("mc.reads_arrived", 1)
    print()
    print("memory-side prefetcher under PMS (paper Figure 13 style):")
    print(f"  useful prefetches : {pms.useful_prefetch_fraction * 100:5.1f}%")
    print(f"  coverage          : {covered / reads * 100:5.1f}%")
    print(f"  delayed commands  : {pms.delayed_regular_fraction * 100:5.2f}%")

    if pms.power and results["PS"].power:
        print()
        print("DRAM power/energy, PMS vs PS (paper Figure 8 style):")
        print(f"  power increase    : {pms.power_increase_vs(results['PS']):+5.2f}%")
        print(f"  energy reduction  : {pms.energy_reduction_vs(results['PS']):+5.2f}%")


if __name__ == "__main__":
    main()
