#!/usr/bin/env python
"""Explore Stream Length Histograms and the ASD prefetch decision.

Shows, for a chosen benchmark:

1. the exact SLH of the memory-controller-visible read stream, per
   epoch (the paper's Figures 2 and 3);
2. the 8-slot Stream Filter's approximation of the same histogram
   (Figure 16);
3. which stream positions k the ASD inequality `lht(k) < 2*lht(k+1)`
   would prefetch at, given that histogram — the decision table the
   prefetch generator evaluates in hardware.

Run:  python examples/slh_explorer.py [benchmark] [epoch_reads]
"""

import sys

from repro import get_profile
from repro.analysis.slh_accuracy import exact_slh, slh_rms_error
from repro.experiments.runner import get_trace
from repro.experiments.slh_figures import filter_slh, mc_read_stream


def bar(value: float, scale: int = 60) -> str:
    return "#" * int(value * scale)


def decide(bars):
    """Re-derive lht() from bars and apply inequality (5) per position."""
    lm = len(bars) - 1
    lht = [0.0] * (lm + 2)
    for i in range(lm, 0, -1):
        lht[i] = lht[i + 1] + bars[i]
    return [lht[k] < 2 * lht[k + 1] for k in range(1, lm)]


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "GemsFDTD"
    epoch = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    trace = get_trace(bench, 15_000)
    reads = mc_read_stream(trace)
    print(f"{bench}: {len(trace)} accesses -> {len(reads)} MC reads")

    epochs = [
        reads[start : start + epoch]
        for start in range(0, len(reads) - epoch + 1, epoch)
    ] or [reads]

    for index, window in enumerate(epochs[:4]):
        bars = exact_slh(window)
        decisions = decide(bars)
        print(f"\nepoch {index} ({len(window)} reads):")
        for i in range(1, len(bars) - 1):
            marker = "prefetch" if decisions[i - 1] else "stop"
            print(
                f"  len {i:>2}  {bars[i] * 100:5.1f}%  "
                f"{bar(bars[i]):<40} k={i}: {marker}"
            )

    window = epochs[min(1, len(epochs) - 1)]
    approx = filter_slh(window)
    actual = exact_slh(window)
    print(
        f"\nStream Filter approximation (Figure 16): rms error "
        f"{slh_rms_error(approx, actual) * 100:.2f} points"
    )
    print(f"{'len':>4} {'actual':>8} {'approx':>8}")
    for i in range(1, 17):
        print(f"{i:>4} {actual[i] * 100:7.1f}% {approx[i] * 100:7.1f}%")


if __name__ == "__main__":
    main()
