#!/usr/bin/env python
"""The paper's headline scenario: prefetching low-spatial-locality
commercial workloads.

Commercial server workloads (OLTP, web, database) were traditionally
considered un-prefetchable: most of their streams are one or two cache
lines long.  This example reproduces the paper's Figure 7 argument on
the five commercial benchmarks:

* the Power5-style processor-side prefetcher (PS) — which needs two
  misses to engage and then overshoots — gains little;
* the memory-side ASD prefetcher (MS) — which can prefetch the second
  line of a two-line stream and knows when to stop — beats it;
* together (PMS) they deliver the paper's combined gains.

Run:  python examples/commercial_workloads.py [accesses]
"""

import sys

from repro import generate_trace, get_profile, make_config, simulate, suite_benchmarks
from repro.analysis.report import format_table


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000

    rows = []
    sums = [0.0, 0.0, 0.0]
    for bench in suite_benchmarks("commercial"):
        trace = generate_trace(get_profile(bench).workload, accesses, seed=1)
        runs = {
            name: simulate(make_config(name), trace)
            for name in ("NP", "PS", "MS", "PMS")
        }
        ps = runs["PS"].gain_vs(runs["NP"])
        ms = runs["MS"].gain_vs(runs["NP"])
        pms = runs["PMS"].gain_vs(runs["NP"])
        sums[0] += ps
        sums[1] += ms
        sums[2] += pms
        rows.append([bench, ps, ms, pms])
        print(f"{bench}: PS {ps:+.1f}%  MS {ms:+.1f}%  PMS {pms:+.1f}%")

    n = len(rows)
    rows.append(["Average", sums[0] / n, sums[1] / n, sums[2] / n])
    print()
    print(
        format_table(
            ["benchmark", "PS vs NP %", "MS vs NP %", "PMS vs NP %"],
            rows,
            title="Commercial workloads (paper Figure 7; paper averages: "
            "MS +9.3%, PMS +15.1%)",
        )
    )
    print()
    if sums[1] > sums[0]:
        print(
            "=> memory-side ASD beats the processor-side prefetcher on "
            "these short-stream workloads — the paper's key claim."
        )


if __name__ == "__main__":
    main()
