"""The first-order trace-driven core model (single-threaded and SMT).

The core retires one instruction per CPU cycle while nothing blocks,
overlaps up to ``CoreConfig.mlp`` outstanding demand line misses, and
hosts the Power5-style processor-side prefetcher.  With several traces
(SMT), the threads round-robin the pipeline, sharing the caches and the
memory controller while the prefetcher state is replicated per thread —
matching the paper's SMT experiments.
"""

from repro.cpu.core import Core

__all__ = ["Core"]
