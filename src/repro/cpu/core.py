"""Trace-driven core with finite memory-level parallelism.

Per MC cycle the core receives ``cpu_ratio`` CPU cycles, split evenly
among hardware threads.  Each thread walks its trace: it consumes its
instruction gap, performs the access against the cache hierarchy, and —
on a miss to memory — sends a demand read to the memory controller,
continuing until ``mlp`` line misses are outstanding.  Store misses
allocate via write-validate and never block; dirty lines evicted from
the L3 become DRAM writes.

The processor-side prefetcher is driven from here: it observes demand
L1 misses (and hits on lines it installed itself) and emits prefetch
reads that the memory controller cannot distinguish from demand reads.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.cache.hierarchy import CacheHierarchy, Level
from repro.common.config import CoreConfig
from repro.common.stats import Stats
from repro.common.types import CommandKind, MemoryCommand, Provenance
from repro.controller.controller import MemoryController
from repro.prefetch.processor_side import ProcessorSidePrefetcher
from repro.telemetry.events import PrefetchDiscard
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.workloads.trace import Trace


class _ThreadContext:
    __slots__ = (
        "tid",
        "records",
        "idx",
        "gap_cpu",
        "stall_cpu",
        "pending",
        "retry_demand",
        "writebacks",
        "outstanding",
        "blocked_mem",
        "trace_done",
    )

    def __init__(self, tid: int, trace: Trace) -> None:
        self.tid = tid
        self.records = trace.records
        self.idx = 0
        self.gap_cpu = 0
        self.stall_cpu = 0  # cache-hit latency: consumes time, retires nothing
        self.pending = None  # (line, is_write) awaiting execution
        self.retry_demand: Optional[MemoryCommand] = None
        self.writebacks: Deque[int] = deque()
        self.outstanding: set = set()
        self.blocked_mem = False
        self.trace_done = False

    @property
    def finished(self) -> bool:
        return (
            self.trace_done
            and self.pending is None
            and self.retry_demand is None
            and not self.outstanding
            and not self.writebacks
        )


class Core:
    """All hardware threads of one chip plus the PS prefetcher."""

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: CacheHierarchy,
        ps: ProcessorSidePrefetcher,
        controller: MemoryController,
        traces: List[Trace],
        tracer: Optional[Tracer] = None,
    ) -> None:
        config.validate()
        if not traces:
            raise ValueError("need at least one trace")
        self.config = config
        self.hierarchy = hierarchy
        self.ps = ps
        self.controller = controller
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.contexts = [_ThreadContext(i, t) for i, t in enumerate(traces)]
        self.budget_per_thread = max(1, config.cpu_ratio // len(traces))
        # line -> contexts waiting for it (demand misses, incl. merges)
        self._waiters: Dict[int, List[_ThreadContext]] = {}
        # line -> to_l1 destination of an in-flight PS prefetch
        self._ps_inflight: Dict[int, bool] = {}
        self.retired_instructions = 0
        self.stats = Stats()
        # hot path: per-tick stall accounting adds straight into the
        # underlying counter mapping (see Stats.raw)
        self._stat_values = self.stats.raw()
        controller.on_read_complete = self._on_read_complete
        controller.core_depth_probe = self.outstanding_misses

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        # checked once per executed main-loop cycle: the _ThreadContext
        # fields are probed directly instead of through the `finished`
        # property (a bound-descriptor call per thread per cycle)
        for ctx in self.contexts:
            if not (
                ctx.trace_done
                and ctx.pending is None
                and ctx.retry_demand is None
                and not ctx.outstanding
                and not ctx.writebacks
            ):
                return False
        return True

    def outstanding_misses(self) -> int:
        """Demand line misses currently in flight across all threads."""
        return sum(len(ctx.outstanding) for ctx in self.contexts)

    def tick(self, now: int) -> None:
        for ctx in self.contexts:
            self._run_thread(ctx, self.budget_per_thread, now)

    # ------------------------------------------------------------------
    def _run_thread(self, ctx: _ThreadContext, budget: int, now: int) -> None:
        values = self._stat_values
        while budget > 0:
            if ctx.blocked_mem:
                values["stall_cycles_mem"] += budget
                return
            if ctx.writebacks and not self._flush_writebacks(ctx, now):
                values["stall_cycles_wb"] += budget
                return
            if ctx.retry_demand is not None:
                if not self._issue_demand(ctx, ctx.retry_demand, now):
                    values["stall_cycles_queue"] += budget
                    return
                ctx.retry_demand = None
                if ctx.blocked_mem:
                    return
                continue
            if ctx.stall_cpu > 0:
                take = min(ctx.stall_cpu, budget)
                ctx.stall_cpu -= take
                budget -= take
                continue
            if ctx.gap_cpu > 0:
                take = min(ctx.gap_cpu, budget)
                ctx.gap_cpu -= take
                budget -= take
                self.retired_instructions += take
                continue
            if ctx.pending is not None:
                budget -= 1
                self._execute_access(ctx, now)
                continue
            if ctx.idx >= len(ctx.records):
                ctx.trace_done = True
                return
            gap, line, is_write = ctx.records[ctx.idx]
            ctx.idx += 1
            ctx.gap_cpu += gap
            ctx.pending = (line, is_write)
            self.retired_instructions += 1  # the access itself

    # ------------------------------------------------------------------
    def _flush_writebacks(self, ctx: _ThreadContext, now: int) -> bool:
        """Push pending dirty-eviction writes to the MC; False = stalled."""
        while ctx.writebacks:
            line = ctx.writebacks[0]
            cmd = MemoryCommand(
                CommandKind.WRITE, line, thread=ctx.tid, arrival=now
            )
            if not self.controller.enqueue(cmd, now):
                return False
            ctx.writebacks.popleft()
        return True

    def _execute_access(self, ctx: _ThreadContext, now: int) -> None:
        line, is_write = ctx.pending
        if line in ctx.outstanding:
            # a second touch of a line already in flight: wait for it
            ctx.blocked_mem = True
            return
        ctx.pending = None

        result = self.hierarchy.access(line, is_write)
        ctx.writebacks.extend(result.writebacks)

        miss_to_memory = result.level is Level.MEMORY
        if miss_to_memory and not is_write:
            if line in self._ps_inflight or line in self._waiters:
                # merge with the in-flight fetch of the same line
                self._waiters.setdefault(line, []).append(ctx)
                ctx.outstanding.add(line)
                self.stats.bump("demand_merged")
                if len(ctx.outstanding) >= self.config.mlp:
                    ctx.blocked_mem = True
            else:
                cmd = MemoryCommand(
                    CommandKind.READ, line, thread=ctx.tid, arrival=now
                )
                if not self._issue_demand(ctx, cmd, now):
                    ctx.retry_demand = cmd
        elif not is_write:
            # cache hit: charge the level's latency as additional stall
            ctx.stall_cpu += max(0, result.latency_cpu - 1)
        # stores never stall the core beyond their 1 issue cycle

        self._drive_ps(ctx, line, result.level, now)

    def _issue_demand(self, ctx: _ThreadContext, cmd: MemoryCommand, now: int) -> bool:
        if not self.controller.enqueue(cmd, now):
            return False
        self._waiters.setdefault(cmd.line, []).append(ctx)
        ctx.outstanding.add(cmd.line)
        self.stats.bump("demand_issued")
        if len(ctx.outstanding) >= self.config.mlp:
            ctx.blocked_mem = True
        return True

    # ------------------------------------------------------------------
    def _drive_ps(self, ctx: _ThreadContext, line: int, level: Level, now: int) -> None:
        if not self.ps.enabled:
            return
        requests = self.ps.observe(line, l1_hit=level is Level.L1)
        for req in requests:
            if req.line < 0:
                continue
            if req.line in self._ps_inflight or req.line in self._waiters:
                self.stats.bump("ps_dropped_inflight")
                continue
            if self.hierarchy.cached_anywhere(req.line):
                self.stats.bump("ps_dropped_cached")
                continue
            cmd = MemoryCommand(
                CommandKind.READ,
                req.line,
                thread=ctx.tid,
                provenance=Provenance.PS_PREFETCH,
                arrival=now,
            )
            if self.controller.enqueue(cmd, now):
                self._ps_inflight[req.line] = req.to_l1
                self.stats.bump("ps_issued")
            else:
                self.stats.bump("ps_dropped_queue")
                if self.tracer.enabled:
                    self.tracer.emit(
                        PrefetchDiscard(
                            t=now, line=req.line, reason="ps_queue_full"
                        )
                    )

    # ------------------------------------------------------------------
    def _on_read_complete(self, cmd: MemoryCommand, now: int) -> None:
        line = cmd.line
        if cmd.provenance is Provenance.PS_PREFETCH:
            to_l1 = self._ps_inflight.pop(line, True)
            writebacks = self.hierarchy.fill_from_memory(line, to_l1=to_l1)
            self.ps.notify_fill(line, to_l1)
            self.stats.bump("ps_fills")
        else:
            writebacks = self.hierarchy.fill_from_memory(line, to_l1=True)
            self.stats.bump("demand_fills")
        if writebacks:
            self.contexts[cmd.thread].writebacks.extend(writebacks)
        for ctx in self._waiters.pop(line, ()):
            ctx.outstanding.discard(line)
            ctx.blocked_mem = False

    # ------------------------------------------------------------------
    # fast-forward support
    # ------------------------------------------------------------------
    def linear_horizon(self) -> Optional[int]:
        """MC ticks for which every thread's tick is provably *linear*.

        A linear tick burns hit-latency stall and/or instruction-gap
        budget (or accrues memory-blocked stall) without touching the
        caches, the controller, or the trace cursor, so its effects can
        be applied arithmetically by :meth:`consume_wait`.

        Returns ``None`` when the horizon is unbounded (every active
        thread is waiting on memory), ``0`` when the very next tick may
        perform an action and nothing may be skipped, and otherwise the
        number of upcoming ticks that are guaranteed linear.
        """
        budget = self.budget_per_thread
        horizon: Optional[int] = None
        for ctx in self.contexts:
            if ctx.blocked_mem or (
                ctx.trace_done
                and ctx.pending is None
                and ctx.retry_demand is None
                and not ctx.outstanding
                and not ctx.writebacks
            ):
                continue  # wakes only via a read completion (an event)
            if ctx.writebacks or ctx.retry_demand is not None:
                return 0  # next tick talks to the memory controller
            linear_cpu = ctx.stall_cpu + ctx.gap_cpu
            if linear_cpu == 0:
                if ctx.trace_done and ctx.pending is None:
                    continue  # drained thread: its tick is a no-op
                return 0  # next tick executes an access / fetches a record
            ticks = linear_cpu // budget
            if ticks == 0:
                return 0
            if horizon is None or ticks < horizon:
                horizon = ticks
        return horizon

    def consume_wait(self, ticks: int) -> None:
        """Apply ``ticks`` MC cycles of linear execution in one step.

        Exactly replicates what ``ticks`` per-cycle calls of
        :meth:`tick` would have done, given that
        :meth:`linear_horizon` returned at least ``ticks``: blocked
        threads accrue memory-stall statistics, running threads burn
        hit-latency stall first and then instruction gap (retiring one
        instruction per gap CPU cycle).
        """
        cpu = ticks * self.budget_per_thread
        values = self._stat_values
        for ctx in self.contexts:
            if ctx.finished:
                continue
            if ctx.blocked_mem:
                values["stall_cycles_mem"] += cpu
                continue
            take_stall = ctx.stall_cpu
            if take_stall:
                if take_stall > cpu:
                    take_stall = cpu
                ctx.stall_cpu -= take_stall
            take_gap = cpu - take_stall
            if take_gap and not (ctx.trace_done and ctx.pending is None):
                ctx.gap_cpu -= take_gap
                self.retired_instructions += take_gap

    def skippable_ticks(self) -> int:
        """MC cycles that can be bulk-skipped because every active thread
        is purely executing non-memory instructions.  0 = cannot skip."""
        min_gap = None
        for ctx in self.contexts:
            if ctx.finished:
                continue
            # a pending access is fine while its gap is still running:
            # the skip never reaches past the smallest remaining gap
            if (
                ctx.blocked_mem
                or ctx.writebacks
                or ctx.retry_demand is not None
                or ctx.outstanding
                or ctx.stall_cpu > 0
                or ctx.gap_cpu <= 0
            ):
                return 0
            if min_gap is None or ctx.gap_cpu < min_gap:
                min_gap = ctx.gap_cpu
        if min_gap is None:
            return 0
        return min_gap // self.budget_per_thread

    def consume_bulk(self, ticks: int) -> None:
        """Burn ``ticks`` MC cycles of pure instruction execution."""
        cpu = ticks * self.budget_per_thread
        for ctx in self.contexts:
            if ctx.finished:
                continue
            ctx.gap_cpu -= cpu
            self.retired_instructions += cpu
