"""repro — Adaptive Stream Detection memory-side prefetching.

A full-system, trace-driven reproduction of Hur & Lin, *"Memory
Prefetching Using Adaptive Stream Detection"* (MICRO 2006): the ASD
prefetcher and Adaptive Scheduling inside a Power5+-style memory
controller, together with every substrate the paper's evaluation needs
— a DDR2 DRAM model with power accounting, a three-level cache
hierarchy, reorder-queue schedulers, a Power5-style processor-side
prefetcher, a first-order core model, and synthetic workload profiles
for the three benchmark suites.

Quickstart::

    from repro import make_config, generate_trace, get_profile, simulate

    profile = get_profile("GemsFDTD")
    trace = generate_trace(profile.workload, n_accesses=20_000, seed=1)
    baseline = simulate(make_config("NP"), trace)
    pms = simulate(make_config("PMS"), trace)
    print(f"PMS vs NP: +{pms.gain_vs(baseline):.1f}%")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.common.config import (
    AdaptiveSchedulingConfig,
    CacheConfig,
    ControllerConfig,
    CoreConfig,
    DRAMConfig,
    DRAMPowerConfig,
    DRAMTimingConfig,
    HierarchyConfig,
    MemorySidePrefetcherConfig,
    PrefetchBufferConfig,
    ProcessorSidePrefetcherConfig,
    SLHConfig,
    StreamFilterConfig,
    SystemConfig,
)
from repro.common.types import (
    LINE_SIZE,
    CommandKind,
    Direction,
    MemoryCommand,
    Provenance,
)
from repro.prefetch import (
    AdaptiveScheduler,
    LikelihoodTables,
    MemorySidePrefetcher,
    PrefetchBuffer,
    ProcessorSidePrefetcher,
    StreamFilter,
    slh_bars,
)
from repro.system import RunResult, System, make_config, simulate
from repro.telemetry import (
    NULL_TRACER,
    EpochProbes,
    TelemetrySession,
    Tracer,
)
from repro.workloads import (
    BENCHMARKS,
    FOCUS_BENCHMARKS,
    SUITES,
    BenchmarkProfile,
    StreamWorkload,
    Trace,
    generate_trace,
    get_profile,
    suite_benchmarks,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveScheduler",
    "AdaptiveSchedulingConfig",
    "BENCHMARKS",
    "BenchmarkProfile",
    "CacheConfig",
    "CommandKind",
    "ControllerConfig",
    "CoreConfig",
    "Direction",
    "DRAMConfig",
    "DRAMPowerConfig",
    "DRAMTimingConfig",
    "EpochProbes",
    "FOCUS_BENCHMARKS",
    "HierarchyConfig",
    "LikelihoodTables",
    "LINE_SIZE",
    "NULL_TRACER",
    "MemoryCommand",
    "MemorySidePrefetcher",
    "MemorySidePrefetcherConfig",
    "PrefetchBuffer",
    "PrefetchBufferConfig",
    "ProcessorSidePrefetcher",
    "ProcessorSidePrefetcherConfig",
    "Provenance",
    "RunResult",
    "SLHConfig",
    "StreamFilter",
    "StreamFilterConfig",
    "StreamWorkload",
    "SUITES",
    "System",
    "SystemConfig",
    "TelemetrySession",
    "Trace",
    "Tracer",
    "generate_trace",
    "get_profile",
    "make_config",
    "simulate",
    "slh_bars",
    "suite_benchmarks",
]
