"""The evaluated system configurations.

Primary configurations (paper Section 5.2):

* ``NP``  — no prefetching anywhere (the stripped-down Power5+ baseline);
* ``PS``  — processor-side prefetching only (a typical Power5+);
* ``MS``  — the memory-side ASD prefetcher only;
* ``PMS`` — both (the paper's headline configuration).

Figure 11 ablation variants (all include the PS prefetcher, as the
figure's PMS context does):

* ``PMS_POLICY<k>`` — ASD with scheduling policy pinned to k in 1..5;
* ``PMS_NEXTLINE`` — next-line engine in the MC + adaptive scheduling;
* ``PMS_P5MC``     — P5-style engine in the MC + adaptive scheduling.

Extensions (described by the paper but not evaluated there):

* ``PMS_DEGREE<d>`` — multi-line prefetching via inequality (6);
* ``ASD_PS``        — ASD driving the controller with **no**
  processor-side prefetcher, the "apply ASD as the only prefetcher"
  future-work configuration;
* ``PS_ASD``        — the future-work idea taken literally: Adaptive
  Stream Detection *as* the processor-side prefetcher (no memory-side
  prefetcher), see :mod:`repro.prefetch.asd_processor_side`;
* ``PMS_ASDPS``     — ASD on both sides.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.common.config import SystemConfig

#: The paper's four primary configurations.
CONFIG_NAMES = ("NP", "PS", "MS", "PMS")

#: The Figure 11 bar order (first bar is plain PMS = ASD + adaptive).
ABLATION_CONFIGS = (
    "PMS",
    "PMS_POLICY1",
    "PMS_POLICY2",
    "PMS_POLICY3",
    "PMS_POLICY4",
    "PMS_POLICY5",
    "PMS_NEXTLINE",
    "PMS_P5MC",
)


def make_config(
    name: str,
    threads: int = 1,
    scheduler: str = "ahb",
    base: Optional[SystemConfig] = None,
) -> SystemConfig:
    """Build a named system configuration.

    ``threads`` > 1 replicates the per-thread prefetcher state (Stream
    Filter and LHTs) as the paper does for SMT, leaving the Prefetch
    Buffer size unchanged.  ``scheduler`` selects the reorder-queue
    scheduler for the Section 5.3 interaction study.
    """
    cfg = (base or SystemConfig()).derive(name=name, threads=threads)
    cfg = cfg.derive(controller=replace(cfg.controller, scheduler=scheduler))

    ms_on = replace(cfg.ms_prefetcher, enabled=True, engine="asd")
    ps_on = replace(cfg.ps_prefetcher, enabled=True)
    ms_off = replace(cfg.ms_prefetcher, enabled=False)
    ps_off = replace(cfg.ps_prefetcher, enabled=False)

    if name == "NP":
        return cfg.derive(ms_prefetcher=ms_off, ps_prefetcher=ps_off).validate()
    if name == "PS":
        return cfg.derive(ms_prefetcher=ms_off, ps_prefetcher=ps_on).validate()
    if name == "MS":
        return cfg.derive(ms_prefetcher=ms_on, ps_prefetcher=ps_off).validate()
    if name == "PMS":
        return cfg.derive(ms_prefetcher=ms_on, ps_prefetcher=ps_on).validate()
    if name == "ASD_PS":
        return cfg.derive(ms_prefetcher=ms_on, ps_prefetcher=ps_off).validate()
    if name == "PS_ASD":
        ps = replace(ps_on, engine="asd")
        return cfg.derive(ms_prefetcher=ms_off, ps_prefetcher=ps).validate()
    if name == "PMS_ASDPS":
        ps = replace(ps_on, engine="asd")
        return cfg.derive(ms_prefetcher=ms_on, ps_prefetcher=ps).validate()

    if name.startswith("PMS_POLICY"):
        policy = int(name[len("PMS_POLICY"):])
        ms = replace(
            ms_on,
            scheduling=replace(ms_on.scheduling, fixed_policy=policy),
        )
        return cfg.derive(ms_prefetcher=ms, ps_prefetcher=ps_on).validate()

    if name == "PMS_NEXTLINE":
        ms = replace(ms_on, engine="nextline")
        return cfg.derive(ms_prefetcher=ms, ps_prefetcher=ps_on).validate()

    if name == "PMS_P5MC":
        ms = replace(ms_on, engine="p5")
        return cfg.derive(ms_prefetcher=ms, ps_prefetcher=ps_on).validate()

    if name.startswith("PMS_DEGREE"):
        degree = int(name[len("PMS_DEGREE"):])
        ms = replace(ms_on, degree=degree)
        return cfg.derive(ms_prefetcher=ms, ps_prefetcher=ps_on).validate()

    raise ValueError(f"unknown configuration {name!r}")
