"""Full-system composition: configuration presets and the simulator.

:func:`~repro.system.presets.make_config` builds the paper's four
evaluated configurations — NP (no prefetching), PS (processor-side
only), MS (memory-side only), PMS (both) — plus the Figure 11 ablation
variants.  :class:`~repro.system.simulator.System` wires a config and a
set of traces into a runnable machine; :func:`~repro.system.simulator.
simulate` is the one-call entry point.
"""

from repro.system.presets import ABLATION_CONFIGS, CONFIG_NAMES, make_config
from repro.system.results import RunResult
from repro.system.simulator import (
    LOOP_MODES,
    System,
    default_loop_mode,
    resolve_loop_mode,
    simulate,
)

__all__ = [
    "ABLATION_CONFIGS",
    "CONFIG_NAMES",
    "LOOP_MODES",
    "RunResult",
    "System",
    "default_loop_mode",
    "make_config",
    "resolve_loop_mode",
    "simulate",
]
