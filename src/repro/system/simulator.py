"""The cycle-stepped full-system simulator.

One :class:`System` binds together the core(s), the cache hierarchy,
the processor-side prefetcher, the memory controller with its embedded
memory-side prefetcher, the DRAM device, and the DRAM power model, and
steps them in the MC (DDR bus) clock domain until every trace has been
consumed and the memory system has drained.

Two main-loop modes produce field-for-field identical
:class:`~repro.system.results.RunResult`\\ s:

* ``"event"`` (default) — event-driven: whenever the machine is in a
  *deterministic wait* (reorder queues empty, every thread blocked on
  memory or burning pure stall/instruction-gap cycles, and the
  CAQ/LPQ heads — if any — refused by DRAM bank/bus timing), the loop
  computes the next "interesting" cycle from ``min(next completion,
  DRAM issue-ready, next core event)`` and jumps there, applying the
  skipped cycles' accounting in bulk.  Waits and compute stretches
  cost O(1) instead of O(cycles).
* ``"reference"`` — the literal per-cycle tick, kept as the executable
  specification; the golden equality test and ``REPRO_LOOP=reference``
  pin optimized runs against it.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.controller.controller import MemoryController
from repro.cpu.core import Core
from repro.dram.device import DRAMDevice
from repro.dram.power import DRAMPowerModel
from repro.obs import bridge
from repro.obs import metrics as obs_metrics
from repro.prefetch.asd_processor_side import build_processor_side
from repro.prefetch.memory_side import MemorySidePrefetcher
from repro.system.results import RunResult
from repro.telemetry.probes import EpochProbes
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.workloads.trace import Trace

#: Hard cap so a mis-configured run fails loudly instead of spinning.
DEFAULT_MAX_CYCLES = 200_000_000

#: Recognised main-loop modes (see the module docstring).
LOOP_MODES = ("event", "reference")


def default_loop_mode() -> str:
    """The main-loop mode used when none is passed (env-overridable).

    ``REPRO_LOOP=reference`` forces every run onto the literal
    per-cycle loop — useful for CI golden checks and for bisecting a
    suspected fast-forward bug.
    """
    return os.environ.get("REPRO_LOOP", "event")


def resolve_loop_mode(loop: Optional[str]) -> str:
    """Apply the default for ``None`` and validate the mode name."""
    mode = default_loop_mode() if loop is None else loop
    if mode not in LOOP_MODES:
        raise ValueError(
            f"unknown loop mode {mode!r}; expected one of {LOOP_MODES}"
        )
    return mode


class System:
    """A fully wired simulated machine, runnable once.

    ``tracer`` (default: the disabled :data:`NULL_TRACER`) is threaded
    through every instrumented block; ``probes`` — an unbound
    :class:`EpochProbes` — is bound to this system at construction and
    samples per-epoch series while the run executes.
    """

    def __init__(
        self,
        config: SystemConfig,
        traces: Union[Trace, Sequence[Trace]],
        tracer: Optional[Tracer] = None,
        probes: Optional[EpochProbes] = None,
    ):
        if isinstance(traces, Trace):
            traces = [traces]
        traces = list(traces)
        config = config.derive(threads=len(traces)).validate()
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.probes = probes
        self.power_model = DRAMPowerModel(config.dram, config.dram_power)
        self.dram = DRAMDevice(
            config.dram, power=self.power_model, tracer=self.tracer
        )
        self.ms = MemorySidePrefetcher(
            config.ms_prefetcher, threads=len(traces), tracer=self.tracer
        )
        self.controller = MemoryController(
            config.controller,
            self.dram,
            self.ms,
            cpu_ratio=config.core.cpu_ratio,
            tracer=self.tracer,
        )
        self.hierarchy = CacheHierarchy(config.hierarchy)
        self.ps = build_processor_side(config.ps_prefetcher)
        self.core = Core(
            config.core,
            self.hierarchy,
            self.ps,
            self.controller,
            traces,
            tracer=self.tracer,
        )
        self.traces = traces
        self.now = 0
        self._ran = False
        #: main-loop instrumentation (kept out of RunResult.stats so
        #: that loop modes stay field-for-field comparable): executed
        #: ticks, fast-forward jumps, and cycles covered by jumps.
        self.loop_stats: Dict[str, int] = {
            "mode": "",
            "ticks_executed": 0,
            "jumps": 0,
            "cycles_skipped": 0,
        }
        if probes is not None:
            probes.bind(self)

    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        loop: Optional[str] = None,
    ) -> RunResult:
        """Simulate to completion and return the measured result.

        ``loop`` selects the main-loop mode (default:
        :func:`default_loop_mode`).  Both modes return identical
        results; ``"event"`` fast-forwards deterministic waits.
        """
        if self._ran:
            raise RuntimeError("a System instance runs exactly once")
        self._ran = True
        mode = resolve_loop_mode(loop)
        self.loop_stats["mode"] = mode
        if mode == "event":
            return self._run_event(max_cycles)
        return self._run_reference(max_cycles)

    def _cap_exceeded(self, ticks: int, max_cycles: int) -> RuntimeError:
        self.loop_stats["ticks_executed"] = ticks
        return RuntimeError(
            f"simulation exceeded {max_cycles} cycles; "
            "likely a deadlock or runaway configuration"
        )

    def _run_reference(self, max_cycles: int) -> RunResult:
        """The literal per-cycle loop: tick every MC cycle, no jumps."""
        controller = self.controller
        core = self.core
        controller_tick = controller.tick_reference
        core_tick = core.tick
        ticks = 0
        while not (core.done and controller.idle()):
            now = self.now
            controller_tick(now)
            core_tick(now)
            ticks += 1
            self.now = now + 1
            if now >= max_cycles:
                raise self._cap_exceeded(ticks, max_cycles)
        self.loop_stats["ticks_executed"] = ticks
        return self._collect()

    def _run_event(self, max_cycles: int) -> RunResult:
        """The event-driven loop: tick, then jump deterministic waits."""
        controller = self.controller
        core = self.core
        controller_tick = controller.tick
        core_tick = core.tick
        # dense-phase gate, inlined: while commands flow reorder->CAQ
        # the machine acts every cycle, so wait detection is skipped on
        # one deque truth-test and one length compare
        rq_items = controller._rq_items
        wq_items = controller._wq_items
        caq_items = controller._caq_items
        caq_depth = controller.caq.depth
        ticks = 0
        while not (core.done and controller.idle()):
            now = self.now
            controller_tick(now)
            core_tick(now)
            ticks += 1
            self.now = now + 1
            if now >= max_cycles:
                raise self._cap_exceeded(ticks, max_cycles)
            if (rq_items or wq_items) and len(caq_items) < caq_depth:
                continue
            skip, refused = self._deterministic_wait(max_cycles)
            if skip > 0:
                self._fast_forward(skip, refused)
                if self.now > max_cycles:
                    # a wait extended past the cap: fail exactly as
                    # the per-cycle loop would after ticking there
                    raise self._cap_exceeded(ticks, max_cycles)
        self.loop_stats["ticks_executed"] = ticks
        return self._collect()

    # ------------------------------------------------------------------
    # event-driven fast-forward
    # ------------------------------------------------------------------
    def _deterministic_wait(self, max_cycles: int) -> Tuple[int, object]:  # lint: no-integral
        # (pure query: shadows `now` locally, never advances the clock)
        """How many upcoming cycles are provably inert, if any.

        A cycle is *inert* when ticking through it would only advance
        time: the reorder->CAQ stage is frozen (reorder queues empty,
        or the FIFO CAQ full so nothing may move), every thread is
        blocked on memory or linearly burning stall/gap budget, no
        completion is due, and any pending CAQ/LPQ head is refused by
        DRAM bank/bus timing.  Returns ``(skip, refused)`` where
        ``skip`` may be 0 (do not jump) and ``refused`` is the command
        a per-cycle loop would have been retrying against DRAM each
        wait cycle (None when the wait holds no such head).

        The CAQ-full case is safe for the Adaptive Scheduling
        predicates: the reorder-dependent policies (1-3) all require an
        empty CAQ, so with the CAQ occupied the LPQ/CAQ choice depends
        only on queue lengths and arrival stamps — all frozen across
        the window.
        """
        controller = self.controller
        if (controller._rq_items or controller._wq_items) and len(
            controller._caq_items
        ) < controller.caq.depth:
            return 0, None
        horizon = self.core.linear_horizon()
        if horizon == 0:
            return 0, None
        now = self.now
        bound: Optional[int] = None  # absolute cycle of the next event
        completions = controller._completions
        if completions:
            bound = completions[0][0]
        sched_at, refused = controller.next_scheduler_event(now)
        if sched_at is not None:
            if sched_at <= now:
                return 0, None  # next tick may act (issue or PB hit)
            if bound is None or sched_at < bound:
                bound = sched_at
        if horizon is not None:
            core_at = now + horizon
            if bound is None or core_at < bound:
                bound = core_at
        if bound is None:
            # nothing queued, nothing in flight, nothing running: a
            # deadlocked or mis-wired machine — let the per-cycle path
            # walk into the max_cycles guard loudly
            return 0, None
        skip = bound - now
        if skip <= 0:
            return 0, None
        cap = max_cycles + 1 - now
        if skip > cap:
            skip = cap  # never silently sail past the cycle guard
        return skip, refused

    def _fast_forward(self, skip: int, refused) -> None:
        """Jump ``skip`` inert cycles, applying their accounting in bulk."""
        self.controller.bulk_tick(self.now, skip)
        if refused is not None:
            # a per-cycle loop would have probed DRAM each wait cycle:
            # lazily applying refresh deadlines along the way, and
            # counting the head as MS-delayed on the first refusal
            self.controller.note_wait_refusal(refused, self.now)
            self.dram.catch_up_refreshes(self.now + skip - 1)
        self.core.consume_wait(skip)
        self.now += skip
        stats = self.loop_stats
        stats["jumps"] += 1
        stats["cycles_skipped"] += skip

    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    def _collect(self) -> RunResult:
        stats = Stats()
        stats.merge(self.controller.stats, "mc.")
        stats.merge(self.dram.stats, "dram.")
        stats.merge(self.ms.stats, "ms.")
        engine_stats = getattr(self.ms.engine, "stats", None)
        if engine_stats is not None:
            stats.merge(engine_stats, "engine.")
        stats.merge(self.ms.buffer.stats, "pb.")
        stats.merge(self.ms.lpq.stats, "lpq.")
        stats.merge(self.ms.scheduler.stats, "sched.")
        stats.merge(self.hierarchy.stats, "mem.")
        stats.merge(self.hierarchy.l1.stats, "l1.")
        stats.merge(self.hierarchy.l2.stats, "l2.")
        stats.merge(self.hierarchy.l3.stats, "l3.")
        stats.merge(self.core.stats, "core.")
        stats.merge(self.ps.stats, "ps.")
        stats.set("sched.final_policy", self.ms.scheduler.policy)
        telemetry = None
        if self.tracer.enabled:
            telemetry = {"tracer": self.tracer.summary()}
            if self.probes is not None:
                telemetry["probes"] = self.probes.summary()
        result = RunResult(
            config_name=self.config.name,
            benchmark=self.traces[0].name,
            cycles=self.now,
            instructions=self.core.retired_instructions,
            cpu_ratio=self.config.core.cpu_ratio,
            stats=stats.as_dict(),
            power=self.power_model.finalize(self.now),
            telemetry=telemetry,
        )
        # Coarse per-run totals for the fleet-level metrics registry
        # (repro.obs) — one bridge call per completed run, never per
        # cycle, and a no-op unless metrics were explicitly enabled.
        registry = obs_metrics.default_registry()
        if registry.enabled:
            bridge.publish_run(registry, result, self.loop_stats)
            if self.tracer.enabled:
                bridge.publish_tracer(registry, self.tracer)
        return result


def simulate(
    config: SystemConfig,
    traces: Union[Trace, Sequence[Trace]],
    max_cycles: int = DEFAULT_MAX_CYCLES,
    tracer: Optional[Tracer] = None,
    probes: Optional[EpochProbes] = None,
    loop: Optional[str] = None,
) -> RunResult:
    """Build a :class:`System` from ``config`` and run it on ``traces``.

    ``tracer`` / ``probes`` switch on the telemetry subsystem for this
    run (see :mod:`repro.telemetry`); both default to off.  ``loop``
    selects the main-loop mode (``"event"`` / ``"reference"``, default
    :func:`default_loop_mode`); results are identical either way.
    """
    return System(config, traces, tracer=tracer, probes=probes).run(
        max_cycles=max_cycles, loop=loop
    )
