"""The cycle-stepped full-system simulator.

One :class:`System` binds together the core(s), the cache hierarchy,
the processor-side prefetcher, the memory controller with its embedded
memory-side prefetcher, the DRAM device, and the DRAM power model, and
steps them in the MC (DDR bus) clock domain until every trace has been
consumed and the memory system has drained.

A bulk fast-forward kicks in whenever the memory system is idle and all
threads are executing pure instruction gaps, so compute-bound phases
cost O(1) instead of O(cycles).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.cache.hierarchy import CacheHierarchy
from repro.controller.controller import MemoryController
from repro.cpu.core import Core
from repro.dram.device import DRAMDevice
from repro.dram.power import DRAMPowerModel
from repro.prefetch.asd_processor_side import build_processor_side
from repro.prefetch.memory_side import MemorySidePrefetcher
from repro.system.results import RunResult
from repro.telemetry.probes import EpochProbes
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.workloads.trace import Trace

#: Hard cap so a mis-configured run fails loudly instead of spinning.
DEFAULT_MAX_CYCLES = 200_000_000


class System:
    """A fully wired simulated machine, runnable once.

    ``tracer`` (default: the disabled :data:`NULL_TRACER`) is threaded
    through every instrumented block; ``probes`` — an unbound
    :class:`EpochProbes` — is bound to this system at construction and
    samples per-epoch series while the run executes.
    """

    def __init__(
        self,
        config: SystemConfig,
        traces: Union[Trace, Sequence[Trace]],
        tracer: Optional[Tracer] = None,
        probes: Optional[EpochProbes] = None,
    ):
        if isinstance(traces, Trace):
            traces = [traces]
        traces = list(traces)
        config = config.derive(threads=len(traces)).validate()
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.probes = probes
        self.power_model = DRAMPowerModel(config.dram, config.dram_power)
        self.dram = DRAMDevice(
            config.dram, power=self.power_model, tracer=self.tracer
        )
        self.ms = MemorySidePrefetcher(
            config.ms_prefetcher, threads=len(traces), tracer=self.tracer
        )
        self.controller = MemoryController(
            config.controller,
            self.dram,
            self.ms,
            cpu_ratio=config.core.cpu_ratio,
            tracer=self.tracer,
        )
        self.hierarchy = CacheHierarchy(config.hierarchy)
        self.ps = build_processor_side(config.ps_prefetcher)
        self.core = Core(
            config.core,
            self.hierarchy,
            self.ps,
            self.controller,
            traces,
            tracer=self.tracer,
        )
        self.traces = traces
        self.now = 0
        self._ran = False
        if probes is not None:
            probes.bind(self)

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES) -> RunResult:
        """Simulate to completion and return the measured result."""
        if self._ran:
            raise RuntimeError("a System instance runs exactly once")
        self._ran = True

        while not (self.core.done and self.controller.idle()):
            self.controller.tick(self.now)
            self.core.tick(self.now)
            self.now += 1
            if self.now > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles; "
                    "likely a deadlock or runaway configuration"
                )
            # bulk-skip pure-compute stretches while memory is idle
            if self.controller.idle():
                skip = self.core.skippable_ticks()
                if skip > 1:
                    self.core.consume_bulk(skip - 1)
                    self.now += skip - 1

        return self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> RunResult:
        stats = Stats()
        stats.merge(self.controller.stats, "mc.")
        stats.merge(self.dram.stats, "dram.")
        stats.merge(self.ms.stats, "ms.")
        engine_stats = getattr(self.ms.engine, "stats", None)
        if engine_stats is not None:
            stats.merge(engine_stats, "engine.")
        stats.merge(self.ms.buffer.stats, "pb.")
        stats.merge(self.ms.lpq.stats, "lpq.")
        stats.merge(self.ms.scheduler.stats, "sched.")
        stats.merge(self.hierarchy.stats, "mem.")
        stats.merge(self.hierarchy.l1.stats, "l1.")
        stats.merge(self.hierarchy.l2.stats, "l2.")
        stats.merge(self.hierarchy.l3.stats, "l3.")
        stats.merge(self.core.stats, "core.")
        stats.merge(self.ps.stats, "ps.")
        stats.set("sched.final_policy", self.ms.scheduler.policy)
        telemetry = None
        if self.tracer.enabled:
            telemetry = {"tracer": self.tracer.summary()}
            if self.probes is not None:
                telemetry["probes"] = self.probes.summary()
        return RunResult(
            config_name=self.config.name,
            benchmark=self.traces[0].name,
            cycles=self.now,
            instructions=self.core.retired_instructions,
            cpu_ratio=self.config.core.cpu_ratio,
            stats=stats.as_dict(),
            power=self.power_model.finalize(self.now),
            telemetry=telemetry,
        )


def simulate(
    config: SystemConfig,
    traces: Union[Trace, Sequence[Trace]],
    max_cycles: int = DEFAULT_MAX_CYCLES,
    tracer: Optional[Tracer] = None,
    probes: Optional[EpochProbes] = None,
) -> RunResult:
    """Build a :class:`System` from ``config`` and run it on ``traces``.

    ``tracer`` / ``probes`` switch on the telemetry subsystem for this
    run (see :mod:`repro.telemetry`); both default to off.
    """
    return System(config, traces, tracer=tracer, probes=probes).run(
        max_cycles=max_cycles
    )
