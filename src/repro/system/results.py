"""Run results and the derived metrics the paper reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dram.power import PowerReport


@dataclass
class RunResult:
    """Everything measured in one simulation run.

    The paper's headline metric is execution time; ``gain_vs`` computes
    the "Performance Gain (%)" of its Figures 5-7: how much faster this
    run is than a baseline, ``(T_base / T_this - 1) * 100``.
    """

    config_name: str
    benchmark: str
    cycles: int  # MC (DDR bus) cycles
    instructions: int
    cpu_ratio: int
    stats: Dict[str, float] = field(default_factory=dict)
    power: Optional[PowerReport] = None
    #: telemetry digest (tracer event counts, probe coverage) when the
    #: run was traced; None for untraced runs — see repro.telemetry
    telemetry: Optional[Dict[str, object]] = None
    #: fidelity record (docs/fidelity.md): None for plain exact runs;
    #: fast-model results carry ``{"tier": "fast", "model_version": N}``
    #: plus, once a FidelityGate has calibrated the sweep, per-metric
    #: ``error_bars`` and the calibration summary they came from
    fidelity: Optional[Dict[str, object]] = None

    @property
    def telemetry_active(self) -> bool:
        """True when this run executed with telemetry enabled."""
        return self.telemetry is not None

    @property
    def fidelity_tier(self) -> str:
        """``"fast"`` or ``"exact"`` — how this result was computed."""
        if self.fidelity is None:
            return "exact"
        return str(self.fidelity.get("tier", "exact"))

    def error_bar(self, metric: str) -> Optional[float]:
        """Validated relative-error bound for ``metric``, if attached.

        Fast results gain per-metric bounds once a
        :class:`repro.fastsim.gate.FidelityGate` has calibrated their
        sweep; exact results (and uncalibrated fast ones) return None.
        """
        if self.fidelity is None:
            return None
        bars = self.fidelity.get("error_bars")
        if not isinstance(bars, dict):
            return None
        value = bars.get(metric)
        return float(value) if isinstance(value, (int, float)) else None

    @property
    def cpu_cycles(self) -> int:
        return self.cycles * self.cpu_ratio

    @property
    def ipc(self) -> float:
        if self.cpu_cycles == 0:
            return 0.0
        return self.instructions / self.cpu_cycles

    def gain_vs(self, baseline: "RunResult") -> float:
        """Performance gain in percent over ``baseline`` (same trace)."""
        if self.cycles == 0:
            return 0.0
        return (baseline.cycles / self.cycles - 1.0) * 100.0

    def normalized_time_vs(self, baseline: "RunResult") -> float:
        """Execution time normalised to ``baseline`` (Figure 11's y-axis)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles

    # ------------------------------------------------------------------
    # Figure 13 metrics
    # ------------------------------------------------------------------
    @property
    def pb_hits(self) -> float:
        return self.stats.get("mc.pb_hits_pre_caq", 0) + self.stats.get(
            "mc.pb_hits_caq", 0
        )

    @property
    def coverage(self) -> float:
        """Reads (incl. PS prefetches) served by the Prefetch Buffer."""
        reads = self.stats.get("mc.reads_arrived", 0)
        return self.pb_hits / reads if reads else 0.0

    @property
    def useful_prefetch_fraction(self) -> float:
        """MS-prefetched lines that were consumed by a read."""
        inserts = self.stats.get("pb.inserts", 0)
        if not inserts:
            return 0.0
        return self.stats.get("pb.read_hits", 0) / inserts

    @property
    def delayed_regular_fraction(self) -> float:
        """Regular commands delayed by memory-side prefetches."""
        regular = self.stats.get("mc.issued_regular", 0)
        if not regular:
            return 0.0
        return self.stats.get("mc.delayed_regular", 0) / regular

    def avg_read_latency(self, provenance: str = "demand") -> float:
        """Mean controller read latency in MC cycles (arrival to data).

        ``provenance`` is "demand" or "ps_prefetch".
        """
        count = self.stats.get(f"mc.lat_cnt_{provenance}", 0)
        if not count:
            return 0.0
        return self.stats.get(f"mc.lat_sum_{provenance}", 0) / count

    def read_latency_histogram(self, provenance: str = "demand") -> Dict[int, float]:
        """Log2-bucketed read-latency histogram.

        Keys are bucket lower bounds in MC cycles (1, 2, 4, 8, ...);
        values are completion counts.
        """
        prefix = f"mc.lat_hist_{provenance}_"
        out: Dict[int, float] = {}
        for key, value in self.stats.items():
            if key.startswith(prefix):
                out[1 << int(key[len(prefix):])] = value
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------
    # power metrics (Figures 8-10: PMS vs PS)
    # ------------------------------------------------------------------
    def power_increase_vs(self, baseline: "RunResult") -> float:
        """DRAM average-power increase in percent over ``baseline``."""
        if self.power is None or baseline.power is None:
            raise ValueError("both runs need power reports")
        if baseline.power.avg_power_mw == 0:
            return 0.0
        return (self.power.avg_power_mw / baseline.power.avg_power_mw - 1) * 100

    def energy_reduction_vs(self, baseline: "RunResult") -> float:
        """DRAM energy reduction in percent relative to ``baseline``."""
        if self.power is None or baseline.power is None:
            raise ValueError("both runs need power reports")
        if baseline.power.energy_uj == 0:
            return 0.0
        return (1 - self.power.energy_uj / baseline.power.energy_uj) * 100

    def avg_queue_occupancy(self, queue: str = "read_queue") -> float:
        """Time-averaged queue occupancy.

        ``queue`` is one of "read_queue", "write_queue", "caq", "lpq".
        """
        ticks = self.stats.get("mc.ticks", 0)
        if not ticks:
            return 0.0
        return self.stats.get(f"mc.occ_{queue}", 0) / ticks

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary of the run (for tooling)."""
        out: Dict[str, object] = {
            "config": self.config_name,
            "benchmark": self.benchmark,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "coverage": self.coverage,
            "useful_prefetch_fraction": self.useful_prefetch_fraction,
            "delayed_regular_fraction": self.delayed_regular_fraction,
            "avg_demand_latency_mc": self.avg_read_latency(),
            "stats": dict(self.stats),
        }
        if self.power is not None:
            out["power"] = {
                "energy_uj": self.power.energy_uj,
                "avg_power_mw": self.power.avg_power_mw,
                "background_energy_uj": self.power.background_energy_uj,
            }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        if self.fidelity is not None:
            out["fidelity"] = self.fidelity
        return out

    def summary(self) -> str:
        return (
            f"{self.benchmark:<12} {self.config_name:<14} "
            f"cycles={self.cycles:<10} ipc={self.ipc:.3f} "
            f"cov={self.coverage * 100:.1f}%"
        )
