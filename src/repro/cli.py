"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``      — benchmarks, suites, and configurations
* ``run``       — simulate one benchmark under one configuration
* ``compare``   — one benchmark under NP / PS / MS / PMS
* ``suite``     — a whole suite (Figures 5/6/7 style table)
* ``sweep``     — a benchmarks x configs grid, sharded across worker
  processes through the on-disk result store (docs/experiments.md)
* ``figure``    — regenerate one paper figure/table by id
* ``trace``     — trace tooling (docs/scenarios.md): ``trace generate``
  saves a synthetic trace, ``trace convert`` normalises an external
  trace (ChampSim-style text or ``addr,rw[,tid]`` CSV, gzipped or
  plain) to the internal format, ``trace calibrate`` measures the fast
  model's error bars on a converted trace
* ``fuzz``      — adversarial workload search over the synthetic
  generator's parameter space (docs/scenarios.md): worst cases by a
  pluggable objective, reproducible per seed, results deduped into
  the store
* ``cost``      — the hardware-cost table (Section 5.1)
* ``telemetry`` — run one benchmark with full instrumentation and
  export/print the epoch-resolved series (see docs/telemetry.md)
* ``obs``       — fleet observability: ``obs serve`` exposes the
  metrics snapshots of past sweeps over HTTP; ``obs trace export``
  converts a sweep's span snapshot to Chrome trace-event JSON for
  Perfetto (docs/observability.md)
* ``fabric``    — distributed sweeps (docs/fabric.md): ``fabric
  serve`` runs the coordinator daemon, ``fabric work`` a worker agent,
  ``fabric submit`` sends a grid over HTTP (``--watch`` polls it to
  completion and prints the sweep table), ``fabric status`` inspects
  the fleet (with a critical-path summary of the stitched trace),
  ``fabric watch`` streams live progress over SSE
* ``lint``      — simulator-invariant static analysis (determinism,
  dual-path parity, cycle accounting, stat-key registry, hot-path
  hygiene; see docs/linting.md)

``run`` and ``compare`` accept ``--trace-events PATH`` (JSONL event
log) and ``--probe-interval N`` (sample epoch series every N epochs);
both default to off, costing nothing.  ``compare``, ``suite`` and
``sweep`` accept ``--jobs N`` (parallel workers) and ``--no-store``
(skip the on-disk result store); traced runs are always serial and
never stored.  ``sweep`` additionally drives a live progress line
(suppress with ``--no-progress``), always writes a metrics snapshot
under ``.repro-results/metrics/``, and serves ``/metrics`` +
``/healthz`` + ``/progress`` live when given ``--metrics-port N``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.system.presets import ABLATION_CONFIGS, CONFIG_NAMES, make_config
from repro.workloads.profiles import SUITES

#: figure/table id -> (module, entry function, render function) names
FIGURES = {
    "fig2": ("repro.experiments.slh_figures", "fig3_slh_phases", None),
    "fig3": ("repro.experiments.slh_figures", "fig3_slh_phases", None),
    "fig5": ("repro.experiments.performance", "fig5_spec", "render"),
    "fig6": ("repro.experiments.performance", "fig6_nas", "render"),
    "fig7": ("repro.experiments.performance", "fig7_commercial", "render"),
    "fig8": ("repro.experiments.power", "fig8_power_spec", "render"),
    "fig9": ("repro.experiments.power", "fig9_power_nas", "render"),
    "fig10": ("repro.experiments.power", "fig10_power_commercial", "render"),
    "fig11": ("repro.experiments.ablation", "fig11_ablation", "render"),
    "fig12": ("repro.experiments.stream_lengths", "fig12_stream_lengths", "render"),
    "fig13": ("repro.experiments.efficiency", "fig13_efficiency", "render"),
    "fig14": ("repro.experiments.sensitivity", "fig14_buffer_size", "render"),
    "fig15": ("repro.experiments.sensitivity", "fig15_filter_size", "render"),
    "fig16": ("repro.experiments.slh_figures", "fig16_slh_accuracy", None),
    "hardware": ("repro.experiments.hardware_cost", "tab_hardware_cost", "render"),
    "smt": ("repro.experiments.smt", "tab_smt", "render"),
    "scheduler": (
        "repro.experiments.scheduler_interaction",
        "tab_scheduler_interaction",
        "render",
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive Stream Detection reproduction (Hur & Lin, MICRO 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="benchmarks, suites, configurations")

    def common(p):
        p.add_argument("-n", "--accesses", type=int, default=15_000,
                       help="trace length in memory accesses")
        p.add_argument("--seed", type=int, default=1)

    def telem(p):
        p.add_argument("--trace-events", metavar="PATH", default=None,
                       help="write a JSONL event log to PATH")
        p.add_argument("--probe-interval", type=int, metavar="N",
                       default=None,
                       help="sample epoch-resolved series every N epochs")

    run = sub.add_parser("run", help="one benchmark, one configuration")
    run.add_argument("-b", "--benchmark", required=True)
    run.add_argument("-c", "--config", default="PMS")
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--scheduler", default="ahb",
                     choices=("ahb", "memoryless", "in_order"))
    run.add_argument("--json", action="store_true",
                     help="emit the full result as JSON")
    common(run)
    telem(run)

    def parallel(p, jobs_help="worker processes (default REPRO_JOBS or 1)"):
        p.add_argument("-j", "--jobs", type=int, default=None,
                       help=jobs_help)
        p.add_argument("--no-store", action="store_true",
                       help="skip the on-disk result store")

    compare = sub.add_parser("compare", help="NP/PS/MS/PMS on one benchmark")
    compare.add_argument("-b", "--benchmark", required=True)
    common(compare)
    telem(compare)
    parallel(compare)

    suite = sub.add_parser("suite", help="a whole suite (Figure 5/6/7 table)")
    suite.add_argument("-s", "--suite", required=True, choices=sorted(SUITES))
    common(suite)
    parallel(suite)

    sweep = sub.add_parser(
        "sweep", help="benchmarks x configs grid via the parallel engine"
    )
    sweep.add_argument("-s", "--suite", choices=sorted(SUITES),
                       help="sweep a whole suite")
    sweep.add_argument("-b", "--benchmarks", nargs="+", metavar="BENCH",
                       help="sweep an explicit benchmark list")
    sweep.add_argument("-c", "--configs", nargs="+", metavar="CONFIG",
                       default=list(CONFIG_NAMES),
                       help="configurations (default: NP PS MS PMS)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds")
    sweep.add_argument("--fidelity", choices=("exact", "fast", "auto"),
                       default="exact",
                       help="simulation tier (docs/fidelity.md): exact = "
                            "cycle-accurate, fast = analytic model with "
                            "validated error bars, auto = fast plus exact "
                            "escalation near decision boundaries")
    sweep.add_argument("--metrics-port", type=int, metavar="N", default=None,
                       help="serve /metrics, /healthz and /progress on "
                            "127.0.0.1:N for the duration of the sweep "
                            "(0 = OS-assigned)")
    sweep.add_argument("--no-progress", action="store_true",
                       help="suppress the live progress line")
    sweep.add_argument("--verbose", action="store_true",
                       help="log sweep robustness events to stderr")
    common(sweep)
    parallel(sweep,
             jobs_help="worker processes (default REPRO_JOBS or all CPUs)")

    figure = sub.add_parser("figure", help="regenerate one paper artifact")
    figure.add_argument("id", choices=sorted(FIGURES))

    trace = sub.add_parser(
        "trace", help="trace tooling: generate / convert / calibrate"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    tgen = trace_sub.add_parser(
        "generate", help="generate and save a synthetic trace"
    )
    tgen.add_argument("-b", "--benchmark", required=True)
    tgen.add_argument("-o", "--output", required=True)
    common(tgen)

    tconv = trace_sub.add_parser(
        "convert",
        help="convert an external trace (champsim/csv) to the "
             "internal format",
    )
    tconv.add_argument("source", help="external trace file (.gz ok)")
    tconv.add_argument("-o", "--output", required=True,
                       help="internal-format output (.gz ok)")
    tconv.add_argument("--format", dest="fmt", default=None,
                       choices=("champsim", "csv"),
                       help="input format (default: guess from the name)")
    tconv.add_argument("--line-size", type=int, default=64, metavar="BYTES",
                       help="byte line size of the input addresses "
                            "(default 64; power of two)")
    tconv.add_argument("--gap", type=int, default=20, metavar="N",
                       help="instruction gap per access when the format "
                            "carries no instruction counts (default 20)")
    tconv.add_argument("--limit", type=int, default=None, metavar="N",
                       help="convert at most the first N records")

    tcal = trace_sub.add_parser(
        "calibrate",
        help="calibrate the fast model's error bars on a converted trace",
    )
    tcal.add_argument("file", help="internal-format trace file")
    tcal.add_argument("-c", "--configs", nargs="+", metavar="CONFIG",
                      default=list(CONFIG_NAMES),
                      help="configurations (default: NP PS MS PMS)")
    tcal.add_argument("-n", "--accesses", type=int, default=None,
                      help="replay at most N records (default: all)")
    tcal.add_argument("--seed", type=int, default=1)
    parallel(tcal)

    fuzz = sub.add_parser(
        "fuzz", help="adversarial workload search (docs/scenarios.md)"
    )
    fuzz.add_argument("--budget", type=int, default=16, metavar="N",
                      help="candidate workloads to evaluate (default 16)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="search seed; same seed, same worst cases")
    fuzz.add_argument("--objective", default="waste",
                      choices=("waste", "regret", "fidelity"),
                      help="what to maximise (default waste: prefetches "
                           "nobody reads)")
    fuzz.add_argument("--top", type=int, default=8, metavar="K",
                      help="worst cases to keep and report (default 8)")
    fuzz.add_argument("--round-size", type=int, default=8, metavar="N",
                      help="candidates per sweep round (default 8)")
    fuzz.add_argument("-n", "--accesses", type=int, default=4000,
                      help="trace length per evaluation (default 4000)")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the full report as JSON")
    parallel(fuzz)

    cost = sub.add_parser("cost", help="hardware cost table")
    cost.add_argument("--threads", type=int, nargs="+", default=(1, 2, 4))

    tel = sub.add_parser(
        "telemetry", help="instrumented run: epoch series + event log"
    )
    tel.add_argument("-b", "--benchmark", required=True)
    tel.add_argument("-c", "--config", default="PMS")
    tel.add_argument("--probe-interval", type=int, metavar="N", default=1,
                     help="sample epoch series every N epochs (default 1)")
    tel.add_argument("--events", metavar="PATH", default=None,
                     help="also write a JSONL event log to PATH")
    tel.add_argument("--series-csv", metavar="PATH", default=None,
                     help="write scalar epoch series to a CSV file")
    tel.add_argument("--series-json", metavar="PATH", default=None,
                     help="write all epoch series (SLH included) to JSON")
    tel.add_argument("--rows", type=int, default=20,
                     help="epoch-report rows to print (default 20)")
    common(tel)

    obs = sub.add_parser(
        "obs", help="fleet observability (docs/observability.md)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    serve = obs_sub.add_parser(
        "serve", help="serve stored metrics snapshots over HTTP"
    )
    serve.add_argument("--port", type=int, default=9123,
                       help="TCP port to bind (default 9123, 0 = OS pick)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--dir", dest="directory", default=None,
                       help="snapshot directory (default "
                            ".repro-results/metrics)")
    otrace = obs_sub.add_parser(
        "trace", help="span-trace tooling (docs/observability.md)"
    )
    otrace_sub = otrace.add_subparsers(dest="obs_trace_command", required=True)
    oexport = otrace_sub.add_parser(
        "export",
        help="convert a span snapshot to Chrome trace-event JSON "
             "(loadable in Perfetto / chrome://tracing)",
    )
    oexport.add_argument("--input", default=None, metavar="PATH",
                         help="span snapshot (default "
                              ".repro-results/spans/latest.json)")
    oexport.add_argument("-o", "--output", default="trace.json",
                         metavar="PATH",
                         help="trace-event output file (default trace.json)")

    fabric = sub.add_parser(
        "fabric", help="distributed sweep fabric (docs/fabric.md)"
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)

    fserve = fabric_sub.add_parser(
        "serve", help="run the coordinator daemon"
    )
    fserve.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    fserve.add_argument("--port", type=int, default=8765,
                        help="TCP port to bind (default 8765, 0 = OS pick)")
    fserve.add_argument("--lease-seconds", type=float, default=60.0,
                        help="worker lease duration (default 60)")
    fserve.add_argument("--max-attempts", type=int, default=3,
                        help="lease grants per job before it fails "
                             "permanently (default 3)")
    fserve.add_argument("--verbose", action="store_true",
                        help="log scheduling events to stderr")

    fwork = fabric_sub.add_parser("work", help="run one worker agent")
    fwork.add_argument("--coordinator", required=True, metavar="URL",
                       help="coordinator base URL, e.g. http://host:8765")
    fwork.add_argument("--id", dest="worker_id", default=None,
                       help="worker id (default <hostname>-<pid>)")
    fwork.add_argument("--capacity", type=int, default=2,
                       help="jobs leased per batch (default 2)")
    fwork.add_argument("--poll", type=float, default=1.0, metavar="SECONDS",
                       help="idle poll interval (default 1.0)")
    fwork.add_argument("--drain-idle", type=float, default=None,
                       metavar="SECONDS",
                       help="exit after this long with an empty queue "
                            "(default: run until SIGTERM)")
    fwork.add_argument("--verbose", action="store_true",
                       help="log worker events to stderr")

    fsubmit = fabric_sub.add_parser(
        "submit", help="submit a grid to a coordinator over HTTP"
    )
    fsubmit.add_argument("--coordinator", required=True, metavar="URL")
    fsubmit.add_argument("-s", "--suite", choices=sorted(SUITES),
                         help="submit a whole suite")
    fsubmit.add_argument("-b", "--benchmarks", nargs="+", metavar="BENCH",
                         help="submit an explicit benchmark list")
    fsubmit.add_argument("-c", "--configs", nargs="+", metavar="CONFIG",
                         default=list(CONFIG_NAMES),
                         help="configurations (default: NP PS MS PMS)")
    fsubmit.add_argument("--priority", type=int, default=0,
                         help="queue priority (higher runs first)")
    fsubmit.add_argument("--fidelity", choices=("exact", "fast"),
                         default="exact",
                         help="simulation tier (docs/fidelity.md); fast "
                              "also queues the exact validation sample so "
                              "--watch can print calibrated error bars")
    fsubmit.add_argument("--watch", action="store_true",
                         help="poll until done and print the sweep table")
    fsubmit.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                         help="--watch poll interval (default 0.5)")
    common(fsubmit)

    fstatus = fabric_sub.add_parser(
        "status", help="fleet status (or one sweep with --sweep)"
    )
    fstatus.add_argument("--coordinator", required=True, metavar="URL")
    fstatus.add_argument("--sweep", default=None, metavar="ID",
                         help="show one sweep instead of the fleet")

    fwatch = fabric_sub.add_parser(
        "watch", help="stream live fleet progress over SSE (/events)"
    )
    fwatch.add_argument("--coordinator", required=True, metavar="URL")
    fwatch.add_argument("--sweep", default=None, metavar="ID",
                        help="exit once this sweep finishes "
                             "(default: stream until Ctrl-C)")
    fwatch.add_argument("--poll", type=float, default=2.0, metavar="SECONDS",
                        help="fallback poll interval when the SSE stream "
                             "is unavailable (default 2.0)")

    lint = sub.add_parser(
        "lint", help="simulator-invariant static analysis (docs/linting.md)"
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories to scan (default: src/repro)")
    lint.add_argument("--check", action="store_true",
                      help="exit nonzero on any new (non-baselined) finding")
    lint.add_argument("--json", action="store_true", help="JSON report")
    lint.add_argument("--output", metavar="PATH", default=None,
                      help="additionally write the JSON report to PATH")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="baseline file (default .lint-baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="grandfather every current finding")
    lint.add_argument("--write-registry", action="store_true",
                      help="regenerate the stat-key/wire-schema/metric-name "
                           "registries and exit")

    return parser


def _make_session(trace_events, probe_interval):
    """A TelemetrySession when either telemetry flag was given, else None."""
    if trace_events is None and probe_interval is None:
        return None
    from repro.telemetry.session import TelemetrySession

    return TelemetrySession(trace_events=trace_events,
                            probe_interval=probe_interval)


def _cmd_list() -> int:
    print("suites:")
    for suite, names in SUITES.items():
        print(f"  {suite}: {', '.join(names)}")
    print()
    print(f"configurations: {', '.join(CONFIG_NAMES)}")
    print(f"ablations:      {', '.join(ABLATION_CONFIGS)}")
    print("extensions:     ASD_PS, PMS_DEGREE<d>")
    return 0


def _cmd_run(args) -> int:
    from repro.experiments.runner import get_trace
    from repro.system.simulator import simulate

    traces = [
        get_trace(args.benchmark, args.accesses, seed=args.seed + t)
        for t in range(args.threads)
    ]
    config = make_config(args.config, threads=args.threads,
                         scheduler=args.scheduler)
    session = _make_session(args.trace_events, args.probe_interval)
    result = simulate(
        config,
        traces,
        tracer=session.tracer if session else None,
        probes=session.probes if session else None,
    )
    if session is not None:
        session.close()
        if session.writer is not None and result.telemetry is not None:
            result.telemetry["events_written"] = session.writer.events_written
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(result.summary())
    print(f"  MC cycles          {result.cycles}")
    print(f"  IPC                {result.ipc:.3f}")
    print(f"  demand latency     {result.avg_read_latency():.1f} MC cycles")
    print(
        f"  DRAM reads/writes  {result.stats.get('dram.issued_reads', 0):.0f} / "
        f"{result.stats.get('dram.issued_writes', 0):.0f}"
    )
    if result.stats.get("pb.inserts"):
        print(f"  useful prefetches  {result.useful_prefetch_fraction * 100:.1f}%")
        print(f"  coverage           {result.coverage * 100:.1f}%")
    if result.power:
        print(f"  DRAM energy        {result.power.energy_uj:.1f} uJ "
              f"({result.power.avg_power_mw:.0f} mW avg)")
    if session is not None:
        tracer = session.tracer
        print(f"  telemetry          {tracer.total_events} events, "
              f"{tracer.overhead_seconds() * 1e3:.1f} ms overhead")
        if session.probes is not None:
            print()
            print(session.report())
    return 0


def _events_path_for(base: str, config_name: str) -> str:
    """Per-config event-log path: ``out.jsonl`` -> ``out.NP.jsonl``."""
    import os

    root, ext = os.path.splitext(base)
    return f"{root}.{config_name}{ext or '.jsonl'}"


def _cmd_compare(args) -> int:
    traced = args.trace_events is not None or args.probe_interval is not None
    if traced:
        # Traced runs are serial-only and never stored/cached: their
        # side effects (event logs, probe series) are the point.
        from repro.experiments.runner import get_trace
        from repro.system.simulator import simulate

        trace = get_trace(args.benchmark, args.accesses, seed=args.seed)
        results = {}
        for name in CONFIG_NAMES:
            events = (
                _events_path_for(args.trace_events, name)
                if args.trace_events is not None else None
            )
            session = _make_session(events, args.probe_interval)
            results[name] = simulate(
                make_config(name),
                trace,
                tracer=session.tracer if session else None,
                probes=session.probes if session else None,
            )
            if session is not None:
                session.close()
    else:
        from repro.experiments.runner import run_suite

        results = run_suite(
            (args.benchmark,), CONFIG_NAMES, jobs=args.jobs,
            accesses=args.accesses, seed=args.seed,
            use_store=False if args.no_store else None,
        )[args.benchmark]
    np_run = results["NP"]
    rows = []
    for name in CONFIG_NAMES:
        r = results[name]
        rows.append(
            [name, r.cycles, r.gain_vs(np_run), r.avg_read_latency(),
             r.coverage * 100]
        )
    print(
        format_table(
            ["config", "MC cycles", "gain vs NP %", "read lat", "coverage %"],
            rows,
            title=f"{args.benchmark} ({args.accesses} accesses)",
        )
    )
    return 0


def _cmd_suite(args) -> int:
    import os

    os.environ["REPRO_TRACE_ACCESSES"] = str(args.accesses)
    os.environ["REPRO_SEED"] = str(args.seed)
    if args.no_store:
        os.environ["REPRO_STORE"] = "0"
    from repro.experiments.performance import performance_figure, render

    print(render(performance_figure(args.suite, jobs=args.jobs)))
    return 0


def _cmd_sweep(args) -> int:
    import logging
    import os

    from repro.experiments import sweep
    from repro.obs import critpath, exporters, metrics
    from repro.obs import progress as obs_progress
    from repro.obs import spans as obs_spans
    from repro.obs.server import ObsServer

    if args.benchmarks:
        benchmarks = list(args.benchmarks)
    elif args.suite:
        benchmarks = list(SUITES[args.suite])
    else:
        print("sweep: pass --suite or --benchmarks", file=sys.stderr)
        return 2
    if args.verbose:
        logging.basicConfig(
            level=logging.INFO, stream=sys.stderr,
            format="%(levelname)s %(name)s: %(message)s",
        )
        logging.getLogger("repro").setLevel(logging.INFO)
    jobs = args.jobs if args.jobs is not None else (
        int(os.environ["REPRO_JOBS"]) if "REPRO_JOBS" in os.environ
        else os.cpu_count() or 1
    )
    configs = list(args.configs)
    specs = sweep.expand_grid(benchmarks, configs, accesses=args.accesses,
                              seed=args.seed)
    # The sweep CLI always runs with fleet metrics on: the registry is
    # cheap at this granularity and feeds the snapshot + live endpoint.
    # Ditto the span collector — its snapshot feeds the critical-path
    # summary and `repro obs trace export`.
    registry = metrics.MetricsRegistry(enabled=True)
    metrics.set_default_registry(registry)
    collector = obs_spans.SpanCollector(enabled=True)
    obs_spans.set_default_collector(collector)
    live = obs_progress.SweepProgress()
    printer = (
        None if args.no_progress else obs_progress.ProgressPrinter(live)
    )
    if printer is not None:
        live.subscribe(printer.on_change)
    server = None
    if args.metrics_port is not None:
        server = ObsServer(
            registry=registry, progress=live, port=args.metrics_port,
            spans=collector,
        ).start()
        print(f"  obs endpoint: {server.url}", file=sys.stderr)
    try:
        if args.fidelity == "exact":
            outcome = sweep.run_jobs(
                specs, jobs=max(1, jobs), timeout=args.timeout,
                use_store=False if args.no_store else None,
                progress=live, metrics=registry,
            )
        else:
            from repro.fastsim import run_fidelity_sweep

            outcome = run_fidelity_sweep(
                specs, fidelity=args.fidelity, jobs=max(1, jobs),
                timeout=args.timeout,
                use_store=False if args.no_store else None,
                progress=live, metrics=registry,
            )
    finally:
        if printer is not None:
            printer.close()
        snapshot_path = exporters.write_snapshot(
            registry, progress=live.snapshot()
        )
        spans_path = obs_spans.write_spans(collector)
        if server is not None:
            server.close()
        metrics.reset_default_registry()
        obs_spans.reset_default_collector()
    by_bench = {}
    for spec, result in zip(specs, outcome.results):
        by_bench.setdefault(spec.benchmark, {})[spec.config_name] = result
    print(
        _grid_table(
            benchmarks, configs, by_bench,
            title=(f"sweep: {len(benchmarks)} benchmarks x "
                   f"{len(configs)} configs ({args.accesses} accesses, "
                   f"jobs={max(1, jobs)})"),
        )
    )
    print(f"  {outcome.stats.describe()}")
    record = getattr(outcome, "record", None)
    if record is not None:
        print(f"  {record.summary()}")
        if getattr(outcome, "escalated_indices", None):
            escalated = ", ".join(
                f"{specs[i].benchmark}/{specs[i].config_name}"
                for i in outcome.escalated_indices
            )
            print(f"  escalated to exact (decision boundary): {escalated}")
    if not args.no_store:
        from repro.experiments import store

        st = store.get_store()
        print(f"  store: {len(st)} entries at {st.root}")
    print(f"  metrics snapshot: {snapshot_path}")
    for line in critpath.render_summary(
        critpath.analyze(collector.spans())
    ).splitlines():
        print(f"  {line}")
    print(f"  span snapshot: {spans_path} "
          "(repro obs trace export renders it for Perfetto)")
    return 0


def _grid_table(benchmarks, configs, by_bench, title) -> str:
    """The benchmarks x configs result table shared by sweep and fabric."""
    baseline_name = configs[0] if "NP" not in configs else "NP"
    rows = []
    for b in benchmarks:
        base = by_bench[b][baseline_name]
        for c in configs:
            r = by_bench[b][c]
            rows.append([b, c, r.cycles, r.gain_vs(base), r.coverage * 100])
    return format_table(
        ["benchmark", "config", "MC cycles",
         f"gain vs {baseline_name} %", "coverage %"],
        rows,
        title=title,
    )


def _cmd_obs(args) -> int:
    if args.obs_command == "trace":
        return _cmd_obs_trace(args)

    from repro.obs.paths import metrics_dir
    from repro.obs.server import ObsServer

    directory = args.directory if args.directory else metrics_dir()
    server = ObsServer(snapshot_dir=directory, host=args.host, port=args.port)
    print(f"serving metrics snapshots from {directory} on {server.url}")
    print("endpoints: /metrics /metrics.json /healthz /progress (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_obs_trace(args) -> int:
    """``repro obs trace export``: span snapshot -> Chrome trace JSON."""
    import json
    import os

    from repro.obs import critpath
    from repro.obs import spans as obs_spans
    from repro.obs.paths import spans_dir

    path = args.input if args.input else os.path.join(
        spans_dir(), "latest.json"
    )
    try:
        spans = obs_spans.load_spans(path)
    except FileNotFoundError:
        print(f"obs trace export: no span snapshot at {path} "
              "(run `repro sweep` first, or pass --input)", file=sys.stderr)
        return 2
    except obs_spans.SpanError as exc:
        print(f"obs trace export: {path}: {exc}", file=sys.stderr)
        return 2
    document = obs_spans.to_chrome_trace(spans)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
    events = sum(1 for e in document["traceEvents"] if e["ph"] == "X")
    print(f"wrote {args.output}: {events} span(s) from {path}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    print(critpath.render_summary(critpath.analyze(spans)))
    return 0


def _fabric_logging(verbose: bool) -> None:
    import logging

    if verbose:
        logging.basicConfig(
            level=logging.INFO, stream=sys.stderr,
            format="%(levelname)s %(name)s: %(message)s",
        )
        logging.getLogger("repro").setLevel(logging.INFO)


def _cmd_fabric(args) -> int:
    import json

    if args.fabric_command == "serve":
        from repro.fabric.coordinator import serve

        _fabric_logging(args.verbose)
        coordinator, server = serve(
            host=args.host, port=args.port,
            lease_seconds=args.lease_seconds,
            max_attempts=args.max_attempts,
        )
        print(f"fabric coordinator on {server.url} "
              f"(store: {coordinator.store.root})")
        print("endpoints: /v1/sweeps /v1/lease /v1/complete /v1/heartbeat "
              "/v1/status /metrics /healthz /progress (Ctrl-C to stop)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return 0

    if args.fabric_command == "work":
        from repro.fabric.agent import WorkerAgent

        _fabric_logging(args.verbose)
        agent = WorkerAgent(
            args.coordinator,
            worker_id=args.worker_id,
            capacity=args.capacity,
            poll_seconds=args.poll,
            drain_idle_seconds=args.drain_idle,
        )
        agent.install_signal_handlers()
        totals = agent.run()
        print(f"worker {agent.worker_id}: "
              f"{totals['executed']} executed, {totals['store']} from store, "
              f"{totals['errors']} errors in {totals['batches']} batch(es)")
        return 0

    from repro.fabric.client import FabricClient

    client = FabricClient(args.coordinator)
    if args.fabric_command == "submit":
        if args.benchmarks:
            benchmarks = list(args.benchmarks)
        elif args.suite:
            benchmarks = list(SUITES[args.suite])
        else:
            print("fabric submit: pass --suite or --benchmarks",
                  file=sys.stderr)
            return 2
        configs = list(args.configs)
        accepted = client.submit(
            benchmarks, configs, accesses=args.accesses, seed=args.seed,
            priority=args.priority, fidelity=args.fidelity,
        )
        sweep_id = accepted["sweep"]
        print(f"accepted {sweep_id}: {accepted['total']} jobs, "
              f"{accepted['deduped']} already in store, "
              f"{accepted['queued']} queued")
        if not args.watch:
            return 0
        status = client.watch(sweep_id, poll_seconds=args.poll)
        failed = status.get("failed", [])
        if args.fidelity == "exact":
            by_bench = client.fetch_suite(sweep_id)
            record = None
        else:
            by_bench, record = client.fetch_calibrated_suite(sweep_id)
        if all(c in by_bench.get(b, {}) for b in benchmarks for c in configs):
            print(
                _grid_table(
                    benchmarks, configs, by_bench,
                    title=(f"fabric {sweep_id}: {len(benchmarks)} benchmarks "
                           f"x {len(configs)} configs "
                           f"({args.accesses} accesses)"),
                )
            )
        if record is not None:
            print(f"  {record.summary()}")
        for failure in failed:
            print(f"  FAILED {failure['key']}: {failure['error']}",
                  file=sys.stderr)
        return 1 if failed else 0

    if args.fabric_command == "watch":
        return _fabric_watch(client, args)

    # fabric status
    document = (
        client.sweep_status(args.sweep) if args.sweep else client.status()
    )
    print(json.dumps(document, indent=2, sort_keys=True))
    if not args.sweep:
        from repro.obs import critpath
        from repro.obs.spans import SpanError, check_span

        try:
            snapshot = client.trace()
            spans = [check_span(doc) for doc in snapshot.get("spans", [])]
        except (OSError, SpanError, ValueError):
            spans = []
        if spans:
            print(critpath.render_summary(critpath.analyze(spans)))
    return 0


def _fabric_watch(client, args) -> int:
    """``repro fabric watch``: live SSE progress, polling fallback."""
    import time as _time

    from repro.fabric.client import CoordinatorUnavailable
    from repro.obs.progress import render_line

    def _finished(snapshot) -> bool:
        if args.sweep is None:
            return False
        try:
            status = client.sweep_status(args.sweep)
        except Exception:
            return False
        counts = status.get("counts", {})
        settled = counts.get("done", 0) + counts.get("failed", 0)
        return settled >= status.get("total", 0)

    print(f"watching {client.url} "
          + (f"(sweep {args.sweep}, " if args.sweep else "(")
          + "Ctrl-C to stop)")
    try:
        while True:
            try:
                for kind, payload in client.events(timeout=30.0):
                    if kind == "progress" and isinstance(payload, dict):
                        line = payload.get("line") or str(payload)
                        print(line)
                        if payload.get("finished") and _finished(payload):
                            return 0
                    elif kind == "sweep" and isinstance(payload, dict):
                        print(f"sweep {payload.get('sweep')}: "
                              f"{payload.get('queued')} queued, "
                              f"{payload.get('deduped')} deduped")
                    elif kind == "hello":
                        continue
                # Server closed the stream; fall through to polling.
            except CoordinatorUnavailable:
                pass
            # SSE unavailable (old server, proxy): poll instead.
            try:
                snapshot = client.progress()
                print(render_line(snapshot))
                if snapshot.get("finished") and _finished(snapshot):
                    return 0
            except (CoordinatorUnavailable, KeyError):
                print("coordinator unreachable; retrying", file=sys.stderr)
            _time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0


def _cmd_figure(args) -> int:
    import importlib

    module_name, func_name, render_name = FIGURES[args.id]
    module = importlib.import_module(module_name)
    if render_name is None:
        module.main()
        return 0
    figure = getattr(module, func_name)()
    print(getattr(module, render_name)(figure))
    return 0


def _cmd_trace(args) -> int:
    if args.trace_command == "generate":
        from repro.experiments.runner import get_trace

        trace = get_trace(args.benchmark, args.accesses, seed=args.seed)
        trace.save(args.output)
        print(
            f"wrote {len(trace)} records ({trace.unique_lines} unique "
            f"lines, {trace.write_fraction * 100:.0f}% writes) to "
            f"{args.output}"
        )
        return 0

    if args.trace_command == "convert":
        from repro.scenarios.loaders import convert_trace
        from repro.workloads.dynamic import trace_benchmark

        report = convert_trace(
            args.source, args.output, fmt=args.fmt,
            line_size=args.line_size, default_gap=args.gap,
            limit=args.limit,
        )
        print(report.summary())
        print(f"benchmark name: {trace_benchmark(args.output)}")
        return 0

    # trace calibrate
    from repro.scenarios.calibrate import calibrate_trace

    record, outcome = calibrate_trace(
        args.file, configs=args.configs, accesses=args.accesses,
        seed=args.seed, jobs=max(1, args.jobs or 1),
        use_store=False if args.no_store else None,
    )
    for result in outcome.results:
        print(result.summary())
    print(f"  {outcome.stats.describe()}")
    print(f"  {record.summary()}")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.scenarios.fuzzer import run_fuzz

    report = run_fuzz(
        budget=args.budget, seed=args.seed, objective=args.objective,
        accesses=args.accesses, jobs=max(1, args.jobs or 1),
        top=args.top, round_size=args.round_size,
        use_store=False if args.no_store else None,
    )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    rows = [
        [result.name, result.origin, result.round, result.score,
         result.metrics.get("useful_prefetch_fraction", 0.0) * 100]
        for result in report.results
    ]
    print(
        format_table(
            ["worst case", "origin", "round", "score", "useful pf %"],
            rows,
            title=(f"fuzz[{report.objective}]: {report.evaluated} "
                   f"candidates, seed {report.seed}"),
        )
    )
    print(f"  baseline ({report.baseline.name}): "
          f"score {report.baseline.score:.4f}")
    print(f"  {report.summary()}")
    print(f"  {report.stats.describe()}")
    return 0


def _cmd_cost(args) -> int:
    from repro.experiments.hardware_cost import render, tab_hardware_cost

    print(render(tab_hardware_cost(thread_counts=tuple(args.threads))))
    return 0


def _cmd_telemetry(args) -> int:
    from repro.experiments.runner import get_trace
    from repro.system.simulator import simulate
    from repro.telemetry.session import TelemetrySession

    trace = get_trace(args.benchmark, args.accesses, seed=args.seed)
    config = make_config(args.config)
    session = TelemetrySession(trace_events=args.events,
                               probe_interval=args.probe_interval)
    result = simulate(config, trace, tracer=session.tracer,
                      probes=session.probes)
    session.close()

    print(result.summary())
    print()
    print(session.report(max_rows=args.rows))
    tracer = session.tracer
    print()
    print(f"events: {tracer.total_events} "
          f"({', '.join(f'{k}={v}' for k, v in sorted(tracer.counts.items()))})")
    print(f"tracer overhead: {tracer.overhead_seconds() * 1e3:.1f} ms")
    if args.events:
        print(f"event log: {args.events} "
              f"({session.writer.events_written} events)")
    if args.series_csv:
        rows = session.export_csv(args.series_csv)
        print(f"series CSV: {args.series_csv} ({rows} epochs)")
    if args.series_json:
        session.export_json(args.series_json)
        print(f"series JSON: {args.series_json}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysislint import runner as lint_runner

    forwarded: List[str] = list(args.paths)
    for flag in ("check", "json", "update_baseline", "write_registry"):
        if getattr(args, flag):
            forwarded.append("--" + flag.replace("_", "-"))
    if args.baseline is not None:
        forwarded.extend(["--baseline", args.baseline])
    if args.output is not None:
        forwarded.extend(["--output", args.output])
    return lint_runner.main(forwarded)


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "list": lambda: _cmd_list(),
        "run": lambda: _cmd_run(args),
        "compare": lambda: _cmd_compare(args),
        "suite": lambda: _cmd_suite(args),
        "sweep": lambda: _cmd_sweep(args),
        "figure": lambda: _cmd_figure(args),
        "trace": lambda: _cmd_trace(args),
        "fuzz": lambda: _cmd_fuzz(args),
        "cost": lambda: _cmd_cost(args),
        "telemetry": lambda: _cmd_telemetry(args),
        "obs": lambda: _cmd_obs(args),
        "fabric": lambda: _cmd_fabric(args),
        "lint": lambda: _cmd_lint(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
