"""Simulator throughput measurement and the perf-regression gate.

The unit of merit is **simulated MC cycles per wall-clock second**: how
fast the simulator chews through simulated time.  :func:`measure_suite`
runs one benchmark suite under the standard config set in both main-loop
modes (``event`` and ``reference``, see :mod:`repro.system.simulator`)
and reports per-mode throughput plus the event-over-reference speedup.

Reports are plain JSON (see :data:`PERF_SCHEMA_VERSION`) written by
``tools/bench_perf.py``; the committed ``BENCH_PERF.json`` at the repo
root is the CI baseline.

The regression gate compares the **event/reference speedup ratio**, not
absolute throughput: the ratio is measured within one process on one
machine, so it cancels host speed and isolates what the code controls —
how much the event-driven loop buys over the per-cycle oracle.  Absolute
throughput is recorded alongside for human eyes.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import get_trace, resolve_accesses
from repro.system.presets import make_config
from repro.system.simulator import LOOP_MODES, simulate
from repro.workloads.profiles import suite_benchmarks

#: Bumped when the report layout changes; mismatched baselines are
#: rejected rather than silently compared.  v2 added the
#: ``fast_vs_exact`` entry (analytic-model speedup, docs/fidelity.md).
PERF_SCHEMA_VERSION = 2

#: Config set used by the headline figures (Figure 5 et al.).
DEFAULT_CONFIGS = ("NP", "PS", "MS", "PMS")

#: Default regression threshold: fail when the event/reference speedup
#: drops by more than this fraction below the baseline's.
DEFAULT_FAIL_THRESHOLD = 0.25


def measure_suite(
    suite: str,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    accesses: Optional[int] = None,
    benchmarks: Optional[Sequence[str]] = None,
    threads: int = 1,
    seed: int = 1,
    modes: Sequence[str] = LOOP_MODES,
) -> Dict:
    """Time ``suite`` under every config in both loop modes.

    ``benchmarks`` restricts the suite (smoke runs measure a prefix);
    ``accesses`` defaults to the run-scale default
    (:func:`repro.experiments.runner.resolve_accesses`).  Returns a
    schema-versioned report dict — see the module docstring.
    """
    accesses = resolve_accesses(accesses)
    names = list(benchmarks) if benchmarks else list(suite_benchmarks(suite))
    for mode in modes:
        if mode not in LOOP_MODES:
            raise ValueError(f"unknown loop mode {mode!r}")
    totals = {mode: {"wall_seconds": 0.0, "cycles": 0} for mode in modes}
    for bench in names:
        traces = [
            get_trace(bench, accesses, seed + t) for t in range(threads)
        ]
        for config_name in configs:
            config = make_config(config_name, threads=threads)
            for mode in modes:
                start = time.perf_counter()
                result = simulate(config, traces, loop=mode)
                elapsed = time.perf_counter() - start
                totals[mode]["wall_seconds"] += elapsed
                totals[mode]["cycles"] += result.cycles
    mode_reports = {}
    for mode, acc in totals.items():
        wall = acc["wall_seconds"]
        mode_reports[mode] = {
            "wall_seconds": round(wall, 3),
            "cycles": acc["cycles"],
            "cycles_per_second": round(acc["cycles"] / wall) if wall else 0,
        }
    report = {
        "schema": PERF_SCHEMA_VERSION,
        "suite": suite,
        "benchmarks": names,
        "configs": list(configs),
        "accesses": accesses,
        "threads": threads,
        "seed": seed,
        "modes": mode_reports,
        "host": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "machine": platform.machine(),
        },
    }
    if "event" in mode_reports and "reference" in mode_reports:
        ref = mode_reports["reference"]["cycles_per_second"]
        evt = mode_reports["event"]["cycles_per_second"]
        report["speedup_vs_reference"] = round(evt / ref, 3) if ref else 0.0
    return report


def measure_fast_vs_exact(
    suite: str,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    accesses: Optional[int] = None,
    benchmarks: Optional[Sequence[str]] = None,
    threads: int = 1,
    seed: int = 1,
) -> Dict:
    """Time the fast analytic model against the cycle-accurate loop.

    Runs every ``(benchmark, config)`` cell at both fidelity tiers
    (docs/fidelity.md) on identical cached traces and reports the
    aggregate wall-clock speedup plus the per-metric error bars a
    :class:`~repro.fastsim.gate.FidelityGate` calibrates from the
    full pairing — the headline number behind ``--fidelity fast``.
    """
    from repro.fastsim.gate import FidelityGate
    from repro.fastsim.model import simulate_job_fast
    from repro.fastsim.version import FAST_MODEL_VERSION

    accesses = resolve_accesses(accesses)
    names = list(benchmarks) if benchmarks else list(suite_benchmarks(suite))
    pairs = []
    fast_wall = 0.0
    exact_wall = 0.0
    for bench in names:
        # Warm the trace cache first so neither tier pays generation.
        traces = [
            get_trace(bench, accesses, seed + t) for t in range(threads)
        ]
        for config_name in configs:
            config = make_config(config_name, threads=threads)
            start = time.perf_counter()
            fast = simulate_job_fast(config, bench, accesses, seed, threads)
            fast_wall += time.perf_counter() - start
            start = time.perf_counter()
            exact = simulate(config, traces)
            exact_wall += time.perf_counter() - start
            pairs.append((fast, exact))
    record = FidelityGate().calibrate(pairs)
    return {
        "jobs": len(pairs),
        "accesses": accesses,
        "fast_wall_seconds": round(fast_wall, 4),
        "exact_wall_seconds": round(exact_wall, 4),
        "speedup": round(exact_wall / fast_wall, 1) if fast_wall else 0.0,
        "model_version": FAST_MODEL_VERSION,
        "error_bars": {
            metric: round(bound, 4)
            for metric, bound in record.error_bars().items()
        },
    }


def write_report(path: str, report: Dict) -> None:
    """Write ``report`` as stable (sorted, indented) JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    """Read a report previously written by :func:`write_report`."""
    with open(path) as fh:
        return json.load(fh)


def compare_reports(
    current: Dict,
    baseline: Dict,
    threshold: float = DEFAULT_FAIL_THRESHOLD,
) -> List[str]:
    """Regressions of ``current`` against ``baseline``; empty = pass.

    Gates on the event/reference speedup ratio (host-speed independent,
    see the module docstring).  A schema or suite mismatch is itself a
    failure — it means the baseline no longer describes this benchmark.
    """
    problems: List[str] = []
    if current.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: current {current.get('schema')} "
            f"vs baseline {baseline.get('schema')} "
            "(regenerate the baseline with tools/bench_perf.py)"
        )
        return problems
    if current.get("suite") != baseline.get("suite"):
        problems.append(
            f"suite mismatch: current {current.get('suite')!r} "
            f"vs baseline {baseline.get('suite')!r}"
        )
        return problems
    base_ratio = baseline.get("speedup_vs_reference")
    cur_ratio = current.get("speedup_vs_reference")
    if base_ratio is None or cur_ratio is None:
        problems.append("missing speedup_vs_reference in report(s)")
        return problems
    floor = base_ratio * (1.0 - threshold)
    if cur_ratio < floor:
        problems.append(
            f"event-loop speedup regressed: {cur_ratio:.3f}x vs "
            f"baseline {base_ratio:.3f}x (floor {floor:.3f}x at "
            f"threshold {threshold:.0%})"
        )
    base_fast = (baseline.get("fast_vs_exact") or {}).get("speedup")
    cur_fast = (current.get("fast_vs_exact") or {}).get("speedup")
    if base_fast is not None:
        if cur_fast is None:
            problems.append("baseline has fast_vs_exact but current lacks it")
        else:
            fast_floor = base_fast * (1.0 - threshold)
            if cur_fast < fast_floor:
                problems.append(
                    f"fast-model speedup regressed: {cur_fast:.1f}x vs "
                    f"baseline {base_fast:.1f}x (floor {fast_floor:.1f}x "
                    f"at threshold {threshold:.0%})"
                )
    return problems
