"""Parallel sweep execution: shard a job grid across worker processes.

The paper's evaluation is a grid — 30 benchmark stand-ins x {NP, PS,
MS, PMS, ablations, sensitivity points} — and every cell is an
independent deterministic simulation.  This module fans such grids out
over a :class:`~concurrent.futures.ProcessPoolExecutor`, with all
results flowing through the same two cache layers the serial path uses
(:mod:`repro.experiments.runner`'s in-process dict, then the on-disk
:mod:`repro.experiments.store`).

Robustness:

* **per-job timeout** — a job that exceeds ``timeout`` seconds in a
  worker is re-run serially in the parent (the straggler worker is
  abandoned at pool shutdown);
* **bounded retry on worker crash** — a dead worker process breaks the
  whole pool; affected jobs are resubmitted to a fresh pool up to
  ``retries`` times each, then fall back to serial execution;
* **graceful serial fallback** — ``jobs<=1``, a pool that cannot be
  created (restricted environments), or exhausted retries all degrade
  to the ordinary in-process path.  A sweep always completes.

Determinism: workers execute :func:`compute_job` — the exact code the
serial path runs, dispatching each job's fidelity tier (exact
simulator or the :mod:`repro.fastsim` model) — and ship results back
through the store codec, which is lossless for ints, floats, and
strings.  A parallel sweep therefore compares equal, field for field,
to the serial run of the same specs (asserted by
``tests/integration/test_sweep_parallel``).

Telemetry never enters this module: traced runs are serial-only by the
rule established in :mod:`repro.telemetry` (see docs/telemetry.md).

Observability (:mod:`repro.obs`, docs/observability.md): every call to
:func:`run_jobs` reports serving outcomes, per-job wall times, queue
waits, and robustness events into the process metrics registry (a
no-op unless metrics are enabled), can drive a live
:class:`~repro.obs.progress.SweepProgress`, and keeps a flight
recorder whose ring is dumped as a post-mortem JSON under
``.repro-results/postmortem/`` whenever a job times out or exhausts
its crash-retry budget.  The silent paths of the robustness machinery
log through the ``repro.experiments.sweep`` logger.

Span tracing (:mod:`repro.obs.spans`): when a live collector is
installed, every call opens a ``sweep.run_jobs`` span and records one
``sweep.job`` span per *executed* job (cache/store hits resolve in
microseconds and would flood the tree), with ``sweep.queue_wait`` /
``sweep.exec`` children synthesized from the worker's timing stamps —
workers are separate processes, so they report wall-clock stamps and
the parent builds the spans.  Disabled (the default) this costs one
branch per job.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from time import perf_counter
from time import time as _wall_time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.experiments import runner, store
from repro.fastsim.version import JOB_FIDELITIES
from repro.obs import flightrec
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.progress import SweepProgress
from repro.system.presets import make_config
from repro.system.results import RunResult

_log = logging.getLogger("repro.experiments.sweep")


@dataclass(frozen=True)
class Job:
    """One cell of a sweep grid, in unresolved (default-able) form.

    ``mutate_key`` exists only so job specs share a key shape with
    :func:`runner.cache_key` / :func:`store.job_spec`; it must stay
    ``None`` here.  Mutate callables cannot cross process boundaries,
    so mutated runs go through ``runner.run(mutate=..., mutate_key=...)``
    serially — :meth:`resolve` rejects anything else rather than cache
    an unmutated result under a mutate-keyed identity.
    """

    benchmark: str
    config_name: str
    accesses: Optional[int] = None
    seed: Optional[int] = None
    threads: int = 1
    scheduler: str = "ahb"
    mutate_key: Optional[str] = None
    #: execution tier: "exact" (cycle-accurate simulator) or "fast"
    #: (the :mod:`repro.fastsim` analytic model) — docs/fidelity.md
    fidelity: str = "exact"

    def resolve(self) -> "Job":
        """Fill env-backed defaults and validate the trace length."""
        if self.mutate_key is not None:
            raise ValueError(
                "sweep jobs cannot carry mutate_key: mutate callables do "
                "not cross process boundaries, so the sweep engine would "
                "cache an unmutated result under a mutated identity. Use "
                "runner.run(mutate=..., mutate_key=...) serially instead."
            )
        if self.fidelity not in JOB_FIDELITIES:
            raise ValueError(
                f"unknown job fidelity {self.fidelity!r}: expected one of "
                f"{JOB_FIDELITIES} (\"auto\" is a *sweep* policy — the "
                "orchestrator lowers it to per-job tiers; see "
                "repro.fastsim.orchestrator)"
            )
        return replace(
            self,
            accesses=runner.resolve_accesses(self.accesses),
            seed=runner.default_seed() if self.seed is None else self.seed,
        )


def expand_grid(
    benchmarks: Sequence[str],
    config_names: Sequence[str],
    accesses: Optional[int] = None,
    seed: Optional[int] = None,
    threads: int = 1,
    scheduler: str = "ahb",
    fidelity: str = "exact",
) -> List[Job]:
    """Expand a benchmarks x configs grid into unresolved :class:`Job` specs.

    This is the single grid-expansion rule shared by
    :func:`runner.run_suite`, the ``repro sweep`` CLI, and the fabric
    coordinator (:mod:`repro.fabric`): benchmark-major, config-minor
    order, so results align positionally with the nested suite dict.
    ``fidelity`` is a per-job tier ("exact" or "fast"); the "auto"
    sweep policy is lowered before grid expansion.
    """
    return [
        Job(benchmark=b, config_name=c, accesses=accesses, seed=seed,
            threads=threads, scheduler=scheduler, fidelity=fidelity)
        for b in benchmarks
        for c in config_names
    ]


def prepare(job: Job) -> Tuple["Job", Tuple, Dict[str, object], SystemConfig]:
    """Resolve one job and derive its three identities.

    Returns ``(resolved job, in-process cache key, store spec, built
    config)``.  The store spec embeds a fingerprint of the built config,
    which is what makes job keys portable: any process (local worker,
    remote fabric agent, coordinator) that prepares the same job from
    the same code arrives at the same SHA-256 key.
    """
    job = job.resolve()
    key = runner.cache_key(job.benchmark, job.config_name, job.accesses,
                           job.seed, job.threads, job.scheduler,
                           job.mutate_key, fidelity=job.fidelity)
    config = make_config(job.config_name, threads=job.threads,
                         scheduler=job.scheduler)
    spec = store.job_spec(job.benchmark, job.config_name, job.accesses,
                          job.seed, job.threads, job.scheduler,
                          job.mutate_key, config, fidelity=job.fidelity)
    return job, key, spec, config


def lookup(
    key: Tuple,
    spec: Mapping[str, object],
    active_store: Optional[store.ResultStore],
) -> Tuple[Optional[RunResult], Optional[str]]:
    """Two-layer read-through shared by the local and fabric paths.

    Checks the in-process cache, then the on-disk store (seeding the
    cache on a store hit).  Returns ``(result, source)`` where source is
    ``"cache"``, ``"store"``, or ``None`` when the job must execute.
    """
    cached = runner.cached_result(key)
    if cached is not None:
        return cached, "cache"
    if active_store is not None:
        stored = active_store.get(spec)
        if stored is not None:
            runner.seed_cache(key, stored)
            return stored, "store"
    return None, None


@dataclass
class SweepStats:
    """Where every job of one :func:`run_jobs` call was served from.

    The ``store_*`` fields are the :class:`~repro.experiments.store.
    StoreStats` delta observed during this call (the counters exist on
    every store instance but used to be write-only — here they surface
    in every sweep summary).
    """

    total: int = 0
    from_cache: int = 0  # in-process cache hits
    from_store: int = 0  # on-disk store hits
    executed_parallel: int = 0
    executed_serial: int = 0
    retries: int = 0  # resubmissions after a pool break
    timeouts: int = 0  # jobs that hit the per-job timeout
    pool_failures: int = 0  # pool breaks observed
    serial_fallbacks: int = 0  # jobs forced serial (no pool/retries gone)
    store_hits: int = 0  # store reads answered during this call
    store_misses: int = 0  # store reads that missed
    store_errors: int = 0  # corrupt entries treated as misses
    store_puts: int = 0  # results persisted during this call
    fast_jobs: int = 0  # jobs resolved at the fast-model tier
    exact_jobs: int = 0  # jobs resolved at the cycle-accurate tier
    validated: int = 0  # fast jobs cross-checked by a FidelityGate

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of every counter."""
        return dict(self.__dict__)

    def summary(self) -> str:
        """The one-line provenance summary ``repro sweep`` prints."""
        line = (
            f"{self.total} jobs: {self.from_cache} cached, "
            f"{self.from_store} from store, "
            f"{self.executed_parallel} simulated in workers, "
            f"{self.executed_serial} simulated serially"
            + (f", {self.retries} retried" if self.retries else "")
            + (f", {self.timeouts} timed out" if self.timeouts else "")
            + (f", {self.pool_failures} pool failures"
               if self.pool_failures else "")
            + (f", {self.serial_fallbacks} serial fallbacks"
               if self.serial_fallbacks else "")
        )
        if self.store_hits or self.store_misses or self.store_puts:
            line += (
                f"; store: {self.store_hits} hits / "
                f"{self.store_misses} misses, {self.store_puts} written"
                + (f", {self.store_errors} corrupt" if self.store_errors else "")
            )
        return line

    def merge(self, other: "SweepStats") -> None:
        """Fold another stats block into this one (counter-wise sum)."""
        for name, value in other.as_dict().items():
            setattr(self, name, getattr(self, name) + value)

    def describe(self) -> str:
        """:meth:`summary` plus the fidelity breakdown of the sweep.

        Single-tier exact sweeps describe exactly like before; as soon
        as any job ran at the fast tier the line reports how many jobs
        each tier served and how many fast points a
        :class:`~repro.fastsim.gate.FidelityGate` cross-checked against
        the exact simulator.
        """
        line = self.summary()
        if self.fast_jobs:
            line += (
                f"; fidelity: {self.fast_jobs} fast / "
                f"{self.exact_jobs} exact, {self.validated} validated"
            )
        return line


@dataclass
class SweepOutcome:
    """Results aligned with the input specs, plus provenance counters."""

    results: List[RunResult] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)


#: Internal: one job ready to execute.
_Pending = Tuple[int, Job, Tuple, Dict[str, object], SystemConfig]


class _SweepObs:
    """Observability fan-out for one :func:`run_jobs` call.

    Bundles the metric instruments, the optional live
    :class:`~repro.obs.progress.SweepProgress`, and the flight
    recorder, so the execution paths below report through one object.
    Every method is a near-no-op when metrics are disabled and no
    progress/recorder is attached.
    """

    __slots__ = ("metrics", "progress", "recorder", "enabled",
                 "spans", "sweep_ctx",
                 "_jobs", "_seconds", "_queue_wait", "_events")

    def __init__(
        self,
        metrics: obs_metrics.MetricsRegistry,
        progress: Optional[SweepProgress],
        recorder: flightrec.FlightRecorder,
        spans: Optional[obs_spans.SpanCollector] = None,
        sweep_ctx: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.metrics = metrics
        self.progress = progress
        self.recorder = recorder
        self.spans = spans if spans is not None else obs_spans.NULL_SPANS
        self.sweep_ctx = sweep_ctx
        self.enabled = metrics.enabled
        if self.enabled:
            self._jobs = metrics.counter(
                "repro_sweep_jobs_total",
                "Sweep jobs resolved, by serving outcome.",
                ("outcome",),
            )
            self._seconds = metrics.histogram(
                "repro_sweep_job_seconds",
                "Per-job wall time of executed jobs, by execution mode.",
                ("mode",),
            )
            self._queue_wait = metrics.histogram(
                "repro_sweep_queue_wait_seconds",
                "Submit-to-worker-start wait of parallel jobs.",
            )
            self._events = metrics.counter(
                "repro_sweep_events_total",
                "Sweep robustness events (timeout, retry, pool_break, ...).",
                ("event",),
            )

    def job_done(
        self,
        outcome: str,
        seconds: Optional[float] = None,
        queue_wait: Optional[float] = None,
    ) -> None:
        """One job resolved: count it, time it, advance the progress."""
        if self.enabled:
            self._jobs.inc(outcome=outcome)
            if seconds is not None:
                self._seconds.observe(seconds, mode=outcome)
            if queue_wait is not None:
                self._queue_wait.observe(queue_wait)
        if self.progress is not None:
            self.progress.job_done(outcome, seconds)

    def job_span(
        self,
        job: Job,
        mode: str,
        started_unix: Optional[float],
        exec_s: Optional[float],
        queue_wait_s: Optional[float] = None,
    ) -> None:
        """Synthesize the span tree of one executed job from its stamps.

        Workers run in other processes, so instead of live spans they
        ship wall-clock stamps home and the parent reconstructs a
        ``sweep.job`` span (with ``sweep.queue_wait`` / ``sweep.exec``
        children) under the sweep root.  Injected worker stubs may not
        report stamps; those jobs simply go untraced.
        """
        if not self.spans.enabled or started_unix is None or exec_s is None:
            return
        wait = queue_wait_s or 0.0
        submitted = started_unix - wait
        parent = self.spans.add(
            "sweep.job", submitted, wait + exec_s, parent=self.sweep_ctx,
            benchmark=job.benchmark, config=job.config_name,
            fidelity=job.fidelity, mode=mode,
        )
        if wait > 0.0:
            self.spans.add("sweep.queue_wait", submitted, wait, parent=parent)
        self.spans.add("sweep.exec", started_unix, exec_s, parent=parent,
                       benchmark=job.benchmark, config=job.config_name)

    def event(self, name: str, **fields: object) -> None:
        """One robustness event: metric, flight-recorder note, progress."""
        if self.enabled:
            self._events.inc(event=name)
        self.recorder.note(name, **fields)
        if self.progress is not None:
            self.progress.note_event(name)

    def postmortem(self, reason: str, item: _Pending, **extra: object) -> None:
        """Dump the flight recorder for one failed job (never raises)."""
        spec = item[3]
        try:
            path = self.recorder.postmortem(
                reason, store.job_key(spec), spec=spec, extra=extra or None
            )
        except Exception:  # defensive: diagnostics must not kill sweeps
            _log.warning("post-mortem dump failed", exc_info=True)
            return
        if path is not None:
            _log.info("post-mortem written: %s", path)


def _job_payload(job: Job) -> Dict[str, object]:
    """The picklable argument a worker receives (no callables).

    ``_submitted`` carries the parent's submit wall-clock stamp so the
    worker can report its queue wait (same host, same clock).
    """
    return {
        "benchmark": job.benchmark,
        "accesses": job.accesses,
        "seed": job.seed,
        "threads": job.threads,
        "fidelity": job.fidelity,
        "_submitted": _wall_time(),
    }


def compute_job(
    config: SystemConfig,
    benchmark: str,
    accesses: int,
    seed: int,
    threads: int,
    fidelity: str,
) -> RunResult:
    """Tier dispatch shared by serial and worker execution paths.

    One function, both tiers: the parallel == serial determinism
    guarantee extends to fast jobs because workers and the serial
    fallback route through this exact dispatch.
    """
    if fidelity == "fast":
        from repro.fastsim.model import simulate_job_fast

        return simulate_job_fast(config, benchmark, accesses, seed, threads)
    return runner.simulate_job(config, benchmark, accesses, seed, threads)


def _execute_job(payload: Dict[str, object], config: SystemConfig) -> Dict[str, object]:
    """Worker entry point: simulate one resolved job.

    The parent ships the fully-built :class:`SystemConfig` (presets
    only — :meth:`Job.resolve` rejects mutated jobs), so workers never
    need callables; the result travels back through the store codec,
    annotated with a small ``_obs`` timing block (queue wait + exec
    seconds) the parent strips before decoding.
    """
    started = _wall_time()
    t0 = perf_counter()
    result = compute_job(
        config,
        payload["benchmark"],
        payload["accesses"],
        payload["seed"],
        payload["threads"],
        str(payload.get("fidelity", "exact")),
    )
    encoded = store.encode_result(result)
    encoded["_obs"] = {
        "queue_wait_s": max(0.0, started - payload.get("_submitted", started)),
        "exec_s": perf_counter() - t0,
        "started_unix": started,
    }
    return encoded


def _make_executor(workers: int) -> Optional[ProcessPoolExecutor]:
    """A process pool, or None when the platform refuses one."""
    try:
        return ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError, PermissionError,
            ValueError):
        return None


def run_jobs(
    specs: Sequence[Job],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    use_store: Optional[bool] = None,
    worker: Optional[Callable[[Dict[str, object], SystemConfig], Dict[str, object]]] = None,
    progress: Optional[SweepProgress] = None,
    metrics: Optional[obs_metrics.MetricsRegistry] = None,
    recorder: Optional[flightrec.FlightRecorder] = None,
    spans: Optional[obs_spans.SpanCollector] = None,
    trace_parent: Optional[Mapping[str, str]] = None,
) -> SweepOutcome:
    """Execute a list of :class:`Job` specs, fanning out when asked.

    ``jobs`` is the worker-process count (1 = serial).  ``timeout``
    bounds each parallel job in seconds; ``retries`` bounds per-job
    resubmissions after worker crashes.  ``use_store`` overrides the
    ``REPRO_STORE`` default.  ``worker`` replaces the worker function
    (tests inject crashing/hanging stubs; it must be picklable).

    Observability: ``progress`` is a live
    :class:`~repro.obs.progress.SweepProgress` updated as jobs resolve;
    ``metrics`` overrides the process default registry; ``recorder``
    overrides the per-call flight recorder.  ``spans`` overrides the
    default span collector and ``trace_parent`` (a ``{"trace","span"}``
    context) parents the ``sweep.run_jobs`` span, letting a caller —
    ``run_suite``, a fabric agent — stitch this call into a wider
    trace.  All default to the ambient/no-op behaviour described in
    the module docstring.

    Returns a :class:`SweepOutcome` whose ``results`` align one-to-one
    with ``specs``.
    """
    stats = SweepStats(total=len(specs))
    results: List[Optional[RunResult]] = [None] * len(specs)
    active_store = (
        store.get_store()
        if (store.store_enabled() if use_store is None else use_store)
        else None
    )
    metrics = obs_metrics.default_registry() if metrics is None else metrics
    if recorder is None:
        recorder = flightrec.FlightRecorder(metrics=metrics)
    span_collector = obs_spans.default_collector() if spans is None else spans
    sweep_span = span_collector.span(
        "sweep.run_jobs", parent=trace_parent,
        total=len(specs), workers=max(1, jobs),
    )
    obs = _SweepObs(metrics, progress, recorder, span_collector,
                    sweep_span.context())
    if progress is not None:
        progress.begin(total=len(specs), workers=max(1, jobs))
    store_before = (
        active_store.stats.as_dict() if active_store is not None else None
    )
    recorder.attach("repro")
    try:
        pending: List[_Pending] = []
        for index, job in enumerate(specs):
            job, key, spec, config = prepare(job)
            if job.fidelity == "fast":
                stats.fast_jobs += 1
            else:
                stats.exact_jobs += 1
            found, source = lookup(key, spec, active_store)
            if found is not None:
                results[index] = found
                if source == "cache":
                    stats.from_cache += 1
                    obs.job_done("cached")
                else:
                    stats.from_store += 1
                    obs.job_done("store")
                continue
            pending.append((index, job, key, spec, config))

        if pending:
            if jobs <= 1:
                for item in pending:
                    results[item[0]] = _run_one_serial(
                        item, active_store, stats, obs
                    )
            else:
                executed = _run_parallel(
                    pending, jobs, timeout, retries, active_store, stats,
                    worker or _execute_job, obs,
                )
                for index, result in executed.items():
                    results[index] = result
    finally:
        recorder.detach()
        if sweep_span.enabled:
            sweep_span.set_attr(
                cached=stats.from_cache, store=stats.from_store,
                executed=stats.executed_parallel + stats.executed_serial,
            )
        sweep_span.finish()
        if store_before is not None:
            delta = {
                key: value - store_before.get(key, 0)
                for key, value in active_store.stats.as_dict().items()
            }
            stats.store_hits = delta.get("hits", 0)
            stats.store_misses = delta.get("misses", 0)
            stats.store_errors = delta.get("errors", 0)
            stats.store_puts = delta.get("puts", 0)
        if progress is not None:
            progress.finish()
    return SweepOutcome(results=results, stats=stats)


def _finish(
    item: _Pending,
    result: RunResult,
    active_store: Optional[store.ResultStore],
) -> RunResult:
    """Seed the in-process cache and the store with a fresh result."""
    _, _, key, spec, _ = item
    runner.seed_cache(key, result)
    if active_store is not None:
        active_store.put(spec, result)
    return result


def _run_one_serial(
    item: _Pending,
    active_store: Optional[store.ResultStore],
    stats: SweepStats,
    obs: _SweepObs,
) -> RunResult:
    """Execute one job in this process (the fallback of last resort)."""
    _, job, _, _, config = item
    start_wall = _wall_time()
    t0 = perf_counter()
    result = compute_job(config, job.benchmark, job.accesses, job.seed,
                      job.threads, job.fidelity)
    seconds = perf_counter() - t0
    stats.executed_serial += 1
    obs.job_done("serial", seconds)
    obs.job_span(job, "serial", start_wall, seconds)
    return _finish(item, result, active_store)


def _run_parallel(
    pending: List[_Pending],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    active_store: Optional[store.ResultStore],
    stats: SweepStats,
    worker: Callable,
    obs: _SweepObs,
) -> Dict[int, RunResult]:
    """Fan pending jobs out; retry pool breaks; fall back serially."""
    done: Dict[int, RunResult] = {}
    attempts: Dict[int, int] = {item[0]: 0 for item in pending}
    todo = list(pending)
    while todo:
        executor = _make_executor(min(jobs, len(todo)))
        if executor is None:
            _log.warning(
                "process pool unavailable; running %d job(s) serially",
                len(todo),
            )
            for item in todo:
                obs.event("serial_fallback", reason="pool_unavailable",
                          job_key=store.job_key(item[3]))
                stats.serial_fallbacks += 1
                done[item[0]] = _run_one_serial(item, active_store, stats, obs)
            return done
        futures = [
            (executor.submit(worker, _job_payload(item[1]), item[4]), item)
            for item in todo
        ]
        requeue: List[_Pending] = []
        pool_broke = False
        timed_out = False
        for future, item in futures:
            index = item[0]
            try:
                payload = future.result(timeout=timeout)
                timing = payload.pop("_obs", None) or {}
                done[index] = _finish(item, store.decode_result(payload),
                                      active_store)
                stats.executed_parallel += 1
                obs.job_done("parallel", timing.get("exec_s"),
                             timing.get("queue_wait_s"))
                obs.job_span(item[1], "parallel",
                             timing.get("started_unix"),
                             timing.get("exec_s"),
                             timing.get("queue_wait_s"))
            except FutureTimeout:
                # The worker may be wedged; abandon it (the pool is shut
                # down below without waiting) and run here instead.
                stats.timeouts += 1
                timed_out = True
                job_key = store.job_key(item[3])
                _log.warning(
                    "job %s (%s/%s) exceeded the %ss per-job timeout; "
                    "rerunning serially in the parent",
                    job_key, item[1].benchmark, item[1].config_name, timeout,
                )
                obs.event("timeout", job_key=job_key, timeout_s=timeout)
                obs.postmortem("timeout", item, timeout_s=timeout)
                done[index] = _run_one_serial(item, active_store, stats, obs)
            except BrokenProcessPool:
                # A worker died.  Every outstanding future on this pool
                # fails the same way; resubmit each on a fresh pool
                # until its retry budget runs out.
                if not pool_broke:
                    pool_broke = True
                    stats.pool_failures += 1
                    _log.warning(
                        "worker process died; pool broken with %d job(s) "
                        "outstanding", len(futures) - len(done),
                    )
                    obs.event("pool_break", outstanding=len(futures) - len(done))
                attempts[index] += 1
                job_key = store.job_key(item[3])
                if attempts[index] <= retries:
                    stats.retries += 1
                    _log.info(
                        "resubmitting job %s on a fresh pool (attempt %d/%d)",
                        job_key, attempts[index], retries,
                    )
                    obs.event("retry", job_key=job_key,
                              attempt=attempts[index], budget=retries)
                    requeue.append(item)
                else:
                    stats.serial_fallbacks += 1
                    _log.error(
                        "job %s exhausted its %d crash retr%s; falling back "
                        "to serial execution",
                        job_key, retries, "y" if retries == 1 else "ies",
                    )
                    obs.event("retry_exhausted", job_key=job_key,
                              attempts=attempts[index])
                    obs.postmortem("worker_crash", item,
                                   attempts=attempts[index], budget=retries)
                    done[index] = _run_one_serial(item, active_store, stats,
                                                  obs)
        if timed_out:
            # A wedged worker would otherwise be joined at interpreter
            # exit, stalling the parent for the worker's full runtime.
            for process in list(getattr(executor, "_processes", {}).values()):
                process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        todo = requeue
    return done
