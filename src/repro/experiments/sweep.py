"""Parallel sweep execution: shard a job grid across worker processes.

The paper's evaluation is a grid — 30 benchmark stand-ins x {NP, PS,
MS, PMS, ablations, sensitivity points} — and every cell is an
independent deterministic simulation.  This module fans such grids out
over a :class:`~concurrent.futures.ProcessPoolExecutor`, with all
results flowing through the same two cache layers the serial path uses
(:mod:`repro.experiments.runner`'s in-process dict, then the on-disk
:mod:`repro.experiments.store`).

Robustness:

* **per-job timeout** — a job that exceeds ``timeout`` seconds in a
  worker is re-run serially in the parent (the straggler worker is
  abandoned at pool shutdown);
* **bounded retry on worker crash** — a dead worker process breaks the
  whole pool; affected jobs are resubmitted to a fresh pool up to
  ``retries`` times each, then fall back to serial execution;
* **graceful serial fallback** — ``jobs<=1``, a pool that cannot be
  created (restricted environments), or exhausted retries all degrade
  to the ordinary in-process path.  A sweep always completes.

Determinism: workers execute :func:`runner.simulate_job` — the exact
code the serial path runs — and ship results back through the store
codec, which is lossless for ints, floats, and strings.  A parallel
sweep therefore compares equal, field for field, to the serial run of
the same specs (asserted by ``tests/integration/test_sweep_parallel``).

Telemetry never enters this module: traced runs are serial-only by the
rule established in :mod:`repro.telemetry` (see docs/telemetry.md).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.experiments import runner, store
from repro.system.presets import make_config
from repro.system.results import RunResult


@dataclass(frozen=True)
class Job:
    """One cell of a sweep grid, in unresolved (default-able) form.

    ``mutate_key`` exists only so job specs share a key shape with
    :func:`runner.cache_key` / :func:`store.job_spec`; it must stay
    ``None`` here.  Mutate callables cannot cross process boundaries,
    so mutated runs go through ``runner.run(mutate=..., mutate_key=...)``
    serially — :meth:`resolve` rejects anything else rather than cache
    an unmutated result under a mutate-keyed identity.
    """

    benchmark: str
    config_name: str
    accesses: Optional[int] = None
    seed: Optional[int] = None
    threads: int = 1
    scheduler: str = "ahb"
    mutate_key: Optional[str] = None

    def resolve(self) -> "Job":
        """Fill env-backed defaults and validate the trace length."""
        if self.mutate_key is not None:
            raise ValueError(
                "sweep jobs cannot carry mutate_key: mutate callables do "
                "not cross process boundaries, so the sweep engine would "
                "cache an unmutated result under a mutated identity. Use "
                "runner.run(mutate=..., mutate_key=...) serially instead."
            )
        return replace(
            self,
            accesses=runner.resolve_accesses(self.accesses),
            seed=runner.default_seed() if self.seed is None else self.seed,
        )


@dataclass
class SweepStats:
    """Where every job of one :func:`run_jobs` call was served from."""

    total: int = 0
    from_cache: int = 0  # in-process cache hits
    from_store: int = 0  # on-disk store hits
    executed_parallel: int = 0
    executed_serial: int = 0
    retries: int = 0  # resubmissions after a pool break
    timeouts: int = 0  # jobs that hit the per-job timeout
    pool_failures: int = 0  # pool breaks observed

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def describe(self) -> str:
        return (
            f"{self.total} jobs: {self.from_cache} cached, "
            f"{self.from_store} from store, "
            f"{self.executed_parallel} simulated in workers, "
            f"{self.executed_serial} simulated serially"
            + (f", {self.retries} retried" if self.retries else "")
            + (f", {self.timeouts} timed out" if self.timeouts else "")
        )


@dataclass
class SweepOutcome:
    """Results aligned with the input specs, plus provenance counters."""

    results: List[RunResult] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)


#: Internal: one job ready to execute.
_Pending = Tuple[int, Job, Tuple, Dict[str, object], SystemConfig]


def _job_payload(job: Job) -> Dict[str, object]:
    """The picklable argument a worker receives (no callables)."""
    return {
        "benchmark": job.benchmark,
        "accesses": job.accesses,
        "seed": job.seed,
        "threads": job.threads,
    }


def _execute_job(payload: Dict[str, object], config: SystemConfig) -> Dict[str, object]:
    """Worker entry point: simulate one resolved job.

    The parent ships the fully-built :class:`SystemConfig` (presets
    only — :meth:`Job.resolve` rejects mutated jobs), so workers never
    need callables; the result travels back through the store codec.
    """
    result = runner.simulate_job(
        config,
        payload["benchmark"],
        payload["accesses"],
        payload["seed"],
        payload["threads"],
    )
    return store.encode_result(result)


def _make_executor(workers: int) -> Optional[ProcessPoolExecutor]:
    """A process pool, or None when the platform refuses one."""
    try:
        return ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError, PermissionError,
            ValueError):
        return None


def run_jobs(
    specs: Sequence[Job],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    use_store: Optional[bool] = None,
    worker: Optional[Callable[[Dict[str, object], SystemConfig], Dict[str, object]]] = None,
) -> SweepOutcome:
    """Execute a list of :class:`Job` specs, fanning out when asked.

    ``jobs`` is the worker-process count (1 = serial).  ``timeout``
    bounds each parallel job in seconds; ``retries`` bounds per-job
    resubmissions after worker crashes.  ``use_store`` overrides the
    ``REPRO_STORE`` default.  ``worker`` replaces the worker function
    (tests inject crashing/hanging stubs; it must be picklable).

    Returns a :class:`SweepOutcome` whose ``results`` align one-to-one
    with ``specs``.
    """
    stats = SweepStats(total=len(specs))
    results: List[Optional[RunResult]] = [None] * len(specs)
    active_store = (
        store.get_store()
        if (store.store_enabled() if use_store is None else use_store)
        else None
    )

    pending: List[_Pending] = []
    for index, job in enumerate(specs):
        job = job.resolve()
        key = runner.cache_key(job.benchmark, job.config_name, job.accesses,
                               job.seed, job.threads, job.scheduler,
                               job.mutate_key)
        cached = runner.cached_result(key)
        if cached is not None:
            results[index] = cached
            stats.from_cache += 1
            continue
        config = make_config(job.config_name, threads=job.threads,
                             scheduler=job.scheduler)
        spec = store.job_spec(job.benchmark, job.config_name, job.accesses,
                              job.seed, job.threads, job.scheduler,
                              job.mutate_key, config)
        if active_store is not None:
            stored = active_store.get(spec)
            if stored is not None:
                results[index] = stored
                runner.seed_cache(key, stored)
                stats.from_store += 1
                continue
        pending.append((index, job, key, spec, config))

    if pending:
        if jobs <= 1:
            for item in pending:
                results[item[0]] = _run_one_serial(item, active_store, stats)
        else:
            executed = _run_parallel(pending, jobs, timeout, retries,
                                     active_store, stats, worker or _execute_job)
            for index, result in executed.items():
                results[index] = result
    return SweepOutcome(results=results, stats=stats)


def _finish(
    item: _Pending,
    result: RunResult,
    active_store: Optional[store.ResultStore],
) -> RunResult:
    """Seed the in-process cache and the store with a fresh result."""
    _, _, key, spec, _ = item
    runner.seed_cache(key, result)
    if active_store is not None:
        active_store.put(spec, result)
    return result


def _run_one_serial(
    item: _Pending,
    active_store: Optional[store.ResultStore],
    stats: SweepStats,
) -> RunResult:
    """Execute one job in this process (the fallback of last resort)."""
    _, job, _, _, config = item
    result = runner.simulate_job(config, job.benchmark, job.accesses,
                                 job.seed, job.threads)
    stats.executed_serial += 1
    return _finish(item, result, active_store)


def _run_parallel(
    pending: List[_Pending],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    active_store: Optional[store.ResultStore],
    stats: SweepStats,
    worker: Callable,
) -> Dict[int, RunResult]:
    """Fan pending jobs out; retry pool breaks; fall back serially."""
    done: Dict[int, RunResult] = {}
    attempts: Dict[int, int] = {item[0]: 0 for item in pending}
    todo = list(pending)
    while todo:
        executor = _make_executor(min(jobs, len(todo)))
        if executor is None:
            for item in todo:
                done[item[0]] = _run_one_serial(item, active_store, stats)
            return done
        futures = [
            (executor.submit(worker, _job_payload(item[1]), item[4]), item)
            for item in todo
        ]
        requeue: List[_Pending] = []
        pool_broke = False
        timed_out = False
        for future, item in futures:
            index = item[0]
            try:
                payload = future.result(timeout=timeout)
                done[index] = _finish(item, store.decode_result(payload),
                                      active_store)
                stats.executed_parallel += 1
            except FutureTimeout:
                # The worker may be wedged; abandon it (the pool is shut
                # down below without waiting) and run here instead.
                stats.timeouts += 1
                timed_out = True
                done[index] = _run_one_serial(item, active_store, stats)
            except BrokenProcessPool:
                # A worker died.  Every outstanding future on this pool
                # fails the same way; resubmit each on a fresh pool
                # until its retry budget runs out.
                if not pool_broke:
                    pool_broke = True
                    stats.pool_failures += 1
                attempts[index] += 1
                if attempts[index] <= retries:
                    stats.retries += 1
                    requeue.append(item)
                else:
                    done[index] = _run_one_serial(item, active_store, stats)
        if timed_out:
            # A wedged worker would otherwise be joined at interpreter
            # exit, stalling the parent for the worker's full runtime.
            for process in list(getattr(executor, "_processes", {}).values()):
                process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        todo = requeue
    return done
