"""Extensions the paper describes but does not evaluate.

* **Multi-line prefetching** — the generalised inequality (6) lets the
  prefetcher issue several consecutive prefetches at once (Section 3.1
  describes the two-line case); ``degree_sweep`` evaluates degrees 1-4.
* **ASD as the only prefetcher** — the paper's future work suggests
  applying Adaptive Stream Detection processor-side; ``asd_only``
  compares three single-prefetcher machines head to head: memory-side
  ASD (``ASD_PS``), the stock Power5 processor-side unit (``PS``), and
  ASD *as* the processor-side prefetcher (``PS_ASD``, the future-work
  idea implemented in :mod:`repro.prefetch.asd_processor_side`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.runner import run
from repro.workloads.profiles import FOCUS_BENCHMARKS

DEGREES = (1, 2, 3, 4)


@dataclass
class DegreeSweep:
    benchmarks: Sequence[str]
    #: benchmark -> {degree: speedup over NP}
    speedups: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def average(self, degree: int) -> float:
        values = [self.speedups[b][degree] for b in self.benchmarks]
        return sum(values) / len(values)


def degree_sweep(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
    degrees: Sequence[int] = DEGREES,
) -> DegreeSweep:
    """Multi-line prefetching via inequality (6), degrees 1..4."""
    sweep = DegreeSweep(benchmarks)
    for benchmark in benchmarks:
        baseline = run(benchmark, "NP", accesses=accesses)
        row: Dict[int, float] = {}
        for degree in degrees:
            name = "PMS" if degree == 1 else f"PMS_DEGREE{degree}"
            result = run(benchmark, name, accesses=accesses)
            row[degree] = baseline.cycles / result.cycles if result.cycles else 0.0
        sweep.speedups[benchmark] = row
    return sweep


@dataclass
class ASDOnlyResult:
    benchmarks: Sequence[str]
    #: benchmark -> {"asd": MS-ASD, "ps": Power5 PS, "ps_asd": PS-side
    #: ASD}, each a gain over NP in percent
    gains: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, key: str) -> float:
        values = [self.gains[b][key] for b in self.benchmarks]
        return sum(values) / len(values)


def asd_only(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
) -> ASDOnlyResult:
    """Single-prefetcher machines head to head (paper future work)."""
    result = ASDOnlyResult(benchmarks)
    for benchmark in benchmarks:
        baseline = run(benchmark, "NP", accesses=accesses)
        result.gains[benchmark] = {
            "asd": run(benchmark, "ASD_PS", accesses=accesses).gain_vs(baseline),
            "ps": run(benchmark, "PS", accesses=accesses).gain_vs(baseline),
            "ps_asd": run(benchmark, "PS_ASD", accesses=accesses).gain_vs(
                baseline
            ),
        }
    return result


def render_degree(sweep: DegreeSweep) -> str:
    """Render the experiment as the paper-style text table."""
    headers = ["benchmark"] + [f"degree {d}" for d in DEGREES]
    rows = [
        [b] + [sweep.speedups[b][d] for d in DEGREES] for b in sweep.benchmarks
    ]
    rows.append(["Average"] + [sweep.average(d) for d in DEGREES])
    return format_table(headers, rows, title="Multi-line prefetch (speedup over NP)")


def render_asd_only(result: ASDOnlyResult) -> str:
    """Render the experiment as the paper-style text table."""
    rows = [
        [b, result.gains[b]["asd"], result.gains[b]["ps"],
         result.gains[b]["ps_asd"]]
        for b in result.benchmarks
    ]
    rows.append(
        ["Average", result.average("asd"), result.average("ps"),
         result.average("ps_asd")]
    )
    return format_table(
        ["benchmark", "MS-ASD only", "Power5 PS", "PS-side ASD"],
        rows,
        title="Single-prefetcher machines (gain over NP, %)",
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    print(render_degree(degree_sweep()))
    print()
    print(render_asd_only(asd_only()))


if __name__ == "__main__":  # pragma: no cover
    main()
