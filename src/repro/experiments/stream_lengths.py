"""Figure 12: short streams dominate every workload.

Measures, at the memory controller, the percentage of *streams* of each
length 1..5 for the focus benchmarks.  The paper reports lengths 1-5
covering 78-96% of all streams, with the commercial workloads holding
substantial mass at lengths 2-5 (tpc-c ~37%, trade2 ~49%, sap ~40%,
notesbench ~62%) — the territory where ASD wins and both next-line and
P5-style prefetchers waste.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.runner import default_accesses, get_trace
from repro.experiments.slh_figures import mc_read_stream
from repro.workloads.profiles import FOCUS_BENCHMARKS


def stream_length_counts(reads: Sequence[int], window: int = 64) -> Dict[int, int]:
    """Count streams by length in a read-address sequence.

    Unbounded tracker (like :func:`repro.analysis.slh_accuracy.exact_slh`
    but counting streams instead of read mass).
    """
    expect: Dict[int, list] = {}
    streams: List[list] = []  # [last, length, step, expiry]
    counts: Dict[int, int] = {}

    def finish(stream: list) -> None:
        counts[stream[1]] = counts.get(stream[1], 0) + 1

    def drop(stream: list) -> None:
        if stream[1] == 1:
            for key in (stream[0] + 1, stream[0] - 1):
                if expect.get(key) is stream:
                    del expect[key]
        else:
            key = stream[0] + stream[2]
            if expect.get(key) is stream:
                del expect[key]

    for idx, line in enumerate(reads):
        if idx % 4096 == 0:
            alive = []
            for stream in streams:
                if stream[3] < idx:
                    drop(stream)
                    finish(stream)
                else:
                    alive.append(stream)
            streams = alive
        stream = expect.get(line)
        if stream is not None and stream[3] < idx:
            drop(stream)
            finish(stream)
            streams.remove(stream)
            stream = None
        if stream is not None:
            drop(stream)
            stream[2] = 1 if line > stream[0] else -1
            stream[0] = line
            stream[1] += 1
            stream[3] = idx + window
            expect[line + stream[2]] = stream
        else:
            fresh = [line, 1, 0, idx + window]
            streams.append(fresh)
            expect[line + 1] = fresh
            expect[line - 1] = fresh
    for stream in streams:
        finish(stream)
    return counts


@dataclass
class StreamLengthFigure:
    benchmarks: Sequence[str]
    #: benchmark -> {1..5: % of streams}; key 0 holds the ">5" remainder
    percentages: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def short_fraction(self, benchmark: str) -> float:
        """Percentage of streams of length 1-5 (paper: 78-96%)."""
        return sum(self.percentages[benchmark][i] for i in range(1, 6))

    def len2_5_fraction(self, benchmark: str) -> float:
        """Percentage of streams of length 2-5."""
        return sum(self.percentages[benchmark][i] for i in range(2, 6))


def fig12_stream_lengths(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
) -> StreamLengthFigure:
    """Compute Figure 12 over the focus benchmarks."""
    figure = StreamLengthFigure(benchmarks)
    for benchmark in benchmarks:
        trace = get_trace(benchmark, accesses or default_accesses())
        counts = stream_length_counts(mc_read_stream(trace))
        total = sum(counts.values()) or 1
        row = {
            i: 100.0 * counts.get(i, 0) / total for i in range(1, 6)
        }
        row[0] = 100.0 - sum(row.values())
        figure.percentages[benchmark] = row
    return figure


def render(figure: StreamLengthFigure) -> str:
    """Render the experiment as the paper-style text table."""
    headers = ["benchmark", "len1", "len2", "len3", "len4", "len5", "1-5", "2-5"]
    rows = []
    for benchmark in figure.benchmarks:
        p = figure.percentages[benchmark]
        rows.append(
            [benchmark, p[1], p[2], p[3], p[4], p[5],
             figure.short_fraction(benchmark), figure.len2_5_fraction(benchmark)]
        )
    return format_table(headers, rows, title="Stream lengths (% of streams)")


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    print(render(fig12_stream_lengths()))


if __name__ == "__main__":  # pragma: no cover
    main()
