"""Figures 2, 3, and 16: Stream Length Histograms at the controller.

These figures describe the *input* to Adaptive Stream Detection, so
they are computed from the memory-controller-visible read stream: the
benchmark trace filtered through the cache hierarchy (a read reaches
the MC only when it misses L1/L2/L3).  Figure 2 shows one epoch's SLH;
Figure 3 shows how the SLH varies across epochs; Figure 16 compares the
finite 8-slot Stream Filter's approximation against the exact histogram
for the same epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.analysis.slh_accuracy import exact_slh, slh_rms_error
from repro.cache.hierarchy import CacheHierarchy, Level
from repro.common.config import SLHConfig, StreamFilterConfig, SystemConfig
from repro.common.types import Direction
from repro.experiments.runner import default_accesses, get_trace
from repro.prefetch.slh import LikelihoodTables, slh_bars
from repro.prefetch.stream_filter import StreamFilter
from repro.workloads.trace import Trace


def mc_read_stream(trace: Trace, config: Optional[SystemConfig] = None) -> List[int]:
    """The sequence of read line addresses that reach the controller.

    Replays the trace through a cache hierarchy (no timing): loads that
    miss every level produce MC reads; stores write-validate and only
    surface as (ignored) write-backs.
    """
    config = config or SystemConfig()
    hierarchy = CacheHierarchy(config.hierarchy)
    reads: List[int] = []
    for _, line, is_write in trace.records:
        result = hierarchy.access(line, is_write)
        if result.level is Level.MEMORY and not is_write:
            reads.append(line)
            hierarchy.fill_from_memory(line)  # data returns before reuse
    return reads


def filter_slh(
    reads: Sequence[int],
    sf_config: Optional[StreamFilterConfig] = None,
    table_len: int = 16,
) -> List[float]:
    """The SLH a finite Stream Filter computes for a read sequence.

    Feeds the reads through one Stream Filter and accumulates evicted
    stream lengths into a single (direction-combined) likelihood table,
    then converts to bars — exactly what LHTnext gathers over an epoch.
    """
    sf_config = sf_config or StreamFilterConfig()
    tables = LikelihoodTables(SLHConfig(table_len=table_len, epoch_reads=max(len(reads), 1)))

    def sink(length: int, direction: Direction) -> None:
        tables.record_stream_next_only(length)

    sf = StreamFilter(sf_config, on_evict=sink)
    for i, line in enumerate(reads):
        sf.observe(line, i if sf_config.lifetime_unit == "reads" else i * 8)
    sf.flush()
    return slh_bars(tables.next, table_len)


@dataclass
class SLHFigure:
    """Bars for one or more epochs of one benchmark."""

    benchmark: str
    epoch_reads: int
    epoch_bars: List[List[float]]  # one bar vector per epoch
    all_epoch_bars: List[float]  # aggregate over the whole run

    def table(self, epochs: Optional[Sequence[int]] = None) -> str:
        headers = ["length"] + [f"epoch {e}" for e in (epochs or range(len(self.epoch_bars)))] + ["all"]
        rows = []
        lm = len(self.all_epoch_bars) - 1
        chosen = list(epochs or range(len(self.epoch_bars)))
        for i in range(1, lm + 1):
            row = [i] + [self.epoch_bars[e][i] * 100 for e in chosen]
            row.append(self.all_epoch_bars[i] * 100)
            rows.append(row)
        return format_table(headers, rows, title=f"SLH (% of reads), {self.benchmark}")


def fig2_slh_example(
    benchmark: str = "GemsFDTD",
    epoch_reads: int = 2000,
    accesses: Optional[int] = None,
    epoch_index: int = 1,
) -> List[float]:
    """Figure 2: the exact SLH of one epoch of (synthetic) GemsFDTD."""
    fig = fig3_slh_phases(benchmark, epoch_reads, accesses)
    index = min(epoch_index, len(fig.epoch_bars) - 1)
    return fig.epoch_bars[index]


def fig3_slh_phases(
    benchmark: str = "GemsFDTD",
    epoch_reads: int = 2000,
    accesses: Optional[int] = None,
) -> SLHFigure:
    """Figure 3: SLHs of every epoch plus the all-epoch aggregate."""
    trace = get_trace(benchmark, accesses or default_accesses())
    reads = mc_read_stream(trace)
    epoch_bars = []
    for start in range(0, len(reads) - epoch_reads + 1, epoch_reads):
        epoch_bars.append(exact_slh(reads[start : start + epoch_reads]))
    if not epoch_bars:
        epoch_bars.append(exact_slh(reads))
    return SLHFigure(
        benchmark=benchmark,
        epoch_reads=epoch_reads,
        epoch_bars=epoch_bars,
        all_epoch_bars=exact_slh(reads),
    )


@dataclass
class SLHAccuracy:
    """Figure 16: filter-approximated vs. exact SLH of one epoch."""

    benchmark: str
    actual: List[float]
    approximation: List[float]

    @property
    def rms_error(self) -> float:
        return slh_rms_error(self.approximation, self.actual)

    def table(self) -> str:
        lm = len(self.actual) - 1
        rows = [
            [i, self.actual[i] * 100, self.approximation[i] * 100]
            for i in range(1, lm + 1)
        ]
        return format_table(
            ["length", "actual %", "approx %"],
            rows,
            title=f"SLH accuracy, {self.benchmark} "
            f"(rms error {self.rms_error * 100:.2f} points)",
        )


def fig16_slh_accuracy(
    benchmark: str = "GemsFDTD",
    epoch_reads: int = 2000,
    accesses: Optional[int] = None,
    epoch_index: int = 1,
    sf_config: Optional[StreamFilterConfig] = None,
) -> SLHAccuracy:
    """Figure 16: how closely the 8-slot filter tracks the exact SLH."""
    trace = get_trace(benchmark, accesses or default_accesses())
    reads = mc_read_stream(trace)
    start = min(epoch_index * epoch_reads, max(len(reads) - epoch_reads, 0))
    window = reads[start : start + epoch_reads]
    return SLHAccuracy(
        benchmark=benchmark,
        actual=exact_slh(window),
        approximation=filter_slh(window, sf_config),
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    fig = fig3_slh_phases()
    shown = list(range(min(3, len(fig.epoch_bars))))
    print(fig.table(epochs=shown))
    print()
    print(fig16_slh_accuracy().table())


if __name__ == "__main__":  # pragma: no cover
    main()
