"""Figures 14 and 15: sensitivity to Prefetch Buffer and Stream Filter size.

The paper sweeps the Prefetch Buffer over {8, 16, 32, 1024} lines and
the Stream Filter over {4, 8, 16, 64} slots, finding that the evaluated
configuration (16 blocks, 8 slots) sits at the knee: growing either
structure keeps helping, but with diminishing returns.  Performance is
reported relative to the NP baseline, so every bar is a speedup.

An epoch-length sweep (an extension; the paper fixes epochs at 2000
reads) is included as ``epoch_sweep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro.analysis.report import format_table
from repro.common.config import SystemConfig
from repro.experiments.runner import run
from repro.workloads.profiles import FOCUS_BENCHMARKS

PB_SIZES = (8, 16, 32, 1024)
SF_SIZES = (4, 8, 16, 64)
EPOCH_LENGTHS = (500, 1000, 2000, 4000, 8000)


@dataclass
class SweepFigure:
    """Speedup over NP per benchmark per swept value."""

    parameter: str
    values: Sequence[int]
    #: benchmark -> {value: speedup over NP (1.0 = NP)}
    speedups: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def average(self, value: int) -> float:
        rows = [self.speedups[b][value] for b in self.speedups]
        return sum(rows) / len(rows)


def _pb_mutator(entries: int):
    def mutate(config: SystemConfig) -> SystemConfig:
        assoc = min(config.ms_prefetcher.buffer.assoc, entries)
        ms = replace(
            config.ms_prefetcher,
            buffer=replace(
                config.ms_prefetcher.buffer, entries=entries, assoc=assoc
            ),
        )
        return config.derive(ms_prefetcher=ms)

    return mutate


def _sf_mutator(slots: int):
    def mutate(config: SystemConfig) -> SystemConfig:
        ms = replace(
            config.ms_prefetcher,
            stream_filter=replace(config.ms_prefetcher.stream_filter, slots=slots),
        )
        return config.derive(ms_prefetcher=ms)

    return mutate


def _epoch_mutator(epoch_reads: int):
    def mutate(config: SystemConfig) -> SystemConfig:
        ms = replace(
            config.ms_prefetcher,
            slh=replace(config.ms_prefetcher.slh, epoch_reads=epoch_reads),
        )
        return config.derive(ms_prefetcher=ms)

    return mutate


def _sweep(
    parameter: str,
    values: Sequence[int],
    mutator_factory,
    benchmarks: Sequence[str],
    accesses: Optional[int],
) -> SweepFigure:
    figure = SweepFigure(parameter, values)
    for benchmark in benchmarks:
        baseline = run(benchmark, "NP", accesses=accesses)
        row: Dict[int, float] = {}
        for value in values:
            result = run(
                benchmark,
                "PMS",
                accesses=accesses,
                mutate=mutator_factory(value),
                mutate_key=f"{parameter}={value}",
            )
            row[value] = baseline.cycles / result.cycles if result.cycles else 0.0
        figure.speedups[benchmark] = row
    return figure


def fig14_buffer_size(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
    sizes: Sequence[int] = PB_SIZES,
) -> SweepFigure:
    """Figure 14: PMS speedup vs Prefetch Buffer size."""
    return _sweep("pb_entries", sizes, _pb_mutator, benchmarks, accesses)


def fig15_filter_size(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
    sizes: Sequence[int] = SF_SIZES,
) -> SweepFigure:
    """Figure 15: PMS speedup vs Stream Filter size."""
    return _sweep("sf_slots", sizes, _sf_mutator, benchmarks, accesses)


def epoch_sweep(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
    lengths: Sequence[int] = EPOCH_LENGTHS,
) -> SweepFigure:
    """Extension: PMS speedup vs SLH epoch length."""
    return _sweep("epoch_reads", lengths, _epoch_mutator, benchmarks, accesses)


def render(figure: SweepFigure) -> str:
    """Render the experiment as the paper-style text table."""
    headers = ["benchmark"] + [str(v) for v in figure.values]
    rows = []
    for benchmark, row in figure.speedups.items():
        rows.append([benchmark] + [row[v] for v in figure.values])
    rows.append(["Average"] + [figure.average(v) for v in figure.values])
    return format_table(
        headers, rows, title=f"PMS speedup over NP vs {figure.parameter}"
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    print(render(fig14_buffer_size()))
    print()
    print(render(fig15_filter_size()))


if __name__ == "__main__":  # pragma: no cover
    main()
