"""Figure 11: what Adaptive Stream Detection and Adaptive Scheduling buy.

Eight bars per focus benchmark, all with the processor-side prefetcher
active, normalised to the first (adaptive PMS) bar:

1. ASD + Adaptive Scheduling (the paper's PMS),
2-6. ASD + fixed scheduling policy 1 (most conservative) .. 5 (least),
7. next-line prefetcher in the MC + adaptive scheduling,
8. P5-style prefetcher in the MC + adaptive scheduling.

The paper finds adaptive scheduling ~2.3-3.6% better than the fixed
policies, ASD ~8.4% better than next-line, and — surprisingly — the
P5-style engine *worse* than plain next-line in this position, because
two-miss confirmation forfeits the short streams entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.runner import run
from repro.system.presets import ABLATION_CONFIGS
from repro.workloads.profiles import FOCUS_BENCHMARKS

#: Human labels in the paper's legend order.
LABELS = {
    "PMS": "ASD + Adaptive Scheduling",
    "PMS_POLICY1": "ASD + policy 1 (most conservative)",
    "PMS_POLICY2": "ASD + policy 2",
    "PMS_POLICY3": "ASD + policy 3",
    "PMS_POLICY4": "ASD + policy 4",
    "PMS_POLICY5": "ASD + policy 5 (least conservative)",
    "PMS_NEXTLINE": "next-line + adaptive scheduling",
    "PMS_P5MC": "P5-style + adaptive scheduling",
}


@dataclass
class AblationFigure:
    """Normalised execution times per benchmark and configuration."""

    benchmarks: Sequence[str]
    #: benchmark -> config -> execution time normalised to adaptive PMS
    normalized: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, config: str) -> float:
        values = [self.normalized[b][config] for b in self.benchmarks]
        return sum(values) / len(values)

    def best_fixed_policy_gap(self) -> float:
        """How much adaptive scheduling beats the *best* fixed policy,
        in percent of execution time (paper: 2.3-3.6% vs each policy)."""
        best = min(
            self.average(f"PMS_POLICY{k}") for k in range(1, 6)
        )
        return (best - 1.0) * 100

    def asd_vs_nextline(self) -> float:
        """ASD's improvement over the next-line engine, % of exec time."""
        return (self.average("PMS_NEXTLINE") - 1.0) * 100

    def nextline_vs_p5(self) -> float:
        """Next-line's improvement over the P5-style engine (positive =
        next-line faster, the paper's surprising result)."""
        return (self.average("PMS_P5MC") - self.average("PMS_NEXTLINE")) * 100


def fig11_ablation(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
) -> AblationFigure:
    """Compute Figure 11 over the focus benchmarks."""
    figure = AblationFigure(benchmarks)
    for benchmark in benchmarks:
        base = run(benchmark, "PMS", accesses=accesses)
        row: Dict[str, float] = {}
        for config in ABLATION_CONFIGS:
            result = (
                base
                if config == "PMS"
                else run(benchmark, config, accesses=accesses)
            )
            row[config] = result.normalized_time_vs(base)
        figure.normalized[benchmark] = row
    return figure


def render(figure: AblationFigure) -> str:
    """Render the experiment as the paper-style text table."""
    headers = ["benchmark"] + [c.replace("PMS_", "").lower() for c in ABLATION_CONFIGS]
    rows: List[List[object]] = []
    for benchmark in figure.benchmarks:
        rows.append(
            [benchmark] + [figure.normalized[benchmark][c] for c in ABLATION_CONFIGS]
        )
    rows.append(["Average"] + [figure.average(c) for c in ABLATION_CONFIGS])
    table = format_table(
        headers, rows, title="Normalized execution time (adaptive PMS = 1.0)"
    )
    extras = (
        f"\nadaptive vs best fixed policy: {figure.best_fixed_policy_gap():+.1f}%"
        f"\nASD vs next-line:              {figure.asd_vs_nextline():+.1f}%"
        f"\nnext-line vs P5-style:         {figure.nextline_vs_p5():+.1f}%"
    )
    return table + extras


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    print(render(fig11_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
