"""Figures 8, 9, 10: DRAM power and energy, PMS versus PS.

The paper compares the PMS configuration against PS: prefetch traffic
raises average DRAM power a little, while the shorter execution time
cuts total DRAM energy.  Background power dominates DRAM energy, so the
energy reduction roughly tracks the execution-time reduction — and for
the four non-memory-intensive SPEC benchmarks the power impact is
negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.metrics import power_energy_rows
from repro.analysis.report import format_table
from repro.experiments.runner import run_suite
from repro.workloads.profiles import get_profile, suite_benchmarks

#: Paper-reported suite averages: (power increase %, energy reduction %).
PAPER_AVERAGES = {
    "spec2006fp": (2.7, 9.8),
    "nas": (1.6, 7.9),
    "commercial": (2.8, 8.2),
}


@dataclass
class PowerFigure:
    suite: str
    rows: List[dict] = field(default_factory=list)

    @property
    def avg_power_increase(self) -> float:
        return sum(r["power_increase_pct"] for r in self.rows) / len(self.rows)

    @property
    def avg_energy_reduction(self) -> float:
        return sum(r["energy_reduction_pct"] for r in self.rows) / len(self.rows)

    def non_memory_intensive_avg_power(self) -> Optional[float]:
        """Average power increase over the suite's compute-bound members
        (the paper singles out gamess/namd/povray/calculix)."""
        light = [
            r
            for r in self.rows
            if not get_profile(r["benchmark"]).memory_intensive
        ]
        if not light:
            return None
        return sum(r["power_increase_pct"] for r in light) / len(light)


def power_figure(
    suite: str,
    accesses: Optional[int] = None,
    jobs: Optional[int] = None,
) -> PowerFigure:
    """Compute one of Figures 8/9/10 (``jobs`` > 1 runs in parallel)."""
    runs = run_suite(
        suite_benchmarks(suite), ("PS", "PMS"), accesses=accesses, jobs=jobs
    )
    return PowerFigure(suite, power_energy_rows(runs))


def fig8_power_spec(accesses: Optional[int] = None, jobs: Optional[int] = None) -> PowerFigure:
    """Figure 8: SPEC2006fp DRAM power/energy, PMS vs PS."""
    return power_figure("spec2006fp", accesses, jobs=jobs)


def fig9_power_nas(accesses: Optional[int] = None, jobs: Optional[int] = None) -> PowerFigure:
    """Figure 9: NAS DRAM power/energy, PMS vs PS."""
    return power_figure("nas", accesses, jobs=jobs)


def fig10_power_commercial(accesses: Optional[int] = None, jobs: Optional[int] = None) -> PowerFigure:
    """Figure 10: commercial DRAM power/energy, PMS vs PS."""
    return power_figure("commercial", accesses, jobs=jobs)


def render(figure: PowerFigure) -> str:
    """Render the experiment as the paper-style text table."""
    rows = [
        [r["benchmark"], r["power_increase_pct"], r["energy_reduction_pct"]]
        for r in figure.rows
    ]
    rows.append(["Average", figure.avg_power_increase, figure.avg_energy_reduction])
    paper = PAPER_AVERAGES.get(figure.suite)
    title = f"DRAM power/energy (PMS vs PS), {figure.suite}"
    if paper:
        title += f"   [paper averages: power +{paper[0]:.1f}%, energy -{paper[1]:.1f}%]"
    return format_table(
        ["benchmark", "power increase %", "energy reduction %"], rows, title=title
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    for figure in (fig8_power_spec, fig9_power_nas, fig10_power_commercial):
        print(render(figure()))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
