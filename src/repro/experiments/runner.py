"""Shared experiment runner with per-process run caching.

``run()`` simulates one (benchmark, config) pair deterministically;
repeated calls with the same key return the cached result, so the
benchmark suite can regenerate every figure without re-simulating the
overlapping runs.

Environment knobs:

* ``REPRO_TRACE_ACCESSES`` — trace length per benchmark (default 20000;
  raise for tighter statistics, lower for quick smoke runs).
* ``REPRO_SEED`` — base RNG seed (default 1).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.common.config import SystemConfig
from repro.system.presets import make_config
from repro.system.results import RunResult
from repro.system.simulator import simulate
from repro.telemetry.probes import EpochProbes
from repro.telemetry.tracer import Tracer
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace


def default_accesses() -> int:
    """Trace length used when not specified (env-overridable)."""
    return int(os.environ.get("REPRO_TRACE_ACCESSES", "20000"))


def default_seed() -> int:
    """Base RNG seed (env-overridable via REPRO_SEED)."""
    return int(os.environ.get("REPRO_SEED", "1"))


_trace_cache: Dict[Tuple[str, int, int], Trace] = {}
_run_cache: Dict[Tuple, RunResult] = {}


def get_trace(benchmark: str, accesses: Optional[int] = None, seed: Optional[int] = None) -> Trace:
    """Deterministic trace for a named benchmark (cached)."""
    accesses = accesses or default_accesses()
    seed = default_seed() if seed is None else seed
    key = (benchmark, accesses, seed)
    if key not in _trace_cache:
        profile = get_profile(benchmark)
        _trace_cache[key] = generate_trace(profile.workload, accesses, seed=seed)
    return _trace_cache[key]


def run(
    benchmark: str,
    config_name: str,
    accesses: Optional[int] = None,
    seed: Optional[int] = None,
    threads: int = 1,
    scheduler: str = "ahb",
    mutate: Optional[Callable[[SystemConfig], SystemConfig]] = None,
    mutate_key: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    probes: Optional[EpochProbes] = None,
) -> RunResult:
    """Simulate one benchmark under one named configuration (cached).

    ``mutate`` applies a config transformation (e.g. a sensitivity-sweep
    override); pass a distinct ``mutate_key`` to make such runs
    cacheable, otherwise they bypass the cache.

    ``tracer`` / ``probes`` pass through to :func:`simulate`.  Telemetry
    enablement is part of the cache key, so a cached untraced result is
    never returned for a traced request; traced runs themselves are not
    cached (their side effects — emitted events, probe samples — are the
    point of running them).
    """
    accesses = accesses or default_accesses()
    seed = default_seed() if seed is None else seed
    traced = (tracer is not None and tracer.enabled) or probes is not None
    key = (benchmark, config_name, accesses, seed, threads, scheduler,
           mutate_key, traced)
    cacheable = (mutate is None or mutate_key is not None) and not traced
    if cacheable and key in _run_cache:
        return _run_cache[key]

    config = make_config(config_name, threads=threads, scheduler=scheduler)
    if mutate is not None:
        config = mutate(config)
    if threads == 1:
        traces = [get_trace(benchmark, accesses, seed)]
    else:
        traces = [
            get_trace(benchmark, accesses, seed + t) for t in range(threads)
        ]
    result = simulate(config, traces, tracer=tracer, probes=probes)
    if cacheable:
        _run_cache[key] = result
    return result


def run_configs(
    benchmark: str,
    config_names: Iterable[str],
    **kwargs,
) -> Dict[str, RunResult]:
    """Run one benchmark under several configurations."""
    return {name: run(benchmark, name, **kwargs) for name in config_names}


def run_suite(
    benchmarks: Iterable[str],
    config_names: Iterable[str] = ("NP", "PS", "MS", "PMS"),
    **kwargs,
) -> Dict[str, Dict[str, RunResult]]:
    """Run several benchmarks under several configurations."""
    config_names = tuple(config_names)
    return {b: run_configs(b, config_names, **kwargs) for b in benchmarks}


def clear_cache() -> None:
    """Drop all cached traces and runs (tests use this for isolation)."""
    _trace_cache.clear()
    _run_cache.clear()


def cache_info() -> Mapping[str, int]:
    """Sizes of the trace and run caches (diagnostics)."""
    return {"traces": len(_trace_cache), "runs": len(_run_cache)}
