"""Shared experiment runner: per-process caching over a durable store.

``run()`` simulates one (benchmark, config) pair deterministically.
Results are served from two layers before anything is simulated:

1. the **in-process cache** (a dict, dies with the interpreter), then
2. the **on-disk result store** (:mod:`repro.experiments.store`, JSON
   under ``.repro-results/``, shared across sessions and processes).

``run_suite(jobs=N)`` fans a whole benchmark x config grid out across
worker processes via :mod:`repro.experiments.sweep`; both workers and
the serial path read and write through the same store, and parallel
results are guaranteed to compare equal, field for field, to serial
ones (the simulator is deterministic and the store codec is lossless).

Telemetry-carrying runs (``tracer``/``probes``) always execute serially
in-process and are never cached or stored — their side effects are the
point of running them.

Environment knobs:

* ``REPRO_TRACE_ACCESSES`` — trace length per benchmark (default 20000;
  raise for tighter statistics, lower for quick smoke runs).
* ``REPRO_SEED`` — base RNG seed (default 1).
* ``REPRO_JOBS`` — default worker count for ``run_suite`` (default 1).
* ``REPRO_STORE`` / ``REPRO_STORE_DIR`` — disable (``0``) or relocate
  the on-disk result store.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.common.config import SystemConfig
from repro.experiments import store
from repro.obs.metrics import default_registry
from repro.obs.progress import SweepProgress
from repro.system.presets import make_config
from repro.system.results import RunResult
from repro.system.simulator import simulate
from repro.telemetry.probes import EpochProbes
from repro.telemetry.tracer import Tracer
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace


def default_accesses() -> int:
    """Trace length used when not specified (env-overridable)."""
    return int(os.environ.get("REPRO_TRACE_ACCESSES", "20000"))


def default_seed() -> int:
    """Base RNG seed (env-overridable via REPRO_SEED)."""
    return int(os.environ.get("REPRO_SEED", "1"))


def default_jobs() -> int:
    """Default ``run_suite`` worker count (env-overridable, min 1)."""
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


def resolve_accesses(accesses: Optional[int]) -> int:
    """Apply the default for ``None`` and validate the trace length.

    An explicit ``accesses=0`` is an error, not a request for the
    default — ``or``-style defaulting used to swallow it silently.
    """
    if accesses is None:
        accesses = default_accesses()
    accesses = int(accesses)
    if accesses <= 0:
        raise ValueError(
            f"accesses must be a positive trace length, got {accesses!r}"
        )
    return accesses


_trace_cache: Dict[Tuple[str, int, int], Trace] = {}
_run_cache: Dict[Tuple, RunResult] = {}
_sim_count = 0  # simulate() calls actually executed by this process


def get_trace(benchmark: str, accesses: Optional[int] = None, seed: Optional[int] = None) -> Trace:
    """Deterministic trace for a named benchmark (cached).

    ``trace:<digest>:<path>`` names replay (a prefix of) a converted
    external trace file instead of synthesising one; ``wl:<json>``
    names synthesise from the inline-encoded workload.  Both resolve
    identically in every process — see :mod:`repro.workloads.dynamic`.
    """
    accesses = resolve_accesses(accesses)
    seed = default_seed() if seed is None else seed
    key = (benchmark, accesses, seed)
    if key not in _trace_cache:
        if benchmark.startswith("trace:"):
            from repro.workloads.dynamic import load_trace_benchmark

            _trace_cache[key] = load_trace_benchmark(benchmark, accesses)
        else:
            profile = get_profile(benchmark)
            _trace_cache[key] = generate_trace(profile.workload, accesses, seed=seed)
    return _trace_cache[key]


def cache_key(
    benchmark: str,
    config_name: str,
    accesses: int,
    seed: int,
    threads: int = 1,
    scheduler: str = "ahb",
    mutate_key: Optional[str] = None,
    traced: bool = False,
    fidelity: str = "exact",
) -> Tuple:
    """The in-process cache key for one run (resolved arguments).

    ``fidelity`` separates fast-model predictions from exact results:
    the two tiers of one job never alias in the cache (mirroring the
    ``fidelity`` field :func:`store.job_spec` adds to fast store keys).
    """
    return (benchmark, config_name, accesses, seed, threads, scheduler,
            mutate_key, traced, fidelity)


def cached_result(key: Tuple) -> Optional[RunResult]:
    """In-process cache lookup (used by the sweep engine)."""
    return _run_cache.get(key)


def seed_cache(key: Tuple, result: RunResult) -> None:
    """Insert a result computed elsewhere (worker/store) into the cache."""
    _run_cache[key] = result


def simulate_job(
    config: SystemConfig,
    benchmark: str,
    accesses: int,
    seed: int,
    threads: int = 1,
    tracer: Optional[Tracer] = None,
    probes: Optional[EpochProbes] = None,
) -> RunResult:
    """Simulate one fully-resolved job (no caching, no store).

    This is the single execution path shared by ``run()`` and the sweep
    workers, which is what makes the parallel == serial determinism
    guarantee hold: there is only one way a job turns into a result.
    """
    global _sim_count
    if threads == 1:
        traces = [get_trace(benchmark, accesses, seed)]
    else:
        traces = [
            get_trace(benchmark, accesses, seed + t) for t in range(threads)
        ]
    _sim_count += 1
    return simulate(config, traces, tracer=tracer, probes=probes)


def _store_for(use_store: Optional[bool]) -> Optional[store.ResultStore]:
    """The active result store, honouring the per-call override."""
    enabled = store.store_enabled() if use_store is None else use_store
    return store.get_store() if enabled else None


def _count_run(source: str) -> None:
    """Mirror one :func:`run` resolution into the metrics registry."""
    registry = default_registry()
    if registry.enabled:
        registry.counter(
            "repro_runs_total",
            "runner.run() calls resolved, by source "
            "(cache, store, simulated).",
            ("source",),
        ).inc(source=source)


def run(
    benchmark: str,
    config_name: str,
    accesses: Optional[int] = None,
    seed: Optional[int] = None,
    threads: int = 1,
    scheduler: str = "ahb",
    mutate: Optional[Callable[[SystemConfig], SystemConfig]] = None,
    mutate_key: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    probes: Optional[EpochProbes] = None,
    use_store: Optional[bool] = None,
) -> RunResult:
    """Simulate one benchmark under one named configuration (cached).

    ``mutate`` applies a config transformation (e.g. a sensitivity-sweep
    override); pass a distinct ``mutate_key`` to make such runs
    cacheable, otherwise they bypass both cache layers.

    ``tracer`` / ``probes`` pass through to :func:`simulate`.  Telemetry
    enablement is part of the cache key, so a cached untraced result is
    never returned for a traced request; traced runs themselves are
    neither cached nor stored (their side effects — emitted events,
    probe samples — are the point of running them).

    ``use_store`` overrides the ``REPRO_STORE`` default for this call.
    """
    accesses = resolve_accesses(accesses)
    seed = default_seed() if seed is None else seed
    traced = (tracer is not None and tracer.enabled) or probes is not None
    key = cache_key(benchmark, config_name, accesses, seed, threads,
                    scheduler, mutate_key, traced)
    cacheable = (mutate is None or mutate_key is not None) and not traced
    if cacheable and key in _run_cache:
        _count_run("cache")
        return _run_cache[key]

    config = make_config(config_name, threads=threads, scheduler=scheduler)
    if mutate is not None:
        config = mutate(config)

    spec = None
    active_store = _store_for(use_store) if cacheable else None
    if active_store is not None:
        spec = store.job_spec(benchmark, config_name, accesses, seed,
                              threads, scheduler, mutate_key, config)
        stored = active_store.get(spec)
        if stored is not None:
            _run_cache[key] = stored
            _count_run("store")
            return stored

    result = simulate_job(config, benchmark, accesses, seed, threads,
                          tracer=tracer, probes=probes)
    _count_run("simulated")
    if cacheable:
        _run_cache[key] = result
        if active_store is not None:
            active_store.put(spec, result)
    return result


def run_configs(
    benchmark: str,
    config_names: Iterable[str],
    **kwargs,
) -> Dict[str, RunResult]:
    """Run one benchmark under several configurations (serially)."""
    return {name: run(benchmark, name, **kwargs) for name in config_names}


#: run() kwargs the parallel sweep path models explicitly.  Anything
#: else — telemetry, mutate callables, mutate_key, or a typo — forces
#: the serial path, where run() either handles it or raises TypeError,
#: so both paths see identical semantics and cache identities.
_PARALLEL_KWARGS = frozenset(
    {"accesses", "seed", "threads", "scheduler", "use_store"}
)
_SERIAL_ONLY_KWARGS = frozenset({"tracer", "probes", "mutate", "mutate_key"})


def run_suite(
    benchmarks: Iterable[str],
    config_names: Iterable[str] = ("NP", "PS", "MS", "PMS"),
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    progress: Optional[SweepProgress] = None,
    **kwargs,
) -> Dict[str, Dict[str, RunResult]]:
    """Run several benchmarks under several configurations.

    ``jobs`` > 1 shards the (benchmark, config) grid across worker
    processes (default: ``REPRO_JOBS`` or serial); ``timeout`` bounds
    each parallel job in seconds.  Suites carrying telemetry, a
    ``mutate`` callable/``mutate_key``, or any kwarg the sweep engine
    does not model always execute serially — traced runs must emit
    their events in-process, callables do not cross process boundaries,
    and unknown kwargs must raise the same ``TypeError`` they would
    serially.  Parallel results compare equal to serial ones.

    ``progress`` is an optional live :class:`~repro.obs.progress.
    SweepProgress` driven as grid cells resolve; any sweepable suite —
    even a serial one — routes through the sweep engine so progress,
    metrics, and the provenance counters behave identically at every
    job count.
    """
    benchmarks = tuple(benchmarks)
    config_names = tuple(config_names)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    unknown = set(kwargs) - _PARALLEL_KWARGS - _SERIAL_ONLY_KWARGS
    sweepable = (
        not unknown
        and all(kwargs.get(k) is None for k in _SERIAL_ONLY_KWARGS)
    )
    if sweepable:
        from repro.experiments import sweep
        from repro.obs import spans as obs_spans

        specs = sweep.expand_grid(
            benchmarks,
            config_names,
            accesses=kwargs.get("accesses"),
            seed=kwargs.get("seed"),
            threads=kwargs.get("threads", 1),
            scheduler=kwargs.get("scheduler", "ahb"),
        )
        with obs_spans.default_collector().span(
            "sweep.suite", benchmarks=len(benchmarks),
            configs=len(config_names), jobs=jobs,
        ) as suite_span:
            outcome = sweep.run_jobs(
                specs, jobs=jobs, timeout=timeout,
                use_store=kwargs.get("use_store"),
                progress=progress,
                trace_parent=suite_span.context(),
            )
        results = iter(outcome.results)
        return {b: {c: next(results) for c in config_names}
                for b in benchmarks}
    if progress is not None:
        progress.begin(total=len(benchmarks) * len(config_names), workers=1)
        suite: Dict[str, Dict[str, RunResult]] = {}
        for benchmark in benchmarks:
            suite[benchmark] = {}
            for name in config_names:
                suite[benchmark][name] = run(benchmark, name, **kwargs)
                progress.job_done("serial")
        progress.finish()
        return suite
    return {b: run_configs(b, config_names, **kwargs) for b in benchmarks}


def preload_store(use_store: Optional[bool] = None) -> int:
    """Warm the in-process cache from the on-disk store.

    Loads every stored, fingerprint-verified, unmutated result into the
    run cache so a whole session (e.g. the benchmark suite) starts hot.
    Entries whose config fingerprint no longer matches the current
    preset definitions are skipped — never served stale.  Also reaps
    aged-out ``.tmp-*`` orphans left by writers killed mid-put.
    Returns the number of runs loaded.
    """
    active_store = _store_for(use_store)
    if active_store is None:
        return 0
    active_store.sweep_orphans()
    fingerprints: Dict[Tuple[str, int, str], Optional[str]] = {}
    loaded = 0
    for spec, result in active_store.entries():
        if spec.get("mutate_key") is not None:
            # Needs the mutate callable to verify; run() covers these
            # via its own read-through.
            continue
        ident = (spec["config"], spec["threads"], spec["scheduler"])
        if ident not in fingerprints:
            try:
                config = make_config(spec["config"], threads=spec["threads"],
                                     scheduler=spec["scheduler"])
                fingerprints[ident] = store.config_fingerprint(config)
            except (KeyError, ValueError):
                fingerprints[ident] = None  # preset no longer exists
        if fingerprints[ident] != spec.get("config_fingerprint"):
            continue
        key = cache_key(spec["benchmark"], spec["config"], spec["accesses"],
                        spec["seed"], spec["threads"], spec["scheduler"],
                        fidelity=str(spec.get("fidelity", "exact")))
        if key not in _run_cache:
            _run_cache[key] = result
            loaded += 1
    return loaded


def clear_cache() -> None:
    """Drop all cached traces and runs (tests use this for isolation).

    Only in-process state is dropped; the on-disk store is untouched
    (use ``store.get_store().clear()`` for that).
    """
    global _sim_count
    _trace_cache.clear()
    _run_cache.clear()
    _sim_count = 0


def cache_info() -> Mapping[str, int]:
    """Cache sizes plus the number of simulations actually executed."""
    return {
        "traces": len(_trace_cache),
        "runs": len(_run_cache),
        "simulated": _sim_count,
    }
