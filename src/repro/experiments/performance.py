"""Figures 5, 6, 7: benchmark performance under NP / PS / MS / PMS.

For every benchmark of a suite, run the four primary configurations on
the same trace and report the paper's three comparisons: PMS vs NP,
MS vs NP, and PMS vs PS, plus the suite averages.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import SuiteResult, compare_runs
from repro.analysis.report import format_table
from repro.experiments.runner import run_suite
from repro.workloads.profiles import suite_benchmarks

#: Paper-reported suite averages: (MS vs NP, PMS vs NP, PMS vs PS).
PAPER_AVERAGES = {
    "spec2006fp": (14.6, 32.7, 10.2),
    "nas": (11.7, 24.2, 8.1),
    "commercial": (9.3, 15.1, 8.4),
}


def performance_figure(
    suite: str,
    accesses: Optional[int] = None,
    scheduler: str = "ahb",
    jobs: Optional[int] = None,
) -> SuiteResult:
    """Compute one of Figures 5/6/7 for a suite.

    ``jobs`` > 1 shards the benchmark x config grid across worker
    processes (default: serial, or the ``REPRO_JOBS`` environment).
    """
    runs = run_suite(
        suite_benchmarks(suite),
        ("NP", "PS", "MS", "PMS"),
        accesses=accesses,
        scheduler=scheduler,
        jobs=jobs,
    )
    return compare_runs(suite, runs)


def fig5_spec(accesses: Optional[int] = None, jobs: Optional[int] = None) -> SuiteResult:
    """Figure 5: SPEC2006fp performance improvements."""
    return performance_figure("spec2006fp", accesses, jobs=jobs)


def fig6_nas(accesses: Optional[int] = None, jobs: Optional[int] = None) -> SuiteResult:
    """Figure 6: NAS performance improvements."""
    return performance_figure("nas", accesses, jobs=jobs)


def fig7_commercial(accesses: Optional[int] = None, jobs: Optional[int] = None) -> SuiteResult:
    """Figure 7: commercial-benchmark performance improvements."""
    return performance_figure("commercial", accesses, jobs=jobs)


def render(result: SuiteResult) -> str:
    """Paper-style rows plus the average line."""
    rows = [
        [r.benchmark, r.pms_vs_np, r.ms_vs_np, r.pms_vs_ps] for r in result.rows
    ]
    rows.append(
        [
            "Average",
            result.avg_pms_vs_np,
            result.avg_ms_vs_np,
            result.avg_pms_vs_ps,
        ]
    )
    paper = PAPER_AVERAGES.get(result.suite)
    title = f"Performance gain (%), {result.suite}"
    if paper:
        title += (
            f"   [paper averages: PMSvsNP {paper[1]:+.1f}, "
            f"MSvsNP {paper[0]:+.1f}, PMSvsPS {paper[2]:+.1f}]"
        )
    return format_table(
        ["benchmark", "PMS vs NP", "MS vs NP", "PMS vs PS"], rows, title=title
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    for figure in (fig5_spec, fig6_nas, fig7_commercial):
        print(render(figure()))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
