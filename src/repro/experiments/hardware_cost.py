"""Section 5.1 hardware cost table.

Reproduces the accounting behind the paper's area/power claims for the
evaluated configuration and for the SMT (2-thread) variant, anchored to
the paper's controller-area and power fractions (see
:mod:`repro.analysis.hardware`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.hardware import HardwareCost, estimate_cost, paper_anchor_bits
from repro.analysis.report import format_table
from repro.common.config import MemorySidePrefetcherConfig

#: Paper-reported numbers for the single-thread configuration.
PAPER = {
    "mc_area_increase_pct": 6.08,
    "chip_area_increase_pct": 0.098,
    "chip_power_increase_pct": 0.06,
}


@dataclass
class HardwareCostTable:
    costs: Dict[int, HardwareCost]  # threads -> cost
    anchor_bits: int

    def row(self, threads: int) -> List[object]:
        cost = self.costs[threads]
        return [
            threads,
            cost.stream_filter_bits,
            cost.lht_bits,
            cost.prefetch_buffer_bits,
            cost.lpq_bits,
            cost.comparators,
            cost.total_state_bytes,
            cost.mc_area_increase(self.anchor_bits) * 100,
            cost.chip_area_increase(self.anchor_bits) * 100,
            cost.chip_power_increase(self.anchor_bits) * 100,
        ]


def tab_hardware_cost(
    config: MemorySidePrefetcherConfig = None,
    thread_counts=(1, 2, 4),
) -> HardwareCostTable:
    """Cost inventory for the default prefetcher at several SMT widths."""
    config = config or MemorySidePrefetcherConfig(enabled=True)
    return HardwareCostTable(
        costs={t: estimate_cost(config, threads=t) for t in thread_counts},
        anchor_bits=paper_anchor_bits(),
    )


def render(table: HardwareCostTable) -> str:
    """Render the experiment as the paper-style text table."""
    headers = [
        "threads", "SF bits", "LHT bits", "PB bits", "LPQ bits",
        "comparators", "state bytes", "MC area +%", "chip area +%",
        "chip power +%",
    ]
    rows = [table.row(t) for t in sorted(table.costs)]
    return format_table(
        headers,
        rows,
        title=(
            "Hardware cost   [paper, 1 thread: MC area +6.08%, "
            "chip area +0.098%, chip power +0.06%]"
        ),
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    print(render(tab_hardware_cost()))


if __name__ == "__main__":  # pragma: no cover
    main()
