"""Experiment harness: one module per paper table/figure.

Every module exposes a pure function that computes the experiment's
data (used by the benchmark suite and tests) plus a ``main()`` that
prints the paper-style rows.  The shared :mod:`repro.experiments.runner`
caches simulation runs in-process and persists them through the
on-disk :mod:`repro.experiments.store`, so experiments that need the
same (benchmark, config) pair — e.g. Figure 5 and Figure 8 — pay for
it once *ever* per machine, not once per process; and
:mod:`repro.experiments.sweep` shards whole grids across worker
processes (``run_suite(jobs=N)``).  See docs/experiments.md.

Experiment ids (see DESIGN.md Section 4):

========================  =====================================
``fig2_slh_example``      Figure 2 — SLH of one GemsFDTD epoch
``fig3_slh_phases``       Figure 3 — SLH variation across epochs
``fig5_spec``             Figure 5 — SPEC2006fp performance
``fig6_nas``              Figure 6 — NAS performance
``fig7_commercial``       Figure 7 — commercial performance
``fig8_power_spec``       Figure 8 — SPEC DRAM power/energy
``fig9_power_nas``        Figure 9 — NAS DRAM power/energy
``fig10_power_commercial``  Figure 10 — commercial power/energy
``fig11_ablation``        Figure 11 — ASD/scheduling ablation
``fig12_stream_lengths``  Figure 12 — short streams dominate
``fig13_efficiency``      Figure 13 — useful/coverage/delayed
``fig14_buffer_size``     Figure 14 — Prefetch Buffer sweep
``fig15_filter_size``     Figure 15 — Stream Filter sweep
``fig16_slh_accuracy``    Figure 16 — SLH approximation accuracy
``tab_hardware_cost``     Section 5.1 — hardware cost table
``tab_smt``               Section 5.2 — SMT results
``tab_scheduler_interaction``  Section 5.3 — scheduler interaction
========================  =====================================
"""

from repro.experiments.runner import (
    preload_store,
    run,
    run_configs,
    run_suite,
)
from repro.experiments.store import ResultStore, get_store
from repro.experiments.sweep import Job, SweepOutcome, SweepStats, run_jobs

__all__ = [
    "Job",
    "ResultStore",
    "SweepOutcome",
    "SweepStats",
    "get_store",
    "preload_store",
    "run",
    "run_configs",
    "run_jobs",
    "run_suite",
]
