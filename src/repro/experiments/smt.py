"""Section 5.2 SMT results: two hardware threads per core.

The paper repeats the single-thread experiments with two SMT threads,
doubling the per-thread prefetcher state (Stream Filter + LHTs — which
``threads=2`` does automatically) while keeping the 16-line Prefetch
Buffer, and finds improvements comparable to single-threaded runs
(PMS vs PS: 10.7% / 9.2% / 7.5% across the suites; PMS vs NP: 28.5% /
20.4% / 11.1%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.runner import run_suite
from repro.workloads.profiles import FOCUS_BENCHMARKS, suite_benchmarks

#: Paper SMT averages: suite -> (PMS vs NP %, PMS vs PS %).
PAPER_SMT = {
    "spec2006fp": (28.5, 10.7),
    "nas": (20.4, 9.2),
    "commercial": (11.1, 7.5),
}


@dataclass
class SMTResult:
    benchmarks: Sequence[str]
    #: benchmark -> {"pms_vs_np": %, "ms_vs_np": %, "pms_vs_ps": %}
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, key: str) -> float:
        values = [self.rows[b][key] for b in self.benchmarks]
        return sum(values) / len(values)


def tab_smt(
    benchmarks: Optional[Sequence[str]] = None,
    suite: Optional[str] = None,
    accesses: Optional[int] = None,
    jobs: Optional[int] = None,
) -> SMTResult:
    """SMT gains: two same-benchmark threads with different seeds.

    Each SMT workload pairs a benchmark with itself on a different seed
    (the paper runs homogeneous SMT pairs), sharing the caches and the
    controller while the prefetcher's locality state is per thread.
    ``jobs`` > 1 shards the grid across worker processes.
    """
    if benchmarks is None:
        benchmarks = suite_benchmarks(suite) if suite else FOCUS_BENCHMARKS
    runs = run_suite(
        benchmarks, ("NP", "PS", "MS", "PMS"), accesses=accesses, threads=2,
        jobs=jobs,
    )
    result = SMTResult(benchmarks)
    for benchmark in benchmarks:
        by_config = runs[benchmark]
        np_run = by_config["NP"]
        result.rows[benchmark] = {
            "pms_vs_np": by_config["PMS"].gain_vs(np_run),
            "ms_vs_np": by_config["MS"].gain_vs(np_run),
            "pms_vs_ps": by_config["PMS"].gain_vs(by_config["PS"]),
        }
    return result


def render(result: SMTResult, suite: Optional[str] = None) -> str:
    """Render the experiment as the paper-style text table."""
    rows = [
        [b, result.rows[b]["pms_vs_np"], result.rows[b]["ms_vs_np"],
         result.rows[b]["pms_vs_ps"]]
        for b in result.benchmarks
    ]
    rows.append(
        ["Average", result.average("pms_vs_np"), result.average("ms_vs_np"),
         result.average("pms_vs_ps")]
    )
    title = "SMT (2 threads) performance gain (%)"
    paper = PAPER_SMT.get(suite or "")
    if paper:
        title += f"   [paper: PMSvsNP {paper[0]:+.1f}, PMSvsPS {paper[1]:+.1f}]"
    return format_table(
        ["benchmark", "PMS vs NP", "MS vs NP", "PMS vs PS"], rows, title=title
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    print(render(tab_smt()))


if __name__ == "__main__":  # pragma: no cover
    main()
