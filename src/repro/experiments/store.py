"""Content-addressed on-disk store for simulation results.

The in-process cache in :mod:`repro.experiments.runner` dies with the
interpreter, so every session used to re-simulate the full figure grid.
This module makes results durable: each completed run is written as one
JSON file under ``.repro-results/`` (override with ``REPRO_STORE_DIR``),
keyed by a SHA-256 hash of the *full job specification* — benchmark,
configuration name, trace length, seed, thread count, scheduler,
mutate key, and a fingerprint of the fully-built
:class:`~repro.common.config.SystemConfig`.

Because the config fingerprint covers every knob of the final config
(including sweep mutations and preset definitions), editing a preset or
a mutation automatically invalidates exactly the affected entries —
stale results can never be served.

Traced runs (tracer or probes attached) are **never** stored: their
side effects are the point of running them, and a stored result cannot
replay events.  :func:`encode_result` enforces this.

Concurrency: writes are atomic (``os.replace`` of a same-directory temp
file), so parallel sweep workers and multiple processes can share one
store; last writer wins with an identical payload.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.common.config import SystemConfig
from repro.dram.power import PowerReport
from repro.obs.metrics import default_registry
from repro.system.results import RunResult

#: Bumped whenever the stored payload or key layout changes; part of
#: every key, so old-format entries are simply never matched.
#: 2: ``mc.ticks`` / ``mc.occ_*`` integrals now cover fast-forwarded
#: cycles, so occupancy averages from version-1 entries don't compare.
STORE_VERSION = 2

#: Default store location, relative to the working directory.
DEFAULT_ROOT = ".repro-results"

#: Orphaned ``.tmp-*`` files younger than this are presumed to belong
#: to a live writer and are left alone (see ResultStore.sweep_orphans).
ORPHAN_MIN_AGE_SECONDS = 3600.0


def store_root() -> str:
    """Store directory: ``REPRO_STORE_DIR`` or ``.repro-results``."""
    return os.environ.get("REPRO_STORE_DIR") or DEFAULT_ROOT


def store_enabled() -> bool:
    """On-disk persistence is on unless ``REPRO_STORE=0``."""
    return os.environ.get("REPRO_STORE", "1") != "0"


def _canonical(obj: object) -> str:
    """Deterministic JSON text (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config: SystemConfig) -> str:
    """Short digest of every knob of a fully-built system config."""
    payload = dataclasses.asdict(config)
    digest = hashlib.sha256(_canonical(payload).encode("utf-8"))
    return digest.hexdigest()[:16]


def job_spec(
    benchmark: str,
    config_name: str,
    accesses: int,
    seed: int,
    threads: int,
    scheduler: str,
    mutate_key: Optional[str],
    config: SystemConfig,
    fidelity: str = "exact",
) -> Dict[str, object]:
    """The canonical job specification a store key is derived from.

    Exact jobs keep the historical key shape (no ``fidelity`` key), so
    every pre-existing store entry stays addressable.  Fast-tier jobs
    add the tier *and* the fast-model version: bumping
    :data:`repro.fastsim.version.FAST_MODEL_VERSION` silently retires
    every fast entry while leaving exact ones untouched.
    """
    spec: Dict[str, object] = {
        "benchmark": benchmark,
        "config": config_name,
        "accesses": accesses,
        "seed": seed,
        "threads": threads,
        "scheduler": scheduler,
        "mutate_key": mutate_key,
        "config_fingerprint": config_fingerprint(config),
    }
    if fidelity != "exact":
        from repro.fastsim.version import FAST_MODEL_VERSION, JOB_FIDELITIES

        if fidelity not in JOB_FIDELITIES:
            raise ValueError(f"unknown job fidelity {fidelity!r}")
        spec["fidelity"] = fidelity
        spec["fast_model"] = FAST_MODEL_VERSION
    return spec


def job_key(spec: Mapping[str, object]) -> str:
    """Content address of one job: SHA-256 over version + spec."""
    payload = {"version": STORE_VERSION, "spec": dict(spec)}
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def encode_result(result: RunResult) -> Dict[str, object]:
    """Lossless, JSON-safe encoding of an untraced :class:`RunResult`."""
    if result.telemetry is not None:
        raise ValueError(
            "traced runs are never stored: telemetry side effects "
            "(events, probe samples) cannot be replayed from a store"
        )
    payload: Dict[str, object] = {
        "config_name": result.config_name,
        "benchmark": result.benchmark,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "cpu_ratio": result.cpu_ratio,
        "stats": dict(result.stats),
        "power": dataclasses.asdict(result.power) if result.power else None,
    }
    if result.fidelity is not None:
        payload["fidelity"] = dict(result.fidelity)
    return payload


def decode_result(payload: Mapping[str, object]) -> RunResult:
    """Inverse of :func:`encode_result`."""
    power = payload.get("power")
    fidelity = payload.get("fidelity")
    return RunResult(
        config_name=payload["config_name"],
        benchmark=payload["benchmark"],
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        cpu_ratio=payload["cpu_ratio"],
        stats=dict(payload["stats"]),
        power=PowerReport(**power) if power is not None else None,
        fidelity=dict(fidelity) if fidelity is not None else None,
    )


@dataclasses.dataclass
class StoreStats:
    """Counters for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0  # unreadable/corrupt entries treated as misses

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def reset(self) -> None:
        self.hits = self.misses = self.puts = self.errors = 0


def _count_read(result: str) -> None:
    """Mirror one store read into the process metrics registry."""
    registry = default_registry()
    if registry.enabled:
        registry.counter(
            "repro_store_reads_total",
            "Result-store reads, by outcome (hit, miss, error).",
            ("result",),
        ).inc(result=result)


def _count_write(nbytes: int) -> None:
    """Mirror one store write (and its payload size) into the registry."""
    registry = default_registry()
    if registry.enabled:
        registry.counter(
            "repro_store_writes_total", "Results persisted to the store."
        ).inc()
        registry.counter(
            "repro_store_bytes_written_total",
            "Bytes of JSON written to the result store.",
        ).inc(nbytes)


class ResultStore:
    """One directory of ``<job_key>.json`` result files."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else store_root()
        self.stats = StoreStats()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def get(self, spec: Mapping[str, object]) -> Optional[RunResult]:
        """The stored result for ``spec``, or None (corruption = miss)."""
        path = self.path_for(job_key(spec))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            # Paranoia against hash collisions and hand-edited files:
            # the spec recorded inside the entry must match exactly.
            if document.get("spec") != dict(spec):
                raise ValueError("stored spec does not match its key")
            result = decode_result(document["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            _count_read("miss")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.errors += 1
            self.stats.misses += 1
            _count_read("error")
            return None
        self.stats.hits += 1
        _count_read("hit")
        return result

    def put(self, spec: Mapping[str, object], result: RunResult) -> str:
        """Persist one result atomically; returns the entry path."""
        key = job_key(spec)
        path = self.path_for(key)
        document = {
            "version": STORE_VERSION,
            "key": key,
            "spec": dict(spec),
            "result": encode_result(result),
        }
        text = json.dumps(document, sort_keys=True)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        _count_write(len(text.encode("utf-8")))
        return path

    def entries(self) -> Iterator[Tuple[Dict[str, object], RunResult]]:
        """Iterate all readable ``(spec, result)`` pairs in the store."""
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            try:
                with open(
                    os.path.join(self.root, name), "r", encoding="utf-8"
                ) as handle:
                    document = json.load(handle)
                yield dict(document["spec"]), decode_result(document["result"])
            except (OSError, ValueError, KeyError, TypeError):
                self.stats.errors += 1
                continue

    def __len__(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.root)
                if name.endswith(".json") and not name.startswith(".")
            )
        except OSError:
            return 0

    def sweep_orphans(
        self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS
    ) -> int:
        """Remove ``.tmp-*`` files abandoned by killed writers.

        :meth:`put` stages every entry as a same-directory ``.tmp-*``
        temp file before ``os.replace``-ing it into place; a writer
        killed between the two leaves the temp file behind forever
        (``entries``/``clear`` skip dot-files).  Startup paths —
        ``runner.preload_store`` and the fabric coordinator — call this
        to reap them.  The age guard keeps temp files of concurrent
        in-flight writers safe; returns the number removed.
        """
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        cutoff = time.time() - min_age_seconds
        for name in names:
            if not name.startswith(".tmp-"):
                continue
            path = os.path.join(self.root, name)
            try:
                if os.path.getmtime(path) <= cutoff:
                    os.unlink(path)
                    removed += 1
            except OSError:
                continue
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json") and not name.startswith("."):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed


_stores: Dict[str, ResultStore] = {}


def get_store() -> ResultStore:
    """The process-wide store for the *current* root.

    Keyed by absolute root path so tests (and tools) that repoint
    ``REPRO_STORE_DIR`` get a fresh instance while stats stay stable
    per directory within one process.
    """
    root = os.path.abspath(store_root())
    if root not in _stores:
        _stores[root] = ResultStore(root)
    return _stores[root]
