"""Figure 13: effectiveness of the memory-side prefetcher under PMS.

Three measures per focus benchmark:

* **useful prefetches** — fraction of prefetched lines consumed by a
  read before displacement (paper: 82-91%);
* **coverage** — fraction of all Read commands (including processor-
  side prefetches) served by the Prefetch Buffer, counting reads that
  merged with an in-flight prefetch (paper: 19-34%);
* **delayed regular commands** — fraction of regular commands delayed
  by a memory-side prefetch's memory-system footprint (paper: 1-3%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.runner import run
from repro.workloads.profiles import FOCUS_BENCHMARKS


@dataclass
class EfficiencyRow:
    benchmark: str
    useful_pct: float
    coverage_pct: float
    delayed_pct: float


@dataclass
class EfficiencyFigure:
    rows: Dict[str, EfficiencyRow] = field(default_factory=dict)

    def averages(self) -> EfficiencyRow:
        n = len(self.rows) or 1
        return EfficiencyRow(
            "Average",
            sum(r.useful_pct for r in self.rows.values()) / n,
            sum(r.coverage_pct for r in self.rows.values()) / n,
            sum(r.delayed_pct for r in self.rows.values()) / n,
        )


def fig13_efficiency(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
    config: str = "PMS",
) -> EfficiencyFigure:
    """Compute Figure 13 over the focus benchmarks."""
    figure = EfficiencyFigure()
    for benchmark in benchmarks:
        result = run(benchmark, config, accesses=accesses)
        stats = result.stats
        reads = stats.get("mc.reads_arrived", 0) or 1
        covered = result.pb_hits + stats.get("mc.merged_responses", 0)
        # useful: consumed lines (hits + merges) over lines fetched
        inserts = stats.get("pb.inserts", 0) or 1
        consumed = stats.get("pb.read_hits", 0)
        figure.rows[benchmark] = EfficiencyRow(
            benchmark=benchmark,
            useful_pct=100.0 * consumed / inserts,
            coverage_pct=100.0 * covered / reads,
            delayed_pct=100.0 * result.delayed_regular_fraction,
        )
    return figure


def render(figure: EfficiencyFigure) -> str:
    """Render the experiment as the paper-style text table."""
    rows = [
        [r.benchmark, r.useful_pct, r.coverage_pct, r.delayed_pct]
        for r in figure.rows.values()
    ]
    avg = figure.averages()
    rows.append([avg.benchmark, avg.useful_pct, avg.coverage_pct, avg.delayed_pct])
    return format_table(
        ["benchmark", "useful %", "coverage %", "delayed %"],
        rows,
        title="Prefetch effectiveness (PMS)   "
        "[paper: useful 82-91%, coverage 19-34%, delayed 1-3%]",
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    print(render(fig13_efficiency()))


if __name__ == "__main__":  # pragma: no cover
    main()
