"""Section 5.3: interaction with the memory scheduler.

The paper re-runs the prefetcher under two weaker reorder-queue
schedulers: with a simple in-order scheduler the prefetcher's gain
drops by about 5 percentage points, with the memoryless (first-ready)
scheduler by about 1 — i.e. the benefit of prefetching *increases* as
other memory-subsystem bottlenecks are removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.runner import run
from repro.workloads.profiles import FOCUS_BENCHMARKS

SCHEDULER_ORDER = ("ahb", "memoryless", "in_order")


@dataclass
class SchedulerInteraction:
    benchmarks: Sequence[str]
    #: scheduler -> benchmark -> PMS-vs-NP gain (%)
    gains: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, scheduler: str) -> float:
        values = [self.gains[scheduler][b] for b in self.benchmarks]
        return sum(values) / len(values)

    def reduction_vs_ahb(self, scheduler: str) -> float:
        """Percentage points of prefetch gain lost under a weaker
        scheduler (paper: ~5 for in-order, ~1 for memoryless)."""
        return self.average("ahb") - self.average(scheduler)


def tab_scheduler_interaction(
    benchmarks: Sequence[str] = FOCUS_BENCHMARKS,
    accesses: Optional[int] = None,
) -> SchedulerInteraction:
    """PMS-vs-NP gain under each scheduler (NP re-run per scheduler)."""
    result = SchedulerInteraction(benchmarks)
    for scheduler in SCHEDULER_ORDER:
        row: Dict[str, float] = {}
        for benchmark in benchmarks:
            base = run(benchmark, "NP", accesses=accesses, scheduler=scheduler)
            pms = run(benchmark, "PMS", accesses=accesses, scheduler=scheduler)
            row[benchmark] = pms.gain_vs(base)
        result.gains[scheduler] = row
    return result


def render(result: SchedulerInteraction) -> str:
    """Render the experiment as the paper-style text table."""
    rows = []
    for benchmark in result.benchmarks:
        rows.append(
            [benchmark] + [result.gains[s][benchmark] for s in SCHEDULER_ORDER]
        )
    rows.append(["Average"] + [result.average(s) for s in SCHEDULER_ORDER])
    table = format_table(
        ["benchmark", "ahb", "memoryless", "in_order"],
        rows,
        title="PMS gain over NP (%) by memory scheduler",
    )
    return (
        table
        + f"\ngain reduction vs AHB: memoryless "
        f"{result.reduction_vs_ahb('memoryless'):+.1f} points (paper ~1), "
        f"in-order {result.reduction_vs_ahb('in_order'):+.1f} points (paper ~5)"
    )


def main() -> None:  # pragma: no cover - exercised via benchmarks
    """Print this experiment's paper-style output."""
    print(render(tab_scheduler_interaction()))


if __name__ == "__main__":  # pragma: no cover
    main()
