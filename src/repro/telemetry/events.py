"""Typed trace events emitted by the instrumented simulator blocks.

Every event is a slotted dataclass with a class-level ``kind`` string
(the discriminator used by exporters and kind-filtered subscribers) and
a ``t`` field holding the MC cycle at which it happened.  Events are
plain data: they serialise losslessly through ``to_dict`` and are
reconstructed by :func:`event_from_dict`, so a JSONL event log round
trips back into the same objects.

The catalogue (see docs/telemetry.md):

* :class:`EpochBoundary` — an SLH epoch rolled over (the simulator's
  natural measurement interval; Adaptive Scheduling adapts here too).
* :class:`PrefetchIssued` — a memory-side prefetch left the LPQ for DRAM.
* :class:`PrefetchHit` — a regular Read was served by the Prefetch
  Buffer (or merged with an in-flight prefetch).
* :class:`PrefetchDiscard` — a prefetch (queued, in flight, or buffered)
  was thrown away before doing useful work; ``reason`` says why.
* :class:`PolicyChange` — Adaptive Scheduling stepped its policy index.
* :class:`QueueDepthSample` — periodic instantaneous queue-depth sample.
* :class:`DramCommand` — a command was accepted by the DRAM device.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Type


@dataclass(frozen=True)
class TraceEvent:
    """Base class: one timestamped simulator occurrence."""

    t: int  #: MC cycle of the occurrence

    kind: str = ""  # class-level discriminator, overridden per subclass

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a flat JSON-ready dict including ``kind``."""
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            if f.name == "kind":
                continue
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(frozen=True)
class EpochBoundary(TraceEvent):
    """An SLH epoch completed: tables rolled over, policy adapted."""

    epoch: int = 0  #: 1-based index of the epoch that just finished
    reads: int = 0  #: Read commands observed during the epoch
    policy: int = 0  #: Adaptive Scheduling policy active after adaptation

    kind: str = "epoch_boundary"


@dataclass(frozen=True)
class PrefetchIssued(TraceEvent):
    """A memory-side prefetch command was issued to DRAM."""

    line: int = 0
    thread: int = 0

    kind: str = "prefetch_issued"


@dataclass(frozen=True)
class PrefetchHit(TraceEvent):
    """A regular Read was answered by prefetched data.

    ``where`` distinguishes a Prefetch Buffer hit (``"buffer"``) from a
    merge with a still-in-flight prefetch (``"merge"``).
    """

    line: int = 0
    where: str = "buffer"

    kind: str = "prefetch_hit"


@dataclass(frozen=True)
class PrefetchDiscard(TraceEvent):
    """A prefetch was dropped before being consumed.

    ``reason`` is one of ``lpq_full``, ``lpq_duplicate``, ``squashed``
    (a demand read overtook the queued prefetch), ``write_invalidate``
    (coherence), ``evicted_unused`` (displaced from the buffer untouched)
    or ``cancelled_in_flight`` (invalidated while DRAM was fetching it).
    """

    line: int = 0
    reason: str = ""

    kind: str = "prefetch_discard"


@dataclass(frozen=True)
class PolicyChange(TraceEvent):
    """Adaptive Scheduling stepped the LPQ prioritisation policy."""

    old_policy: int = 0
    new_policy: int = 0
    conflicts: int = 0  #: conflict count of the epoch that drove the step

    kind: str = "policy_change"


@dataclass(frozen=True)
class QueueDepthSample(TraceEvent):
    """Instantaneous controller/core queue depths at a sample tick."""

    read_queue: int = 0
    write_queue: int = 0
    caq: int = 0
    lpq: int = 0
    core_outstanding: int = 0  #: demand misses in flight across threads

    kind: str = "queue_depth"


@dataclass(frozen=True)
class DramCommand(TraceEvent):
    """The DRAM device accepted a command and reserved bank + bus."""

    line: int = 0
    bank: int = 0
    row: int = 0
    is_write: bool = False
    provenance: str = "demand"
    row_hit: bool = False  #: False means the access paid an activation
    completion: int = 0  #: MC cycle at which the data transfer finishes

    kind: str = "dram_command"


#: kind string -> event class, for deserialisation.
EVENT_KINDS: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        EpochBoundary,
        PrefetchIssued,
        PrefetchHit,
        PrefetchDiscard,
        PolicyChange,
        QueueDepthSample,
        DramCommand,
    )
}


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from its ``to_dict`` form.

    Raises ``ValueError`` on an unknown ``kind`` so corrupted logs fail
    loudly rather than silently dropping records.
    """
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    return cls(**payload)
