"""repro.telemetry — epoch-resolved tracing and run instrumentation.

The observability layer for the whole simulator:

* :mod:`repro.telemetry.tracer` — the :class:`Tracer` event bus every
  instrumented block emits into (``NULL_TRACER`` is the shared disabled
  default, so untraced runs pay nothing).
* :mod:`repro.telemetry.events` — the typed event catalogue.
* :mod:`repro.telemetry.series` — bounded ring-buffered time series.
* :mod:`repro.telemetry.probes` — :class:`EpochProbes`, sampling SLH
  snapshots, queue depths, prefetch accuracy/coverage, policy index and
  DRAM power once per epoch.
* :mod:`repro.telemetry.exporters` — JSONL event logs, CSV/JSON series
  dumps, human-readable epoch reports.
* :mod:`repro.telemetry.session` — :class:`TelemetrySession`, wiring it
  all together for the CLI's ``--trace-events`` / ``--probe-interval``.

See docs/telemetry.md for the event/probe catalogue and overhead notes.
"""

from repro.telemetry.events import (
    EVENT_KINDS,
    DramCommand,
    EpochBoundary,
    PolicyChange,
    PrefetchDiscard,
    PrefetchHit,
    PrefetchIssued,
    QueueDepthSample,
    TraceEvent,
    event_from_dict,
)
from repro.telemetry.exporters import (
    JsonlEventWriter,
    epoch_report,
    read_events_jsonl,
    series_to_csv,
    series_to_json,
)
from repro.telemetry.probes import EpochProbes
from repro.telemetry.series import RingBuffer, Series
from repro.telemetry.session import TelemetrySession
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "DramCommand",
    "EVENT_KINDS",
    "EpochBoundary",
    "EpochProbes",
    "JsonlEventWriter",
    "NULL_TRACER",
    "PolicyChange",
    "PrefetchDiscard",
    "PrefetchHit",
    "PrefetchIssued",
    "QueueDepthSample",
    "RingBuffer",
    "Series",
    "TelemetrySession",
    "TraceEvent",
    "Tracer",
    "epoch_report",
    "event_from_dict",
    "read_events_jsonl",
    "series_to_csv",
    "series_to_json",
]
