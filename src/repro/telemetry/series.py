"""Ring-buffered per-epoch time series.

Probes sample unbounded runs, so series storage must be bounded: a
:class:`RingBuffer` keeps the most recent ``capacity`` samples and
counts what it dropped, and a :class:`Series` pairs each retained value
with the epoch index it was sampled at (so wrapped series still line up
across probes).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple


class RingBuffer:
    """Fixed-capacity FIFO over arbitrary values.

    Appending past capacity overwrites the oldest sample; ``dropped``
    counts how many were lost that way.  ``values()`` always returns the
    retained samples oldest-first.
    """

    __slots__ = ("capacity", "_buf", "_start", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf: List[Any] = []
        self._start = 0  # index of the oldest element once wrapped
        self.dropped = 0

    def append(self, value: Any) -> None:
        """Add a sample, evicting the oldest when full."""
        if len(self._buf) < self.capacity:
            self._buf.append(value)
            return
        self._buf[self._start] = value
        self._start = (self._start + 1) % self.capacity
        self.dropped += 1

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values())

    def values(self) -> List[Any]:
        """Retained samples, oldest first."""
        return self._buf[self._start :] + self._buf[: self._start]


class Series:
    """A named sequence of (epoch, value) samples in a ring buffer."""

    __slots__ = ("name", "_ring")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        self.name = name
        self._ring = RingBuffer(capacity)

    def record(self, epoch: int, value: Any) -> None:
        """Append one sample taken at ``epoch``."""
        self._ring.append((epoch, value))

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Samples lost to ring wraparound."""
        return self._ring.dropped

    def samples(self) -> List[Tuple[int, Any]]:
        """All retained (epoch, value) pairs, oldest first."""
        return self._ring.values()

    def epochs(self) -> List[int]:
        """Epoch indices of the retained samples."""
        return [e for e, _ in self._ring.values()]

    def points(self) -> List[Any]:
        """Values of the retained samples."""
        return [v for _, v in self._ring.values()]

    @property
    def is_scalar(self) -> bool:
        """True when every retained value is a plain number."""
        return all(isinstance(v, (int, float)) for _, v in self._ring.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Series({self.name!r}, n={len(self)}, dropped={self.dropped})"
