"""One-stop telemetry setup for a simulation run.

:class:`TelemetrySession` bundles the three moving parts — an enabled
:class:`~repro.telemetry.tracer.Tracer`, an optional JSONL event writer,
and optional :class:`~repro.telemetry.probes.EpochProbes` — behind the
configuration surface the CLI exposes (``--trace-events`` /
``--probe-interval``)::

    session = TelemetrySession(trace_events="out.jsonl", probe_interval=1)
    result = simulate(config, traces, tracer=session.tracer,
                      probes=session.probes)
    session.close()
    print(session.report())
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.telemetry.exporters import (
    JsonlEventWriter,
    epoch_report,
    series_to_csv,
    series_to_json,
)
from repro.telemetry.probes import EpochProbes
from repro.telemetry.tracer import Tracer


class TelemetrySession:
    """Tracer + optional event log + optional epoch probes, pre-wired.

    Parameters:
        trace_events: path for a JSONL event log (None = no log).
        probe_interval: sample epoch series every N epochs (None = no
            probes).
        ring_capacity: per-series ring-buffer capacity for the probes.
    """

    def __init__(
        self,
        trace_events: Optional[str] = None,
        probe_interval: Optional[int] = None,
        ring_capacity: int = 4096,
    ) -> None:
        self.tracer = Tracer(enabled=True)
        self.writer: Optional[JsonlEventWriter] = None
        if trace_events is not None:
            self.writer = JsonlEventWriter(trace_events)
            self.tracer.subscribe(self.writer)
        self.probes: Optional[EpochProbes] = None
        if probe_interval is not None:
            self.probes = EpochProbes(interval=probe_interval,
                                      capacity=ring_capacity)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the event log (safe to call with no log)."""
        if self.writer is not None:
            self.writer.close()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # convenience passthroughs
    # ------------------------------------------------------------------
    def report(self, max_rows: int = 40) -> str:
        """Human-readable epoch report (empty string without probes)."""
        if self.probes is None:
            return ""
        return epoch_report(self.probes, max_rows=max_rows)

    def export_csv(self, path: str) -> int:
        """Write scalar probe series to CSV; returns rows written."""
        if self.probes is None:
            raise ValueError("session has no probes (probe_interval unset)")
        return series_to_csv(self.probes, path)

    def export_json(self, path: Optional[str] = None) -> dict:
        """Serialise all probe series to JSON (optionally to a file)."""
        if self.probes is None:
            raise ValueError("session has no probes (probe_interval unset)")
        return series_to_json(self.probes, path)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready digest of tracer activity and probe coverage."""
        out: Dict[str, Any] = {"tracer": self.tracer.summary()}
        if self.probes is not None:
            out["probes"] = self.probes.summary()
        if self.writer is not None:
            out["events_written"] = self.writer.events_written
        return out
