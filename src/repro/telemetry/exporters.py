"""Exporters: JSONL event logs, CSV/JSON time series, epoch reports.

Three consumption paths for telemetry data:

* :class:`JsonlEventWriter` streams every event to a JSON-lines file as
  it happens (subscribe it to a tracer); :func:`read_events_jsonl`
  parses such a file back into typed event objects.
* :func:`series_to_csv` / :func:`series_to_json` dump the probe series
  for spreadsheet / notebook analysis (CSV carries the scalar series in
  one wide table; JSON carries everything, vectors included).
* :func:`epoch_report` renders a human-readable per-epoch table of the
  headline dynamics (policy, queues, accuracy, coverage, power).
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from repro.telemetry.events import TraceEvent, event_from_dict
from repro.telemetry.probes import EpochProbes


class JsonlEventWriter:
    """Tracer sink that appends one JSON line per event.

    Accepts a path (opened and owned, closed by :meth:`close`) or any
    file-like object (borrowed, left open).  The writer is callable so
    it can be passed to ``tracer.subscribe`` directly.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.events_written = 0

    def __call__(self, event: TraceEvent) -> None:
        """Write one event as a JSON line."""
        self._fh.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and, when the writer opened the file, close it."""
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events_jsonl(path: str) -> List[TraceEvent]:
    """Parse a JSONL event log back into typed event objects.

    Blank lines are skipped; malformed JSON or unknown event kinds
    raise, so a truncated or corrupted log is detected rather than
    silently shortened.
    """
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            events.append(event_from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# series exporters
# ----------------------------------------------------------------------
def series_to_csv(probes: EpochProbes, path: str) -> int:
    """Write all scalar probe series as one wide CSV table.

    One row per sampled epoch, one column per series; cells left empty
    where a series has no sample for that epoch (possible after ring
    wraparound).  Returns the number of data rows written.
    """
    names = probes.scalar_names()
    epochs = probes.sampled_epochs()
    columns = {
        name: dict(probes.series[name].samples()) for name in names
    }
    rows = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(",".join(["epoch"] + names) + "\n")
        for epoch in epochs:
            cells = [str(epoch)]
            for name in names:
                value = columns[name].get(epoch)
                cells.append("" if value is None else f"{value:g}")
            fh.write(",".join(cells) + "\n")
            rows += 1
    return rows


def series_to_json(probes: EpochProbes, path: Optional[str] = None) -> dict:
    """Serialise every probe series (vectors included) to JSON.

    Returns the document; also writes it to ``path`` when given.
    """
    doc = {
        "interval": probes.interval,
        "epochs_seen": probes.epochs_seen,
        "samples_taken": probes.samples_taken,
        "series": {
            name: {
                "epochs": series.epochs(),
                "values": [
                    list(v) if isinstance(v, tuple) else v
                    for v in series.points()
                ],
                "dropped": series.dropped,
            }
            for name, series in sorted(probes.series.items())
        },
    }
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
    return doc


def epoch_report(probes: EpochProbes, max_rows: int = 40) -> str:
    """Human-readable per-epoch table of the headline run dynamics.

    Shows the most recent ``max_rows`` sampled epochs.  Columns cover
    the quantities the paper tracks phase-to-phase: the active policy,
    average LPQ/CAQ depth, prefetch accuracy and coverage, delayed
    regular commands, and DRAM power.
    """
    # imported lazily: repro.analysis pulls in the system package, which
    # is itself instrumented with repro.telemetry (would be a cycle)
    from repro.analysis.report import format_table

    epochs = probes.sampled_epochs()
    if not epochs:
        return "no epochs sampled (run too short for the epoch length?)"
    shown = epochs[-max_rows:]

    def col(name):
        series = probes.get(name)
        return dict(series.samples()) if series is not None else {}

    columns = {
        "policy": col("policy.index"),
        "lpq": col("queue.lpq.avg"),
        "caq": col("queue.caq.avg"),
        "acc": col("prefetch.accuracy"),
        "cov": col("prefetch.coverage"),
        "delayed": col("mc.delayed_regular"),
        "mw": col("dram.power_mw"),
    }
    rows = []
    for epoch in shown:
        def get(key):
            return columns[key].get(epoch, 0)
        rows.append(
            [
                epoch,
                int(get("policy")),
                round(get("lpq"), 2),
                round(get("caq"), 2),
                round(get("acc") * 100, 1),
                round(get("cov") * 100, 1),
                int(get("delayed")),
                round(get("mw"), 1),
            ]
        )
    title = (
        f"epoch telemetry ({probes.samples_taken} samples, "
        f"every {probes.interval} epoch(s))"
    )
    return format_table(
        ["epoch", "policy", "lpq avg", "caq avg", "acc %", "cov %",
         "delayed", "dram mW"],
        rows,
        title=title,
    )
