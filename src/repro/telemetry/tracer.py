"""The event bus at the centre of the telemetry subsystem.

A :class:`Tracer` is handed to every instrumented block at construction
time.  Blocks emit typed events through it; subscribers (exporters,
probes, tests) receive them synchronously.  Two properties make it safe
to thread through the whole simulator unconditionally:

* **Disabled is (near) free.**  The module-level :data:`NULL_TRACER` is
  permanently disabled; ``emit`` on a disabled tracer returns
  immediately, and hot paths additionally guard event *construction*
  with ``if tracer.enabled:`` so a non-telemetry run builds no event
  objects at all.
* **Overhead is self-measured.**  An enabled tracer wraps every dispatch
  in ``time.perf_counter`` and accumulates the time spent inside the
  telemetry machinery, so a run can report exactly how much wall clock
  its own instrumentation cost (see ``overhead_seconds`` /
  ``summary``).
"""

from __future__ import annotations

from collections import defaultdict
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional

from repro.telemetry.events import TraceEvent

#: A subscriber: called synchronously with each matching event.
EventSink = Callable[[TraceEvent], None]


class Tracer:
    """Synchronous publish/subscribe bus for :class:`TraceEvent`\\ s.

    Subscribers may listen to every event or only to specific kinds
    (kind-filtered dispatch keeps per-event fan-out proportional to the
    interested parties, not to the subscriber count).
    """

    __slots__ = ("enabled", "_global_sinks", "_kind_sinks", "counts",
                 "_overhead_s", "_published_counts", "_published_overhead_s")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._global_sinks: List[EventSink] = []
        self._kind_sinks: Dict[str, List[EventSink]] = defaultdict(list)
        #: events dispatched so far, per kind
        self.counts: Dict[str, int] = defaultdict(int)
        self._overhead_s = 0.0
        self._published_counts: Dict[str, int] = {}
        self._published_overhead_s = 0.0

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    def subscribe(
        self, sink: EventSink, kinds: Optional[Iterable[str]] = None
    ) -> EventSink:
        """Register ``sink``; with ``kinds`` it only sees those events.

        Returns the sink so it can be used for later :meth:`unsubscribe`.
        """
        if kinds is None:
            self._global_sinks.append(sink)
        else:
            for kind in kinds:
                self._kind_sinks[kind].append(sink)
        return sink

    def unsubscribe(self, sink: EventSink) -> None:
        """Remove ``sink`` from every dispatch list it appears in."""
        if sink in self._global_sinks:
            self._global_sinks.remove(sink)
        for sinks in self._kind_sinks.values():
            if sink in sinks:
                sinks.remove(sink)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        """Dispatch one event to all matching subscribers.

        A disabled tracer drops the event without touching subscribers,
        counters, or the clock.
        """
        if not self.enabled:
            return
        t0 = perf_counter()
        self.counts[event.kind] += 1
        for sink in self._global_sinks:
            sink(event)
        for sink in self._kind_sinks.get(event.kind, ()):
            sink(event)
        self._overhead_s += perf_counter() - t0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        """Events dispatched since construction."""
        return sum(self.counts.values())

    def overhead_seconds(self) -> float:
        """Wall-clock seconds spent inside ``emit`` (self-measured)."""
        return self._overhead_s

    def summary(self) -> Dict[str, object]:
        """JSON-ready digest: enablement, per-kind counts, overhead."""
        return {
            "enabled": self.enabled,
            "events": dict(sorted(self.counts.items())),
            "total_events": self.total_events,
            "overhead_seconds": self._overhead_s,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Per-kind counts and overhead *since the previous snapshot*.

        This is the bridge API :func:`repro.obs.bridge.publish_tracer`
        folds into the fleet-level metrics registry after each traced
        run.  Delta semantics (not cumulative) make the fold idempotent
        when one tracer outlives several runs: each event and each
        second of overhead is published exactly once.
        """
        events = {
            kind: count - self._published_counts.get(kind, 0)
            for kind, count in sorted(self.counts.items())
            if count - self._published_counts.get(kind, 0)
        }
        overhead = self._overhead_s - self._published_overhead_s
        self._published_counts = dict(self.counts)
        self._published_overhead_s = self._overhead_s
        return {"events": events, "overhead_seconds": overhead}


#: The shared, permanently disabled tracer every block defaults to.
#: Instrumented constructors use ``tracer or NULL_TRACER`` so existing
#: call sites and tests keep working unchanged.
NULL_TRACER = Tracer(enabled=False)
