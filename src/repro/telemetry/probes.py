"""Per-epoch time-series probes over a live :class:`~repro.system.simulator.System`.

:class:`EpochProbes` binds to a system and subscribes to the tracer's
``epoch_boundary`` events.  At every ``interval``-th epoch it samples
the state the paper's dynamic claims are about — SLH snapshots per
thread and direction, queue depths, prefetch accuracy and coverage,
delayed regular commands, the Adaptive Scheduling policy index, and
DRAM activity/power — into ring-buffered :class:`~repro.telemetry.series.Series`.

All per-epoch counters are *deltas* between consecutive samples
(computed with :meth:`repro.common.stats.Stats.snapshot_delta`), so a
series entry describes what happened during that sampling window, not
the run so far.  That is what makes Figure 3 style phase plots fall out
of probe data directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.stats import Stats
from repro.telemetry.events import EpochBoundary, TraceEvent
from repro.telemetry.series import Series

#: Direction key -> short series-name suffix.
_DIRECTION_NAMES = {1: "asc", -1: "desc"}


class EpochProbes:
    """Samples epoch-resolved series from a bound system.

    Parameters:
        interval: sample every N-th epoch boundary (1 = every epoch).
        capacity: ring-buffer capacity per series (oldest samples are
            dropped past this; drops are counted per series).
    """

    def __init__(self, interval: int = 1, capacity: int = 4096) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.capacity = capacity
        self.series: Dict[str, Series] = {}
        self.epochs_seen = 0
        self.samples_taken = 0
        self._system = None
        self._stats_blocks: Dict[str, Stats] = {}
        self._prev: Dict[str, Dict[str, float]] = {}
        self._prev_power: Dict[str, int] = {}
        self._prev_now = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, system) -> None:
        """Attach to a system and start listening for epoch boundaries.

        Must be called before the system runs; the baseline snapshot is
        taken here so the first sample's deltas cover the first window.
        """
        if self._system is not None:
            raise RuntimeError("EpochProbes binds to exactly one system")
        self._system = system
        self._stats_blocks = {
            "mc": system.controller.stats,
            "ms": system.ms.stats,
            "pb": system.ms.buffer.stats,
            "lpq": system.ms.lpq.stats,
            "sched": system.ms.scheduler.stats,
            "dram": system.dram.stats,
            "core": system.core.stats,
        }
        self._prev = {k: s.as_dict() for k, s in self._stats_blocks.items()}
        self._prev_power = system.power_model.snapshot()
        self._prev_now = system.now
        system.tracer.subscribe(self._on_event, kinds=("epoch_boundary",))

    def _series(self, name: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name, self.capacity)
        return s

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _on_event(self, event: TraceEvent) -> None:
        """Tracer sink: count epochs and sample on the configured stride."""
        assert isinstance(event, EpochBoundary)
        self.epochs_seen += 1
        if (self.epochs_seen - 1) % self.interval:
            return
        self._sample(event)

    def _sample(self, event: EpochBoundary) -> None:
        """Take one full sample at epoch ``event.epoch``."""
        system = self._system
        epoch = event.epoch
        self.samples_taken += 1
        def rec(name, value):
            self._series(name).record(epoch, value)

        deltas = {
            k: s.snapshot_delta(self._prev[k])
            for k, s in self._stats_blocks.items()
        }
        self._prev = {k: s.as_dict() for k, s in self._stats_blocks.items()}

        # -- scheduling ------------------------------------------------
        rec("policy.index", system.ms.scheduler.policy)
        rec("sched.conflicts", deltas["sched"].get("conflicts", 0))
        rec("mc.delayed_regular", deltas["mc"].get("delayed_regular", 0))

        # -- queue depths ----------------------------------------------
        mc = deltas["mc"]
        ticks = mc.get("ticks", 0)
        rec("queue.lpq", len(system.ms.lpq))
        rec("queue.caq", len(system.controller.caq))
        rec("queue.read", len(system.controller.queues.reads))
        rec("queue.write", len(system.controller.queues.writes))
        for queue in ("lpq", "caq", "read_queue", "write_queue"):
            avg = mc.get(f"occ_{queue}", 0) / ticks if ticks else 0.0
            rec(f"queue.{queue}.avg", avg)
        rec("pb.occupancy", system.ms.buffer.occupancy)

        # -- prefetch effectiveness ------------------------------------
        reads = mc.get("reads_arrived", 0)
        inserts = deltas["pb"].get("inserts", 0)
        hits = deltas["pb"].get("read_hits", 0)
        rec("mc.reads", reads)
        rec("prefetch.generated", deltas["ms"].get("generated", 0))
        rec("prefetch.issued", deltas["ms"].get("issued", 0))
        rec("prefetch.completed", deltas["ms"].get("completed", 0))
        rec("prefetch.buffer_hits", deltas["ms"].get("buffer_hits", 0))
        rec("prefetch.accuracy", hits / inserts if inserts else 0.0)
        rec(
            "prefetch.coverage",
            deltas["ms"].get("buffer_hits", 0) / reads if reads else 0.0,
        )

        # -- DRAM activity and power -----------------------------------
        dram = deltas["dram"]
        rec("dram.activations", dram.get("activations", 0))
        rec("dram.row_hits", dram.get("row_hits", 0))
        rec("dram.reads", dram.get("issued_reads", 0))
        rec("dram.writes", dram.get("issued_writes", 0))
        power = system.power_model.snapshot()
        d_cycles = event.t - self._prev_now
        if d_cycles > 0:
            energy_uj = system.power_model.interval_energy_uj(
                power["activations"] - self._prev_power["activations"],
                power["read_bursts"] - self._prev_power["read_bursts"],
                power["write_bursts"] - self._prev_power["write_bursts"],
                d_cycles,
            )
            t_ns = d_cycles * system.dram.config.timing.t_ck_ns
            rec("dram.energy_uj", energy_uj)
            rec("dram.power_mw", (energy_uj / t_ns) * 1e6 if t_ns else 0.0)
        self._prev_power = power
        self._prev_now = event.t

        # -- SLH snapshots (ASD engine only) ---------------------------
        self._sample_slh(epoch)

    def _sample_slh(self, epoch: int) -> None:
        """Record per-(thread, direction) likelihood-table snapshots.

        ``slh.lht.*`` holds the raw ``lht`` vector active for the new
        epoch, ``slh.bars.*`` its bar-heights form, ``slh.decision.*``
        the inequality-(5) prefetch verdict for every stream position —
        the exact decisions the engine will apply during the new epoch.
        """
        tables = self._system.ms.asd_tables()
        if tables is None:
            return
        degree = self._system.ms.config.degree
        for tid, pair in enumerate(tables):
            for direction, lht in pair.items():
                suffix = f"t{tid}.{_DIRECTION_NAMES[direction.step]}"
                self._series(f"slh.lht.{suffix}").record(
                    epoch, tuple(lht.epoch_start)
                )
                self._series(f"slh.bars.{suffix}").record(
                    epoch, tuple(lht.bars_epoch_start())
                )
                decisions = tuple(
                    lht.should_prefetch(k, degree)
                    for k in range(1, lht.lm - degree + 1)
                )
                self._series(f"slh.decision.{suffix}").record(epoch, decisions)

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Series]:
        """The named series, or None if never sampled."""
        return self.series.get(name)

    def scalar_names(self) -> List[str]:
        """Names of all scalar-valued series, sorted."""
        return sorted(n for n, s in self.series.items() if s.is_scalar)

    def vector_names(self) -> List[str]:
        """Names of all vector-valued (tuple) series, sorted."""
        return sorted(n for n, s in self.series.items() if not s.is_scalar)

    def sampled_epochs(self) -> List[int]:
        """Union of epoch indices present across every series."""
        epochs = set()
        for s in self.series.values():
            epochs.update(s.epochs())
        return sorted(epochs)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready digest: coverage and per-series drop counts."""
        return {
            "interval": self.interval,
            "epochs_seen": self.epochs_seen,
            "samples_taken": self.samples_taken,
            "series": sorted(self.series),
            "dropped": {
                n: s.dropped for n, s in sorted(self.series.items()) if s.dropped
            },
        }
