"""The Stream Filter (paper Section 3.3).

One small table per hardware thread.  Each slot tracks one Read stream:
its last line address, current length, direction, and a lifetime that
expires the slot when the stream goes quiet.  Slot evictions are the
*only* events that feed the Likelihood Tables — the SLH a finite filter
produces is therefore an approximation of the true histogram (the paper
shows in Figure 16 that it is a close one; our Figure 16 experiment
reproduces that comparison).

Matching rules, straight from the paper:

* A read equal to ``last + step`` of a slot advances that stream.
* A slot of length 1 also matches ``last - 1``, flipping the slot's
  direction to descending ("the direction of the stream is set to
  Negative if the length of the previous stream is 1 and the address of
  the read is smaller than the last address").
* A read matching nothing allocates a vacant slot (length 1, ascending);
  with no vacancy, no prefetch can follow the read, but the histogram is
  still updated as if a stream of length 1 had been observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.config import StreamFilterConfig
from repro.common.stats import Stats
from repro.common.types import Direction

#: Called with (length, direction) whenever a stream leaves the filter.
EvictionCallback = Callable[[int, Direction], None]


@dataclass(slots=True)
class StreamObservation:
    """What the filter concluded about one Read (slotted: one per Read).

    ``position`` is k, the element index of this read within its stream
    (1 for a fresh stream).  ``tracked`` is False when the filter was
    full and the read could not be followed — no prefetch may be
    generated for it.
    """

    position: int
    direction: Direction
    tracked: bool
    line: int


class _Slot:
    __slots__ = ("last", "length", "direction", "expires_at")

    def __init__(self, line: int, now: int, lifetime: int) -> None:
        self.last = line
        self.length = 1
        self.direction = Direction.ASCENDING
        self.expires_at = now + lifetime


class StreamFilter:
    """Per-thread stream tracker with lifetime-based eviction.

    Time is in CPU cycles.  Call :meth:`expire` (cheap when nothing
    expires) before observing reads at a new timestamp, or rely on
    :meth:`observe` doing it implicitly.
    """

    __slots__ = ("config", "on_evict", "slots", "stats", "_soonest_expiry")

    #: sentinel horizon when the filter holds no slots
    _NEVER = float("inf")

    def __init__(
        self,
        config: StreamFilterConfig,
        on_evict: Optional[EvictionCallback] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.on_evict = on_evict
        self.slots: List[_Slot] = []
        self.stats = Stats()
        # Lower bound on the earliest live expiry: expire() is a no-op
        # (and skips its scan) while now is below it.  Advances only
        # push expiries later, so the bound can go stale-low — that
        # costs a redundant scan, never a missed eviction.
        self._soonest_expiry = self._NEVER

    # ------------------------------------------------------------------
    def _evict(self, slot: _Slot) -> None:
        self.slots.remove(slot)
        self.stats.bump("evictions")
        self.stats.bump("evicted_length", slot.length)
        if self.on_evict is not None:
            self.on_evict(slot.length, slot.direction)

    def expire(self, now_cpu: int) -> None:
        """Evict every slot whose lifetime has run out."""
        if now_cpu < self._soonest_expiry:
            return
        for slot in [s for s in self.slots if s.expires_at <= now_cpu]:
            self._evict(slot)
        self._soonest_expiry = min(
            (s.expires_at for s in self.slots), default=self._NEVER
        )

    def flush(self, callback: Optional[EvictionCallback] = None) -> None:
        """Epoch boundary: evict all streams.

        When ``callback`` is given it replaces the normal eviction
        callback for this flush (the paper routes epoch-end flushes into
        LHTnext only).
        """
        for slot in list(self.slots):
            self.slots.remove(slot)
            self.stats.bump("flushes")
            sink = callback if callback is not None else self.on_evict
            if sink is not None:
                sink(slot.length, slot.direction)
        self._soonest_expiry = self._NEVER

    # ------------------------------------------------------------------
    def observe(self, line: int, now_cpu: int) -> StreamObservation:
        """Process one Read at ``line``; returns what stream it extends."""
        self.expire(now_cpu)
        cfg = self.config

        for slot in self.slots:
            if line == slot.last + slot.direction.step:
                slot.last = line
                slot.length += 1
                slot.expires_at = min(
                    slot.expires_at + cfg.lifetime_increment,
                    now_cpu + cfg.lifetime_cap,
                )
                self.stats.bump("advances")
                return StreamObservation(slot.length, slot.direction, True, line)
            if slot.length == 1 and line == slot.last - 1:
                slot.direction = Direction.DESCENDING
                slot.last = line
                slot.length = 2
                slot.expires_at = min(
                    slot.expires_at + cfg.lifetime_increment,
                    now_cpu + cfg.lifetime_cap,
                )
                self.stats.bump("advances")
                self.stats.bump("direction_flips")
                return StreamObservation(2, Direction.DESCENDING, True, line)

        if len(self.slots) < cfg.slots:
            self.slots.append(_Slot(line, now_cpu, cfg.lifetime_init))
            expiry = now_cpu + cfg.lifetime_init
            if expiry < self._soonest_expiry:
                self._soonest_expiry = expiry
            self.stats.bump("allocations")
            return StreamObservation(1, Direction.ASCENDING, True, line)

        # Filter full: the read is recorded as a completed length-1 stream
        # but cannot be followed, so no prefetch may be generated for it.
        self.stats.bump("untracked")
        if self.on_evict is not None:
            self.on_evict(1, Direction.ASCENDING)
        return StreamObservation(1, Direction.ASCENDING, False, line)

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self.slots)

    def lengths(self) -> List[int]:
        """Current lengths of live streams (test/debug helper)."""
        return [s.length for s in self.slots]

    def snapshot(self) -> List[dict]:
        """Telemetry view: one plain dict per live slot."""
        return [
            {
                "last": s.last,
                "length": s.length,
                "direction": s.direction.step,
                "expires_at": s.expires_at,
            }
            for s in self.slots
        ]
