"""Stream Length Histograms implemented as Likelihood Tables.

The paper never materialises the SLH directly.  Instead it keeps, per
thread and per stream direction, two tables of length Lm (Section 3.4):

* ``LHTcurr`` — drives prefetch decisions in the current epoch;
* ``LHTnext`` — accumulates the histogram for the next epoch.

``lht(i)`` counts Read commands that belong to streams of length >= i,
so a stream of length L contributes L to every entry 1..min(L, Lm).
When a stream of length L is evicted from the Stream Filter, LHTnext is
*incremented* that way and LHTcurr is *decremented* the same way (the
current epoch's expectation is consumed as streams complete).  At an
epoch boundary the remaining Stream Filter contents are flushed into
LHTnext, LHTnext becomes LHTcurr, and LHTnext is cleared.

The prefetch test for a Read that is the k-th element of a stream is the
paper's inequality (5), ``lht(k) < 2 * lht(k+1)``, generalised to degree
d by inequality (6), ``lht(k) < 2 * lht(k+d)`` (a shift-left comparator
in hardware).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import SLHConfig


def slh_bars(lht: List[int], table_len: Optional[int] = None) -> List[float]:
    """Convert an ``lht`` vector (1-indexed semantics, ``lht[0]`` unused)
    into SLH bar heights as fractions of all reads.

    ``bars[i]`` (1-indexed; returned list has index 0 unused = 0.0) is the
    probability that a read belongs to a stream of exactly length ``i``;
    the last bar aggregates "length >= Lm" (the paper's rightmost bar).
    """
    lm = table_len or (len(lht) - 1)
    total = lht[1]
    bars = [0.0] * (lm + 1)
    if total <= 0:
        return bars
    for i in range(1, lm):
        bars[i] = max(0, lht[i] - lht[i + 1]) / total
    bars[lm] = lht[lm] / total
    return bars


class LikelihoodTables:
    """LHTcurr/LHTnext pair for one (thread, direction).

    Entries saturate at zero on decrement and at ``counter_max`` on
    increment, mirroring the fixed-width hardware counters (each entry is
    a log2(e * Lm)-bit counter for epoch length e).
    """

    def __init__(self, config: SLHConfig) -> None:
        config.validate()
        self.config = config
        self.lm = config.table_len
        self.counter_max = config.epoch_reads * config.table_len
        # index 0 unused; entries 1..Lm live
        self.curr: List[int] = [0] * (self.lm + 1)
        self.next: List[int] = [0] * (self.lm + 1)
        #: snapshot of curr taken at the last epoch boundary (reporting)
        self.epoch_start: List[int] = [0] * (self.lm + 1)
        self.epochs = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def record_stream(self, length: int) -> None:
        """Credit a completed stream of ``length`` reads.

        Adds ``length`` to LHTnext[1..min(length, Lm)] and consumes the
        same amount from LHTcurr (saturating at 0 / counter_max).
        """
        if length <= 0:
            raise ValueError("stream length must be positive")
        top = min(length, self.lm)
        for i in range(1, top + 1):
            self.next[i] = min(self.next[i] + length, self.counter_max)
            self.curr[i] = max(self.curr[i] - length, 0)

    def record_stream_next_only(self, length: int) -> None:
        """Epoch-boundary flush: remaining Stream Filter entries update
        only LHTnext (LHTcurr is about to be replaced)."""
        if length <= 0:
            raise ValueError("stream length must be positive")
        top = min(length, self.lm)
        for i in range(1, top + 1):
            self.next[i] = min(self.next[i] + length, self.counter_max)

    def rollover(self) -> None:
        """Epoch boundary: LHTnext becomes LHTcurr; LHTnext clears."""
        self.curr = self.next
        self.epoch_start = list(self.next)
        self.next = [0] * (self.lm + 1)
        self.epochs += 1

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def should_prefetch(self, k: int, degree: int = 1) -> bool:
        """Inequality (5)/(6): prefetch ``degree`` lines ahead of the k-th
        element of a stream iff ``lht(k) < 2 * lht(k + degree)``.

        ``k`` beyond the table is clamped so that streams longer than Lm
        keep using the tail of the histogram.
        """
        if k < 1:
            raise ValueError("stream position k must be >= 1")
        if degree < 1 or degree >= self.lm:
            raise ValueError("degree must be in 1..Lm-1")
        k_eff = min(k, self.lm - degree)
        return self.curr[k_eff] < (self.curr[k_eff + degree] << 1)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Telemetry view: the table state frozen as plain tuples.

        ``epoch_start`` is the lht vector that became current at the
        last rollover — the exact numbers inequality (5)/(6) tests
        against during the running epoch.
        """
        return {
            "epochs": self.epochs,
            "epoch_start": tuple(self.epoch_start),
            "curr": tuple(self.curr),
            "next": tuple(self.next),
        }

    def bars_epoch_start(self) -> List[float]:
        """SLH bars from the snapshot taken at the last epoch boundary."""
        return slh_bars(self.epoch_start, self.lm)

    def bars_next(self) -> List[float]:
        """SLH bars of the histogram being gathered for the next epoch."""
        return slh_bars(self.next, self.lm)
