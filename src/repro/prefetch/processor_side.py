"""The Power5 processor-side stream prefetcher (paper Section 4.2).

A sequential prefetcher that "waits to issue prefetches until it detects
two consecutive cache misses", with a 12-entry stream-detection unit and
up to eight concurrently prefetched streams.  In steady state each
stream advance pulls one additional line toward the L1 and one toward
the L2 — modelled here as two leading-edge requests per advance at
``l1_lead`` and ``l2_lead`` lines ahead.

The engine watches demand accesses that miss the L1 **or** hit a line it
prefetched into the L1 itself (otherwise its own success would starve
its stream tracking).  Its prefetch requests travel to the memory
controller as ordinary reads — at the MC they are indistinguishable
from demand reads, exactly as the paper notes.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import List, Set

from repro.common.config import ProcessorSidePrefetcherConfig
from repro.common.stats import Stats


@dataclass(frozen=True, slots=True)
class PSRequest:
    """One processor-side prefetch request.

    ``to_l1`` selects the fill destination: True fills L1+L2 (the
    near-edge line), False stops at the L2 (the far-edge line).
    """

    line: int
    to_l1: bool


class _Stream:
    __slots__ = ("last", "step", "next_pf", "depth")

    def __init__(self, last: int, step: int, ramp: int) -> None:
        self.last = last
        self.step = step
        self.next_pf = last + step  # next line to prefetch
        self.depth = ramp  # current lead, grows toward l2_lead


class ProcessorSidePrefetcher:
    """Two-miss-confirm sequential stream prefetcher, per core."""

    def __init__(self, config: ProcessorSidePrefetcherConfig) -> None:
        config.validate()
        self.config = config
        self.enabled = config.enabled
        self._candidates = deque(maxlen=config.detect_entries)
        self._streams: "OrderedDict[int, _Stream]" = OrderedDict()
        #: lines this prefetcher installed into the L1 (advance-on-hit)
        self._installed_l1: Set[int] = set()
        self.stats = Stats()

    # ------------------------------------------------------------------
    def observe(self, line: int, l1_hit: bool) -> List[PSRequest]:
        """Feed one demand access; returns prefetch requests to send.

        Call for every demand access.  L1 hits are ignored unless the
        line was installed by this prefetcher (stream advance on
        prefetch hit).
        """
        if not self.enabled:
            return []
        if l1_hit:
            if line not in self._installed_l1:
                return []
            self._installed_l1.discard(line)
        else:
            self._installed_l1.discard(line)

        cfg = self.config
        # advance an existing stream
        for key, stream in list(self._streams.items()):
            if line == stream.last + stream.step:
                stream.last = line
                stream.depth = min(stream.depth + 1, cfg.l2_lead)
                self._streams.move_to_end(key)
                self.stats.bump("advances")
                return self._emit(stream)

        # confirm a candidate (two consecutive-line misses)
        step = 0
        if line - 1 in self._candidates:
            step = 1
            self._candidates.remove(line - 1)
        elif line + 1 in self._candidates:
            step = -1
            self._candidates.remove(line + 1)
        if step:
            if len(self._streams) >= cfg.max_streams:
                self._streams.popitem(last=False)
                self.stats.bump("stream_replacements")
            stream = _Stream(line, step, cfg.ramp)
            self._streams[line] = stream
            self.stats.bump("confirms")
            return self._emit(stream)

        self._candidates.append(line)
        self.stats.bump("allocations")
        return []

    def _emit(self, stream: _Stream) -> List[PSRequest]:
        """Advance the per-stream prefetch pointer up to the current lead.

        The ramp makes the lead grow gradually — short streams waste at
        most ``ramp`` prefetches at their end, while long streams reach a
        lead of ``l2_lead`` lines (the steady state of Section 4.2: each
        advance brings one line toward the L1 edge and one toward the L2
        edge).
        """
        cfg = self.config
        out: List[PSRequest] = []
        while (stream.next_pf - stream.last) * stream.step <= stream.depth:
            distance = (stream.next_pf - stream.last) * stream.step
            out.append(PSRequest(stream.next_pf, to_l1=distance <= cfg.l1_lead))
            stream.next_pf += stream.step
        return out

    # ------------------------------------------------------------------
    def notify_fill(self, line: int, to_l1: bool) -> None:
        """A prefetched line arrived; remember L1 installs for
        advance-on-hit tracking."""
        if to_l1:
            self._installed_l1.add(line)

    @property
    def active_streams(self) -> int:
        return len(self._streams)
