"""The assembled memory-side prefetcher embedded in the controller.

Wires together an engine (ASD / next-line / P5-style), the Prefetch
Buffer, the Low Priority Queue, the in-flight prefetch tracker, the
epoch counter shared with Adaptive Scheduling, and all the bookkeeping
behind Figure 13 (useful prefetches / coverage / delayed commands).

The controller drives it through four hooks:

* :meth:`observe_read` when a Read enters the controller (Figure 4:
  Reads are forked into the Stream Filter on entry);
* :meth:`read_lookup` at both Prefetch Buffer check points;
* :meth:`observe_write` on Write entry (coherence invalidation);
* :meth:`notify_issue` / :meth:`notify_complete` as prefetch commands
  leave the LPQ and return from DRAM.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.common.config import MemorySidePrefetcherConfig
from repro.common.stats import Stats
from repro.common.types import CommandKind, MemoryCommand, Provenance
from repro.prefetch.adaptive_scheduling import AdaptiveScheduler
from repro.prefetch.engines import ASDEngine, PrefetchEngine, build_engine
from repro.prefetch.lpq import LowPriorityQueue
from repro.prefetch.prefetch_buffer import PrefetchBuffer
from repro.telemetry.events import (
    EpochBoundary,
    PrefetchDiscard,
    PrefetchHit,
    PrefetchIssued,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Callback: a regular read merged with an in-flight prefetch is ready.
MergeCallback = Callable[[MemoryCommand], None]


class MemorySidePrefetcher:
    """Everything grey in the paper's Figure 4."""

    def __init__(
        self,
        config: MemorySidePrefetcherConfig,
        threads: int = 1,
        tracer: Optional[Tracer] = None,
    ):
        config.validate()
        self.config = config
        self.enabled = config.enabled
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: MC cycle of the last controller tick (event timestamping)
        self.now_mc = 0
        self.engine: PrefetchEngine = build_engine(config, threads)
        self.buffer = PrefetchBuffer(config.buffer, tracer=self.tracer)
        self.lpq = LowPriorityQueue(config.lpq_depth, tracer=self.tracer)
        self.scheduler = AdaptiveScheduler(config.scheduling, tracer=self.tracer)
        self.in_flight: Set[int] = set()
        #: regular reads waiting on an in-flight prefetch of their line
        self._merged: Dict[int, List[MemoryCommand]] = {}
        #: in-flight prefetch lines invalidated by a write before arrival
        self._cancelled: Set[int] = set()
        #: set by the controller: delivers merged reads on completion
        self.on_merge_ready: Optional[MergeCallback] = None
        self._reads_this_epoch = 0
        # tick() fast path: only the ASD engine with CPU-cycle stream
        # lifetimes has per-cycle work (read-clock lifetimes expire
        # inside observe_read; the other engines keep no timed state)
        self._tick_engine = (
            self.enabled
            and isinstance(self.engine, ASDEngine)
            and not self.engine._reads_clock
        )
        self.stats = Stats()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def observe_read(self, cmd: MemoryCommand, now_mc: int, now_cpu: int) -> None:
        """Fork an entering Read into the stream-detection hardware."""
        if not self.enabled:
            return
        self.now_mc = now_mc
        self.stats.bump("reads_observed")
        candidates = self.engine.observe_read(cmd.line, cmd.thread, now_cpu)
        for line in candidates:
            self._try_generate(line, cmd.thread, now_mc)
        self._reads_this_epoch += 1
        if self._reads_this_epoch >= self.config.slh.epoch_reads:
            self._reads_this_epoch = 0
            self.engine.epoch_flush()
            self.scheduler.now_mc = now_mc
            self.scheduler.epoch_update()
            self.stats.bump("epochs")
            if self.tracer.enabled:
                self.tracer.emit(
                    EpochBoundary(
                        t=now_mc,
                        epoch=int(self.stats["epochs"]),
                        reads=self.config.slh.epoch_reads,
                        policy=self.scheduler.policy,
                    )
                )

    def _try_generate(self, line: int, thread: int, now_mc: int) -> None:
        """Dedup a candidate line and place it in the LPQ."""
        if line < 0:
            return
        if self.buffer.contains(line):
            self.stats.bump("dropped_in_buffer")
            return
        if line in self.in_flight:
            self.stats.bump("dropped_in_flight")
            return
        cmd = MemoryCommand(
            CommandKind.READ,
            line,
            thread=thread,
            provenance=Provenance.MS_PREFETCH,
            arrival=now_mc,
        )
        if self.lpq.push(cmd):
            self.stats.bump("generated")

    def read_lookup(self, line: int) -> bool:
        """Prefetch Buffer probe for a regular Read (consuming on hit).

        Also squashes any still-queued prefetch of the same line — the
        demand access has made it pointless.
        """
        if not self.enabled:
            return False
        self.lpq.drop_line(line)
        if self.buffer.read_hit(line):
            self.stats.bump("buffer_hits")
            if self.tracer.enabled:
                self.tracer.emit(
                    PrefetchHit(t=self.now_mc, line=line, where="buffer")
                )
            return True
        return False

    def would_serve(self, line: int) -> bool:
        """Side-effect-free probe: would :meth:`read_lookup` or
        :meth:`try_merge` act on a Read to ``line`` right now?

        Used by the event-driven loop's wait detection — a CAQ head
        whose line this returns True for will be consumed at the next
        tick's Prefetch Buffer check point, so the machine is not in a
        deterministic wait.
        """
        if not self.enabled:
            return False
        return (
            self.lpq.contains_line(line)
            or self.buffer.contains(line)
            or (line in self.in_flight and line not in self._cancelled)
        )

    def try_merge(self, cmd: MemoryCommand) -> bool:
        """Attach a regular Read to an in-flight prefetch of its line.

        The controller tracks its in-flight commands, so a read whose
        line is already being prefetched need not access DRAM twice: it
        is held and answered when the prefetch data returns (this is the
        limiting case of the paper's second Prefetch Buffer check, where
        the prefetched data arrives 'while the Read command was resident
        in the CAQ').
        """
        if not self.enabled or not cmd.is_read:
            return False
        if cmd.line not in self.in_flight or cmd.line in self._cancelled:
            return False
        self._merged.setdefault(cmd.line, []).append(cmd)
        self.stats.bump("merged_reads")
        if self.tracer.enabled:
            self.tracer.emit(
                PrefetchHit(t=self.now_mc, line=cmd.line, where="merge")
            )
        return True

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def observe_write(self, cmd: MemoryCommand) -> None:
        if not self.enabled:
            return
        self.buffer.invalidate(cmd.line)
        self.lpq.drop_line(cmd.line)
        if cmd.line in self.in_flight and cmd.line not in self._merged:
            # the prefetched data will be stale on arrival: drop it
            self._cancelled.add(cmd.line)

    # ------------------------------------------------------------------
    # issue/complete plumbing
    # ------------------------------------------------------------------
    def notify_issue(self, cmd: MemoryCommand) -> None:
        self.in_flight.add(cmd.line)
        self.stats.bump("issued")
        if self.tracer.enabled:
            self.tracer.emit(
                PrefetchIssued(t=self.now_mc, line=cmd.line, thread=cmd.thread)
            )

    def notify_complete(self, cmd: MemoryCommand) -> None:
        self.in_flight.discard(cmd.line)
        self.stats.bump("completed")
        if cmd.line in self._cancelled:
            self._cancelled.discard(cmd.line)
            self.stats.bump("completed_cancelled")
            if self.tracer.enabled:
                self.tracer.emit(
                    PrefetchDiscard(
                        t=self.now_mc,
                        line=cmd.line,
                        reason="cancelled_in_flight",
                    )
                )
            return
        self.buffer.insert(cmd.line)
        merged = self._merged.pop(cmd.line, None)
        if merged:
            # the waiting read consumes the just-arrived line immediately
            self.buffer.read_hit(cmd.line)
            self.stats.bump("buffer_hits", len(merged))
            if self.on_merge_ready is not None:
                for waiting in merged:
                    self.on_merge_ready(waiting)

    def tick(self, now_cpu: int, now_mc: Optional[int] = None) -> None:
        """Let the engine expire time-based state (Stream Filter slots).

        ``now_mc`` keeps the telemetry clock of this block and its
        queues current; callers that never trace may omit it.  The
        clocks exist purely to timestamp traced events, so they are
        only maintained while the tracer is on.
        """
        if now_mc is not None and self.tracer.enabled:
            self.now_mc = now_mc
            self.buffer.now_mc = now_mc
            self.lpq.now_mc = now_mc
        if self._tick_engine:
            self.engine.tick(now_cpu)

    def tick_reference(self, now_cpu: int, now_mc: int) -> None:
        """Per-cycle tick exactly as the pre-fast-forward simulator ran
        it: the telemetry clocks advance and the engine ticks
        unconditionally every MC cycle.  The reference main loop steps
        through this; :meth:`tick` reaches the same state lazily."""
        self.now_mc = now_mc
        self.buffer.now_mc = now_mc
        self.lpq.now_mc = now_mc
        if self.enabled:
            self.engine.tick(now_cpu)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def useful_fraction(self) -> float:
        """Figure 13's 'useful prefetches': buffer hits / lines fetched."""
        return self.buffer.useful_fraction()

    def coverage(self, total_reads: float) -> float:
        """Figure 13's 'coverage': reads served by the Prefetch Buffer as
        a fraction of all reads (including processor-side prefetches)."""
        if total_reads <= 0:
            return 0.0
        return self.stats["buffer_hits"] / total_reads

    def asd_tables(self) -> Optional[List]:
        """Access the ASD likelihood tables (None for other engines)."""
        if isinstance(self.engine, ASDEngine):
            return self.engine.tables
        return None
