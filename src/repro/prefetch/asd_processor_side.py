"""ASD applied processor-side — the paper's stated future work.

The conclusion of the paper: "As future work, we will consider applying
Adaptive Stream Detection to processor-side prefetching."  This module
implements that idea so it can be evaluated: the same Stream Filter +
Likelihood Table machinery, but observing the core's L1-miss stream and
issuing prefetch requests that fill the L2/L1 caches (like the Power5
unit) instead of a memory-side buffer.

Differences from the memory-side ASD:

* it observes *L1 misses* (plus hits on its own installs, so streams
  keep advancing once covered), not controller reads;
* its prefetches are regular reads at the controller and their data
  enters the cache hierarchy, so no Prefetch Buffer or LPQ is involved;
* it can run a lead greater than one (``lead``), issuing the d-th line
  ahead whenever inequality (6) approves degree d — a natural
  generalisation the processor side needs because its round trip is
  longer than the controller's.

Select it with ``ProcessorSidePrefetcherConfig.engine = "asd"`` (the
default ``"power5"`` keeps the stock two-miss-confirm unit).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.common.config import ProcessorSidePrefetcherConfig
from repro.common.stats import Stats
from repro.common.types import Direction
from repro.prefetch.processor_side import PSRequest
from repro.prefetch.slh import LikelihoodTables
from repro.prefetch.stream_filter import StreamFilter


class ASDProcessorSidePrefetcher:
    """Adaptive Stream Detection driving processor-side prefetches.

    API-compatible with
    :class:`repro.prefetch.processor_side.ProcessorSidePrefetcher`.
    """

    def __init__(self, config: ProcessorSidePrefetcherConfig) -> None:
        config.validate()
        self.config = config
        self.enabled = config.enabled
        sf_cfg = config.asd_stream_filter
        slh_cfg = config.asd_slh
        self._tables: Dict[Direction, LikelihoodTables] = {
            Direction.ASCENDING: LikelihoodTables(slh_cfg),
            Direction.DESCENDING: LikelihoodTables(slh_cfg),
        }
        self._filter = StreamFilter(sf_cfg, on_evict=self._record)
        self._installed_l1: Set[int] = set()
        self._misses_this_epoch = 0
        self.stats = Stats()

    def _record(self, length: int, direction: Direction) -> None:
        self._tables[direction].record_stream(length)

    # ------------------------------------------------------------------
    def observe(self, line: int, l1_hit: bool) -> List[PSRequest]:
        """Feed one demand access; returns prefetch requests to send."""
        if not self.enabled:
            return []
        if l1_hit:
            if line not in self._installed_l1:
                return []
            self._installed_l1.discard(line)
        else:
            self._installed_l1.discard(line)

        self._misses_this_epoch += 1
        if self._misses_this_epoch >= self.config.asd_slh.epoch_reads:
            self._misses_this_epoch = 0
            self._epoch_flush()

        obs = self._filter.observe(line, self._observation_clock())
        if not obs.tracked:
            self.stats.bump("untracked")
            return []
        tables = self._tables[obs.direction]
        out: List[PSRequest] = []
        for d in range(1, self.config.lead + 1):
            if not tables.should_prefetch(obs.position, d):
                break
            target = line + d * obs.direction.step
            out.append(PSRequest(target, to_l1=d <= self.config.l1_lead))
        if out:
            self.stats.bump("generated", len(out))
        else:
            self.stats.bump("suppressed")
        return out

    def _observation_clock(self) -> int:
        # read-event clock, like the memory-side default
        self.stats.bump("observations")
        return int(self.stats["observations"])

    def _epoch_flush(self) -> None:
        def sink(length: int, direction: Direction) -> None:
            self._tables[direction].record_stream_next_only(length)

        self._filter.flush(callback=sink)
        for tables in self._tables.values():
            tables.rollover()
        self.stats.bump("epochs")

    # ------------------------------------------------------------------
    def notify_fill(self, line: int, to_l1: bool) -> None:
        """A prefetched line arrived; track L1 installs for advance."""
        if to_l1:
            self._installed_l1.add(line)

    @property
    def active_streams(self) -> int:
        return self._filter.occupancy


def build_processor_side(config: ProcessorSidePrefetcherConfig):
    """Factory keyed on ``config.engine`` ("power5" or "asd")."""
    if config.engine == "asd":
        return ASDProcessorSidePrefetcher(config)
    from repro.prefetch.processor_side import ProcessorSidePrefetcher

    return ProcessorSidePrefetcher(config)
