"""Adaptive Scheduling (paper Section 3.5).

The Final Scheduler must decide, each cycle, whether the head of the Low
Priority Queue may issue instead of the head of the CAQ.  The paper
defines five policies in decreasing order of conservativeness; a
prefetch command may issue only if:

1. the CAQ is empty **and** the Reorder Queues are empty;
2. the CAQ is empty **and** the Reorder Queues hold no issuable command;
3. the CAQ is empty;
4. the CAQ holds at most one entry **and** the LPQ is full;
5. the head of the LPQ has an earlier timestamp than the head of the CAQ.

Rather than fixing one policy at design time, Adaptive Scheduling tracks
how often a regular command was blocked by the memory-system footprint
of a previously issued prefetch, and once per epoch steps the active
policy toward conservative (on many conflicts) or aggressive (on few).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.common.config import AdaptiveSchedulingConfig
from repro.common.stats import Stats
from repro.telemetry.events import PolicyChange
from repro.telemetry.tracer import NULL_TRACER, Tracer


@dataclass(slots=True)
class SchedulerView:
    """Snapshot of queue state the policy predicates look at.

    Slotted: the Final Scheduler builds one per cycle whenever the LPQ
    holds a command.
    """

    caq_len: int
    caq_head_arrival: Optional[int]
    reorder_empty: bool
    reorder_has_issuable: bool
    lpq_len: int
    lpq_full: bool
    lpq_head_arrival: Optional[int]


def _policy1(v: SchedulerView) -> bool:
    return v.caq_len == 0 and v.reorder_empty


def _policy2(v: SchedulerView) -> bool:
    return v.caq_len == 0 and not v.reorder_has_issuable


def _policy3(v: SchedulerView) -> bool:
    return v.caq_len == 0


def _policy4(v: SchedulerView) -> bool:
    return _policy3(v) or (v.caq_len <= 1 and v.lpq_full)


def _policy5(v: SchedulerView) -> bool:
    if v.caq_len == 0:
        return True
    if v.lpq_head_arrival is None or v.caq_head_arrival is None:
        return False
    return v.lpq_head_arrival < v.caq_head_arrival


POLICIES: Dict[int, Callable[[SchedulerView], bool]] = {
    1: _policy1,
    2: _policy2,
    3: _policy3,
    4: _policy4,
    5: _policy5,
}


class AdaptiveScheduler:
    """Selects and adapts the LPQ prioritisation policy.

    ``record_conflict`` is called by the controller whenever a regular
    command is first found blocked by a bank held by an in-flight
    memory-side prefetch; ``epoch_update`` is called at every SLH epoch
    boundary (the paper reuses the SLH epoch for policy adaptation).
    """

    def __init__(
        self,
        config: AdaptiveSchedulingConfig,
        tracer: Optional[Tracer] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: MC cycle of the surrounding epoch boundary (event timestamps)
        self.now_mc = 0
        if config.fixed_policy is not None:
            self.policy = config.fixed_policy
        else:
            self.policy = config.initial_policy
        self.conflicts_this_epoch = 0
        self.stats = Stats()

    # ------------------------------------------------------------------
    def allows_lpq(self, view: SchedulerView) -> bool:
        """May the LPQ head issue this cycle under the active policy?"""
        if view.lpq_len == 0:
            return False
        return POLICIES[self.policy](view)

    # ------------------------------------------------------------------
    def record_conflict(self, count: int = 1) -> None:
        self.conflicts_this_epoch += count
        self.stats.bump("conflicts", count)

    def epoch_update(self) -> None:
        """Adapt the policy once per epoch from the conflict count."""
        conflicts = self.conflicts_this_epoch
        self.conflicts_this_epoch = 0
        self.stats.bump("epochs")
        if self.config.fixed_policy is not None:
            return
        old_policy = self.policy
        if conflicts > self.config.raise_threshold and self.policy > 1:
            self.policy -= 1
            self.stats.bump("steps_conservative")
        elif conflicts < self.config.lower_threshold and self.policy < 5:
            self.policy += 1
            self.stats.bump("steps_aggressive")
        self.stats.bump(f"epochs_at_policy_{self.policy}")
        if self.policy != old_policy and self.tracer.enabled:
            self.tracer.emit(
                PolicyChange(
                    t=self.now_mc,
                    old_policy=old_policy,
                    new_policy=self.policy,
                    conflicts=conflicts,
                )
            )
