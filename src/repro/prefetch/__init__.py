"""The paper's contribution: Adaptive Stream Detection and its siblings.

* :mod:`repro.prefetch.slh` — Stream Length Histograms via Likelihood
  Tables (LHTcurr / LHTnext), the probabilistic prefetch test.
* :mod:`repro.prefetch.stream_filter` — the 8-slot per-thread Stream
  Filter that feeds the tables.
* :mod:`repro.prefetch.engines` — the three memory-side generation
  engines: ASD, next-line, and a Power5-style engine relocated into the
  memory controller (the Figure 11 baselines).
* :mod:`repro.prefetch.prefetch_buffer` — the 2 KB Prefetch Buffer.
* :mod:`repro.prefetch.lpq` — the Low Priority Queue.
* :mod:`repro.prefetch.adaptive_scheduling` — the five prioritisation
  policies and the conflict-driven adaptation between them.
* :mod:`repro.prefetch.memory_side` — the assembled memory-side
  prefetcher the controller embeds.
* :mod:`repro.prefetch.processor_side` — the Power5 processor-side
  stream prefetcher (the paper's PS configuration).
"""

from repro.prefetch.adaptive_scheduling import (
    AdaptiveScheduler,
    SchedulerView,
)
from repro.prefetch.lpq import LowPriorityQueue
from repro.prefetch.memory_side import MemorySidePrefetcher
from repro.prefetch.prefetch_buffer import PrefetchBuffer
from repro.prefetch.processor_side import ProcessorSidePrefetcher, PSRequest
from repro.prefetch.slh import LikelihoodTables, slh_bars
from repro.prefetch.stream_filter import StreamFilter, StreamObservation

__all__ = [
    "AdaptiveScheduler",
    "LikelihoodTables",
    "LowPriorityQueue",
    "MemorySidePrefetcher",
    "PrefetchBuffer",
    "ProcessorSidePrefetcher",
    "PSRequest",
    "SchedulerView",
    "StreamFilter",
    "StreamObservation",
    "slh_bars",
]
