"""Prefetch-generation engines for the memory-side prefetcher.

All three engines answer the same question — *given this Read at the
memory controller, which lines should be prefetched?* — and plug into
:class:`repro.prefetch.memory_side.MemorySidePrefetcher`:

* :class:`ASDEngine` — the paper's Adaptive Stream Detection: a Stream
  Filter per thread feeding per-direction Likelihood Tables, prefetching
  only when inequality (5)/(6) predicts the stream continues.
* :class:`NextLineEngine` — prefetch the next line on every Read
  (Figure 11's "no ASD + next-line prefetcher" baseline).
* :class:`P5StyleEngine` — a Power5-style two-miss-confirm sequential
  engine relocated into the memory controller (Figure 11's "no ASD +
  P5-style prefetcher" baseline).  It needs two consecutive-line Reads
  to engage and keeps prefetching until the stream dies, so it both
  misses the second line of every stream and issues one useless
  prefetch per stream — exactly the weaknesses the paper discusses.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List

from repro.common.config import MemorySidePrefetcherConfig
from repro.common.stats import Stats
from repro.common.types import Direction
from repro.prefetch.slh import LikelihoodTables
from repro.prefetch.stream_filter import StreamFilter


class PrefetchEngine:
    """Interface shared by all generation engines."""

    def observe_read(self, line: int, thread: int, now_cpu: int) -> List[int]:
        """Process one Read; return candidate prefetch line addresses."""
        raise NotImplementedError

    def epoch_flush(self) -> None:
        """Called at every epoch boundary; optional."""

    def tick(self, now_cpu: int) -> None:
        """Called periodically so time-based state can expire; optional."""


class ASDEngine(PrefetchEngine):
    """Adaptive Stream Detection (paper Sections 3.1-3.4)."""

    def __init__(self, config: MemorySidePrefetcherConfig, threads: int) -> None:
        self.config = config
        self.threads = threads
        self.degree = config.degree
        self._reads_clock = config.stream_filter.lifetime_unit == "reads"
        self._read_counts = [0] * threads
        # per thread: a Stream Filter and one table pair per direction
        self.filters: List[StreamFilter] = []
        self.tables: List[Dict[Direction, LikelihoodTables]] = []
        for _ in range(threads):
            pair = {
                Direction.ASCENDING: LikelihoodTables(config.slh),
                Direction.DESCENDING: LikelihoodTables(config.slh),
            }
            self.tables.append(pair)
            sf = StreamFilter(
                config.stream_filter,
                on_evict=self._make_evict_sink(pair),
            )
            self.filters.append(sf)
        self.stats = Stats()

    @staticmethod
    def _make_evict_sink(pair: Dict[Direction, LikelihoodTables]):
        def sink(length: int, direction: Direction) -> None:
            pair[direction].record_stream(length)

        return sink

    # ------------------------------------------------------------------
    def observe_read(self, line: int, thread: int, now_cpu: int) -> List[int]:
        if self._reads_clock:
            self._read_counts[thread] += 1
            now_cpu = self._read_counts[thread]
        obs = self.filters[thread].observe(line, now_cpu)
        if not obs.tracked:
            self.stats.bump("untracked_reads")
            return []
        tables = self.tables[thread][obs.direction]
        out: List[int] = []
        for d in range(1, self.degree + 1):
            if not tables.should_prefetch(obs.position, d):
                break
            out.append(line + d * obs.direction.step)
        if not out:
            self.stats.bump("suppressed")
        return out

    def epoch_flush(self) -> None:
        """Flush all filters into LHTnext, then roll the tables over."""
        for thread in range(self.threads):
            pair = self.tables[thread]

            def sink(length: int, direction: Direction) -> None:
                pair[direction].record_stream_next_only(length)

            self.filters[thread].flush(callback=sink)
            for tables in pair.values():
                tables.rollover()
        self.stats.bump("epochs")

    def tick(self, now_cpu: int) -> None:
        if self._reads_clock:
            return  # read-clock lifetimes expire inside observe_read
        for sf in self.filters:
            sf.expire(now_cpu)


class NextLineEngine(PrefetchEngine):
    """Prefetch ``line + 1`` on every Read, unconditionally."""

    def __init__(self, config: MemorySidePrefetcherConfig, threads: int) -> None:
        self.degree = config.degree
        self.stats = Stats()

    def observe_read(self, line: int, thread: int, now_cpu: int) -> List[int]:
        return [line + d for d in range(1, self.degree + 1)]


class _P5Stream:
    __slots__ = ("last", "step")

    def __init__(self, last: int, step: int) -> None:
        self.last = last
        self.step = step


class P5StyleEngine(PrefetchEngine):
    """Two-miss-confirm sequential stream engine in the controller.

    Mirrors the Power5's processor-side policy shape (Section 4.2): a
    Read allocates a detection entry; a Read to the adjacent line in
    either direction confirms a stream; each confirmed-stream advance
    prefetches the next line.  Uses the detection-table and stream-count
    sizes of the real unit (12 candidates, 8 streams).
    """

    DETECT_ENTRIES = 12
    MAX_STREAMS = 8

    def __init__(self, config: MemorySidePrefetcherConfig, threads: int) -> None:
        self.degree = config.degree
        # per-thread candidate FIFOs and stream tables (LRU OrderedDict)
        self._candidates = [deque(maxlen=self.DETECT_ENTRIES) for _ in range(threads)]
        self._streams: List["OrderedDict[int, _P5Stream]"] = [
            OrderedDict() for _ in range(threads)
        ]
        self.stats = Stats()

    def observe_read(self, line: int, thread: int, now_cpu: int) -> List[int]:
        streams = self._streams[thread]
        # advance an existing stream?
        for key, stream in list(streams.items()):
            if line == stream.last + stream.step:
                stream.last = line
                streams.move_to_end(key)
                self.stats.bump("advances")
                return [line + d * stream.step for d in range(1, self.degree + 1)]
        # confirm a candidate?
        candidates = self._candidates[thread]
        step = 0
        if line - 1 in candidates:
            step = 1
            candidates.remove(line - 1)
        elif line + 1 in candidates:
            step = -1
            candidates.remove(line + 1)
        if step:
            if len(streams) >= self.MAX_STREAMS:
                streams.popitem(last=False)  # evict LRU stream
            streams[line] = _P5Stream(line, step)
            self.stats.bump("confirms")
            return [line + d * step for d in range(1, self.degree + 1)]
        candidates.append(line)
        return []


def build_engine(
    config: MemorySidePrefetcherConfig, threads: int
) -> PrefetchEngine:
    """Factory keyed on ``config.engine``."""
    if config.engine == "asd":
        return ASDEngine(config, threads)
    if config.engine == "nextline":
        return NextLineEngine(config, threads)
    if config.engine == "p5":
        return P5StyleEngine(config, threads)
    raise ValueError(f"unknown engine {config.engine!r}")
