"""The Low Priority Queue holding not-yet-issued prefetch commands.

A bounded FIFO with the same depth as the CAQ (3 on the Power5+).  The
Final Scheduler may pick its head instead of the CAQ head according to
the active prioritisation policy.  A full LPQ drops new prefetches — a
speculative command is never worth back-pressuring the prefetch
generator for.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set

from repro.common.stats import Stats
from repro.common.types import MemoryCommand
from repro.telemetry.events import PrefetchDiscard
from repro.telemetry.tracer import NULL_TRACER, Tracer


class LowPriorityQueue:
    """Bounded FIFO of memory-side prefetch commands."""

    def __init__(self, depth: int, tracer: Optional[Tracer] = None) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: MC cycle of the last controller tick (event timestamping)
        self.now_mc = 0
        self._queue: Deque[MemoryCommand] = deque()
        self._lines: Set[int] = set()
        self.stats = Stats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.depth

    def contains_line(self, line: int) -> bool:
        return line in self._lines

    def head(self) -> Optional[MemoryCommand]:
        return self._queue[0] if self._queue else None

    def push(self, cmd: MemoryCommand) -> bool:
        """Enqueue; returns False (command dropped) when full or duplicate."""
        if cmd.line in self._lines:
            self.stats.bump("dropped_duplicate")
            if self.tracer.enabled:
                self.tracer.emit(
                    PrefetchDiscard(
                        t=self.now_mc, line=cmd.line, reason="lpq_duplicate"
                    )
                )
            return False
        if self.full:
            self.stats.bump("dropped_full")
            if self.tracer.enabled:
                self.tracer.emit(
                    PrefetchDiscard(
                        t=self.now_mc, line=cmd.line, reason="lpq_full"
                    )
                )
            return False
        self._queue.append(cmd)
        self._lines.add(cmd.line)
        self.stats.bump("pushed")
        return True

    def pop(self) -> MemoryCommand:
        cmd = self._queue.popleft()
        self._lines.discard(cmd.line)
        return cmd

    def drop_line(self, line: int) -> bool:
        """Remove a pending prefetch that became redundant (e.g. the line
        was demanded before the prefetch issued)."""
        if line not in self._lines:
            return False
        for cmd in list(self._queue):
            if cmd.line == line:
                self._queue.remove(cmd)
                break
        self._lines.discard(line)
        self.stats.bump("squashed")
        if self.tracer.enabled:
            self.tracer.emit(
                PrefetchDiscard(t=self.now_mc, line=line, reason="squashed")
            )
        return True
