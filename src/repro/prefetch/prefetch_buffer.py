"""The Prefetch Buffer: a tiny set-associative cache next to the MC.

16 entries of 128 B (2 KB) in the paper's configuration.  Semantics from
Section 3.3:

* memory-side prefetched lines are inserted here (never into the CPU
  caches);
* a regular Read that matches is served from the buffer **and the entry
  is invalidated** (the data is headed for L1/L2, so it is unlikely to be
  useful here again);
* a Write that matches invalidates the entry (coherence).

The buffer also keeps the bookkeeping behind Figure 13: an entry that is
read before being displaced counts as a *useful* prefetch; entries
displaced or invalidated untouched are *useless*.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import PrefetchBufferConfig
from repro.common.stats import Stats
from repro.telemetry.events import PrefetchDiscard
from repro.telemetry.tracer import NULL_TRACER, Tracer


class _Entry:
    __slots__ = ("line", "lru")

    def __init__(self, line: int, lru: int) -> None:
        self.line = line
        self.lru = lru


class PrefetchBuffer:
    """Set-associative, LRU, read-once line buffer."""

    def __init__(
        self,
        config: PrefetchBufferConfig,
        tracer: Optional[Tracer] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: MC cycle of the last controller tick (event timestamping)
        self.now_mc = 0
        self.num_sets = config.entries // config.assoc
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = Stats()

    def _set_for(self, line: int) -> Dict[int, int]:
        return self._sets[line % self.num_sets]

    # ------------------------------------------------------------------
    def insert(self, line: int) -> None:
        """Install a prefetched line, evicting LRU on a full set."""
        self._clock += 1
        entries = self._set_for(line)
        if line in entries:
            entries[line] = self._clock
            self.stats.bump("duplicate_inserts")
            return
        if len(entries) >= self.config.assoc:
            victim = min(entries, key=entries.get)
            del entries[victim]
            self.stats.bump("evicted_unused")
            if self.tracer.enabled:
                self.tracer.emit(
                    PrefetchDiscard(
                        t=self.now_mc, line=victim, reason="evicted_unused"
                    )
                )
        entries[line] = self._clock
        self.stats.bump("inserts")

    def read_hit(self, line: int) -> bool:
        """Probe for a regular Read; on hit, consume the entry."""
        entries = self._set_for(line)
        if line in entries:
            del entries[line]
            self.stats.bump("read_hits")
            return True
        return False

    def contains(self, line: int) -> bool:
        """Presence probe with no side effects (used for dedup)."""
        return line in self._set_for(line)

    def invalidate(self, line: int) -> bool:
        """Coherence invalidation on a Write match."""
        entries = self._set_for(line)
        if line in entries:
            del entries[line]
            self.stats.bump("write_invalidations")
            if self.tracer.enabled:
                self.tracer.emit(
                    PrefetchDiscard(
                        t=self.now_mc, line=line, reason="write_invalidate"
                    )
                )
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def useful_fraction(self) -> float:
        """Fraction of inserted lines that were read before displacement."""
        inserts = self.stats["inserts"]
        if inserts == 0:
            return 0.0
        return self.stats["read_hits"] / inserts
