"""Stdlib-only HTTP endpoint: ``/metrics``, ``/healthz``, ``/progress``.

:class:`ObsServer` wraps an ``http.server.ThreadingHTTPServer`` on a
daemon thread, so a sweep (or the ``repro obs serve`` subcommand) can
expose its state without any dependency beyond the standard library:

* ``GET /metrics``       — Prometheus text exposition (0.0.4) of the
  live registry, or of the newest JSON snapshot when serving a
  directory;
* ``GET /metrics.json``  — the JSON snapshot document;
* ``GET /healthz``       — liveness JSON: status, pid, uptime, source;
* ``GET /progress``      — a self-refreshing HTML dashboard of the
  attached :class:`~repro.obs.progress.SweepProgress`;
* ``GET /progress.json`` — the raw progress snapshot.

Two sources, checked in order: a **live** :class:`MetricsRegistry` (and
optional ``SweepProgress``) passed at construction — what ``repro sweep
--metrics-port N`` uses — or a **snapshot directory** re-read per
request, which is how ``repro obs serve`` serves the counters of
sweeps that already finished.

Bind to port 0 to let the OS pick (the bound port is available as
``server.port`` — the endpoint tests do this).  Request logging goes to
the ``repro.obs.server`` logger at DEBUG, never to stderr.
"""

from __future__ import annotations

import html
import json
import logging
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.obs import exporters
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress, render_line

_log = logging.getLogger("repro.obs.server")

_DASHBOARD_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="1">
<title>repro sweep progress</title>
<style>
  body {{ font-family: ui-monospace, monospace; margin: 2rem; }}
  table {{ border-collapse: collapse; margin-top: 1rem; }}
  td, th {{ border: 1px solid #999; padding: 0.3rem 0.8rem; text-align: left; }}
  progress {{ width: 24rem; height: 1.2rem; }}
</style>
</head>
<body>
<h1>repro sweep</h1>
<p><progress max="{total}" value="{done}"></progress> {percent:.0f}%</p>
<p>{line}</p>
<table>
<tr><th>counter</th><th>value</th></tr>
{rows}
</table>
<p><a href="/metrics">/metrics</a> · <a href="/metrics.json">/metrics.json</a>
 · <a href="/healthz">/healthz</a> · <a href="/progress.json">/progress.json</a></p>
</body>
</html>
"""


class ObsServer:
    """Serve metrics/health/progress for one process on a daemon thread."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        progress: Optional[SweepProgress] = None,
        snapshot_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if registry is None and snapshot_dir is None:
            raise ValueError("ObsServer needs a registry or a snapshot_dir")
        self.registry = registry
        self.progress = progress
        self.snapshot_dir = snapshot_dir
        self._started_monotonic = time.monotonic()
        self._thread: Optional[threading.Thread] = None
        owner = self

        class _Handler(BaseHTTPRequestHandler):
            """Routes one request; all state lives on the owning server."""

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                owner._route(self)

            def log_message(self, format: str, *args: object) -> None:
                _log.debug("%s - %s", self.address_string(), format % args)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        """The actually-bound TCP port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL the endpoints are reachable under."""
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ObsServer":
        """Begin serving on a daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        _log.info("obs endpoint serving on %s", self.url)
        return self

    def close(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI use)."""
        self._httpd.serve_forever()

    # -- content -------------------------------------------------------
    def _metrics_source(self) -> Tuple[str, Optional[Dict[str, object]]]:
        """``(description, snapshot-or-None)``; live registries use None."""
        if self.registry is not None:
            return "live", None
        found = exporters.latest_snapshot(self.snapshot_dir)
        if found is None:
            return f"snapshot-dir:{self.snapshot_dir} (empty)", None
        path, document = found
        return f"snapshot:{path}", document

    def _metrics_text(self) -> str:
        if self.registry is not None:
            return exporters.render_exposition(self.registry)
        _, document = self._metrics_source()
        if document is None:
            return ""
        return exporters.exposition_from_snapshot(document)

    def _metrics_json(self) -> Dict[str, object]:
        if self.registry is not None:
            progress = (
                self.progress.snapshot() if self.progress is not None else None
            )
            return exporters.registry_snapshot(self.registry, progress=progress)
        _, document = self._metrics_source()
        return document if document is not None else {"metrics": []}

    def _health(self) -> Dict[str, object]:
        source, _ = self._metrics_source()
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "metrics_source": source,
        }

    def _progress_snapshot(self) -> Optional[Dict[str, object]]:
        if self.progress is not None:
            return self.progress.snapshot()
        _, document = self._metrics_source()
        if document is not None and isinstance(document.get("progress"), dict):
            return document["progress"]
        return None

    def _dashboard(self) -> str:
        snapshot = self._progress_snapshot()
        if snapshot is None:
            return (
                "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
                "<meta http-equiv=\"refresh\" content=\"2\">"
                "<title>repro sweep progress</title></head>"
                "<body><p>no sweep progress available</p></body></html>"
            )
        rows = []
        for section in ("outcomes", "events"):
            for name, count in sorted(snapshot.get(section, {}).items()):
                rows.append(
                    f"<tr><td>{html.escape(str(name))}</td>"
                    f"<td>{html.escape(str(count))}</td></tr>"
                )
        return _DASHBOARD_TEMPLATE.format(
            total=max(1, snapshot["total"]),
            done=snapshot["done"],
            percent=snapshot["percent"],
            line=html.escape(render_line(snapshot)),
            rows="\n".join(rows),
        )

    # -- routing -------------------------------------------------------
    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._respond(
                    handler, 200, exporters.EXPOSITION_CONTENT_TYPE,
                    self._metrics_text(),
                )
            elif path == "/metrics.json":
                self._respond_json(handler, 200, self._metrics_json())
            elif path == "/healthz":
                self._respond_json(handler, 200, self._health())
            elif path == "/progress.json":
                snapshot = self._progress_snapshot()
                if snapshot is None:
                    self._respond_json(
                        handler, 404, {"error": "no progress attached"}
                    )
                else:
                    self._respond_json(handler, 200, snapshot)
            elif path in ("/", "/progress"):
                self._respond(
                    handler, 200, "text/html; charset=utf-8", self._dashboard()
                )
            else:
                self._respond_json(handler, 404, {"error": f"no route {path}"})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception:  # never kill the serving thread on one request
            _log.exception("obs endpoint failed serving %s", path)
            try:
                self._respond_json(handler, 500, {"error": "internal error"})
            except Exception:
                pass

    @staticmethod
    def _respond(
        handler: BaseHTTPRequestHandler,
        status: int,
        content_type: str,
        body: str,
    ) -> None:
        payload = body.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(payload)))
        handler.end_headers()
        handler.wfile.write(payload)

    @staticmethod
    def _respond_json(
        handler: BaseHTTPRequestHandler, status: int, document: Dict[str, object]
    ) -> None:
        ObsServer._respond(
            handler, status, "application/json; charset=utf-8",
            json.dumps(document, sort_keys=True, indent=1),
        )
