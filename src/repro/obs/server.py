"""Stdlib-only HTTP endpoint: ``/metrics``, ``/healthz``, ``/progress``.

:class:`ObsServer` wraps an ``http.server.ThreadingHTTPServer`` on a
daemon thread, so a sweep (or the ``repro obs serve`` subcommand) can
expose its state without any dependency beyond the standard library:

* ``GET /metrics``       — Prometheus text exposition (0.0.4) of the
  live registry, or of the newest JSON snapshot when serving a
  directory;
* ``GET /metrics.json``  — the JSON snapshot document;
* ``GET /healthz``       — liveness JSON: status, pid, uptime, source;
  in snapshot-dir mode it also reports the newest snapshot's age and
  flips ``status`` to ``stale`` once that age exceeds ``stale_after``
  seconds (a dead sweep stops refreshing its snapshot — the fabric
  coordinator and external monitors key off this);
* ``GET /progress``      — a live HTML dashboard of the attached
  :class:`~repro.obs.progress.SweepProgress` (updates over ``/events``,
  reloading as a fallback);
* ``GET /progress.json`` — the raw progress snapshot;
* ``GET /spans.json``    — the attached span collector's stored spans
  (:mod:`repro.obs.spans`), 404 when no collector is attached;
* ``GET /events``        — a Server-Sent-Events stream of progress
  deltas (``event: progress``) and span completions (``event: span``),
  so watchers update live instead of polling.

Two sources, checked in order: a **live** :class:`MetricsRegistry` (and
optional ``SweepProgress``) passed at construction — what ``repro sweep
--metrics-port N`` uses — or a **snapshot directory** re-read per
request, which is how ``repro obs serve`` serves the counters of
sweeps that already finished.

Bind to port 0 to let the OS pick (the bound port is available as
``server.port`` — the endpoint tests do this).  Request logging goes to
the ``repro.obs.server`` logger at DEBUG, never to stderr.
"""

from __future__ import annotations

import html
import json
import logging
import os
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.obs import exporters
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress, render_line
from repro.obs.spans import SPANS_VERSION, SpanCollector

_log = logging.getLogger("repro.obs.server")

_DASHBOARD_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro sweep progress</title>
<style>
  body {{ font-family: ui-monospace, monospace; margin: 2rem; }}
  table {{ border-collapse: collapse; margin-top: 1rem; }}
  td, th {{ border: 1px solid #999; padding: 0.3rem 0.8rem; text-align: left; }}
  progress {{ width: 24rem; height: 1.2rem; }}
</style>
</head>
<body>
<h1>repro sweep</h1>
<p><progress id="bar" max="{total}" value="{done}"></progress>
 <span id="pct">{percent:.0f}%</span></p>
<p id="line">{line}</p>
<table>
<tr><th>counter</th><th>value</th></tr>
{rows}
</table>
<p><a href="/metrics">/metrics</a> · <a href="/metrics.json">/metrics.json</a>
 · <a href="/healthz">/healthz</a> · <a href="/progress.json">/progress.json</a>
 · <a href="/spans.json">/spans.json</a> · <a href="/events">/events</a></p>
<script>
  // Live updates over /events; falls back to reloading (the old
  // meta-refresh behaviour) if the SSE stream is unavailable.
  const es = new EventSource('/events');
  es.addEventListener('progress', (e) => {{
    const s = JSON.parse(e.data);
    const bar = document.getElementById('bar');
    bar.max = Math.max(1, s.total);
    bar.value = s.done;
    document.getElementById('pct').textContent = s.percent.toFixed(0) + '%';
    if (s.line) document.getElementById('line').textContent = s.line;
  }});
  es.onerror = () => {{ es.close(); setTimeout(() => location.reload(), 2000); }};
</script>
</body>
</html>
"""


class ObsServer:
    """Serve metrics/health/progress for one process on a daemon thread."""

    #: Snapshot age (seconds) past which ``/healthz`` reports ``stale``
    #: in snapshot-dir mode; None disables the check.
    DEFAULT_STALE_AFTER = 600.0

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        progress: Optional[SweepProgress] = None,
        snapshot_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        stale_after: Optional[float] = DEFAULT_STALE_AFTER,
        spans: Optional[SpanCollector] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        if registry is None and snapshot_dir is None:
            raise ValueError("ObsServer needs a registry or a snapshot_dir")
        self.registry = registry
        self.progress = progress
        self.snapshot_dir = snapshot_dir
        self.stale_after = stale_after
        self.spans = spans
        self.events = events if events is not None else EventBus()
        self._started_monotonic = time.monotonic()
        self._thread: Optional[threading.Thread] = None
        self._closing = False
        self._wired = False
        owner = self

        class _Handler(BaseHTTPRequestHandler):
            """Routes one request; all state lives on the owning server."""

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                owner._route(self)

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                owner._route_post(self)

            def log_message(self, format: str, *args: object) -> None:
                _log.debug("%s - %s", self.address_string(), format % args)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        """The actually-bound TCP port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL the endpoints are reachable under."""
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ObsServer":
        """Begin serving on a daemon thread; returns self."""
        self._wire_events()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        _log.info("obs endpoint serving on %s", self.url)
        return self

    def close(self) -> None:
        """Stop serving and release the socket.

        ``server_close`` runs in a ``finally`` so the bound socket is
        released even when ``shutdown()`` raises (e.g. a subclass hook
        or a half-torn-down serve loop) — leaking the port would make
        every later bind on it fail with EADDRINUSE.
        """
        self._closing = True
        self.events.close()  # wakes any blocked /events handler thread
        try:
            self._httpd.shutdown()
        finally:
            self._httpd.server_close()
            if self._thread is not None:
                self._thread.join(timeout=5)
                self._thread = None

    def _wire_events(self) -> None:
        """Feed the SSE bus from the attached progress and span sources."""
        if self._wired:
            return
        self._wired = True
        if self.progress is not None and hasattr(self.progress, "subscribe"):
            self.progress.subscribe(self._publish_progress)
        if self.spans is not None:
            self.spans.subscribe(lambda doc: self.events.publish("span", doc))

    def _publish_progress(self, progress: SweepProgress) -> None:
        snapshot = progress.snapshot()
        snapshot["line"] = render_line(snapshot)
        self.events.publish("progress", snapshot)

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI use)."""
        self._httpd.serve_forever()

    # -- content -------------------------------------------------------
    def _metrics_source(self) -> Tuple[str, Optional[Dict[str, object]]]:
        """``(description, snapshot-or-None)``; live registries use None."""
        if self.registry is not None:
            return "live", None
        found = exporters.latest_snapshot(self.snapshot_dir)
        if found is None:
            return f"snapshot-dir:{self.snapshot_dir} (empty)", None
        path, document = found
        return f"snapshot:{path}", document

    def _metrics_text(self) -> str:
        if self.registry is not None:
            return exporters.render_exposition(self.registry)
        _, document = self._metrics_source()
        if document is None:
            return ""
        return exporters.exposition_from_snapshot(document)

    def _metrics_json(self) -> Dict[str, object]:
        if self.registry is not None:
            progress = (
                self.progress.snapshot() if self.progress is not None else None
            )
            return exporters.registry_snapshot(self.registry, progress=progress)
        _, document = self._metrics_source()
        return document if document is not None else {"metrics": []}

    def _health(self) -> Dict[str, object]:
        source, _ = self._metrics_source()
        health: Dict[str, object] = {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "metrics_source": source,
        }
        if self.registry is None:
            # Snapshot-dir mode: a sweep that died stops refreshing its
            # snapshot, so report the age and flip to "stale" past the
            # threshold instead of answering "ok" forever.
            age = self._snapshot_age()
            health["snapshot_age_seconds"] = age
            if (
                age is not None
                and self.stale_after is not None
                and age > self.stale_after
            ):
                health["status"] = "stale"
                health["stale_after_seconds"] = self.stale_after
        # Fleet-skew visibility: every obs endpoint states which fabric
        # wire version and span plane this process runs, so a mixed
        # fleet is diagnosable from /healthz before a key-mismatch or
        # protocol error surfaces.  Imported lazily — fabric sits above
        # obs in the layering.
        try:
            from repro.fabric.protocol import PROTOCOL_VERSION
            health["protocol"] = PROTOCOL_VERSION
        except ImportError:  # pragma: no cover - fabric always ships
            pass
        spans = self.spans
        health["obs"] = {
            "spans": "enabled" if spans is not None and spans.enabled
            else "disabled",
        }
        if spans is not None and spans.enabled:
            health["obs"]["span_count"] = len(spans)
        health.update(self.health_extra())
        return health

    def _snapshot_age(self) -> Optional[float]:
        """Seconds since the newest snapshot was generated (None if none).

        Prefers the snapshot's own ``generated_unix`` stamp; falls back
        to file mtime for hand-made or older snapshot documents.
        """
        found = exporters.latest_snapshot(self.snapshot_dir)
        if found is None:
            return None
        path, document = found
        generated = document.get("generated_unix")
        if isinstance(generated, (int, float)):
            return max(0.0, time.time() - float(generated))
        try:
            return max(0.0, time.time() - os.path.getmtime(path))
        except OSError:
            return None

    def health_extra(self) -> Dict[str, object]:
        """Subclass hook: extra fields merged into the ``/healthz`` body."""
        return {}

    def _progress_snapshot(self) -> Optional[Dict[str, object]]:
        if self.progress is not None:
            return self.progress.snapshot()
        _, document = self._metrics_source()
        if document is not None and isinstance(document.get("progress"), dict):
            return document["progress"]
        return None

    def _dashboard(self) -> str:
        snapshot = self._progress_snapshot()
        if snapshot is None:
            return (
                "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
                "<meta http-equiv=\"refresh\" content=\"2\">"
                "<title>repro sweep progress</title></head>"
                "<body><p>no sweep progress available</p></body></html>"
            )
        rows = []
        for section in ("outcomes", "events"):
            for name, count in sorted(snapshot.get(section, {}).items()):
                rows.append(
                    f"<tr><td>{html.escape(str(name))}</td>"
                    f"<td>{html.escape(str(count))}</td></tr>"
                )
        return _DASHBOARD_TEMPLATE.format(
            total=max(1, snapshot["total"]),
            done=snapshot["done"],
            percent=snapshot["percent"],
            line=html.escape(render_line(snapshot)),
            rows="\n".join(rows),
        )

    # -- routing -------------------------------------------------------
    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._respond(
                    handler, 200, exporters.EXPOSITION_CONTENT_TYPE,
                    self._metrics_text(),
                )
            elif path == "/metrics.json":
                self._respond_json(handler, 200, self._metrics_json())
            elif path == "/healthz":
                self._respond_json(handler, 200, self._health())
            elif path == "/progress.json":
                snapshot = self._progress_snapshot()
                if snapshot is None:
                    self._respond_json(
                        handler, 404, {"error": "no progress attached"}
                    )
                else:
                    self._respond_json(handler, 200, snapshot)
            elif path == "/spans.json":
                if self.spans is None:
                    self._respond_json(
                        handler, 404, {"error": "no span collector attached"}
                    )
                else:
                    self._respond_json(handler, 200, {
                        "version": SPANS_VERSION,
                        "enabled": self.spans.enabled,
                        "dropped": self.spans.dropped,
                        "spans": self.spans.spans(),
                    })
            elif path == "/events":
                self._stream_events(handler)
            elif path in ("/", "/progress"):
                self._respond(
                    handler, 200, "text/html; charset=utf-8", self._dashboard()
                )
            elif self._handle_get(handler, path):
                pass
            else:
                self._respond_json(handler, 404, {"error": f"no route {path}"})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception:  # never kill the serving thread on one request
            _log.exception("obs endpoint failed serving %s", path)
            try:
                self._respond_json(handler, 500, {"error": "internal error"})
            except Exception:
                pass

    def _route_post(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if not self._handle_post(handler, path):
                self._respond_json(
                    handler, 405, {"error": f"no POST route {path}"}
                )
        except BrokenPipeError:
            pass
        except Exception:
            _log.exception("obs endpoint failed serving POST %s", path)
            try:
                self._respond_json(handler, 500, {"error": "internal error"})
            except Exception:
                pass

    def _handle_get(self, handler: BaseHTTPRequestHandler, path: str) -> bool:
        """Subclass hook for extra GET routes; True = request handled."""
        return False

    def _handle_post(self, handler: BaseHTTPRequestHandler, path: str) -> bool:
        """Subclass hook for POST routes; True = request handled."""
        return False

    # -- the SSE stream ------------------------------------------------
    def _stream_events(self, handler: BaseHTTPRequestHandler) -> None:
        """Serve one ``/events`` client until it disconnects or we close.

        Runs on the request's own thread (ThreadingHTTPServer), blocking
        on the subscriber queue with a short timeout so keepalive
        comments flow while nothing happens and shutdown is prompt.
        """
        subscriber = self.events.subscribe()
        try:
            handler.send_response(200)
            handler.send_header("Content-Type", "text/event-stream")
            handler.send_header("Cache-Control", "no-store")
            handler.send_header("Connection", "close")
            handler.end_headers()
            hello = {
                "pid": os.getpid(),
                "progress": self._progress_snapshot(),
                "spans": len(self.spans) if self.spans is not None else 0,
            }
            self._write_sse(handler, "hello", hello)
            while not self._closing:
                try:
                    item = subscriber.get(timeout=0.5)
                except queue.Empty:
                    handler.wfile.write(b": keepalive\n\n")
                    handler.wfile.flush()
                    continue
                if item is None:  # close() sentinel
                    break
                kind, payload = item
                self._write_sse(handler, kind, payload)
        except (BrokenPipeError, ConnectionError, OSError):
            pass  # client went away; nothing to salvage
        finally:
            self.events.unsubscribe(subscriber)

    @staticmethod
    def _write_sse(
        handler: BaseHTTPRequestHandler, kind: str, payload: object
    ) -> None:
        frame = f"event: {kind}\ndata: {json.dumps(payload, sort_keys=True)}\n\n"
        handler.wfile.write(frame.encode("utf-8"))
        handler.wfile.flush()

    @staticmethod
    def _respond(
        handler: BaseHTTPRequestHandler,
        status: int,
        content_type: str,
        body: str,
    ) -> None:
        payload = body.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(payload)))
        handler.end_headers()
        handler.wfile.write(payload)

    @staticmethod
    def _respond_json(
        handler: BaseHTTPRequestHandler, status: int, document: Dict[str, object]
    ) -> None:
        ObsServer._respond(
            handler, status, "application/json; charset=utf-8",
            json.dumps(document, sort_keys=True, indent=1),
        )
