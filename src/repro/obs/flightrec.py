"""Flight recorder: a bounded ring of structured records, dumped on
failure as a crash post-mortem.

A sweep that dies — worker crash, per-job timeout, broken pool — used
to leave nothing behind but a stack trace in a terminal.  The
:class:`FlightRecorder` keeps the recent past in memory at all times:

* **structured notes** the sweep engine files at every lifecycle event
  (submits, retries, timeouts, pool breaks), and
* **log records**: the recorder is a :class:`logging.Handler`, so
  attaching it to the ``repro`` logger captures everything the
  structured-logging satellite emits, ring-buffered, regardless of the
  process's logging configuration.

When a job crashes, times out, or exhausts its retry budget, the
engine calls :meth:`FlightRecorder.postmortem`, which writes one JSON
document — failure reason, full job spec and key, the record ring, and
a metrics snapshot — to ``.repro-results/postmortem/<job-key>.json``
(:func:`repro.obs.paths.postmortem_dir`), so the failure is debuggable
after the process is gone.

The ring costs a few hundred small dicts of memory and is always on in
the sweep engine; nothing is written to disk unless something fails.

The post-mortem directory itself is bounded: after every successful
dump the oldest documents beyond :data:`DEFAULT_POSTMORTEM_CAP` files
(``REPRO_POSTMORTEM_CAP`` overrides; ``0`` disables the cap) are
evicted, counted into ``repro_postmortem_evictions_total`` — fuzz and
sweep sessions accumulate post-mortems across runs, and an unbounded
directory of stale crash dumps is its own operational failure.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional

from repro.obs import paths
from repro.obs.exporters import registry_snapshot
from repro.obs.metrics import MetricsRegistry, default_registry

#: Schema version of the post-mortem document.
POSTMORTEM_VERSION = 1

#: Default ring capacity (records kept per recorder).
DEFAULT_CAPACITY = 256

#: Default bound on ``<store>/postmortem/`` documents (oldest evicted).
DEFAULT_POSTMORTEM_CAP = 64

_log = logging.getLogger("repro.obs.flightrec")


class FlightRecorder(logging.Handler):
    """Bounded in-memory ring of structured records + post-mortem dumper.

    Being a ``logging.Handler``, it can be attached to any logger
    subtree (:meth:`attach`/:meth:`detach`); emitted log records join
    the same ring as the structured :meth:`note` entries, in order.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        logging.Handler.__init__(self)
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0
        self._ring_lock = threading.Lock()
        self._metrics = metrics
        self._attached_to: Optional[logging.Logger] = None

    # -- recording -----------------------------------------------------
    def note(self, kind: str, **fields: object) -> None:
        """Append one structured record to the ring."""
        with self._ring_lock:
            self._seq += 1
            record = {"seq": self._seq, "t_unix": time.time(), "kind": kind}
            record.update(fields)
            self._ring.append(record)

    def emit(self, record: logging.LogRecord) -> None:
        """``logging.Handler`` hook: ring-buffer one log record."""
        self.note(
            "log",
            level=record.levelname,
            logger=record.name,
            message=record.getMessage(),
        )

    def records(self) -> List[Dict[str, object]]:
        """The current ring contents, oldest first."""
        with self._ring_lock:
            return list(self._ring)

    # -- logging wiring ------------------------------------------------
    def attach(self, logger_name: str = "repro") -> "FlightRecorder":
        """Start capturing ``logger_name``'s subtree into the ring."""
        logger = logging.getLogger(logger_name)
        logger.addHandler(self)
        self._attached_to = logger
        return self

    def detach(self) -> None:
        """Stop capturing (no-op when never attached)."""
        if self._attached_to is not None:
            self._attached_to.removeHandler(self)
            self._attached_to = None

    # -- post-mortems --------------------------------------------------
    def postmortem(
        self,
        reason: str,
        job_key: str,
        spec: Optional[Mapping[str, object]] = None,
        extra: Optional[Mapping[str, object]] = None,
        directory: Optional[str] = None,
        max_files: Optional[int] = None,
    ) -> Optional[str]:
        """Dump the recorder state for one failed job; returns the path.

        The document lands at ``<directory>/<job_key>.json``
        (``directory`` defaults to the shared post-mortem dir).  Dump
        failures are logged and swallowed — a broken disk must never
        turn a recovered sweep into a crashed one — returning None.

        After a successful dump the directory is rotated down to
        ``max_files`` documents (default: ``REPRO_POSTMORTEM_CAP`` or
        :data:`DEFAULT_POSTMORTEM_CAP`; 0 or negative disables),
        evicting oldest-first by mtime and counting evictions into the
        ``repro_postmortem_evictions_total`` metric.
        """
        directory = paths.postmortem_dir() if directory is None else directory
        metrics = self._metrics if self._metrics is not None else default_registry()
        document: Dict[str, object] = {
            "version": POSTMORTEM_VERSION,
            "reason": reason,
            "job_key": job_key,
            "spec": dict(spec) if spec is not None else None,
            "written_unix": time.time(),
            "records": self.records(),
            "metrics": registry_snapshot(metrics) if metrics.enabled else None,
            "extra": dict(extra) if extra is not None else None,
        }
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=directory
            )
            path = os.path.join(directory, f"{job_key}.json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, sort_keys=True, indent=1)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            _log.warning(
                "could not write post-mortem for job %s under %s",
                job_key, directory, exc_info=True,
            )
            return None
        self._rotate(directory, path, max_files, metrics)
        return path

    def _rotate(
        self,
        directory: str,
        just_written: str,
        max_files: Optional[int],
        metrics: MetricsRegistry,
    ) -> int:
        """Evict oldest post-mortems beyond the cap; returns the count."""
        cap = max_files if max_files is not None else _postmortem_cap()
        if cap <= 0:
            return 0
        try:
            entries = [
                os.path.join(directory, name)
                for name in os.listdir(directory)
                if name.endswith(".json") and not name.startswith(".")
            ]
        except OSError:
            return 0
        if len(entries) <= cap:
            return 0
        def mtime(entry: str) -> float:
            try:
                return os.path.getmtime(entry)
            except OSError:
                return 0.0
        # never evict the document this call just wrote, even with a
        # coarse-mtime filesystem ranking it oldest
        victims = [entry for entry in sorted(entries, key=mtime)
                   if entry != just_written][: len(entries) - cap]
        evicted = 0
        for victim in victims:
            try:
                os.unlink(victim)
                evicted += 1
            except OSError:
                pass  # racing eviction/readers; the cap is best-effort
        if evicted and metrics.enabled:
            metrics.counter(
                "repro_postmortem_evictions_total",
                "Post-mortem documents evicted by directory rotation.",
            ).inc(evicted)
        return evicted


def _postmortem_cap() -> int:
    """The effective post-mortem directory cap (env-overridable)."""
    raw = os.environ.get("REPRO_POSTMORTEM_CAP", "")
    try:
        return int(raw) if raw else DEFAULT_POSTMORTEM_CAP
    except ValueError:
        return DEFAULT_POSTMORTEM_CAP


def read_postmortem(path: str) -> Dict[str, object]:
    """Load one post-mortem document (convenience for tools/tests)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
