"""Critical-path analysis over a finished span tree.

Answers the question the raw span list cannot: *which chain of work
bounded the sweep's wall clock, and who was the straggler?*  Works on
the encoded-dict span form stored by :class:`repro.obs.spans.SpanCollector`
(local or stitched fleet-wide), so the same analysis runs on a live
collector, a ``spans/latest.json`` snapshot, or a coordinator's
``/spans.json`` reply.

Definitions used throughout (all wall-clock seconds):

* **critical path** — starting from the root span that finishes last,
  repeatedly descend into the child that finishes last; the resulting
  root→leaf chain is the longest dependency chain the run waited on.
* **self time** — a span's duration minus the union of its children's
  intervals (clipped to the span); rolled up per span *name*, this is
  where time was actually spent rather than delegated.
* **straggler** — the longest job-level span (one carrying a
  ``benchmark`` attribute; falls back to the longest leaf), with its
  share of the analyzed trace's wall clock.
* **idle** — the part of the root span during which *no other span of
  the trace* was running: scheduling gaps, drained queues, lease
  waits.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

ANALYSIS_VERSION = 1


def _end(doc: Mapping[str, Any]) -> float:
    return doc["start_unix"] + doc["duration_s"]


def primary_trace(spans: Sequence[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
    """The spans of the largest trace (ties: smallest trace id)."""
    by_trace: Dict[str, List[Mapping[str, Any]]] = {}
    for doc in spans:
        by_trace.setdefault(doc["trace"], []).append(doc)
    if not by_trace:
        return []
    winner = min(by_trace, key=lambda trace: (-len(by_trace[trace]), trace))
    return by_trace[winner]


def _children_index(
    spans: Sequence[Mapping[str, Any]],
) -> Tuple[Dict[str, Mapping[str, Any]], Dict[str, List[Mapping[str, Any]]]]:
    by_id = {doc["span"]: doc for doc in spans}
    children: Dict[str, List[Mapping[str, Any]]] = {}
    for doc in spans:
        parent = doc.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(doc)
    return by_id, children


def _roots(spans, by_id) -> List[Mapping[str, Any]]:
    return [doc for doc in spans
            if doc.get("parent") is None or doc["parent"] not in by_id]


def critical_path(spans: Sequence[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
    """Root→leaf chain bounding the primary trace's wall clock."""
    trace = primary_trace(spans)
    by_id, children = _children_index(trace)
    roots = _roots(trace, by_id)
    if not roots:
        return []
    node = max(roots, key=_end)
    chain = [node]
    while children.get(node["span"]):
        node = max(children[node["span"]], key=_end)
        chain.append(node)
    return chain


def _union_length(intervals: Iterable[Tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    total = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if last_end is None or start >= last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def _clipped(children, lo: float, hi: float) -> List[Tuple[float, float]]:
    return [(max(doc["start_unix"], lo), min(_end(doc), hi))
            for doc in children]


def self_times(spans: Sequence[Mapping[str, Any]]) -> Dict[str, float]:
    """Per-name rollup of time spent in a span but not its children."""
    _by_id, children = _children_index(spans)
    rollup: Dict[str, float] = {}
    for doc in spans:
        covered = _union_length(
            _clipped(children.get(doc["span"], ()), doc["start_unix"], _end(doc))
        )
        rollup[doc["name"]] = rollup.get(doc["name"], 0.0) + max(
            0.0, doc["duration_s"] - covered
        )
    return rollup


def analyze(spans: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Full analysis document over the primary trace of ``spans``."""
    traces = len({doc["trace"] for doc in spans})
    trace = primary_trace(spans)
    if not trace:
        return {"version": ANALYSIS_VERSION, "spans": 0, "traces": 0,
                "trace": None, "wall_s": 0.0, "critical_path": [],
                "critical_path_s": 0.0, "self_time": {}, "straggler": None,
                "idle_s": 0.0}
    by_id, children = _children_index(trace)
    roots = _roots(trace, by_id)
    start = min(doc["start_unix"] for doc in trace)
    wall = max(map(_end, trace)) - start

    chain = critical_path(spans)
    path = [{"name": doc["name"], "span": doc["span"],
             "duration_s": doc["duration_s"]} for doc in chain]
    path_s = (_end(chain[-1]) - chain[0]["start_unix"]) if chain else 0.0

    root = max(roots, key=_end) if roots else None
    idle = 0.0
    if root is not None:
        # Measure against every other span of the trace, not just
        # direct children: fabric job spans are grandchildren (sweep ->
        # lease -> execute) and still count as the fleet doing work.
        covered = _union_length(_clipped(
            [doc for doc in trace if doc["span"] != root["span"]],
            root["start_unix"], _end(root),
        ))
        idle = max(0.0, root["duration_s"] - covered)

    straggler = _straggler(trace, children, wall)
    return {
        "version": ANALYSIS_VERSION,
        "spans": len(spans),
        "traces": traces,
        "trace": trace[0]["trace"],
        "wall_s": wall,
        "critical_path": path,
        "critical_path_s": path_s,
        "self_time": self_times(trace),
        "straggler": straggler,
        "idle_s": idle,
    }


def _straggler(trace, children, wall: float) -> Optional[Dict[str, Any]]:
    candidates = [doc for doc in trace
                  if "benchmark" in doc.get("attrs", {})]
    if not candidates:
        candidates = [doc for doc in trace if doc["span"] not in children]
    if not candidates:
        return None
    worst = max(candidates, key=lambda doc: doc["duration_s"])
    attrs = worst.get("attrs", {})
    label = str(attrs.get("benchmark", worst["name"]))
    config = attrs.get("config")
    if config:
        label = f"{label}/{config}"
    return {
        "name": worst["name"],
        "span": worst["span"],
        "label": label,
        "duration_s": worst["duration_s"],
        "share": (worst["duration_s"] / wall) if wall > 0 else 0.0,
    }


def _fmt(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    return f"{seconds:.2f}s"


def render_summary(analysis: Mapping[str, Any], top: int = 3) -> str:
    """Human-readable summary lines for CLI output."""
    if not analysis.get("spans"):
        return "trace: no spans recorded"
    lines = []
    chain = " > ".join(step["name"] for step in analysis["critical_path"])
    lines.append(
        f"trace: {analysis['spans']} spans in {analysis['traces']} trace(s), "
        f"wall {_fmt(analysis['wall_s'])}, "
        f"critical path {_fmt(analysis['critical_path_s'])}"
        + (f" ({chain})" if chain else "")
    )
    straggler = analysis.get("straggler")
    if straggler is not None:
        lines.append(
            f"straggler: {straggler['label']} "
            f"{_fmt(straggler['duration_s'])} "
            f"({straggler['share']:.0%} of wall), "
            f"idle {_fmt(analysis['idle_s'])}"
        )
    rollup = sorted(analysis["self_time"].items(),
                    key=lambda item: -item[1])[:top]
    if rollup:
        lines.append("self-time: " + ", ".join(
            f"{name} {_fmt(seconds)}" for name, seconds in rollup
        ))
    return "\n".join(lines)
