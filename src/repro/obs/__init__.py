"""repro.obs — process-wide metrics, live progress, health endpoints,
and crash post-mortems.

Where :mod:`repro.telemetry` looks *inside one run* (epoch-resolved
series, typed event traces), ``repro.obs`` watches the *fleet*: how
many jobs a sweep executed and where they were served from, what the
result store's hit rate is, how long jobs take, and what was happening
right before a worker died.  See docs/observability.md for the metric
catalogue and the "telemetry vs. obs" decision guide in
docs/telemetry.md.

* :mod:`repro.obs.metrics` — the labeled counter/gauge/histogram
  registry (``NULL_METRICS`` disabled default, ``REPRO_METRICS=1`` or
  the CLI to enable).
* :mod:`repro.obs.exporters` — Prometheus text exposition + JSON
  snapshots under ``.repro-results/metrics/``.
* :mod:`repro.obs.server` — the stdlib HTTP endpoint (``/metrics``,
  ``/healthz``, ``/progress``) behind ``repro sweep --metrics-port``
  and ``repro obs serve``.
* :mod:`repro.obs.progress` — live sweep counters, ETA, and the TTY
  status line.
* :mod:`repro.obs.flightrec` — the flight recorder and its
  ``.repro-results/postmortem/<job-key>.json`` crash dumps.
* :mod:`repro.obs.bridge` — folds per-run totals (``RunResult``,
  loop stats, tracer counts) into the registry.
* :mod:`repro.obs.spans` — the span-based wall-clock tracer
  (``NULL_SPANS`` disabled default, ``REPRO_SPANS=1`` or the CLI to
  enable) stitching sweep/fabric work into per-trace trees.
* :mod:`repro.obs.critpath` — critical-path / straggler / self-time
  analysis over a finished span tree.
* :mod:`repro.obs.events` — the fan-out bus behind the ``/events``
  SSE endpoint.
"""

from repro.obs.critpath import analyze, critical_path, render_summary
from repro.obs.events import EventBus
from repro.obs.exporters import (
    parse_exposition,
    registry_snapshot,
    render_exposition,
    write_snapshot,
)
from repro.obs.flightrec import FlightRecorder, read_postmortem
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
    set_default_registry,
)
from repro.obs.progress import ProgressPrinter, SweepProgress, render_line
from repro.obs.server import ObsServer
from repro.obs.spans import (
    NULL_SPANS,
    Span,
    SpanCollector,
    SpanError,
    default_collector,
    load_spans,
    reset_default_collector,
    set_default_collector,
    to_chrome_trace,
    write_spans,
)

__all__ = [
    "NULL_METRICS",
    "NULL_SPANS",
    "Counter",
    "EventBus",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "ObsServer",
    "ProgressPrinter",
    "Span",
    "SpanCollector",
    "SpanError",
    "SweepProgress",
    "analyze",
    "critical_path",
    "default_collector",
    "default_registry",
    "load_spans",
    "parse_exposition",
    "read_postmortem",
    "registry_snapshot",
    "render_exposition",
    "render_line",
    "render_summary",
    "reset_default_collector",
    "reset_default_registry",
    "set_default_collector",
    "set_default_registry",
    "to_chrome_trace",
    "write_snapshot",
    "write_spans",
]
