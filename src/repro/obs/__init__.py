"""repro.obs — process-wide metrics, live progress, health endpoints,
and crash post-mortems.

Where :mod:`repro.telemetry` looks *inside one run* (epoch-resolved
series, typed event traces), ``repro.obs`` watches the *fleet*: how
many jobs a sweep executed and where they were served from, what the
result store's hit rate is, how long jobs take, and what was happening
right before a worker died.  See docs/observability.md for the metric
catalogue and the "telemetry vs. obs" decision guide in
docs/telemetry.md.

* :mod:`repro.obs.metrics` — the labeled counter/gauge/histogram
  registry (``NULL_METRICS`` disabled default, ``REPRO_METRICS=1`` or
  the CLI to enable).
* :mod:`repro.obs.exporters` — Prometheus text exposition + JSON
  snapshots under ``.repro-results/metrics/``.
* :mod:`repro.obs.server` — the stdlib HTTP endpoint (``/metrics``,
  ``/healthz``, ``/progress``) behind ``repro sweep --metrics-port``
  and ``repro obs serve``.
* :mod:`repro.obs.progress` — live sweep counters, ETA, and the TTY
  status line.
* :mod:`repro.obs.flightrec` — the flight recorder and its
  ``.repro-results/postmortem/<job-key>.json`` crash dumps.
* :mod:`repro.obs.bridge` — folds per-run totals (``RunResult``,
  loop stats, tracer counts) into the registry.
"""

from repro.obs.exporters import (
    parse_exposition,
    registry_snapshot,
    render_exposition,
    write_snapshot,
)
from repro.obs.flightrec import FlightRecorder, read_postmortem
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
    set_default_registry,
)
from repro.obs.progress import ProgressPrinter, SweepProgress, render_line
from repro.obs.server import ObsServer

__all__ = [
    "NULL_METRICS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "ObsServer",
    "ProgressPrinter",
    "SweepProgress",
    "default_registry",
    "parse_exposition",
    "read_postmortem",
    "registry_snapshot",
    "render_exposition",
    "render_line",
    "reset_default_registry",
    "set_default_registry",
    "write_snapshot",
]
