"""A tiny fan-out event bus backing the ``/events`` SSE endpoint.

Publishers (progress subscribers, span-collector listeners, the fabric
coordinator) push ``(kind, payload)`` tuples; each SSE client holds its
own bounded queue, so one slow consumer drops *its own* oldest events
instead of blocking the sweep.  ``close()`` pushes a ``None`` sentinel
to every queue so handler threads wake immediately on shutdown.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, List, Optional, Tuple

#: Per-subscriber queue bound; oldest events dropped beyond it.
DEFAULT_QUEUE_CAPACITY = 256

Event = Tuple[str, Any]


class EventBus:
    """Thread-safe publish/subscribe with per-subscriber bounded queues."""

    def __init__(self, capacity: int = DEFAULT_QUEUE_CAPACITY):
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._queues: List["queue.Queue[Optional[Event]]"] = []
        self._closed = False
        self._dropped = 0

    def subscribe(self) -> "queue.Queue[Optional[Event]]":
        """A fresh queue receiving every event published from now on."""
        q: "queue.Queue[Optional[Event]]" = queue.Queue(maxsize=self.capacity)
        with self._lock:
            self._queues.append(q)
            if self._closed:
                q.put(None)
        return q

    def unsubscribe(self, q: "queue.Queue[Optional[Event]]") -> None:
        with self._lock:
            try:
                self._queues.remove(q)
            except ValueError:
                pass

    def publish(self, kind: str, payload: Any) -> int:
        """Deliver ``(kind, payload)`` to every subscriber; returns count."""
        with self._lock:
            if self._closed:
                return 0
            queues = list(self._queues)
        event: Event = (kind, payload)
        for q in queues:
            try:
                q.put_nowait(event)
            except queue.Full:
                with self._lock:
                    self._dropped += 1
                try:  # drop that subscriber's oldest, keep the stream fresh
                    q.get_nowait()
                except queue.Empty:
                    pass
                try:
                    q.put_nowait(event)
                except queue.Full:
                    pass
        return len(queues)

    def close(self) -> None:
        """Stop accepting events and wake every subscriber with a sentinel."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues)
        for q in queues:
            try:
                q.put_nowait(None)
            except queue.Full:
                try:
                    q.get_nowait()
                except queue.Empty:
                    pass
                try:
                    q.put_nowait(None)
                except queue.Full:
                    pass

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def dropped(self) -> int:
        """Events dropped because a subscriber queue was full."""
        with self._lock:
            return self._dropped

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._queues)
