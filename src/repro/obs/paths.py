"""Filesystem layout of the obs subsystem's on-disk artifacts.

Everything obs writes lives under the same root as the result store
(``REPRO_STORE_DIR`` or ``.repro-results``):

* ``<root>/metrics/``    — JSON metrics snapshots (one per sweep, the
  newest always at ``latest.json``), servable by ``repro obs serve``;
* ``<root>/postmortem/`` — crash/timeout post-mortems written by the
  flight recorder (:mod:`repro.obs.flightrec`);
* ``<root>/spans/``      — span-trace snapshots written by the span
  collector (:mod:`repro.obs.spans`), exportable with
  ``repro obs trace export``.

The root is resolved with the exact rule :func:`repro.experiments.store.
store_root` uses, duplicated here (two lines) so that ``repro.obs``
stays importable by the simulator core without pulling in the
experiments layer; ``tests/unit/test_obs_flightrec.py`` pins the two
implementations together.
"""

from __future__ import annotations

import os

#: Default artifact root, shared with the result store.
DEFAULT_ROOT = ".repro-results"


def obs_root() -> str:
    """Artifact root: ``REPRO_STORE_DIR`` or ``.repro-results``."""
    return os.environ.get("REPRO_STORE_DIR") or DEFAULT_ROOT


def metrics_dir(root: str | None = None) -> str:
    """Directory metrics snapshots are written to (not created here)."""
    return os.path.join(root if root is not None else obs_root(), "metrics")


def postmortem_dir(root: str | None = None) -> str:
    """Directory crash post-mortems are written to (not created here)."""
    return os.path.join(root if root is not None else obs_root(), "postmortem")


def spans_dir(root: str | None = None) -> str:
    """Directory span snapshots are written to (not created here)."""
    return os.path.join(root if root is not None else obs_root(), "spans")
